//! `ntc` — command-line front end of the ntc-offload framework.
//!
//! ```console
//! $ ntc archetypes
//! $ ntc simulate --archetype photo-pipeline --policy ntc --rate 0.02 --hours 4
//! $ ntc compare  --archetype report-rendering --rate 0.01 --hours 24
//! $ ntc plan     --archetype sci-sweep --policy ntc --rate 0.002
//! ```

use std::process::ExitCode;

use ntc_core::{deploy, Engine, Environment, NtcConfig, OffloadPolicy};
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}'"));
            };
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_string(), value.clone()));
        }
        Ok(Args { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn f64_or(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            Some(v) => v.parse().map_err(|_| format!("--{name}: '{v}' is not a number")),
            None => Ok(default),
        }
    }

    fn u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            Some(v) => v.parse().map_err(|_| format!("--{name}: '{v}' is not an integer")),
            None => Ok(default),
        }
    }
}

fn parse_archetype(name: &str) -> Result<Archetype, String> {
    Archetype::all()
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| format!("unknown archetype '{name}' (see `ntc archetypes`)"))
}

fn parse_policy(name: &str) -> Result<OffloadPolicy, String> {
    match name {
        "local-only" => Ok(OffloadPolicy::LocalOnly),
        "edge-all" => Ok(OffloadPolicy::EdgeAll),
        "cloud-all" => Ok(OffloadPolicy::CloudAll),
        "ntc" => Ok(OffloadPolicy::ntc()),
        "ntc+offpeak" => Ok(OffloadPolicy::Ntc(NtcConfig { off_peak: true, ..Default::default() })),
        other => Err(format!(
            "unknown policy '{other}' (local-only | edge-all | cloud-all | ntc | ntc+offpeak)"
        )),
    }
}

fn print_run(policy: &OffloadPolicy, r: &ntc_core::RunResult) {
    let s = r.latency_summary();
    let (p50, p95) = s.map(|s| (s.p50, s.p95)).unwrap_or((0.0, 0.0));
    println!(
        "{:<13} {:>6} jobs  p50 {:>9.2}s  p95 {:>9.2}s  miss {:>5.1}%  total ${:<9.4} UE {:>10}  up {}",
        policy.name(),
        r.jobs.len(),
        p50,
        p95,
        r.miss_rate() * 100.0,
        r.total_cost().as_usd_f64(),
        r.device_energy.to_string(),
        r.bytes_up,
    );
}

fn cmd_archetypes() {
    println!(
        "{:<18} {:>10} {:>12} {:>8} {:>7}",
        "archetype", "components", "slack", "noise", "drift"
    );
    for a in Archetype::all() {
        println!(
            "{:<18} {:>10} {:>12} {:>8.2} {:>7.2}",
            a.name(),
            a.graph().len(),
            a.typical_slack().to_string(),
            a.demand_noise_sigma(),
            a.demand_drift(),
        );
    }
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let archetype = parse_archetype(args.get("archetype").unwrap_or("photo-pipeline"))?;
    let policy = parse_policy(args.get("policy").unwrap_or("ntc"))?;
    let rate = args.f64_or("rate", 0.02)?;
    let hours = args.u64_or("hours", 4)?;
    let seed = args.u64_or("seed", 42)?;

    let engine = Engine::new(Environment::metro_reference(), seed);
    let specs = [StreamSpec::poisson(archetype, rate)];
    let r = engine.run(&policy, &specs, SimDuration::from_hours(hours));
    println!("{archetype} at {rate}/s for {hours}h (seed {seed}):");
    print_run(&policy, &r);
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let archetype = parse_archetype(args.get("archetype").unwrap_or("photo-pipeline"))?;
    let rate = args.f64_or("rate", 0.02)?;
    let hours = args.u64_or("hours", 24)?;
    let seed = args.u64_or("seed", 42)?;

    let engine = Engine::new(Environment::metro_reference(), seed);
    let specs = [StreamSpec::poisson(archetype, rate)];
    let horizon = SimDuration::from_hours(hours);
    println!("{archetype} at {rate}/s for {hours}h (seed {seed}):");
    for policy in [
        OffloadPolicy::LocalOnly,
        OffloadPolicy::EdgeAll,
        OffloadPolicy::CloudAll,
        OffloadPolicy::ntc(),
    ] {
        let r = engine.run(&policy, &specs, horizon);
        print_run(&policy, &r);
    }
    Ok(())
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    let archetype = parse_archetype(args.get("archetype").unwrap_or("photo-pipeline"))?;
    let policy = parse_policy(args.get("policy").unwrap_or("ntc"))?;
    let rate = args.f64_or("rate", 0.02)?;
    let seed = args.u64_or("seed", 42)?;

    let env = Environment::metro_reference();
    let rng = RngStream::root(seed).derive("engine");
    let d = deploy(&policy, archetype, &env, rate, archetype.typical_slack(), &rng);
    println!("{} deployment of {archetype} (rate {rate}/s, seed {seed}):", policy.name());
    for (id, c) in d.graph.components() {
        let placement = if d.is_offloaded(id) {
            format!("{} @ {}", d.backend, d.memory[id.index()])
        } else {
            "device".into()
        };
        println!(
            "  {:<16} demand {:<12} -> {placement}",
            c.name(),
            d.demands[id.index()].to_string(),
        );
    }
    println!("  dispatch: {}", d.dispatch);
    println!("  warming:  {}", d.warm);
    println!("  est. completion: {} (local fallback: {})", d.est_completion, d.fallback_local);
    let byte_cap = if d.max_batch_bytes.as_bytes() == u64::MAX {
        "unbounded".to_string()
    } else {
        d.max_batch_bytes.to_string()
    };
    let member_cap = if d.max_batch_members == u32::MAX {
        "unbounded".to_string()
    } else {
        d.max_batch_members.to_string()
    };
    println!("  batch caps: {member_cap} members / {byte_cap}");
    Ok(())
}

fn usage() -> &'static str {
    "ntc — computational offloading for non-time-critical applications

USAGE:
  ntc archetypes
  ntc simulate [--archetype A] [--policy P] [--rate R] [--hours H] [--seed S]
  ntc compare  [--archetype A] [--rate R] [--hours H] [--seed S]
  ntc plan     [--archetype A] [--policy P] [--rate R] [--seed S]

POLICIES: local-only | edge-all | cloud-all | ntc | ntc+offpeak"
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "archetypes" => {
            cmd_archetypes();
            Ok(())
        }
        "simulate" => Args::parse(rest).and_then(|a| cmd_simulate(&a)),
        "compare" => Args::parse(rest).and_then(|a| cmd_compare(&a)),
        "plan" => Args::parse(rest).and_then(|a| cmd_plan(&a)),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
