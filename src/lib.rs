//! # ntc-offload
//!
//! Umbrella crate for the `ntc-offload` framework — a laptop-scale,
//! fully deterministic reproduction of *Computational Offloading for
//! Non-Time-Critical Applications* (Richard Patsch, ICDCS 2022).
//!
//! Re-exports every subsystem crate; see the README for the map and
//! `DESIGN.md` for the system inventory and experiment index.
//!
//! # Examples
//!
//! ```
//! use ntc_offload::core::{Engine, Environment, OffloadPolicy};
//! use ntc_offload::simcore::units::SimDuration;
//! use ntc_offload::workloads::{Archetype, StreamSpec};
//!
//! let engine = Engine::new(Environment::metro_reference(), 1);
//! let specs = [StreamSpec::poisson(Archetype::MlInference, 0.02)];
//! let result = engine.run(&OffloadPolicy::ntc(), &specs, SimDuration::from_mins(30));
//! assert!(result.failures() == 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ntc_alloc as alloc;
pub use ntc_cicd as cicd;
pub use ntc_core as core;
pub use ntc_edge as edge;
pub use ntc_net as net;
pub use ntc_partition as partition;
pub use ntc_profiler as profiler;
pub use ntc_serverless as serverless;
pub use ntc_simcore as simcore;
pub use ntc_taskgraph as taskgraph;
pub use ntc_workloads as workloads;
