//! A commuter's day: the device goes offline on the subway twice a day.
//! Delay-tolerant offloading rides the outages out; when an outage is
//! longer than a job's remaining slack, the framework runs that batch on
//! the device instead of missing the deadline.
//!
//! Run with: `cargo run --release --example commuter_day`

use ntc_core::{Engine, Environment, OffloadPolicy};
use ntc_net::ConnectivityTrace;
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};

fn main() {
    let mut env = Environment::metro_reference();
    env.connectivity = ConnectivityTrace::commuter();
    println!(
        "Connectivity: commuter profile — offline {:.1}% of the day (worst window {}).\n",
        env.connectivity.offline_fraction() * 100.0,
        env.connectivity.longest_offline(),
    );

    let engine = Engine::new(env, 8);
    let specs = [StreamSpec::poisson(Archetype::PhotoPipeline, 0.02)];
    let horizon = SimDuration::from_hours(24);

    println!("{:<11} {:>6} {:>10} {:>10} {:>7}", "policy", "jobs", "p50 (s)", "p95 (s)", "miss");
    for policy in [OffloadPolicy::LocalOnly, OffloadPolicy::CloudAll, OffloadPolicy::ntc()] {
        let r = engine.run(&policy, &specs, horizon);
        let s = r.latency_summary().expect("jobs ran");
        println!(
            "{:<11} {:>6} {:>10.2} {:>10.2} {:>6.1}%",
            policy.name(),
            r.jobs.len(),
            s.p50,
            s.p95,
            r.miss_rate() * 100.0,
        );
    }

    println!();
    println!("cloud-all stalls every photo captured on the subway: its tail explodes and");
    println!("jobs whose 30-minute slack is shorter than the 45-minute outage miss their");
    println!("deadlines outright. The ntc policy sees the outage coming (its completion");
    println!("reserve covers the worst offline window overlapping each batch), runs the");
    println!("threatened batches on the device, and keeps offloading everything else.");
}
