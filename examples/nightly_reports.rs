//! Enterprise report rendering with eight hours of slack: the poster
//! child of a non-time-critical workload. Shows how much money
//! deadline-aware batching recovers, and that no report misses its
//! deadline.
//!
//! Run with: `cargo run --release --example nightly_reports`

use ntc_core::{Engine, Environment, NtcConfig, OffloadPolicy};
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};

fn main() {
    let env = Environment::metro_reference();
    let engine = Engine::new(env, 11);
    let horizon = SimDuration::from_hours(24);

    // Report requests trickle in all day; each must be delivered within
    // its slack (typical 8 h, scaled below).
    println!("Report-rendering day ({horizon}), batching on vs off, by deadline slack:\n");
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>9} {:>11} {:>8}",
        "slack", "jobs", "batched $", "eager $", "saving", "mean hold", "misses"
    );
    for factor in [0.125, 0.25, 0.5, 1.0] {
        let specs =
            [StreamSpec::poisson(Archetype::ReportRendering, 0.008).with_slack_factor(factor)];
        let batched = engine.run(&OffloadPolicy::ntc(), &specs, horizon);
        let eager = engine.run(
            &OffloadPolicy::Ntc(NtcConfig { use_batching: false, ..Default::default() }),
            &specs,
            horizon,
        );
        let cb = batched.total_cost().as_usd_f64();
        let ce = eager.total_cost().as_usd_f64();
        let hold: f64 =
            batched.jobs.iter().map(|j| (j.dispatched - j.arrival).as_secs_f64()).sum::<f64>()
                / batched.jobs.len().max(1) as f64;
        println!(
            "{:>7.1}h {:>6} {:>12.4} {:>12.4} {:>8.1}% {:>10.1}m {:>8}",
            8.0 * factor,
            batched.jobs.len(),
            cb,
            ce,
            (1.0 - cb / ce) * 100.0,
            hold / 60.0,
            batched.deadline_misses(),
        );
    }

    println!();
    println!("Every report still lands inside its deadline: the framework holds jobs");
    println!("only as long as the per-job slack (minus a safety margin) allows, and");
    println!("coalesced render batches share one function invocation — the fixed");
    println!("template-compilation demand and the per-request fee are paid once per");
    println!("window instead of once per report.");
}
