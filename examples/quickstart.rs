//! Quickstart: define an application, let the framework profile,
//! partition and allocate it, then simulate an hour of traffic and read
//! the bill.
//!
//! Run with: `cargo run --example quickstart`

use ntc_core::{Engine, Environment, OffloadPolicy};
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};

fn main() {
    // The world: a smartphone, metro networks, a Lambda-like cloud and a
    // small edge site. Everything is deterministic given the seed.
    let env = Environment::metro_reference();
    let engine = Engine::new(env, 42);

    // The workload: a photo-enhancement app invoked about twice a minute,
    // with the archetype's typical 30-minute deadline slack.
    let specs = [StreamSpec::poisson(Archetype::PhotoPipeline, 0.03)];
    let horizon = SimDuration::from_hours(1);

    println!("policy      jobs   p50        p95        miss   cloud $    device energy");
    println!("--------------------------------------------------------------------------");
    for policy in [OffloadPolicy::LocalOnly, OffloadPolicy::CloudAll, OffloadPolicy::ntc()] {
        let result = engine.run(&policy, &specs, horizon);
        let s = result.latency_summary().expect("jobs ran");
        println!(
            "{:<10}  {:<5}  {:<9.2}  {:<9.2}  {:<5.1}  {:<9.6}  {}",
            policy.name(),
            result.jobs.len(),
            s.p50,
            s.p95,
            result.miss_rate() * 100.0,
            result.cloud_cost.as_usd_f64(),
            result.device_energy,
        );
    }

    // Inspect what the NTC framework actually decided for this app.
    let rng = ntc_simcore::rng::RngStream::root(42).derive("engine");
    let deployment = ntc_core::deploy(
        &OffloadPolicy::ntc(),
        Archetype::PhotoPipeline,
        engine.env(),
        0.03,
        Archetype::PhotoPipeline.typical_slack(),
        &rng,
    );
    println!("\nNTC deployment of {}:", deployment.archetype);
    for (id, c) in deployment.graph.components() {
        println!(
            "  {:<10} -> {:<7} {}",
            c.name(),
            deployment.plan.side(id).to_string(),
            if deployment.is_offloaded(id) {
                format!("({} function)", deployment.memory[id.index()])
            } else {
                String::new()
            },
        );
    }
    println!("  dispatch policy: {}", deployment.dispatch);
    println!("  estimated completion: {}", deployment.est_completion);
}
