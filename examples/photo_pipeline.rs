//! The motivating mobile scenario: a photo-enhancement batch app serving
//! a city of users across one diurnal day, compared under all four
//! policies.
//!
//! Run with: `cargo run --release --example photo_pipeline`

use ntc_core::{Engine, Environment, OffloadPolicy};
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};

fn main() {
    let env = Environment::metro_reference();
    let engine = Engine::new(env, 7);

    // Office-hours diurnal traffic peaking at ~1 photo batch every 20 s.
    let specs = [StreamSpec::diurnal(Archetype::PhotoPipeline, 0.05)];
    let horizon = SimDuration::from_hours(24);

    println!("One diurnal day of photo-pipeline traffic ({horizon}):\n");
    println!(
        "{:<11} {:>6} {:>10} {:>10} {:>7} {:>11} {:>11} {:>12}",
        "policy", "jobs", "p50 (s)", "p95 (s)", "miss", "total $", "UE energy", "bytes up"
    );
    for policy in [
        OffloadPolicy::LocalOnly,
        OffloadPolicy::EdgeAll,
        OffloadPolicy::CloudAll,
        OffloadPolicy::ntc(),
    ] {
        let r = engine.run(&policy, &specs, horizon);
        let s = r.latency_summary().expect("jobs ran");
        println!(
            "{:<11} {:>6} {:>10.2} {:>10.2} {:>6.1}% {:>11.4} {:>11} {:>12}",
            policy.name(),
            r.jobs.len(),
            s.p50,
            s.p95,
            r.miss_rate() * 100.0,
            r.total_cost().as_usd_f64(),
            r.device_energy,
            r.bytes_up,
        );
    }

    println!();
    println!("Reading the table:");
    println!("  * local-only melts the battery (every enhancement runs on the phone);");
    println!("  * edge-all is fastest but pays for servers around the clock;");
    println!("  * cloud-all is elastic and pay-per-use but dispatches eagerly;");
    println!("  * ntc batches within the 30-minute slack: the cheapest bill, zero");
    println!("    deadline misses, and the same battery relief as cloud-all.");
}
