//! Offloading as part of the release process: three releases ride the
//! CI/CD pipeline — a healthy one, a mild drift, and a bad regression
//! that the canary catches and rolls back.
//!
//! Run with: `cargo run --example cicd_rollout`

use ntc_cicd::{Outcome, Pipeline, PipelineConfig, ReleaseSpec, Stage};
use ntc_simcore::rng::RngStream;
use ntc_workloads::Archetype;

fn main() {
    let mut pipeline = Pipeline::new(PipelineConfig::default(), RngStream::root(2024));
    let graph = Archetype::ReportRendering.graph();

    let releases = [
        (1u64, 1.0, "baseline release"),
        (2u64, 1.15, "mild demand drift (+15%)"),
        (3u64, 3.0, "bad release (3x demand regression)"),
        (4u64, 1.1, "fixed release"),
    ];

    for (version, demand_factor, label) in releases {
        let report = pipeline.run(&ReleaseSpec {
            version,
            graph: graph.clone(),
            demand_factor,
            noise_sigma: 0.08,
        });
        println!("release v{version} — {label}");
        for (stage, duration) in &report.stages {
            println!("  {:<10} {}", stage.to_string(), duration);
        }
        match &report.outcome {
            Outcome::Promoted { plan } => {
                println!(
                    "  => PROMOTED in {} ({} components offloaded)\n",
                    report.total(),
                    plan.offloaded().count()
                );
            }
            Outcome::RolledBack { regression } => {
                println!(
                    "  => ROLLED BACK: canary measured {regression:.2}x the last good demand (SLO 1.5x)\n"
                );
            }
            Outcome::Failed { stage } => println!("  => FAILED at {stage}\n"),
        }
        assert!(
            report.stage(Stage::Partition).is_some(),
            "offload stages are part of the pipeline"
        );
    }

    println!(
        "live version after the rollout: v{} (the bad v3 never served traffic)",
        pipeline.live_version().expect("a release was promoted")
    );
    println!("plan audit trail: {} promoted plans", pipeline.plan_history().len());
    println!(
        "artifact registry holds {} versions of the render component",
        pipeline.registry().version_count("report-rendering/render")
    );
}
