//! Cross-crate integration tests: full pipelines from workload generation
//! through deployment, execution and accounting.

use ntc_offload::core::{across, run_replications, Engine, Environment, NtcConfig, OffloadPolicy};
use ntc_offload::simcore::units::{DataSize, Money, SimDuration};
use ntc_offload::workloads::{Archetype, StreamSpec};

fn engine(seed: u64) -> Engine {
    Engine::new(Environment::metro_reference(), seed)
}

#[test]
fn every_archetype_completes_under_every_policy() {
    let e = engine(1);
    let horizon = SimDuration::from_hours(1);
    for a in Archetype::all() {
        let specs = [StreamSpec::poisson(a, 0.01)];
        for policy in [
            OffloadPolicy::LocalOnly,
            OffloadPolicy::EdgeAll,
            OffloadPolicy::CloudAll,
            OffloadPolicy::ntc(),
        ] {
            let r = e.run(&policy, &specs, horizon);
            assert_eq!(r.failures(), 0, "{a} under {policy} had failures");
            for j in &r.jobs {
                assert!(j.finish >= j.dispatched, "{a}/{policy}: finish before dispatch");
                assert!(j.dispatched >= j.arrival, "{a}/{policy}: dispatch before arrival");
            }
        }
    }
}

#[test]
fn headline_claims_hold_on_a_mixed_day() {
    let e = engine(5);
    let horizon = SimDuration::from_hours(12);
    let specs = [
        StreamSpec::diurnal(Archetype::PhotoPipeline, 0.02),
        StreamSpec::poisson(Archetype::ReportRendering, 0.005),
        StreamSpec::poisson(Archetype::LogAnalytics, 0.008),
        StreamSpec::poisson(Archetype::DocIndexing, 0.005),
    ];
    let local = e.run(&OffloadPolicy::LocalOnly, &specs, horizon);
    let edge = e.run(&OffloadPolicy::EdgeAll, &specs, horizon);
    let cloud = e.run(&OffloadPolicy::CloudAll, &specs, horizon);
    let ntc = e.run(&OffloadPolicy::ntc(), &specs, horizon);

    // The abstract's promises:
    assert!(ntc.total_cost() <= cloud.total_cost(), "ntc must not out-spend cloud-all");
    assert!(ntc.total_cost() < edge.total_cost(), "pay-per-use beats idle edge infra here");
    assert!(
        ntc.device_energy.as_joules_f64() < local.device_energy.as_joules_f64() / 2.0,
        "offloading must relieve the battery"
    );
    assert_eq!(ntc.deadline_misses(), 0, "slack-aware holding never misses");
}

#[test]
fn ablations_produce_distinct_deployable_policies() {
    let mut names = std::collections::HashSet::new();
    for cfg in [
        NtcConfig::default(),
        NtcConfig { use_profiler: false, ..Default::default() },
        NtcConfig { use_partitioner: false, ..Default::default() },
        NtcConfig { use_allocator: false, ..Default::default() },
        NtcConfig { use_batching: false, ..Default::default() },
    ] {
        assert!(names.insert(OffloadPolicy::Ntc(cfg).name()), "duplicate policy name");
    }
}

#[test]
fn doc_indexing_stays_mostly_local_under_ntc() {
    // The transfer-dominated archetype: min-cut should refuse to ship the
    // corpus over the WAN.
    let rng = ntc_offload::simcore::rng::RngStream::root(9).derive("engine");
    let d = ntc_offload::core::deploy(
        &OffloadPolicy::ntc(),
        Archetype::DocIndexing,
        &Environment::metro_reference(),
        0.01,
        Archetype::DocIndexing.typical_slack(),
        &rng,
    );
    assert!(
        d.offloaded_count() <= 1,
        "doc-indexing should keep the heavy-data stages local, got {:?}",
        d.plan
    );
}

#[test]
fn sci_sweep_offloads_under_ntc() {
    // The compute-dominated archetype: the 60 Gcyc simulation must move.
    let rng = ntc_offload::simcore::rng::RngStream::root(9).derive("engine");
    let d = ntc_offload::core::deploy(
        &OffloadPolicy::ntc(),
        Archetype::SciSweep,
        &Environment::metro_reference(),
        0.002,
        Archetype::SciSweep.typical_slack(),
        &rng,
    );
    assert!(d.offloaded_count() >= 2, "sci-sweep compute should offload, got {:?}", d.plan);
}

#[test]
fn replications_are_deterministic_and_independent() {
    let env = Environment::metro_reference();
    let specs = [StreamSpec::poisson(Archetype::MlInference, 0.02)];
    let horizon = SimDuration::from_mins(30);
    let a = run_replications(&env, &OffloadPolicy::ntc(), &specs, horizon, 77, 3, 3);
    let b = run_replications(&env, &OffloadPolicy::ntc(), &specs, horizon, 77, 3, 1);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.jobs, y.jobs);
        assert_eq!(x.cloud_cost, y.cloud_cost);
    }
    let costs = across(&a, |r| r.total_cost().as_usd_f64());
    assert_eq!(costs.n, 3);
}

#[test]
fn zero_traffic_day_is_free_on_the_cloud_but_not_on_the_edge() {
    let e = engine(3);
    let specs = [StreamSpec::poisson(Archetype::SciSweep, 0.0)];
    let horizon = SimDuration::from_hours(24);
    let cloud = e.run(&OffloadPolicy::CloudAll, &specs, horizon);
    let edge = e.run(&OffloadPolicy::EdgeAll, &specs, horizon);
    assert!(cloud.jobs.is_empty() && edge.jobs.is_empty());
    assert_eq!(cloud.total_cost(), Money::ZERO, "pay-per-use: no jobs, no bill");
    assert!(edge.total_cost() > Money::from_usd(30), "the edge bills around the clock");
}

#[test]
fn bytes_accounting_is_consistent() {
    let e = engine(13);
    let specs = [StreamSpec::poisson(Archetype::PhotoPipeline, 0.02)];
    let r = e.run(&OffloadPolicy::CloudAll, &specs, SimDuration::from_hours(2));
    // Every job uploads at least its input and downloads at least the
    // result notification.
    let total_inputs: u64 = r.jobs.len() as u64;
    assert!(r.bytes_up >= DataSize::from_mib(total_inputs), "uploads look too small");
    assert!(r.bytes_down.as_bytes() >= total_inputs * 100 * 1024, "missing result returns");
}
