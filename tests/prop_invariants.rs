//! Cross-crate property-based tests (proptest) on the framework's core
//! invariants.

use proptest::prelude::*;

use ntc_offload::alloc::{dispatch_time, DispatchPolicy};
use ntc_offload::partition::{
    standard_roster, CostParams, ExhaustivePartitioner, MinCutPartitioner, PartitionContext,
    Partitioner,
};
use ntc_offload::serverless::{FunctionConfig, PlatformConfig, ServerlessPlatform};
use ntc_offload::simcore::rng::RngStream;
use ntc_offload::simcore::units::{Cycles, DataSize, SimDuration, SimTime};
use ntc_offload::taskgraph::{random_layered_dag, RandomDagConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Min-cut is optimal for the additive objective: never beaten by the
    /// exhaustive optimum and never worse than any roster baseline.
    #[test]
    fn min_cut_is_optimal_and_valid(
        seed in 0u64..10_000,
        nodes in 4usize..11,
        layers in 2usize..5,
        edge_probability in 0.2f64..0.9,
        input_kib in 1u64..10_000,
    ) {
        prop_assume!(layers <= nodes);
        let mut rng = RngStream::root(seed).derive("prop-dag");
        let cfg = RandomDagConfig { nodes, layers, edge_probability, ..Default::default() };
        let graph = random_layered_dag(&mut rng, &cfg);
        let ctx = PartitionContext::new(&graph, DataSize::from_kib(input_kib), CostParams::default());

        let mc_plan = MinCutPartitioner.partition(&ctx);
        mc_plan.validate(&graph).expect("min-cut plan validates");
        let mc = ctx.evaluate(&mc_plan).weighted;
        let opt = ctx.evaluate(&ExhaustivePartitioner.partition(&ctx)).weighted;
        prop_assert!((mc - opt).abs() <= opt.max(1.0) * 1e-6, "min-cut {mc} vs optimal {opt}");

        for p in standard_roster() {
            let plan = p.partition(&ctx);
            plan.validate(&graph).expect("roster plan validates");
            let cost = ctx.evaluate(&plan).weighted;
            prop_assert!(cost + 1e-6 >= mc, "{} beat min-cut: {cost} < {mc}", p.name());
        }
    }

    /// Holding a job never violates its deadline when the completion
    /// estimate is honest.
    #[test]
    fn dispatch_never_breaks_feasible_deadlines(
        arrival_s in 0u64..1_000_000,
        slack_s in 0u64..100_000,
        est_s in 0u64..10_000,
        margin_s in 0u64..1_000,
        window_s in 1u64..100_000,
    ) {
        let arrival = SimTime::from_secs(arrival_s);
        let slack = SimDuration::from_secs(slack_s);
        let est = SimDuration::from_secs(est_s);
        let margin = SimDuration::from_secs(margin_s);
        for policy in [
            DispatchPolicy::Immediate,
            DispatchPolicy::Windowed { window: SimDuration::from_secs(window_s) },
            DispatchPolicy::SlackMax,
        ] {
            let d = dispatch_time(policy, arrival, slack, est, margin);
            prop_assert!(d >= arrival, "{policy}: dispatched into the past");
            if est + margin <= slack {
                prop_assert!(
                    d + est + margin <= arrival + slack,
                    "{policy}: holding violated the deadline"
                );
            } else {
                prop_assert_eq!(d, arrival, "{}: infeasible jobs go immediately", policy);
            }
        }
    }

    /// The platform conserves sanity under arbitrary in-order workloads:
    /// outcomes are causal, warm/cold counts add up, and money is
    /// monotone in work.
    #[test]
    fn platform_outcomes_are_causal(
        seed in 0u64..10_000,
        memory_mib in 128u64..8192,
        n in 1usize..60,
        mean_gap_ms in 1u64..600_000,
        work_mega in 1u64..50_000,
    ) {
        let mut platform = ServerlessPlatform::new(PlatformConfig::default(), RngStream::root(seed));
        let f = platform.register(FunctionConfig::new("f", DataSize::from_mib(memory_mib)));
        let mut rng = RngStream::root(seed).derive("gaps");
        let mut t = SimTime::ZERO;
        let mut cold = 0u64;
        let mut warm = 0u64;
        for _ in 0..n {
            t += SimDuration::from_millis((rng.exponential(mean_gap_ms as f64)) as u64);
            let out = platform.invoke(t, f, Cycles::from_mega(work_mega)).unwrap();
            prop_assert!(out.finish >= t, "finish before submission");
            prop_assert_eq!(
                out.latency(),
                out.queue_wait + out.cold_start + out.exec,
                "latency decomposition"
            );
            if out.was_cold { cold += 1 } else { warm += 1 }
        }
        let stats = platform.stats(f);
        prop_assert_eq!(stats.cold_starts, cold);
        prop_assert_eq!(stats.warm_starts, warm);
        prop_assert_eq!(stats.invocations, n as u64);
    }

    /// Billing is monotone: more work never costs less at the same
    /// configuration.
    #[test]
    fn billing_is_monotone_in_work(
        memory_mib in 128u64..10240,
        d1_ms in 0u64..1_000_000,
        d2_ms in 0u64..1_000_000,
    ) {
        let billing = ntc_offload::serverless::BillingModel::aws_like();
        let m = DataSize::from_mib(memory_mib);
        let (lo, hi) = if d1_ms <= d2_ms { (d1_ms, d2_ms) } else { (d2_ms, d1_ms) };
        let c_lo = billing.invocation_cost(m, SimDuration::from_millis(lo));
        let c_hi = billing.invocation_cost(m, SimDuration::from_millis(hi));
        prop_assert!(c_lo <= c_hi);
    }

    /// Random DAG generation always yields valid, connected-enough graphs
    /// whose total work and flow bytes are finite and reproducible.
    #[test]
    fn random_dags_are_well_formed(seed in 0u64..10_000, nodes in 2usize..30) {
        let layers = (nodes / 2).clamp(2, 6).min(nodes);
        let cfg = RandomDagConfig { nodes, layers, ..Default::default() };
        let a = random_layered_dag(&mut RngStream::root(seed).derive("dag"), &cfg);
        let b = random_layered_dag(&mut RngStream::root(seed).derive("dag"), &cfg);
        prop_assert_eq!(&a, &b, "generation must be deterministic");
        prop_assert_eq!(a.topo_order().len(), nodes);
        prop_assert!(!a.entries().is_empty());
        prop_assert!(!a.exits().is_empty());
        for id in a.ids() {
            let lonely = a.predecessors(id).next().is_none() && a.successors(id).next().is_none();
            prop_assert!(!lonely, "node {} is isolated", id);
        }
    }
}
