//! Arrival processes: Poisson, diurnal (time-varying rate via thinning),
//! and bursty (two-state MMPP).

use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// An arrival process generating job submission instants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson process.
    Poisson {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
    /// Non-homogeneous Poisson with a 24-hour rate profile: the base rate
    /// is modulated by an hour-of-day factor (thinning).
    Diurnal {
        /// Peak arrivals per second.
        peak_rate_per_sec: f64,
        /// Per-hour modulation factors in `[0, 1]`, 24 entries.
        hourly_profile: [f64; 24],
    },
    /// Markov-modulated Poisson process with two states (calm/burst).
    Bursty {
        /// Rate in the calm state.
        calm_rate_per_sec: f64,
        /// Rate in the burst state.
        burst_rate_per_sec: f64,
        /// Mean sojourn in the calm state.
        mean_calm: SimDuration,
        /// Mean sojourn in the burst state.
        mean_burst: SimDuration,
    },
}

impl ArrivalProcess {
    /// A standard office-hours diurnal profile: near-zero overnight,
    /// ramping to the peak in the afternoon and evening.
    pub fn office_diurnal(peak_rate_per_sec: f64) -> Self {
        let hourly_profile = [
            0.05, 0.03, 0.02, 0.02, 0.03, 0.08, // 00–06
            0.20, 0.45, 0.70, 0.85, 0.90, 0.95, // 06–12
            0.90, 0.95, 1.00, 0.95, 0.90, 0.85, // 12–18
            0.80, 0.75, 0.60, 0.40, 0.20, 0.10, // 18–24
        ];
        ArrivalProcess::Diurnal { peak_rate_per_sec, hourly_profile }
    }

    /// The long-run mean rate in arrivals per second.
    pub fn mean_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => *rate_per_sec,
            ArrivalProcess::Diurnal { peak_rate_per_sec, hourly_profile } => {
                peak_rate_per_sec * hourly_profile.iter().sum::<f64>() / 24.0
            }
            ArrivalProcess::Bursty {
                calm_rate_per_sec,
                burst_rate_per_sec,
                mean_calm,
                mean_burst,
            } => {
                let c = mean_calm.as_secs_f64();
                let b = mean_burst.as_secs_f64();
                (calm_rate_per_sec * c + burst_rate_per_sec * b) / (c + b)
            }
        }
    }

    /// Generates all arrival instants in `[0, horizon)`.
    ///
    /// Deterministic for a given `rng` stream state.
    pub fn generate(&self, horizon: SimDuration, rng: &mut RngStream) -> Vec<SimTime> {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                poisson_thinned(horizon, *rate_per_sec, |_| 1.0, rng)
            }
            ArrivalProcess::Diurnal { peak_rate_per_sec, hourly_profile } => poisson_thinned(
                horizon,
                *peak_rate_per_sec,
                |t| {
                    let hour = (t.as_micros() / 3_600_000_000) % 24;
                    hourly_profile[hour as usize]
                },
                rng,
            ),
            ArrivalProcess::Bursty {
                calm_rate_per_sec,
                burst_rate_per_sec,
                mean_calm,
                mean_burst,
            } => {
                // Pre-compute state intervals, then thin at the max rate.
                let max_rate = calm_rate_per_sec.max(*burst_rate_per_sec);
                if max_rate <= 0.0 {
                    return Vec::new();
                }
                let mut switches: Vec<(SimTime, f64)> = Vec::new();
                let mut t = SimTime::ZERO;
                let mut burst = false;
                let mut state_rng = rng.derive("mmpp-states");
                while t < SimTime::ZERO + horizon {
                    let rate = if burst { *burst_rate_per_sec } else { *calm_rate_per_sec };
                    switches.push((t, rate));
                    let mean = if burst { *mean_burst } else { *mean_calm };
                    t += SimDuration::from_secs_f64(state_rng.exponential(mean.as_secs_f64()));
                    burst = !burst;
                }
                poisson_thinned(
                    horizon,
                    max_rate,
                    |t| {
                        let idx = switches.partition_point(|&(s, _)| s <= t) - 1;
                        switches[idx].1 / max_rate
                    },
                    rng,
                )
            }
        }
    }
}

/// Thinning algorithm: candidates at `max_rate`, kept with probability
/// `accept(t)`.
fn poisson_thinned(
    horizon: SimDuration,
    max_rate: f64,
    accept: impl Fn(SimTime) -> f64,
    rng: &mut RngStream,
) -> Vec<SimTime> {
    assert!(max_rate.is_finite() && max_rate >= 0.0, "rate must be non-negative");
    let mut out = Vec::new();
    if max_rate == 0.0 {
        return out;
    }
    let end = SimTime::ZERO + horizon;
    let mut t = SimTime::ZERO;
    loop {
        let gap = rng.exponential(1.0 / max_rate);
        t += SimDuration::from_secs_f64(gap);
        if t >= end {
            break;
        }
        if rng.chance(accept(t).clamp(0.0, 1.0)) {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::root(77).derive("arrivals")
    }

    #[test]
    fn poisson_rate_is_respected() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 2.0 };
        let arrivals = p.generate(SimDuration::from_secs(5_000), &mut rng());
        let rate = arrivals.len() as f64 / 5_000.0;
        assert!((rate - 2.0).abs() < 0.1, "rate={rate}");
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "sorted output");
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 0.0 };
        assert!(p.generate(SimDuration::from_hours(10), &mut rng()).is_empty());
    }

    #[test]
    fn diurnal_is_quiet_at_night_and_busy_at_peak() {
        let p = ArrivalProcess::office_diurnal(1.0);
        let arrivals = p.generate(SimDuration::from_hours(24), &mut rng());
        let count_in = |from: u64, to: u64| {
            arrivals
                .iter()
                .filter(|t| {
                    t.as_micros() >= from * 3_600_000_000 && t.as_micros() < to * 3_600_000_000
                })
                .count()
        };
        let night = count_in(1, 4);
        let afternoon = count_in(13, 16);
        assert!(afternoon > night * 5, "afternoon {afternoon} vs night {night}");
    }

    #[test]
    fn diurnal_mean_rate_matches_profile() {
        let p = ArrivalProcess::office_diurnal(1.0);
        let arrivals = p.generate(SimDuration::from_hours(240), &mut rng());
        let empirical = arrivals.len() as f64 / (240.0 * 3600.0);
        assert!((empirical - p.mean_rate()).abs() / p.mean_rate() < 0.1);
    }

    #[test]
    fn bursty_alternates_intensity() {
        let p = ArrivalProcess::Bursty {
            calm_rate_per_sec: 0.1,
            burst_rate_per_sec: 20.0,
            mean_calm: SimDuration::from_secs(100),
            mean_burst: SimDuration::from_secs(10),
        };
        let arrivals = p.generate(SimDuration::from_secs(10_000), &mut rng());
        let empirical = arrivals.len() as f64 / 10_000.0;
        let expected = p.mean_rate();
        assert!((empirical - expected).abs() / expected < 0.3, "{empirical} vs {expected}");
        // Burstiness: squared-CV of inter-arrivals well above Poisson's 1.
        let gaps: Vec<f64> = arrivals.windows(2).map(|w| (w[1] - w[0]).as_secs_f64()).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv2 = var / (mean * mean);
        assert!(cv2 > 2.0, "cv²={cv2} should exceed Poisson");
    }

    #[test]
    fn same_seed_same_arrivals() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 1.0 };
        let a = p.generate(SimDuration::from_secs(100), &mut rng());
        let b = p.generate(SimDuration::from_secs(100), &mut rng());
        assert_eq!(a, b);
    }
}
