//! # ntc-workloads
//!
//! The non-time-critical workloads that motivate *Computational Offloading
//! for Non-Time-Critical Applications* (ICDCS 2022): six application
//! archetypes with realistic demand/payload scaling, arrival processes
//! (Poisson, office-hours diurnal, bursty MMPP), and merged job-stream
//! generation with per-job inputs and deadline slack.
//!
//! # Examples
//!
//! ```
//! use ntc_workloads::{generate_jobs, Archetype, StreamSpec};
//! use ntc_simcore::rng::RngStream;
//! use ntc_simcore::units::SimDuration;
//!
//! // A photo app and a log pipeline sharing one simulated day.
//! let specs = [
//!     StreamSpec::diurnal(Archetype::PhotoPipeline, 0.05),
//!     StreamSpec::poisson(Archetype::LogAnalytics, 0.02),
//! ];
//! let jobs = generate_jobs(&specs, SimDuration::from_hours(24), &RngStream::root(42));
//! assert!(jobs.iter().all(|j| j.deadline() > j.arrival));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archetypes;
pub mod arrivals;
pub mod jobs;

pub use archetypes::Archetype;
pub use arrivals::ArrivalProcess;
pub use jobs::{generate_jobs, generate_jobs_into, Job, StreamSpec};
