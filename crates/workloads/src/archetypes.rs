//! Application archetypes: the non-time-critical workloads the paper's
//! motivation names, as ready-made task graphs with realistic demand,
//! payload, input-size and slack characteristics.

use core::fmt;

use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{DataSize, SimDuration};
use ntc_taskgraph::{Component, LinearModel, Pinning, TaskGraph, TaskGraphBuilder};
use serde::{Deserialize, Serialize};

/// The seven reference applications of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Archetype {
    /// Mobile photo enhancement batch (capture → enhance → thumbnail →
    /// publish). Moderate input, demand scales with pixels.
    PhotoPipeline,
    /// Video transcoding (ingest → demux → transcode → mux → store).
    /// Large inputs, very heavy input-proportional demand.
    VideoTranscode,
    /// Nightly report rendering (trigger → aggregate → render →
    /// distribute). Hours of slack.
    ReportRendering,
    /// Batch ML inference (collect → preprocess → infer → postprocess).
    /// Demand dominated by the fixed model cost, not input size.
    MlInference,
    /// Scientific parameter sweep (setup → simulate → analyse → archive).
    /// Huge fixed demand, tiny payloads.
    SciSweep,
    /// Log analytics (collect → parse → aggregate → index). Demand and
    /// payloads both input-proportional.
    LogAnalytics,
    /// Overnight document indexing (scan → extract → build-index →
    /// publish-index). Large inputs, *light* per-byte compute: the classic
    /// transfer-dominated case where partitioning keeps work local and
    /// ships only the tiny index.
    DocIndexing,
}

impl Archetype {
    /// All archetypes, in table order.
    pub fn all() -> [Archetype; 7] {
        [
            Archetype::PhotoPipeline,
            Archetype::VideoTranscode,
            Archetype::ReportRendering,
            Archetype::MlInference,
            Archetype::SciSweep,
            Archetype::LogAnalytics,
            Archetype::DocIndexing,
        ]
    }

    /// A short stable name for result tables.
    pub fn name(self) -> &'static str {
        match self {
            Archetype::PhotoPipeline => "photo-pipeline",
            Archetype::VideoTranscode => "video-transcode",
            Archetype::ReportRendering => "report-rendering",
            Archetype::MlInference => "ml-inference",
            Archetype::SciSweep => "sci-sweep",
            Archetype::LogAnalytics => "log-analytics",
            Archetype::DocIndexing => "doc-indexing",
        }
    }

    /// Builds the archetype's task graph.
    pub fn graph(self) -> TaskGraph {
        match self {
            Archetype::PhotoPipeline => photo_pipeline(),
            Archetype::VideoTranscode => video_transcode(),
            Archetype::ReportRendering => report_rendering(),
            Archetype::MlInference => ml_inference(),
            Archetype::SciSweep => sci_sweep(),
            Archetype::LogAnalytics => log_analytics(),
            Archetype::DocIndexing => doc_indexing(),
        }
    }

    /// Samples a job input size (lognormal around the archetype's typical
    /// size).
    pub fn sample_input(self, rng: &mut RngStream) -> DataSize {
        let (median_kib, sigma) = match self {
            Archetype::PhotoPipeline => (4.0 * 1024.0, 0.4),
            Archetype::VideoTranscode => (150.0 * 1024.0, 0.7),
            Archetype::ReportRendering => (20.0 * 1024.0, 0.5),
            Archetype::MlInference => (512.0, 0.3),
            Archetype::SciSweep => (64.0, 0.2),
            Archetype::LogAnalytics => (50.0 * 1024.0, 0.8),
            Archetype::DocIndexing => (30.0 * 1024.0, 0.6),
        };
        let kib = median_kib * rng.lognormal(0.0, sigma);
        DataSize::from_bytes((kib * 1024.0).round() as u64)
    }

    /// The typical deadline slack of this use case — the quantity that
    /// makes it *non-time-critical*.
    pub fn typical_slack(self) -> SimDuration {
        match self {
            Archetype::PhotoPipeline => SimDuration::from_mins(30),
            Archetype::VideoTranscode => SimDuration::from_hours(4),
            Archetype::ReportRendering => SimDuration::from_hours(8),
            Archetype::MlInference => SimDuration::from_mins(15),
            Archetype::SciSweep => SimDuration::from_hours(24),
            Archetype::LogAnalytics => SimDuration::from_hours(1),
            Archetype::DocIndexing => SimDuration::from_hours(2),
        }
    }

    /// Systematic ratio of *actual* runtime demand to the developer's
    /// static annotation. Annotations are estimates made at development
    /// time; real deployments drift (new library versions, fatter
    /// inputs, colder caches). Profiling (contribution C1) exists to
    /// recover this factor.
    pub fn demand_drift(self) -> f64 {
        match self {
            Archetype::PhotoPipeline => 0.85,
            Archetype::VideoTranscode => 1.45,
            Archetype::ReportRendering => 1.30,
            Archetype::MlInference => 1.00,
            Archetype::SciSweep => 0.90,
            Archetype::LogAnalytics => 1.70,
            Archetype::DocIndexing => 1.20,
        }
    }

    /// Lognormal sigma of actual demand around the annotated model
    /// (execution-to-execution variability).
    pub fn demand_noise_sigma(self) -> f64 {
        match self {
            Archetype::PhotoPipeline => 0.15,
            Archetype::VideoTranscode => 0.25,
            Archetype::ReportRendering => 0.20,
            Archetype::MlInference => 0.05,
            Archetype::SciSweep => 0.10,
            Archetype::LogAnalytics => 0.30,
            Archetype::DocIndexing => 0.20,
        }
    }
}

impl fmt::Display for Archetype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn photo_pipeline() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("photo-pipeline");
    let capture = b.add_component(
        Component::new("capture")
            .with_pinning(Pinning::Device)
            .with_demand(LinearModel::constant(5e7))
            .with_artifact_size(DataSize::from_mib(2)),
    );
    let enhance = b.add_component(
        Component::new("enhance")
            .with_demand(LinearModel::scaling(2e9, 800.0))
            .with_memory(DataSize::from_mib(512))
            .with_artifact_size(DataSize::from_mib(35)),
    );
    let thumbnail = b.add_component(
        Component::new("thumbnail")
            .with_demand(LinearModel::scaling(1e8, 60.0))
            .with_artifact_size(DataSize::from_mib(8)),
    );
    let publish = b.add_component(
        Component::new("publish")
            .with_demand(LinearModel::constant(2e7))
            .with_artifact_size(DataSize::from_mib(3)),
    );
    b.add_flow(capture, enhance, LinearModel::scaling(0.0, 1.0)); // full image
    b.add_flow(enhance, thumbnail, LinearModel::scaling(0.0, 1.1)); // enhanced image
    b.add_flow(enhance, publish, LinearModel::scaling(0.0, 1.1));
    b.add_flow(thumbnail, publish, LinearModel::scaling(20_000.0, 0.01));
    b.build().expect("archetype graph is valid")
}

fn video_transcode() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("video-transcode");
    let ingest = b.add_component(
        Component::new("ingest")
            .with_pinning(Pinning::Device)
            .with_demand(LinearModel::scaling(1e8, 2.0)),
    );
    let demux = b.add_component(
        Component::new("demux")
            .with_demand(LinearModel::scaling(2e8, 15.0))
            .with_artifact_size(DataSize::from_mib(12)),
    );
    let transcode = b.add_component(
        Component::new("transcode")
            .with_demand(LinearModel::scaling(5e9, 400.0))
            .with_memory(DataSize::from_mib(2048))
            .with_artifact_size(DataSize::from_mib(60)),
    );
    let mux = b.add_component(Component::new("mux").with_demand(LinearModel::scaling(1e8, 10.0)));
    let store = b.add_component(Component::new("store").with_demand(LinearModel::constant(5e7)));
    b.add_flow(ingest, demux, LinearModel::scaling(0.0, 1.0));
    b.add_flow(demux, transcode, LinearModel::scaling(0.0, 0.98));
    b.add_flow(transcode, mux, LinearModel::scaling(0.0, 0.6)); // compressed
    b.add_flow(mux, store, LinearModel::scaling(0.0, 0.62));
    b.build().expect("archetype graph is valid")
}

fn report_rendering() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("report-rendering");
    let trigger = b.add_component(
        Component::new("trigger")
            .with_pinning(Pinning::Device)
            .with_demand(LinearModel::constant(1e6)),
    );
    let aggregate = b.add_component(
        Component::new("aggregate")
            .with_demand(LinearModel::scaling(5e8, 120.0))
            .with_memory(DataSize::from_mib(1024))
            .with_artifact_size(DataSize::from_mib(25)),
    );
    let render = b.add_component(
        Component::new("render")
            .with_demand(LinearModel::scaling(3e9, 50.0))
            .with_memory(DataSize::from_mib(1536))
            .with_artifact_size(DataSize::from_mib(40)),
    );
    let distribute =
        b.add_component(Component::new("distribute").with_demand(LinearModel::constant(1e8)));
    b.add_flow(trigger, aggregate, LinearModel::constant(4_096.0));
    b.add_flow(aggregate, render, LinearModel::scaling(100_000.0, 0.3));
    b.add_flow(render, distribute, LinearModel::scaling(500_000.0, 0.05));
    b.build().expect("archetype graph is valid")
}

fn ml_inference() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("ml-inference");
    let collect = b.add_component(
        Component::new("collect")
            .with_pinning(Pinning::Device)
            .with_demand(LinearModel::constant(2e7)),
    );
    let preprocess = b.add_component(
        Component::new("preprocess")
            .with_demand(LinearModel::scaling(5e7, 100.0))
            .with_artifact_size(DataSize::from_mib(15)),
    );
    let infer = b.add_component(
        Component::new("infer")
            .with_demand(LinearModel::constant(8e9)) // fixed model cost
            .with_memory(DataSize::from_mib(3072))
            .with_artifact_size(DataSize::from_mib(250)), // model weights
    );
    let postprocess =
        b.add_component(Component::new("postprocess").with_demand(LinearModel::constant(3e7)));
    b.add_flow(collect, preprocess, LinearModel::scaling(0.0, 1.0));
    b.add_flow(preprocess, infer, LinearModel::scaling(0.0, 0.5));
    b.add_flow(infer, postprocess, LinearModel::constant(10_000.0));
    b.build().expect("archetype graph is valid")
}

fn sci_sweep() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("sci-sweep");
    let setup = b.add_component(
        Component::new("setup")
            .with_pinning(Pinning::Device)
            .with_demand(LinearModel::constant(5e7)),
    );
    let simulate = b.add_component(
        Component::new("simulate")
            .with_demand(LinearModel::constant(6e10)) // minutes of compute
            .with_batchable(false) // one independent simulation per job
            .with_memory(DataSize::from_mib(2048))
            .with_artifact_size(DataSize::from_mib(30)),
    );
    let analyse = b.add_component(
        Component::new("analyse").with_demand(LinearModel::constant(2e9)).with_batchable(false),
    );
    let archive =
        b.add_component(Component::new("archive").with_demand(LinearModel::constant(1e7)));
    b.add_flow(setup, simulate, LinearModel::constant(65_536.0));
    b.add_flow(simulate, analyse, LinearModel::constant(10_000_000.0));
    b.add_flow(analyse, archive, LinearModel::constant(1_000_000.0));
    b.build().expect("archetype graph is valid")
}

fn log_analytics() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("log-analytics");
    let collect = b.add_component(
        Component::new("collect")
            .with_pinning(Pinning::Device)
            .with_demand(LinearModel::scaling(1e7, 1.0)),
    );
    let parse = b.add_component(
        Component::new("parse")
            .with_demand(LinearModel::scaling(1e8, 250.0))
            .with_artifact_size(DataSize::from_mib(10)),
    );
    let aggregate = b.add_component(
        Component::new("aggregate")
            .with_demand(LinearModel::scaling(2e8, 80.0))
            .with_memory(DataSize::from_mib(1024)),
    );
    let index =
        b.add_component(Component::new("index").with_demand(LinearModel::scaling(1e8, 40.0)));
    b.add_flow(collect, parse, LinearModel::scaling(0.0, 0.3)); // compressed upload
    b.add_flow(parse, aggregate, LinearModel::scaling(0.0, 0.4));
    b.add_flow(aggregate, index, LinearModel::scaling(0.0, 0.05));
    b.build().expect("archetype graph is valid")
}

fn doc_indexing() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("doc-indexing");
    let scan = b.add_component(
        Component::new("scan")
            .with_pinning(Pinning::Device)
            .with_demand(LinearModel::scaling(1e6, 2.0)),
    );
    // Per-byte demand (~15 + 10 cyc/B) sits well below the WAN transfer
    // breakeven: shipping the corpus costs more than indexing it locally.
    let extract = b.add_component(
        Component::new("extract")
            .with_demand(LinearModel::scaling(5e6, 15.0))
            .with_artifact_size(DataSize::from_mib(6)),
    );
    let build = b.add_component(
        Component::new("build-index")
            .with_demand(LinearModel::scaling(5e6, 10.0))
            .with_memory(DataSize::from_mib(256)),
    );
    let publish =
        b.add_component(Component::new("publish-index").with_demand(LinearModel::constant(5e6)));
    b.add_flow(scan, extract, LinearModel::scaling(0.0, 1.0)); // the corpus
    b.add_flow(extract, build, LinearModel::scaling(0.0, 0.9));
    b.add_flow(build, publish, LinearModel::scaling(10_000.0, 0.01)); // the index
    b.build().expect("archetype graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_archetypes_build_valid_graphs() {
        for a in Archetype::all() {
            let g = a.graph();
            assert!(g.len() >= 4, "{a} too small");
            assert_eq!(g.name(), a.name());
            assert!(!g.entries().is_empty());
            assert!(!g.exits().is_empty());
            // Exactly one device-pinned entry component.
            let pinned: Vec<_> =
                g.components().filter(|(_, c)| !c.is_offloadable()).map(|(id, _)| id).collect();
            assert_eq!(pinned.len(), 1, "{a} should pin exactly the entry");
            assert!(g.entries().contains(&pinned[0]));
        }
    }

    #[test]
    fn input_distributions_are_positive_and_ordered() {
        let mut rng = RngStream::root(1).derive("inputs");
        let mean = |a: Archetype, rng: &mut RngStream| {
            (0..200).map(|_| a.sample_input(rng).as_bytes()).sum::<u64>() / 200
        };
        let photo = mean(Archetype::PhotoPipeline, &mut rng);
        let video = mean(Archetype::VideoTranscode, &mut rng);
        let ml = mean(Archetype::MlInference, &mut rng);
        assert!(video > photo, "video inputs dwarf photos");
        assert!(photo > ml, "photos dwarf inference payloads");
        assert!(ml > 0);
    }

    #[test]
    fn slacks_mark_non_time_critical_workloads() {
        for a in Archetype::all() {
            assert!(a.typical_slack() >= SimDuration::from_mins(15), "{a} has real slack");
        }
        assert!(Archetype::SciSweep.typical_slack() > Archetype::MlInference.typical_slack());
    }

    #[test]
    fn demand_variability_is_bounded() {
        for a in Archetype::all() {
            let s = a.demand_noise_sigma();
            assert!((0.0..=0.5).contains(&s));
        }
    }

    #[test]
    fn ml_inference_demand_is_input_insensitive() {
        let g = Archetype::MlInference.graph();
        let small = g.total_work(DataSize::from_kib(10));
        let large = g.total_work(DataSize::from_mib(10));
        let ratio = large.get() as f64 / small.get() as f64;
        assert!(ratio < 1.3, "inference demand should barely scale: {ratio}");
    }

    #[test]
    fn video_demand_is_strongly_input_scaled() {
        let g = Archetype::VideoTranscode.graph();
        let small = g.total_work(DataSize::from_mib(10));
        let large = g.total_work(DataSize::from_mib(100));
        assert!(large.get() > small.get() * 5);
    }
}
