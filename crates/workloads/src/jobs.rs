//! Job streams: archetypes × arrival processes × input/slack sampling.

use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{DataSize, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::archetypes::Archetype;
use crate::arrivals::ArrivalProcess;

/// One job: an invocation of an application with a concrete input and a
/// completion deadline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Stream-unique id, dense from 0 in arrival order.
    pub id: u64,
    /// The application being invoked.
    pub archetype: Archetype,
    /// Submission instant.
    pub arrival: SimTime,
    /// Input payload size.
    pub input: DataSize,
    /// Deadline slack: the job must finish by `arrival + slack`.
    pub slack: SimDuration,
}

impl Job {
    /// The hard completion deadline.
    pub fn deadline(&self) -> SimTime {
        self.arrival + self.slack
    }
}

/// Specification of one archetype's traffic within a stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// The application.
    pub archetype: Archetype,
    /// Its arrival process.
    pub arrivals: ArrivalProcess,
    /// Multiplier on the archetype's typical slack (1.0 = typical;
    /// 0.0 = time-critical).
    pub slack_factor: f64,
}

impl StreamSpec {
    /// A spec with Poisson arrivals at `rate_per_sec` and typical slack.
    pub fn poisson(archetype: Archetype, rate_per_sec: f64) -> Self {
        StreamSpec {
            archetype,
            arrivals: ArrivalProcess::Poisson { rate_per_sec },
            slack_factor: 1.0,
        }
    }

    /// A spec with office-hours diurnal arrivals peaking at
    /// `peak_rate_per_sec` and typical slack.
    pub fn diurnal(archetype: Archetype, peak_rate_per_sec: f64) -> Self {
        StreamSpec {
            archetype,
            arrivals: ArrivalProcess::office_diurnal(peak_rate_per_sec),
            slack_factor: 1.0,
        }
    }

    /// A spec with two-state bursty (MMPP) arrivals and typical slack.
    pub fn bursty(
        archetype: Archetype,
        calm_rate_per_sec: f64,
        burst_rate_per_sec: f64,
        mean_calm: ntc_simcore::units::SimDuration,
        mean_burst: ntc_simcore::units::SimDuration,
    ) -> Self {
        StreamSpec {
            archetype,
            arrivals: ArrivalProcess::Bursty {
                calm_rate_per_sec,
                burst_rate_per_sec,
                mean_calm,
                mean_burst,
            },
            slack_factor: 1.0,
        }
    }

    /// Overrides the slack factor.
    pub fn with_slack_factor(mut self, factor: f64) -> Self {
        self.slack_factor = factor;
        self
    }
}

/// Generates the merged, time-ordered job stream of several specs over a
/// horizon.
///
/// Jitter: each job's slack is its archetype's typical slack scaled by the
/// spec's factor and ±20 % lognormal noise, so deadlines are not lockstep.
///
/// # Examples
///
/// ```
/// use ntc_workloads::{generate_jobs, Archetype, StreamSpec};
/// use ntc_simcore::rng::RngStream;
/// use ntc_simcore::units::SimDuration;
///
/// let specs = [StreamSpec::poisson(Archetype::PhotoPipeline, 0.05)];
/// let jobs = generate_jobs(&specs, SimDuration::from_hours(1), &RngStream::root(1));
/// assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// ```
pub fn generate_jobs(specs: &[StreamSpec], horizon: SimDuration, rng: &RngStream) -> Vec<Job> {
    let mut jobs = Vec::new();
    generate_jobs_into(specs, horizon, rng, &mut jobs);
    jobs
}

/// [`generate_jobs`], but filling a caller-owned buffer: `jobs` is
/// cleared and refilled, so a reused buffer generates the stream without
/// reallocating once it has grown to steady-state capacity. The contents
/// are identical to what [`generate_jobs`] returns.
pub fn generate_jobs_into(
    specs: &[StreamSpec],
    horizon: SimDuration,
    rng: &RngStream,
    jobs: &mut Vec<Job>,
) {
    jobs.clear();
    for (si, spec) in specs.iter().enumerate() {
        let label = format!("stream-{si}-{}", spec.archetype.name());
        let mut arr_rng = rng.derive(&label).derive("arrivals");
        let mut body_rng = rng.derive(&label).derive("bodies");
        for arrival in spec.arrivals.generate(horizon, &mut arr_rng) {
            let input = spec.archetype.sample_input(&mut body_rng);
            let slack = spec
                .archetype
                .typical_slack()
                .mul_f64(spec.slack_factor * body_rng.lognormal(0.0, 0.2));
            jobs.push(Job { id: 0, archetype: spec.archetype, arrival, input, slack });
        }
    }
    jobs.sort_by_key(|j| (j.arrival, j.archetype.name()));
    for (i, job) in jobs.iter_mut().enumerate() {
        job.id = i as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_stream_is_sorted_with_dense_ids() {
        let specs = [
            StreamSpec::poisson(Archetype::PhotoPipeline, 0.02),
            StreamSpec::poisson(Archetype::LogAnalytics, 0.05),
        ];
        let jobs = generate_jobs(&specs, SimDuration::from_hours(2), &RngStream::root(5));
        assert!(!jobs.is_empty());
        for (i, w) in jobs.windows(2).enumerate() {
            assert!(w[0].arrival <= w[1].arrival, "unsorted at {i}");
        }
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i as u64);
        }
        let kinds: std::collections::HashSet<_> = jobs.iter().map(|j| j.archetype).collect();
        assert_eq!(kinds.len(), 2, "both archetypes present");
    }

    #[test]
    fn slack_factor_scales_deadlines() {
        let tight = [StreamSpec::poisson(Archetype::ReportRendering, 0.05).with_slack_factor(0.1)];
        let loose = [StreamSpec::poisson(Archetype::ReportRendering, 0.05).with_slack_factor(1.0)];
        let rng = RngStream::root(9);
        let jt = generate_jobs(&tight, SimDuration::from_hours(4), &rng);
        let jl = generate_jobs(&loose, SimDuration::from_hours(4), &rng);
        let mean =
            |js: &[Job]| js.iter().map(|j| j.slack.as_secs_f64()).sum::<f64>() / js.len() as f64;
        assert!(mean(&jl) > mean(&jt) * 5.0);
    }

    #[test]
    fn deadline_is_arrival_plus_slack() {
        let j = Job {
            id: 0,
            archetype: Archetype::SciSweep,
            arrival: SimTime::from_secs(100),
            input: DataSize::from_kib(1),
            slack: SimDuration::from_secs(50),
        };
        assert_eq!(j.deadline(), SimTime::from_secs(150));
    }

    #[test]
    fn bursty_spec_generates_bursty_jobs() {
        let specs = [StreamSpec::bursty(
            Archetype::LogAnalytics,
            0.01,
            2.0,
            SimDuration::from_mins(30),
            SimDuration::from_mins(2),
        )];
        let jobs = generate_jobs(&specs, SimDuration::from_hours(12), &RngStream::root(6));
        assert!(!jobs.is_empty());
        // Squared CV of inter-arrivals well above Poisson's 1.
        let gaps: Vec<f64> =
            jobs.windows(2).map(|w| (w[1].arrival - w[0].arrival).as_secs_f64()).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        assert!(var / (mean * mean) > 2.0, "cv2={}", var / (mean * mean));
    }

    #[test]
    fn into_buffer_reuse_matches_fresh_generation() {
        let specs = [StreamSpec::poisson(Archetype::PhotoPipeline, 0.05)];
        let rng = RngStream::root(11);
        let fresh = generate_jobs(&specs, SimDuration::from_hours(2), &rng);
        // A dirty, pre-grown buffer must end up byte-identical to fresh.
        let mut buf = generate_jobs(&specs, SimDuration::from_hours(4), &rng);
        generate_jobs_into(&specs, SimDuration::from_hours(2), &rng, &mut buf);
        assert_eq!(buf, fresh);
    }

    #[test]
    fn generation_is_deterministic() {
        let specs = [StreamSpec::diurnal(Archetype::MlInference, 0.1)];
        let a = generate_jobs(&specs, SimDuration::from_hours(6), &RngStream::root(3));
        let b = generate_jobs(&specs, SimDuration::from_hours(6), &RngStream::root(3));
        assert_eq!(a, b);
    }
}
