//! Property-based tests of workload generation.

use proptest::prelude::*;

use ntc_simcore::rng::RngStream;
use ntc_simcore::units::SimDuration;
use ntc_workloads::{generate_jobs, Archetype, ArrivalProcess, StreamSpec};

fn any_archetype() -> impl Strategy<Value = Archetype> {
    prop::sample::select(Archetype::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Job streams are sorted, densely identified, and bounded by the
    /// horizon; slack and input are always positive.
    #[test]
    fn job_streams_are_well_formed(
        seed in 0u64..5_000,
        a in any_archetype(),
        b in any_archetype(),
        rate_a in 0.001f64..0.2,
        rate_b in 0.001f64..0.2,
        horizon_mins in 10u64..600,
    ) {
        let horizon = SimDuration::from_mins(horizon_mins);
        let specs = [StreamSpec::poisson(a, rate_a), StreamSpec::poisson(b, rate_b)];
        let jobs = generate_jobs(&specs, horizon, &RngStream::root(seed));
        for (i, j) in jobs.iter().enumerate() {
            prop_assert_eq!(j.id, i as u64, "ids must be dense");
            prop_assert!(j.arrival.as_micros() < horizon.as_micros(), "arrival past horizon");
            prop_assert!(j.input.as_bytes() > 0);
            prop_assert!(j.deadline() >= j.arrival);
        }
        for w in jobs.windows(2) {
            prop_assert!(w[0].arrival <= w[1].arrival, "stream must be time-sorted");
        }
    }

    /// Poisson counts concentrate around rate × horizon (4-sigma bound).
    #[test]
    fn poisson_counts_concentrate(seed in 0u64..2_000, rate_milli in 10u64..500) {
        let rate = rate_milli as f64 / 1000.0;
        let horizon = SimDuration::from_hours(10);
        let p = ArrivalProcess::Poisson { rate_per_sec: rate };
        let n = p.generate(horizon, &mut RngStream::root(seed).derive("a")).len() as f64;
        let mean = rate * horizon.as_secs_f64();
        let sigma = mean.sqrt();
        prop_assert!((n - mean).abs() < 4.0 * sigma + 5.0, "n={n} mean={mean}");
    }

    /// The diurnal mean rate formula matches empirical counts.
    #[test]
    fn diurnal_mean_rate_formula_holds(seed in 0u64..500, peak_milli in 50u64..500) {
        let peak = peak_milli as f64 / 1000.0;
        let p = ArrivalProcess::office_diurnal(peak);
        let horizon = SimDuration::from_hours(96);
        let n = p.generate(horizon, &mut RngStream::root(seed).derive("d")).len() as f64;
        let mean = p.mean_rate() * horizon.as_secs_f64();
        let sigma = mean.sqrt();
        prop_assert!((n - mean).abs() < 5.0 * sigma + 5.0, "n={n} mean={mean}");
    }

    /// Sampled inputs respect each archetype's scale ordering in the
    /// median (video ≫ photo ≫ inference payloads).
    #[test]
    fn input_scales_are_ordered(seed in 0u64..2_000) {
        let mut rng = RngStream::root(seed).derive("inputs");
        let median = |a: Archetype, rng: &mut RngStream| {
            let mut v: Vec<u64> = (0..64).map(|_| a.sample_input(rng).as_bytes()).collect();
            v.sort_unstable();
            v[32]
        };
        let video = median(Archetype::VideoTranscode, &mut rng);
        let photo = median(Archetype::PhotoPipeline, &mut rng);
        let ml = median(Archetype::MlInference, &mut rng);
        prop_assert!(video > photo);
        prop_assert!(photo > ml);
    }
}

#[test]
fn archetype_table_is_complete() {
    // Every archetype has a graph, a name used by its graph, positive
    // slack, bounded noise and a positive drift.
    for a in Archetype::all() {
        let g = a.graph();
        assert_eq!(g.name(), a.name());
        assert!(a.typical_slack() > SimDuration::ZERO);
        assert!(a.demand_noise_sigma() > 0.0 && a.demand_noise_sigma() <= 0.5);
        assert!(a.demand_drift() > 0.0 && a.demand_drift() < 3.0);
    }
}
