//! Multi-hop network paths and the UE/edge/cloud topology.

use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{Bandwidth, DataSize, SimDuration};
use serde::{Deserialize, Serialize};

use crate::link::LinkModel;

/// A network path composed of one or more links in sequence.
///
/// Latency adds across hops; the serialisation rate is the bottleneck
/// link's. Loss/jitter are applied per hop by delegating to each link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathModel {
    links: Vec<LinkModel>,
}

impl PathModel {
    /// Creates a path from hops in order.
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty.
    pub fn new(links: Vec<LinkModel>) -> Self {
        assert!(!links.is_empty(), "a path needs at least one link");
        PathModel { links }
    }

    /// Creates a single-hop path.
    pub fn single(link: LinkModel) -> Self {
        PathModel { links: vec![link] }
    }

    /// The hops of this path.
    pub fn links(&self) -> &[LinkModel] {
        &self.links
    }

    /// The bottleneck (minimum) nominal bandwidth along the path.
    pub fn bottleneck_bandwidth(&self) -> Bandwidth {
        self.links.iter().map(LinkModel::bandwidth).min().expect("path is non-empty")
    }

    /// The sum of base one-way latencies along the path.
    pub fn base_latency(&self) -> SimDuration {
        self.links.iter().map(LinkModel::base_latency).sum()
    }

    /// Samples the one-way latency across all hops.
    pub fn sample_latency(&self, rng: &mut RngStream) -> SimDuration {
        self.links.iter().map(|l| l.sample_latency(rng)).sum()
    }

    /// Samples a round trip across all hops.
    pub fn sample_rtt(&self, rng: &mut RngStream) -> SimDuration {
        self.sample_latency(rng) + self.sample_latency(rng)
    }

    /// Samples the time to move `size` along the path: per-hop latency plus
    /// serialisation at the slowest hop (store-and-forward pipelining is
    /// approximated by charging serialisation once).
    pub fn transfer_time(&self, size: DataSize, rng: &mut RngStream) -> SimDuration {
        self.transfer_time_at_share(size, 1.0, rng)
    }

    /// Like [`PathModel::transfer_time`] but with only `share` (0, 1] of
    /// the bottleneck bandwidth available — the hook for time-varying
    /// congestion ([`crate::BandwidthTrace`]).
    ///
    /// # Panics
    ///
    /// Panics if `share` is not in `(0, 1]`.
    pub fn transfer_time_at_share(
        &self,
        size: DataSize,
        share: f64,
        rng: &mut RngStream,
    ) -> SimDuration {
        assert!(share > 0.0 && share <= 1.0, "bandwidth share must be in (0, 1]");
        let latency = self.sample_latency(rng);
        if size.is_zero() {
            return latency;
        }
        // Charge serialisation once, on the bottleneck hop (store-and-forward
        // pipelining approximation), including that hop's loss inflation.
        let bottleneck =
            self.links.iter().min_by_key(|l| l.bandwidth()).expect("path is non-empty");
        latency + bottleneck.serialisation_time(size).mul_f64(1.0 / share)
    }
}

/// The three-point topology every offloading decision sees: the user
/// equipment, a nearby edge site, and a cloud region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Path from the UE to the cloud region (WAN).
    pub ue_cloud: PathModel,
    /// Path from the UE to the nearest edge site (LAN / radio access).
    pub ue_edge: PathModel,
    /// Backhaul path from the edge site to the cloud region.
    pub edge_cloud: PathModel,
}

impl Topology {
    /// A metropolitan reference topology:
    ///
    /// * UE → edge: 5 ms, 200 Mbit/s (radio access + one hop);
    /// * UE → cloud: 40 ms, 50 Mbit/s (access + WAN);
    /// * edge → cloud: 30 ms, 1 Gbit/s backhaul.
    ///
    /// Latency jitter ~10 %, light loss on the radio segment.
    pub fn metro_reference() -> Self {
        Topology {
            ue_cloud: PathModel::new(vec![
                LinkModel::new(SimDuration::from_millis(8), Bandwidth::from_megabits_per_sec(100))
                    .with_jitter(0.15)
                    .with_loss(0.005),
                LinkModel::new(SimDuration::from_millis(32), Bandwidth::from_megabits_per_sec(50))
                    .with_jitter(0.10),
            ]),
            ue_edge: PathModel::single(
                LinkModel::new(SimDuration::from_millis(5), Bandwidth::from_megabits_per_sec(200))
                    .with_jitter(0.10)
                    .with_loss(0.005),
            ),
            edge_cloud: PathModel::single(
                LinkModel::new(
                    SimDuration::from_millis(30),
                    Bandwidth::from_megabits_per_sec(1000),
                )
                .with_jitter(0.05),
            ),
        }
    }

    /// A rural / constrained-access topology: higher latency, lower
    /// bandwidth, more jitter on every segment.
    pub fn rural_reference() -> Self {
        Topology {
            ue_cloud: PathModel::new(vec![
                LinkModel::new(SimDuration::from_millis(25), Bandwidth::from_megabits_per_sec(20))
                    .with_jitter(0.3)
                    .with_loss(0.02),
                LinkModel::new(SimDuration::from_millis(45), Bandwidth::from_megabits_per_sec(20))
                    .with_jitter(0.15),
            ]),
            ue_edge: PathModel::single(
                LinkModel::new(SimDuration::from_millis(12), Bandwidth::from_megabits_per_sec(50))
                    .with_jitter(0.25)
                    .with_loss(0.02),
            ),
            edge_cloud: PathModel::single(
                LinkModel::new(SimDuration::from_millis(40), Bandwidth::from_megabits_per_sec(500))
                    .with_jitter(0.1),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::root(7).derive("path-tests")
    }

    #[test]
    fn bottleneck_and_latency_compose() {
        let p = PathModel::new(vec![
            LinkModel::new(SimDuration::from_millis(10), Bandwidth::from_megabits_per_sec(100)),
            LinkModel::new(SimDuration::from_millis(20), Bandwidth::from_megabits_per_sec(10)),
        ]);
        assert_eq!(p.base_latency(), SimDuration::from_millis(30));
        assert_eq!(p.bottleneck_bandwidth(), Bandwidth::from_megabits_per_sec(10));
    }

    #[test]
    fn transfer_time_is_latency_plus_bottleneck_serialisation() {
        let p = PathModel::new(vec![
            LinkModel::new(SimDuration::from_millis(10), Bandwidth::from_megabits_per_sec(80)),
            LinkModel::new(SimDuration::from_millis(20), Bandwidth::from_megabits_per_sec(8)),
        ]);
        // 1 MB over 1 MB/s bottleneck = 1s; latency 30ms.
        let t = p.transfer_time(DataSize::from_bytes(1_000_000), &mut rng());
        assert_eq!(t, SimDuration::from_millis(1030));
    }

    #[test]
    fn single_hop_path_matches_link() {
        let link = LinkModel::new(SimDuration::from_millis(5), Bandwidth::from_megabits_per_sec(8));
        let p = PathModel::single(link.clone());
        let mut r1 = rng();
        let mut r2 = rng();
        assert_eq!(
            p.transfer_time(DataSize::from_kib(100), &mut r1),
            link.transfer_time(DataSize::from_kib(100), &mut r2)
        );
    }

    #[test]
    fn reference_topologies_are_ordered_sensibly() {
        let metro = Topology::metro_reference();
        assert!(metro.ue_edge.base_latency() < metro.ue_cloud.base_latency());
        assert!(metro.ue_edge.bottleneck_bandwidth() > metro.ue_cloud.bottleneck_bandwidth());
        let rural = Topology::rural_reference();
        assert!(rural.ue_cloud.base_latency() > metro.ue_cloud.base_latency());
    }

    #[test]
    fn congested_share_slows_serialisation_only() {
        let p = PathModel::single(LinkModel::new(
            SimDuration::from_millis(10),
            Bandwidth::from_megabits_per_sec(8),
        ));
        let size = DataSize::from_bytes(1_000_000); // 1 s at full rate
        let full = p.transfer_time_at_share(size, 1.0, &mut rng());
        let half = p.transfer_time_at_share(size, 0.5, &mut rng());
        assert_eq!(full, SimDuration::from_millis(1010));
        assert_eq!(
            half,
            SimDuration::from_millis(2010),
            "latency unchanged, serialisation doubled"
        );
    }

    #[test]
    #[should_panic(expected = "share")]
    fn zero_share_panics() {
        let p = PathModel::single(LinkModel::new(
            SimDuration::ZERO,
            Bandwidth::from_megabits_per_sec(1),
        ));
        let _ = p.transfer_time_at_share(DataSize::from_kib(1), 0.0, &mut rng());
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_path_panics() {
        let _ = PathModel::new(vec![]);
    }
}
