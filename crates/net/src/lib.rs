//! # ntc-net
//!
//! Network substrate for the `ntc-offload` framework: stochastic link
//! models, multi-hop paths, reference UE/edge/cloud topologies, and
//! time-varying congestion traces.
//!
//! The cloud-vs-edge trade-off at the heart of *Computational Offloading
//! for Non-Time-Critical Applications* (ICDCS 2022) is entirely mediated by
//! this crate: the edge is close (low RTT) and the cloud is far but
//! well-provisioned; for delay-tolerant jobs the RTT difference stops
//! mattering.
//!
//! # Examples
//!
//! ```
//! use ntc_net::{Topology, BandwidthTrace};
//! use ntc_simcore::rng::RngStream;
//! use ntc_simcore::units::{DataSize, SimTime};
//!
//! let topo = Topology::metro_reference();
//! let mut rng = RngStream::root(1).derive("net");
//! let to_edge = topo.ue_edge.transfer_time(DataSize::from_mib(4), &mut rng);
//! let to_cloud = topo.ue_cloud.transfer_time(DataSize::from_mib(4), &mut rng);
//! assert!(to_edge < to_cloud);
//!
//! let trace = BandwidthTrace::diurnal_congestion();
//! assert!(trace.share_at(SimTime::from_secs(2 * 3600)) >= trace.share_at(SimTime::from_secs(20 * 3600)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod link;
pub mod path;
pub mod trace;

pub use connectivity::ConnectivityTrace;
pub use link::LinkModel;
pub use path::{PathModel, Topology};
pub use trace::BandwidthTrace;
