//! Time-varying bandwidth conditions (diurnal congestion, throttling).

use ntc_simcore::units::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A piecewise-constant multiplier on nominal bandwidth over time.
///
/// The schedule repeats with the configured period, so a 24-hour diurnal
/// profile applies to arbitrarily long simulations.
///
/// # Examples
///
/// ```
/// use ntc_net::trace::BandwidthTrace;
/// use ntc_simcore::units::{SimDuration, SimTime};
///
/// let t = BandwidthTrace::diurnal_congestion();
/// // 3 AM is off-peak: full bandwidth.
/// assert!(t.share_at(SimTime::from_secs(3 * 3600)) > 0.9);
/// // 8 PM is peak: congested.
/// assert!(t.share_at(SimTime::from_secs(20 * 3600)) < 0.7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthTrace {
    period: SimDuration,
    // (offset from period start, share); sorted by offset, first at ZERO.
    segments: Vec<(SimDuration, f64)>,
}

impl BandwidthTrace {
    /// A trace that always grants the full nominal bandwidth.
    pub fn constant() -> Self {
        BandwidthTrace {
            period: SimDuration::from_hours(24),
            segments: vec![(SimDuration::ZERO, 1.0)],
        }
    }

    /// Builds a trace from `(offset, share)` segments repeating every
    /// `period`.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, unsorted, does not start at offset
    /// zero, reaches past `period`, or contains a share outside `(0, 1]`.
    pub fn new(period: SimDuration, segments: Vec<(SimDuration, f64)>) -> Self {
        assert!(!segments.is_empty(), "trace needs at least one segment");
        assert_eq!(segments[0].0, SimDuration::ZERO, "first segment must start at zero");
        assert!(segments.windows(2).all(|w| w[0].0 < w[1].0), "segments must be sorted");
        assert!(segments.last().expect("non-empty").0 < period, "segments must fit in the period");
        assert!(segments.iter().all(|&(_, s)| s > 0.0 && s <= 1.0), "shares must be in (0, 1]");
        BandwidthTrace { period, segments }
    }

    /// A reference diurnal profile: full bandwidth overnight, mild
    /// congestion during working hours, heavy congestion in the evening
    /// peak (18:00–23:00).
    pub fn diurnal_congestion() -> Self {
        BandwidthTrace::new(
            SimDuration::from_hours(24),
            vec![
                (SimDuration::ZERO, 1.0),           // 00:00 night
                (SimDuration::from_hours(8), 0.8),  // 08:00 work hours
                (SimDuration::from_hours(18), 0.5), // 18:00 evening peak
                (SimDuration::from_hours(23), 0.9), // 23:00 wind-down
            ],
        )
    }

    /// The repeat period of the schedule.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The smallest share anywhere in the schedule (worst-case planning).
    pub fn min_share(&self) -> f64 {
        self.segments.iter().map(|&(_, s)| s).fold(1.0, f64::min)
    }

    /// The bandwidth share in effect at instant `at`.
    pub fn share_at(&self, at: SimTime) -> f64 {
        let offset = SimDuration::from_micros(at.as_micros() % self.period.as_micros());
        let idx = match self.segments.binary_search_by(|&(o, _)| o.cmp(&offset)) {
            Ok(i) => i,
            Err(0) => unreachable!("first segment starts at zero"),
            Err(i) => i - 1,
        };
        self.segments[idx].1
    }
}

impl Default for BandwidthTrace {
    fn default() -> Self {
        Self::constant()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_share_finds_the_trough() {
        assert_eq!(BandwidthTrace::constant().min_share(), 1.0);
        assert_eq!(BandwidthTrace::diurnal_congestion().min_share(), 0.5);
    }

    #[test]
    fn constant_trace_is_always_one() {
        let t = BandwidthTrace::constant();
        for h in 0..48 {
            assert_eq!(t.share_at(SimTime::from_secs(h * 3600)), 1.0);
        }
    }

    #[test]
    fn segments_select_correctly_and_repeat() {
        let t = BandwidthTrace::diurnal_congestion();
        assert_eq!(t.share_at(SimTime::from_secs(0)), 1.0);
        assert_eq!(t.share_at(SimTime::from_secs(9 * 3600)), 0.8);
        assert_eq!(t.share_at(SimTime::from_secs(20 * 3600)), 0.5);
        assert_eq!(t.share_at(SimTime::from_secs(23 * 3600 + 1)), 0.9);
        // Next day, same profile.
        assert_eq!(t.share_at(SimTime::from_secs((24 + 9) * 3600)), 0.8);
    }

    #[test]
    fn boundary_instant_uses_new_segment() {
        let t = BandwidthTrace::diurnal_congestion();
        assert_eq!(t.share_at(SimTime::from_secs(8 * 3600)), 0.8);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_segments_panic() {
        BandwidthTrace::new(
            SimDuration::from_hours(1),
            vec![
                (SimDuration::ZERO, 1.0),
                (SimDuration::from_mins(30), 0.5),
                (SimDuration::from_mins(10), 0.7),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "start at zero")]
    fn missing_zero_segment_panics() {
        BandwidthTrace::new(SimDuration::from_hours(1), vec![(SimDuration::from_mins(5), 1.0)]);
    }
}
