//! UE connectivity schedules: when the device can reach the network at
//! all.
//!
//! Mobile users lose connectivity — elevators, subways, flights, dead
//! zones. A time-critical offloaded job fails or stalls; a
//! non-time-critical job simply waits. This module provides deterministic
//! on/off schedules the engine consults before starting any UE-side
//! transfer.

use ntc_simcore::units::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A periodic on/off connectivity schedule.
///
/// Like [`crate::BandwidthTrace`], the schedule repeats with its period,
/// so a 24-hour commuter profile covers arbitrarily long runs.
///
/// # Examples
///
/// ```
/// use ntc_net::connectivity::ConnectivityTrace;
/// use ntc_simcore::units::SimTime;
///
/// let t = ConnectivityTrace::commuter();
/// assert!(t.is_online(SimTime::from_secs(12 * 3600)));  // midday: online
/// assert!(!t.is_online(SimTime::from_secs(8 * 3600 + 60))); // morning subway
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectivityTrace {
    period: SimDuration,
    // (offset from period start, online); sorted, first at ZERO.
    segments: Vec<(SimDuration, bool)>,
}

impl ConnectivityTrace {
    /// A schedule that is always online.
    pub fn always() -> Self {
        ConnectivityTrace {
            period: SimDuration::from_hours(24),
            segments: vec![(SimDuration::ZERO, true)],
        }
    }

    /// Builds a schedule from `(offset, online)` segments repeating every
    /// `period`.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, unsorted, does not start at offset
    /// zero, or reaches past `period`.
    pub fn new(period: SimDuration, segments: Vec<(SimDuration, bool)>) -> Self {
        assert!(!segments.is_empty(), "trace needs at least one segment");
        assert_eq!(segments[0].0, SimDuration::ZERO, "first segment must start at zero");
        assert!(segments.windows(2).all(|w| w[0].0 < w[1].0), "segments must be sorted");
        assert!(segments.last().expect("non-empty").0 < period, "segments must fit in the period");
        ConnectivityTrace { period, segments }
    }

    /// A commuter's day: offline 08:00–08:45 and 17:30–18:15 (subway),
    /// online otherwise.
    pub fn commuter() -> Self {
        let m = |mins: u64| SimDuration::from_mins(mins);
        ConnectivityTrace::new(
            SimDuration::from_hours(24),
            vec![
                (SimDuration::ZERO, true),
                (m(8 * 60), false),
                (m(8 * 60 + 45), true),
                (m(17 * 60 + 30), false),
                (m(18 * 60 + 15), true),
            ],
        )
    }

    /// A flaky rural link: 20 minutes offline out of every 2 hours.
    pub fn flaky() -> Self {
        ConnectivityTrace::new(
            SimDuration::from_hours(2),
            vec![(SimDuration::ZERO, true), (SimDuration::from_mins(100), false)],
        )
    }

    /// The repeat period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    fn segment_index(&self, at: SimTime) -> usize {
        let offset = SimDuration::from_micros(at.as_micros() % self.period.as_micros());
        match self.segments.binary_search_by(|&(o, _)| o.cmp(&offset)) {
            Ok(i) => i,
            Err(0) => unreachable!("first segment starts at zero"),
            Err(i) => i - 1,
        }
    }

    /// Whether the device can reach the network at `at`.
    pub fn is_online(&self, at: SimTime) -> bool {
        self.segments[self.segment_index(at)].1
    }

    /// The earliest instant `>= at` at which the device is online
    /// (`at` itself when already online).
    ///
    /// # Panics
    ///
    /// Panics if the schedule has no online segment at all.
    pub fn next_online(&self, at: SimTime) -> SimTime {
        assert!(self.segments.iter().any(|&(_, on)| on), "schedule is never online");
        if self.is_online(at) {
            return at;
        }
        let period_us = self.period.as_micros();
        let cycle_start = at.as_micros() - at.as_micros() % period_us;
        // Scan forward within this cycle, then wrap to the next.
        let idx = self.segment_index(at);
        for &(offset, on) in &self.segments[idx + 1..] {
            if on {
                return SimTime::from_micros(cycle_start + offset.as_micros());
            }
        }
        let next_cycle = cycle_start + period_us;
        let first_on = self.segments.iter().find(|&&(_, on)| on).expect("checked above").0;
        SimTime::from_micros(next_cycle + first_on.as_micros())
    }

    /// The worst-case wait a transfer initiated anywhere in
    /// `[from, until]` could incur before the device is online: the
    /// longest remaining-outage time over all initiation instants in the
    /// interval. Zero when the whole interval is online.
    pub fn worst_wait_within(&self, from: SimTime, until: SimTime) -> SimDuration {
        if until < from {
            return SimDuration::ZERO;
        }
        let mut worst = self.next_online(from).saturating_duration_since(from);
        // A transfer started the instant an outage begins waits the whole
        // window: check every offline segment start inside the interval.
        let period_us = self.period.as_micros();
        let mut cycle_start = from.as_micros() - from.as_micros() % period_us;
        while cycle_start <= until.as_micros() {
            for &(offset, on) in &self.segments {
                if !on {
                    let s = cycle_start + offset.as_micros();
                    if s >= from.as_micros() && s <= until.as_micros() {
                        let start = SimTime::from_micros(s);
                        let wait = self.next_online(start).saturating_duration_since(start);
                        if wait > worst {
                            worst = wait;
                        }
                    }
                }
            }
            cycle_start += period_us;
        }
        worst
    }

    /// The longest single offline window in one period.
    pub fn longest_offline(&self) -> SimDuration {
        let mut longest = SimDuration::ZERO;
        for (i, &(start, on)) in self.segments.iter().enumerate() {
            if !on {
                let end = self.segments.get(i + 1).map(|&(o, _)| o).unwrap_or(self.period);
                let span = end - start;
                if span > longest {
                    longest = span;
                }
            }
        }
        longest
    }

    /// Total offline time per period, as a fraction in `[0, 1]`
    /// (exactly `1.0` for a schedule that is never online).
    pub fn offline_fraction(&self) -> f64 {
        let mut offline = SimDuration::ZERO;
        for (i, &(start, on)) in self.segments.iter().enumerate() {
            if !on {
                let end = self.segments.get(i + 1).map(|&(o, _)| o).unwrap_or(self.period);
                offline += end - start;
            }
        }
        offline.as_secs_f64() / self.period.as_secs_f64()
    }
}

impl Default for ConnectivityTrace {
    fn default() -> Self {
        Self::always()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_is_always_online() {
        let t = ConnectivityTrace::always();
        for h in 0..30 {
            let at = SimTime::from_secs(h * 3600);
            assert!(t.is_online(at));
            assert_eq!(t.next_online(at), at);
        }
        assert_eq!(t.offline_fraction(), 0.0);
    }

    #[test]
    fn commuter_windows_are_respected() {
        let t = ConnectivityTrace::commuter();
        assert!(t.is_online(SimTime::from_secs(7 * 3600)));
        assert!(!t.is_online(SimTime::from_secs(8 * 3600)));
        assert!(!t.is_online(SimTime::from_secs(8 * 3600 + 44 * 60)));
        assert!(t.is_online(SimTime::from_secs(8 * 3600 + 45 * 60)));
        assert!(!t.is_online(SimTime::from_secs(17 * 3600 + 45 * 60)));
        assert!(t.is_online(SimTime::from_secs(19 * 3600)));
    }

    #[test]
    fn next_online_lands_on_the_reconnect_edge() {
        let t = ConnectivityTrace::commuter();
        let mid_outage = SimTime::from_secs(8 * 3600 + 600);
        assert_eq!(t.next_online(mid_outage), SimTime::from_secs(8 * 3600 + 45 * 60));
        // Second day wraps correctly.
        let day2 = SimTime::from_secs(24 * 3600 + 8 * 3600 + 600);
        assert_eq!(t.next_online(day2), SimTime::from_secs(24 * 3600 + 8 * 3600 + 45 * 60));
    }

    #[test]
    fn trailing_offline_segment_wraps_to_next_cycle() {
        let t = ConnectivityTrace::flaky();
        // Offline from minute 100 to the end of the 2 h cycle.
        let at = SimTime::from_secs(110 * 60);
        assert!(!t.is_online(at));
        assert_eq!(t.next_online(at), SimTime::from_secs(2 * 3600));
        let frac = t.offline_fraction();
        assert!((frac - 20.0 / 120.0).abs() < 1e-12, "frac={frac}");
    }

    #[test]
    fn longest_offline_finds_the_worst_window() {
        assert_eq!(ConnectivityTrace::always().longest_offline(), SimDuration::ZERO);
        assert_eq!(ConnectivityTrace::commuter().longest_offline(), SimDuration::from_mins(45));
        assert_eq!(ConnectivityTrace::flaky().longest_offline(), SimDuration::from_mins(20));
    }

    #[test]
    fn worst_wait_within_sees_only_overlapping_outages() {
        let t = ConnectivityTrace::commuter();
        // Midday window with no outage: zero wait.
        let from = SimTime::from_secs(10 * 3600);
        let until = SimTime::from_secs(16 * 3600);
        assert_eq!(t.worst_wait_within(from, until), SimDuration::ZERO);
        // Window covering the morning subway: full 45-minute wait.
        let from = SimTime::from_secs(7 * 3600);
        let until = SimTime::from_secs(9 * 3600);
        assert_eq!(t.worst_wait_within(from, until), SimDuration::from_mins(45));
        // Starting mid-outage: the remaining outage counts.
        let from = SimTime::from_secs(8 * 3600 + 30 * 60);
        assert_eq!(t.worst_wait_within(from, from), SimDuration::from_mins(15));
        // Inverted interval is empty.
        assert_eq!(
            t.worst_wait_within(SimTime::from_secs(100), SimTime::from_secs(50)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn commuter_offline_fraction() {
        let t = ConnectivityTrace::commuter();
        let expected = (45.0 + 45.0) / (24.0 * 60.0);
        assert!((t.offline_fraction() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "never online")]
    fn never_online_schedule_panics_on_next_online() {
        let t =
            ConnectivityTrace::new(SimDuration::from_hours(1), vec![(SimDuration::ZERO, false)]);
        let _ = t.next_online(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "fit in the period")]
    fn segment_exactly_at_period_boundary_is_rejected() {
        // A segment starting at the period itself belongs to the next
        // cycle's offset zero; accepting it would shadow the first
        // segment's mandatory zero offset.
        let _ = ConnectivityTrace::new(
            SimDuration::from_hours(1),
            vec![(SimDuration::ZERO, true), (SimDuration::from_hours(1), false)],
        );
    }

    #[test]
    fn single_offline_only_segment_is_offline_everywhere() {
        let t =
            ConnectivityTrace::new(SimDuration::from_hours(1), vec![(SimDuration::ZERO, false)]);
        for mins in [0u64, 1, 59, 60, 61, 600] {
            assert!(!t.is_online(SimTime::from_secs(mins * 60)), "minute {mins}");
        }
        assert_eq!(t.offline_fraction(), 1.0);
        assert_eq!(t.longest_offline(), SimDuration::from_hours(1));
    }

    #[test]
    fn queries_far_past_many_periods_stay_aligned() {
        let t = ConnectivityTrace::flaky(); // 2 h period, offline 100–120 min
                                            // One thousand cycles in, the schedule still reads like cycle zero.
        let cycles = 1000u64;
        let base = SimTime::from_secs(cycles * 2 * 3600);
        assert!(t.is_online(base + SimDuration::from_mins(50)));
        assert!(!t.is_online(base + SimDuration::from_mins(110)));
        assert_eq!(
            t.next_online(base + SimDuration::from_mins(110)),
            SimTime::from_secs((cycles + 1) * 2 * 3600),
        );
        // And the worst wait over a many-period window is one full outage.
        let wait = t.worst_wait_within(base, base + SimDuration::from_hours(20));
        assert_eq!(wait, SimDuration::from_mins(20));
    }
}
