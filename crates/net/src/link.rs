//! Single-link network models: latency, jitter, bandwidth, and loss.

use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{Bandwidth, DataSize, SimDuration};
use serde::{Deserialize, Serialize};

/// A stochastic model of one network link.
///
/// One-way latency is `base_latency` inflated by lognormal jitter; transfer
/// time is `size / bandwidth` inflated by retransmissions at `loss_rate`.
///
/// # Examples
///
/// ```
/// use ntc_net::link::LinkModel;
/// use ntc_simcore::rng::RngStream;
/// use ntc_simcore::units::{Bandwidth, DataSize, SimDuration};
///
/// let wan = LinkModel::new(SimDuration::from_millis(40), Bandwidth::from_megabits_per_sec(50));
/// let mut rng = RngStream::root(1).derive("net");
/// let t = wan.transfer_time(DataSize::from_mib(1), &mut rng);
/// assert!(t > SimDuration::from_millis(40));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    base_latency: SimDuration,
    bandwidth: Bandwidth,
    jitter_sigma: f64,
    loss_rate: f64,
}

impl LinkModel {
    /// Creates a link with the given one-way latency and bandwidth, no
    /// jitter and no loss.
    pub fn new(base_latency: SimDuration, bandwidth: Bandwidth) -> Self {
        LinkModel { base_latency, bandwidth, jitter_sigma: 0.0, loss_rate: 0.0 }
    }

    /// Sets lognormal jitter: latency is multiplied by
    /// `exp(N(0, sigma))`. A sigma of 0.2 gives roughly ±20 % spread.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn with_jitter(mut self, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "jitter sigma must be non-negative");
        self.jitter_sigma = sigma;
        self
    }

    /// Sets the packet-loss rate in `[0, 1)`; transfers are inflated by
    /// `1 / (1 - loss)` to model retransmission.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1)`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss rate must be in [0, 1)");
        self.loss_rate = loss;
        self
    }

    /// The configured base one-way latency.
    pub fn base_latency(&self) -> SimDuration {
        self.base_latency
    }

    /// The configured nominal bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Samples a one-way latency.
    pub fn sample_latency(&self, rng: &mut RngStream) -> SimDuration {
        if self.jitter_sigma == 0.0 {
            return self.base_latency;
        }
        self.base_latency.mul_f64(rng.lognormal(0.0, self.jitter_sigma))
    }

    /// Samples a round-trip time (two one-way latencies).
    pub fn sample_rtt(&self, rng: &mut RngStream) -> SimDuration {
        self.sample_latency(rng) + self.sample_latency(rng)
    }

    /// The deterministic serialisation time for `size` at full rate,
    /// inflated for retransmissions, excluding propagation latency.
    pub fn serialisation_time(&self, size: DataSize) -> SimDuration {
        if size.is_zero() {
            return SimDuration::ZERO;
        }
        let inflation = 1.0 / (1.0 - self.loss_rate);
        self.bandwidth.transfer_time(size).mul_f64(inflation)
    }

    /// Samples the total time to move `size` across the link: one-way
    /// latency plus serialisation time at an optionally degraded rate.
    pub fn transfer_time(&self, size: DataSize, rng: &mut RngStream) -> SimDuration {
        self.transfer_time_at_share(size, 1.0, rng)
    }

    /// Like [`LinkModel::transfer_time`] but with only `share` (0, 1] of
    /// the nominal bandwidth available (congestion / fair sharing).
    ///
    /// # Panics
    ///
    /// Panics if `share` is not in `(0, 1]`.
    pub fn transfer_time_at_share(
        &self,
        size: DataSize,
        share: f64,
        rng: &mut RngStream,
    ) -> SimDuration {
        assert!(share > 0.0 && share <= 1.0, "bandwidth share must be in (0, 1]");
        let latency = self.sample_latency(rng);
        if size.is_zero() {
            return latency;
        }
        let inflation = 1.0 / (1.0 - self.loss_rate);
        let serialisation = self.bandwidth.mul_f64(share).transfer_time(size).mul_f64(inflation);
        latency + serialisation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::root(42).derive("link-tests")
    }

    #[test]
    fn no_jitter_is_deterministic() {
        let link =
            LinkModel::new(SimDuration::from_millis(10), Bandwidth::from_megabits_per_sec(8));
        let mut r = rng();
        assert_eq!(link.sample_latency(&mut r), SimDuration::from_millis(10));
        assert_eq!(link.sample_rtt(&mut r), SimDuration::from_millis(20));
    }

    #[test]
    fn transfer_includes_latency_and_serialisation() {
        // 8 Mbit/s = 1 MB/s; 1 MB takes 1 s + 10 ms latency.
        let link =
            LinkModel::new(SimDuration::from_millis(10), Bandwidth::from_megabits_per_sec(8));
        let t = link.transfer_time(DataSize::from_bytes(1_000_000), &mut rng());
        assert_eq!(t, SimDuration::from_millis(1010));
    }

    #[test]
    fn zero_size_transfer_is_latency_only() {
        let link = LinkModel::new(SimDuration::from_millis(5), Bandwidth::from_megabits_per_sec(1));
        assert_eq!(link.transfer_time(DataSize::ZERO, &mut rng()), SimDuration::from_millis(5));
    }

    #[test]
    fn loss_inflates_serialisation() {
        let clean = LinkModel::new(SimDuration::ZERO, Bandwidth::from_megabits_per_sec(8));
        let lossy = clean.clone().with_loss(0.5);
        let size = DataSize::from_bytes(1_000_000);
        let t_clean = clean.transfer_time(size, &mut rng());
        let t_lossy = lossy.transfer_time(size, &mut rng());
        assert_eq!(t_lossy.as_micros(), t_clean.as_micros() * 2);
    }

    #[test]
    fn jitter_spreads_latency() {
        let link =
            LinkModel::new(SimDuration::from_millis(100), Bandwidth::from_megabits_per_sec(8))
                .with_jitter(0.3);
        let mut r = rng();
        let samples: Vec<u64> = (0..200).map(|_| link.sample_latency(&mut r).as_micros()).collect();
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        assert!(min < 100_000 && max > 100_000, "jitter should spread around base ({min}..{max})");
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 100_000.0).abs() < 20_000.0, "mean={mean}");
    }

    #[test]
    fn bandwidth_share_slows_transfer() {
        let link = LinkModel::new(SimDuration::ZERO, Bandwidth::from_megabits_per_sec(8));
        let size = DataSize::from_bytes(1_000_000);
        let full = link.transfer_time_at_share(size, 1.0, &mut rng());
        let half = link.transfer_time_at_share(size, 0.5, &mut rng());
        assert_eq!(half.as_micros(), full.as_micros() * 2);
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn full_loss_is_rejected() {
        let _ =
            LinkModel::new(SimDuration::ZERO, Bandwidth::from_megabits_per_sec(1)).with_loss(1.0);
    }
}
