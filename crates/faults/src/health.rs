//! Per-site adaptive health: circuit breakers, EWMA latency/failure-rate
//! tracking, queue-delay estimation and hedge-delay derivation.
//!
//! The retry/fallback machinery of this crate reacts to failures *after*
//! burning attempts on them. [`SiteHealth`] is the complementary
//! feed-forward half: a deterministic per-site circuit breaker
//! (Closed → Open on a consecutive-failure or failure-rate-EWMA
//! threshold → HalfOpen probe after a seeded cooldown → Closed on probe
//! success) plus the latency statistics overload-aware dispatch needs —
//! an EWMA service-time estimate for queue-delay prediction and a
//! p99-derived hedge delay for straggler detection.
//!
//! Everything is deterministic: the only randomness is the cooldown
//! jitter, drawn from a derived [`RngStream`] child keyed by the site
//! name and the breaker's open-count, so replays are bit-identical and
//! independent of what any other subsystem draws.
//!
//! The engine keeps one `SiteHealth` per registered site in a dense
//! ledger sharing the registry's fallback-rank order, addressed by the
//! site's interned token index — never by string lookup on the hot
//! path. The `site` name stored here exists for the cooldown derivation
//! keys (whose byte layout is part of the reproducibility contract) and
//! for the once-per-run transition report stringified at report build.

use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Tunables of the overload-aware health layer.
///
/// The default ([`HealthConfig::disabled`]) switches every mechanism
/// off, so configurations that predate the health layer behave — and
/// serialize — exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Per-site circuit breakers: skip sites whose breaker is Open
    /// instead of burning retry budget (and stalled waits) on them.
    pub breakers: bool,
    /// Admission control at dispatch: defer or shed batches whose
    /// queue-delay estimate exceeds their deadline slack.
    pub admission: bool,
    /// Hedged requests: duplicate an invocation that exceeds its
    /// p99-derived hedge delay onto the next healthy site.
    pub hedge: bool,
    /// Consecutive failures on one site that trip its breaker Open.
    pub failure_threshold: u32,
    /// Failure-rate EWMA level that trips the breaker even without a
    /// consecutive run (flapping sites fail *often*, not *in a row*).
    pub error_rate_threshold: f64,
    /// Smoothing factor of the failure-rate and latency EWMAs, in
    /// `(0, 1]`; higher weighs recent observations more.
    pub ewma_alpha: f64,
    /// Observations required before the rate threshold and the hedge
    /// delay bind (EWMAs are meaningless on two samples).
    pub min_samples: u32,
    /// Base Open → HalfOpen cooldown; the realised cooldown is jittered
    /// uniformly in `[base, min(cap, base·2^opens)]` from a seeded
    /// stream, so repeatedly-tripped sites back off longer.
    pub cooldown_base: SimDuration,
    /// Upper bound on any single cooldown.
    pub cooldown_cap: SimDuration,
    /// Bounded per-site queue: in-flight invocations admitted before
    /// the admission controller treats the site as saturated.
    pub queue_bound: u32,
    /// How far a deferred batch's dispatch is pushed per deferral.
    pub defer_step: SimDuration,
    /// Deferrals one batch may accumulate before it must shed instead.
    pub max_deferrals: u32,
    /// Floor on the hedge delay (hedging below network jitter buys
    /// nothing and doubles cost).
    pub hedge_min_delay: SimDuration,
    /// Standard-normal quantile the hedge delay adds to the latency
    /// EWMA: `hedge = mean + q·std`. The default 2.33 approximates p99.
    pub hedge_quantile: f64,
}

impl HealthConfig {
    /// Every mechanism off: the engine behaves bit-identically to a
    /// build without the health layer.
    pub fn disabled() -> Self {
        HealthConfig {
            breakers: false,
            admission: false,
            hedge: false,
            failure_threshold: 5,
            error_rate_threshold: 0.5,
            ewma_alpha: 0.2,
            min_samples: 8,
            cooldown_base: SimDuration::from_secs(30),
            cooldown_cap: SimDuration::from_mins(10),
            queue_bound: 64,
            defer_step: SimDuration::from_mins(10),
            max_deferrals: 24,
            hedge_min_delay: SimDuration::from_secs(2),
            hedge_quantile: 2.33,
        }
    }

    /// The full overload-aware stance: breakers, admission control and
    /// hedging all on, at the disabled-default thresholds.
    pub fn overload_default() -> Self {
        HealthConfig { breakers: true, admission: true, hedge: true, ..Self::disabled() }
    }

    /// Whether any mechanism is on (off ⇒ the engine must not even
    /// track observations, preserving bit-identical legacy behaviour).
    pub fn enabled(&self) -> bool {
        self.breakers || self.admission || self.hedge
    }
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Circuit-breaker state of one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are skipped until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe request is let through; its
    /// outcome closes or re-opens the breaker.
    HalfOpen,
}

/// What the breaker answers when asked to admit a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: send the request normally.
    Ready,
    /// HalfOpen and no probe outstanding: send the request *as the
    /// probe* — its outcome decides the breaker's fate.
    Probe,
    /// Open (or HalfOpen with a probe already in flight): skip this
    /// site.
    Unavailable,
}

/// Deterministic per-site health: breaker state machine plus latency and
/// failure-rate EWMAs.
///
/// Observations are fed by the caller (`record_success`,
/// `record_failure`, `record_cancelled`); admission questions are asked
/// via [`check`](SiteHealth::check). All state transitions happen inside
/// those calls, so a single-threaded event loop sees a pure function of
/// its own call sequence — replays are bit-identical.
#[derive(Debug, Clone)]
pub struct SiteHealth {
    cfg: HealthConfig,
    /// The site's stable name, baked into cooldown-jitter derivation
    /// keys.
    site: String,
    state: BreakerState,
    consecutive_failures: u32,
    /// EWMA of the failure indicator (1 = failed attempt).
    failure_rate: f64,
    /// EWMA of observed invocation latency, microseconds.
    latency_us: f64,
    /// EWMA of squared deviation from the latency EWMA (for the
    /// p99-derived hedge delay).
    latency_var_us2: f64,
    samples: u64,
    /// When an Open breaker may admit its HalfOpen probe.
    open_until: SimTime,
    /// Times the breaker has opened (keys the cooldown jitter and backs
    /// the exponential cooldown growth).
    opens: u32,
    /// Total state transitions (Closed→Open, Open→HalfOpen,
    /// HalfOpen→Closed, HalfOpen→Open), reported per run.
    transitions: u32,
    /// Whether the HalfOpen probe slot is taken.
    probe_outstanding: bool,
    /// Invocations currently in flight (admission's bounded queue).
    in_flight: u32,
}

impl SiteHealth {
    /// Fresh health for the site named `site` under `cfg`: breaker
    /// Closed, no observations.
    pub fn new(site: impl Into<String>, cfg: HealthConfig) -> Self {
        SiteHealth {
            cfg,
            site: site.into(),
            state: BreakerState::Closed,
            consecutive_failures: 0,
            failure_rate: 0.0,
            latency_us: 0.0,
            latency_var_us2: 0.0,
            samples: 0,
            open_until: SimTime::ZERO,
            opens: 0,
            transitions: 0,
            probe_outstanding: false,
            in_flight: 0,
        }
    }

    /// The site this health belongs to.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// Current breaker state (without the time-driven Open → HalfOpen
    /// promotion [`check`](Self::check) performs).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total breaker state transitions so far.
    pub fn transitions(&self) -> u32 {
        self.transitions
    }

    /// Times the breaker has tripped Open.
    pub fn opens(&self) -> u32 {
        self.opens
    }

    /// Observations recorded (successes + failures; cancellations are
    /// deliberately *not* observations).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Current failure-rate EWMA in `[0, 1]`.
    pub fn failure_rate(&self) -> f64 {
        self.failure_rate
    }

    /// Current latency EWMA.
    pub fn ewma_latency(&self) -> SimDuration {
        SimDuration::from_micros(self.latency_us.max(0.0).round() as u64)
    }

    /// Invocations currently in flight on this site.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Asks the breaker whether a request may be sent at `at`. With
    /// breakers disabled the answer is always [`Admission::Ready`].
    /// Closed sites are never probed; an Open site promotes itself to
    /// HalfOpen once `at` reaches its cooldown end and hands out exactly
    /// one [`Admission::Probe`] slot.
    pub fn check(&mut self, at: SimTime) -> Admission {
        if !self.cfg.breakers {
            return Admission::Ready;
        }
        match self.state {
            BreakerState::Closed => Admission::Ready,
            BreakerState::Open if at >= self.open_until => {
                self.state = BreakerState::HalfOpen;
                self.transitions += 1;
                self.probe_outstanding = true;
                Admission::Probe
            }
            BreakerState::Open => Admission::Unavailable,
            BreakerState::HalfOpen if !self.probe_outstanding => {
                self.probe_outstanding = true;
                Admission::Probe
            }
            BreakerState::HalfOpen => Admission::Unavailable,
        }
    }

    /// Records a successful attempt observed to take `latency`. A
    /// HalfOpen probe success closes the breaker.
    pub fn record_success(&mut self, latency: SimDuration) {
        self.observe(false, latency.as_micros() as f64);
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.transitions += 1;
            self.probe_outstanding = false;
        }
    }

    /// Records a failed attempt at `at`. Trips the breaker when the
    /// consecutive-failure threshold or (past
    /// [`min_samples`](HealthConfig::min_samples)) the failure-rate EWMA
    /// threshold is reached; a HalfOpen probe failure re-opens
    /// immediately. `rng` is the health layer's root stream — the
    /// cooldown draw derives its own child per `(site, open-count)`.
    pub fn record_failure(&mut self, at: SimTime, rng: &RngStream) {
        // Failures carry no useful service-time signal; feed the rate
        // EWMA only.
        self.observe(true, self.latency_us);
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let rate_tripped = self.samples >= u64::from(self.cfg.min_samples)
            && self.failure_rate >= self.cfg.error_rate_threshold;
        match self.state {
            BreakerState::HalfOpen => self.open(at, rng),
            BreakerState::Closed
                if self.consecutive_failures >= self.cfg.failure_threshold.max(1)
                    || rate_tripped =>
            {
                self.open(at, rng);
            }
            _ => {}
        }
    }

    /// Records the deliberate cancellation of a hedge loser: **not** an
    /// observation. Neither the failure-rate EWMA, the latency EWMA nor
    /// the consecutive-failure run moves — a cancelled duplicate says
    /// nothing about the site's health. Only the probe slot is released
    /// if the cancelled request was the HalfOpen probe.
    pub fn record_cancelled(&mut self) {
        if self.state == BreakerState::HalfOpen && self.probe_outstanding {
            self.probe_outstanding = false;
        }
    }

    /// Marks one invocation as entering this site's bounded queue.
    pub fn enter(&mut self) {
        self.in_flight = self.in_flight.saturating_add(1);
    }

    /// Marks one invocation as leaving this site's bounded queue.
    pub fn leave(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    /// Whether the bounded per-site queue is at capacity.
    pub fn saturated(&self) -> bool {
        self.in_flight >= self.cfg.queue_bound.max(1)
    }

    /// Estimated queueing delay a new request would see: the latency
    /// EWMA times the queue occupancy ahead of it, divided by the
    /// site's concurrency (`width`). Zero until enough samples.
    pub fn queue_delay(&self, width: u32) -> SimDuration {
        if self.samples < u64::from(self.cfg.min_samples) {
            return SimDuration::ZERO;
        }
        let waves = f64::from(self.in_flight) / f64::from(width.max(1));
        SimDuration::from_micros((self.latency_us * waves).round() as u64)
    }

    /// The p99-derived hedge delay: latency EWMA plus
    /// [`hedge_quantile`](HealthConfig::hedge_quantile) standard
    /// deviations, floored at
    /// [`hedge_min_delay`](HealthConfig::hedge_min_delay). `None` until
    /// enough samples — hedging on guesswork duplicates everything.
    pub fn hedge_delay(&self) -> Option<SimDuration> {
        if !self.cfg.hedge || self.samples < u64::from(self.cfg.min_samples) {
            return None;
        }
        let p99 = self.latency_us + self.cfg.hedge_quantile * self.latency_var_us2.max(0.0).sqrt();
        Some(SimDuration::from_micros(p99.round() as u64).max(self.cfg.hedge_min_delay))
    }

    fn observe(&mut self, failed: bool, latency_us: f64) {
        let a = self.cfg.ewma_alpha.clamp(1e-6, 1.0);
        if self.samples == 0 {
            self.failure_rate = if failed { 1.0 } else { 0.0 };
            self.latency_us = latency_us;
            self.latency_var_us2 = 0.0;
        } else {
            self.failure_rate += a * (if failed { 1.0 } else { 0.0 } - self.failure_rate);
            if !failed {
                let dev = latency_us - self.latency_us;
                self.latency_us += a * dev;
                self.latency_var_us2 += a * (dev * dev - self.latency_var_us2);
            }
        }
        self.samples += 1;
    }

    /// Trips the breaker Open at `at` with a seeded, exponentially
    /// growing cooldown: uniform in `[base, min(cap, base·2^opens)]`,
    /// drawn from the child stream `cooldown-{site}-{opens}` so the
    /// schedule replays bit-identically and independently of query
    /// order elsewhere.
    fn open(&mut self, at: SimTime, rng: &RngStream) {
        self.opens = self.opens.saturating_add(1);
        self.state = BreakerState::Open;
        self.transitions += 1;
        self.probe_outstanding = false;
        let base = self.cfg.cooldown_base.as_micros().max(1);
        let cap = self.cfg.cooldown_cap.as_micros().max(base);
        let hi = base.saturating_mul(2u64.saturating_pow(self.opens.min(40))).min(cap);
        let mut r = rng.derive(&format!("cooldown-{}-{}", self.site, self.opens));
        self.open_until = at + SimDuration::from_micros(r.uniform_range(base, hi + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::root(7).derive("health")
    }

    fn cfg() -> HealthConfig {
        HealthConfig { failure_threshold: 3, min_samples: 4, ..HealthConfig::overload_default() }
    }

    fn tripped(cfg: HealthConfig) -> SiteHealth {
        let mut h = SiteHealth::new("edge", cfg);
        let r = rng();
        for _ in 0..cfg.failure_threshold.max(1) {
            h.record_failure(SimTime::from_secs(10), &r);
        }
        assert_eq!(h.state(), BreakerState::Open);
        h
    }

    #[test]
    fn disabled_config_always_admits_and_never_trips_admission() {
        let mut h = SiteHealth::new("cloud", HealthConfig::disabled());
        let r = rng();
        for _ in 0..100 {
            h.record_failure(SimTime::from_secs(1), &r);
        }
        // The state machine itself still trips (the engine simply never
        // consults it when breakers are off)…
        assert_eq!(h.state(), BreakerState::Open);
        // …but check() reports Ready because breakers are disabled.
        assert_eq!(h.check(SimTime::from_secs(2)), Admission::Ready);
        assert_eq!(h.hedge_delay(), None, "hedge disabled");
    }

    #[test]
    fn consecutive_failures_trip_the_breaker() {
        // Rate threshold out of reach: only the consecutive run counts.
        let mut h = SiteHealth::new("edge", HealthConfig { error_rate_threshold: 2.0, ..cfg() });
        let r = rng();
        h.record_failure(SimTime::ZERO, &r);
        h.record_success(SimDuration::from_secs(1));
        h.record_failure(SimTime::ZERO, &r);
        h.record_failure(SimTime::ZERO, &r);
        assert_eq!(h.state(), BreakerState::Closed, "run broken by a success");
        h.record_failure(SimTime::ZERO, &r);
        assert_eq!(h.state(), BreakerState::Open, "third consecutive failure trips");
        assert_eq!(h.opens(), 1);
    }

    #[test]
    fn failure_rate_ewma_trips_without_a_consecutive_run() {
        let mut h = SiteHealth::new(
            "edge",
            HealthConfig {
                failure_threshold: 100,
                error_rate_threshold: 0.4,
                ewma_alpha: 0.5,
                min_samples: 4,
                ..HealthConfig::overload_default()
            },
        );
        let r = rng();
        // Alternate success/failure: never 2 in a row, but a ~50% rate.
        for i in 0..20 {
            if i % 2 == 0 {
                h.record_failure(SimTime::from_secs(i), &r);
            } else {
                h.record_success(SimDuration::from_secs(1));
            }
            if h.state() == BreakerState::Open {
                return;
            }
        }
        panic!("flapping site never tripped the rate threshold");
    }

    #[test]
    fn open_breaker_half_opens_after_cooldown_and_closes_on_probe_success() {
        let mut h = tripped(cfg());
        assert_eq!(h.check(SimTime::from_secs(11)), Admission::Unavailable);
        // Cooldown is jittered within [base, cap]; far future must admit.
        let later = SimTime::from_secs(10) + HealthConfig::disabled().cooldown_cap;
        assert_eq!(h.check(later), Admission::Probe);
        assert_eq!(h.state(), BreakerState::HalfOpen);
        // Only one probe slot.
        assert_eq!(h.check(later), Admission::Unavailable);
        h.record_success(SimDuration::from_secs(1));
        assert_eq!(h.state(), BreakerState::Closed);
        assert_eq!(h.check(later), Admission::Ready);
    }

    #[test]
    fn probe_failure_reopens_with_longer_cooldown() {
        let mut h = tripped(cfg());
        let r = rng();
        let probe_at = SimTime::from_secs(10) + HealthConfig::disabled().cooldown_cap;
        assert_eq!(h.check(probe_at), Admission::Probe);
        h.record_failure(probe_at, &r);
        assert_eq!(h.state(), BreakerState::Open);
        assert_eq!(h.opens(), 2);
        assert_eq!(h.check(probe_at), Admission::Unavailable, "fresh cooldown runs again");
    }

    #[test]
    fn cooldowns_are_deterministic_per_seed_and_site() {
        let trip = |site: &str, seed: u64| {
            let mut h = SiteHealth::new(site, cfg());
            let r = RngStream::root(seed).derive("health");
            for _ in 0..3 {
                h.record_failure(SimTime::ZERO, &r);
            }
            h.open_until
        };
        assert_eq!(trip("edge", 1), trip("edge", 1), "same seed, same cooldown");
        assert_ne!(trip("edge", 1), trip("edge", 2), "different seeds jitter differently");
        assert_ne!(trip("edge", 1), trip("cloud", 1), "keyed per site");
    }

    #[test]
    fn cancellations_are_not_observations() {
        let mut h = SiteHealth::new("cloud", cfg());
        let r = rng();
        h.record_failure(SimTime::ZERO, &r);
        h.record_failure(SimTime::ZERO, &r);
        let (rate, samples, run) = (h.failure_rate(), h.samples(), h.consecutive_failures);
        h.record_cancelled();
        h.record_cancelled();
        assert_eq!(h.failure_rate(), rate, "cancellation must not move the rate EWMA");
        assert_eq!(h.samples(), samples);
        assert_eq!(h.consecutive_failures, run, "nor the consecutive-failure run");
        assert_eq!(h.state(), BreakerState::Closed, "two failures + cancels stay under 3");
    }

    #[test]
    fn queue_delay_scales_with_occupancy_and_needs_samples() {
        let mut h = SiteHealth::new("edge", cfg());
        h.enter();
        h.enter();
        assert_eq!(h.queue_delay(1), SimDuration::ZERO, "no samples, no estimate");
        for _ in 0..8 {
            h.record_success(SimDuration::from_secs(10));
        }
        let two_deep = h.queue_delay(1);
        assert!(two_deep >= SimDuration::from_secs(19), "2 in flight × ~10 s each: {two_deep}");
        assert!(h.queue_delay(2) < two_deep, "wider sites queue less");
        h.leave();
        assert!(h.queue_delay(1) < two_deep, "draining shortens the estimate");
        h.leave();
        h.leave();
        assert_eq!(h.in_flight(), 0, "leave saturates at zero");
    }

    #[test]
    fn saturation_tracks_the_bound() {
        let mut h = SiteHealth::new("edge", HealthConfig { queue_bound: 2, ..cfg() });
        assert!(!h.saturated());
        h.enter();
        h.enter();
        assert!(h.saturated());
        h.leave();
        assert!(!h.saturated());
    }

    #[test]
    fn hedge_delay_is_p99_shaped_and_floored() {
        let mut h = SiteHealth::new("cloud", cfg());
        assert_eq!(h.hedge_delay(), None, "no samples, no hedging");
        // Tight latencies: p99 ≈ mean, so the floor binds.
        for _ in 0..16 {
            h.record_success(SimDuration::from_millis(100));
        }
        assert_eq!(h.hedge_delay(), Some(HealthConfig::disabled().hedge_min_delay));
        // Wide latencies: mean + 2.33σ clears the floor.
        let mut w = SiteHealth::new("cloud", cfg());
        for i in 0..32 {
            w.record_success(SimDuration::from_secs(if i % 2 == 0 { 5 } else { 60 }));
        }
        let hd = w.hedge_delay().expect("enough samples");
        assert!(hd > w.ewma_latency(), "p99 sits above the mean: {hd}");
    }

    #[test]
    fn transitions_count_every_edge() {
        let mut h = tripped(cfg()); // Closed → Open
        assert_eq!(h.transitions(), 1);
        let probe_at = SimTime::from_secs(10) + HealthConfig::disabled().cooldown_cap;
        assert_eq!(h.check(probe_at), Admission::Probe); // Open → HalfOpen
        assert_eq!(h.transitions(), 2);
        h.record_success(SimDuration::from_secs(1)); // HalfOpen → Closed
        assert_eq!(h.transitions(), 3);
    }
}
