//! # ntc-faults
//!
//! Deterministic fault injection and recovery policy for the offloading
//! engine. The paper's thesis is that non-time-critical work can tolerate
//! the cloud's drawbacks because *delay-tolerant work can simply wait* —
//! which must hold for failures as much as for latency. This crate
//! provides the three pieces the engine composes into that behaviour:
//!
//! * [`FaultConfig`] / [`FaultPlan`] — a seeded plan of injected faults:
//!   transient invocation errors, throttling, edge-site outage windows
//!   (an availability schedule analogous to
//!   [`ConnectivityTrace`](ntc_net::ConnectivityTrace)), and mid-flight
//!   transfer drops with partial-progress loss. All draws come from
//!   per-key derived [`RngStream`](ntc_simcore::rng::RngStream)s, so
//!   plans are reproducible and independent of query order.
//! * [`RetryPolicy`] — capped exponential backoff with decorrelated
//!   jitter, an attempt cap, and a [`RetryBudget`] that makes
//!   time-critical callers give up while NTC callers keep waiting.
//! * [`ErrorClass`] / [`FailureCause`] — the retryable-vs-terminal
//!   classification of every backend error, replacing the engine's old
//!   all-errors-are-terminal path.
//! * [`SiteHealth`] / [`HealthConfig`] — the feed-forward half of
//!   robustness: per-site circuit breakers with EWMA latency and
//!   failure-rate tracking, queue-delay estimation for admission
//!   control, and p99-derived hedge delays for straggler duplication.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod config;
pub mod health;
pub mod plan;
pub mod retry;

pub use classify::{
    classify_edge, classify_injected, classify_invoke, classify_outage, classify_timeout,
    ErrorClass, FailureCause,
};
pub use config::FaultConfig;
pub use health::{Admission, BreakerState, HealthConfig, SiteHealth};
pub use plan::{FaultPlan, InjectedFault, SiteOutage};
pub use retry::{RetryBudget, RetryPolicy};
