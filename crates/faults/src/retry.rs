//! Retry policies: how long to back off and when to give up.

use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How much failure a caller is willing to absorb before giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetryBudget {
    /// Never retry: the first failed attempt is final (time-critical
    /// baseline behaviour).
    None,
    /// Retry for as long as the attempt cap allows: the NTC stance —
    /// delay-tolerant work waits failures out.
    Unbounded,
    /// Retry only while the next attempt would still start before the
    /// job's deadline: deadline-aware middle ground.
    Deadline,
}

/// Capped exponential backoff with decorrelated jitter.
///
/// The backoff before retry `k` (1-based) is drawn uniformly from
/// `[base, min(cap, base·3^k)]`, each draw from its own derived stream,
/// so the schedule is deterministic per `(seed, key, attempt)` and
/// independent of everything else the simulation draws — retried runs
/// replay bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Minimum (and first) backoff.
    pub base: SimDuration,
    /// Upper bound any single backoff can reach.
    pub cap: SimDuration,
    /// Maximum number of attempts, including the first (`>= 1`).
    pub max_attempts: u32,
    /// When to stop retrying.
    pub budget: RetryBudget,
}

impl RetryPolicy {
    /// No retries at all: one attempt, terminal on failure.
    pub fn none() -> Self {
        RetryPolicy {
            base: SimDuration::ZERO,
            cap: SimDuration::ZERO,
            max_attempts: 1,
            budget: RetryBudget::None,
        }
    }

    /// The NTC default: effectively unlimited patient retries, backing
    /// off from 2 s up to 5 min.
    pub fn ntc_default() -> Self {
        RetryPolicy {
            base: SimDuration::from_secs(2),
            cap: SimDuration::from_mins(5),
            max_attempts: u32::MAX,
            budget: RetryBudget::Unbounded,
        }
    }

    /// A deadline-aware policy for latency-sensitive callers: a few fast
    /// retries, abandoned once they would overrun the deadline.
    pub fn deadline_aware() -> Self {
        RetryPolicy {
            base: SimDuration::from_secs(1),
            cap: SimDuration::from_secs(30),
            max_attempts: 4,
            budget: RetryBudget::Deadline,
        }
    }

    /// The backoff to wait before retry number `attempt` (1-based: the
    /// wait after the first failed attempt is `attempt = 1`).
    ///
    /// Deterministic in `(rng seed, key, attempt)`.
    ///
    /// # Panics
    ///
    /// Panics if `attempt` is zero.
    pub fn backoff(&self, rng: &RngStream, key: &str, attempt: u32) -> SimDuration {
        assert!(attempt > 0, "attempt numbering is 1-based");
        let base_us = self.base.as_micros();
        let cap_us = self.cap.as_micros().max(base_us);
        if cap_us == 0 {
            return SimDuration::ZERO;
        }
        // 3^k, saturating: past ~40 doublings everything hits the cap.
        let growth = 3u64.saturating_pow(attempt.min(40));
        let hi = base_us.max(1).saturating_mul(growth).min(cap_us);
        let mut r = rng.derive(&format!("backoff-{key}-a{attempt}"));
        SimDuration::from_micros(r.uniform_range(base_us, hi + 1))
    }

    /// Whether another attempt may be made, given that `attempts_made`
    /// attempts already ran, the retry would start at `resume`, and the
    /// job's deadline is `deadline`.
    pub fn allows(&self, attempts_made: u32, resume: SimTime, deadline: SimTime) -> bool {
        if attempts_made >= self.max_attempts {
            return false;
        }
        match self.budget {
            RetryBudget::None => false,
            RetryBudget::Unbounded => true,
            RetryBudget::Deadline => resume <= deadline,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> RngStream {
        RngStream::root(seed).derive("retry")
    }

    /// Satellite requirement: same seed ⇒ identical attempt times.
    #[test]
    fn backoff_schedule_is_deterministic_per_seed() {
        let p = RetryPolicy::ntc_default();
        let a: Vec<SimDuration> = (1..=10).map(|k| p.backoff(&rng(9), "b0-c1", k)).collect();
        let b: Vec<SimDuration> = (1..=10).map(|k| p.backoff(&rng(9), "b0-c1", k)).collect();
        assert_eq!(a, b, "same seed must replay the same schedule");
        let c: Vec<SimDuration> = (1..=10).map(|k| p.backoff(&rng(10), "b0-c1", k)).collect();
        assert_ne!(a, c, "a different seed must jitter differently");
    }

    #[test]
    fn backoff_is_position_independent() {
        let p = RetryPolicy::ntc_default();
        let r = rng(5);
        // Interleave queries for two keys: each key's schedule must match
        // the schedule obtained by querying it alone.
        let alone: Vec<SimDuration> = (1..=5).map(|k| p.backoff(&rng(5), "x", k)).collect();
        let mut interleaved = Vec::new();
        for k in 1..=5 {
            let _ = p.backoff(&r, "y", k);
            interleaved.push(p.backoff(&r, "x", k));
        }
        assert_eq!(alone, interleaved);
    }

    #[test]
    fn backoff_respects_base_and_cap() {
        let p = RetryPolicy {
            base: SimDuration::from_secs(2),
            cap: SimDuration::from_secs(60),
            max_attempts: u32::MAX,
            budget: RetryBudget::Unbounded,
        };
        for k in 1..=50 {
            let b = p.backoff(&rng(3), "k", k);
            assert!(b >= p.base, "attempt {k}: {b} below base");
            assert!(b <= p.cap, "attempt {k}: {b} above cap");
        }
    }

    #[test]
    fn backoff_window_grows_with_attempts() {
        // With a huge cap, the upper bound of the jitter window grows
        // geometrically; the empirical max over many draws must grow too.
        let p = RetryPolicy {
            base: SimDuration::from_secs(1),
            cap: SimDuration::from_hours(10),
            max_attempts: u32::MAX,
            budget: RetryBudget::Unbounded,
        };
        let max_at = |attempt: u32| {
            (0..200).map(|i| p.backoff(&rng(100 + i), "g", attempt)).max().expect("non-empty")
        };
        assert!(max_at(6) > max_at(1) * 10);
    }

    #[test]
    fn zero_cap_means_zero_backoff() {
        let p = RetryPolicy::none();
        assert_eq!(p.backoff(&rng(1), "k", 1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn attempt_zero_is_rejected() {
        let _ = RetryPolicy::ntc_default().backoff(&rng(1), "k", 0);
    }

    #[test]
    fn budget_none_never_allows() {
        let p = RetryPolicy::none();
        assert!(!p.allows(1, SimTime::ZERO, SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn budget_unbounded_respects_only_the_attempt_cap() {
        let p = RetryPolicy { max_attempts: 3, ..RetryPolicy::ntc_default() };
        let far = SimTime::from_secs(u64::MAX / 2_000_000);
        assert!(p.allows(1, far, SimTime::ZERO), "deadline must not matter");
        assert!(p.allows(2, far, SimTime::ZERO));
        assert!(!p.allows(3, far, SimTime::ZERO), "attempt cap must bind");
    }

    #[test]
    fn budget_deadline_stops_at_the_deadline() {
        let p = RetryPolicy::deadline_aware();
        let deadline = SimTime::from_secs(100);
        assert!(p.allows(1, SimTime::from_secs(99), deadline));
        assert!(p.allows(1, deadline, deadline), "boundary counts as within");
        assert!(!p.allows(1, SimTime::from_secs(101), deadline));
        assert!(!p.allows(4, SimTime::from_secs(50), deadline), "cap still binds");
    }
}
