//! A seeded, queryable realisation of a [`FaultConfig`].

use std::sync::Arc;

use ntc_simcore::rng::RngStream;
use ntc_simcore::units::SimTime;

use crate::config::FaultConfig;

/// One injected invocation fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The attempt failed with a transient error.
    Transient,
    /// The attempt was throttled by the platform.
    Throttled,
}

/// The edge site's availability at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteOutage {
    /// The site is up.
    Online,
    /// The site is down and comes back at the contained instant.
    Until(SimTime),
    /// The site never comes back within this schedule.
    Forever,
}

/// A deterministic fault plan.
///
/// Every query derives its own child stream from the plan's root by a
/// caller-chosen key, so results are independent of query order and of
/// how much randomness other subsystems consumed — the same
/// common-random-numbers discipline as the rest of the simulator. The
/// same `(seed, key)` pair always produces the same answer.
#[derive(Debug)]
pub struct FaultPlan {
    /// Shared, not owned: one engine hands the same `Arc` to every
    /// replication instead of deep-cloning the availability traces and
    /// site map per run.
    config: Arc<FaultConfig>,
    rng: RngStream,
}

impl FaultPlan {
    /// Builds a plan for `config`, drawing from `rng`.
    pub fn new(config: FaultConfig, rng: RngStream) -> Self {
        Self::shared(Arc::new(config), rng)
    }

    /// Builds a plan over an already-shared `config` without cloning it.
    pub fn shared(config: Arc<FaultConfig>, rng: RngStream) -> Self {
        FaultPlan { config, rng }
    }

    /// The configuration this plan realises.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Whether any invocation-fault rate is non-zero. A `false` lets
    /// callers skip building per-attempt keys entirely —
    /// [`invocation_fault`](Self::invocation_fault) would answer `None`
    /// for every key anyway.
    pub fn has_invocation_faults(&self) -> bool {
        self.config.transient_rate > 0.0 || self.config.throttle_rate > 0.0
    }

    /// Whether transfers can drop. Mirrors
    /// [`has_invocation_faults`](Self::has_invocation_faults) for the
    /// transfer-key fast path: `false` means
    /// [`transfer_penalty`](Self::transfer_penalty) is 1 for every key.
    pub fn has_transfer_faults(&self) -> bool {
        self.config.transfer_drop_rate > 0.0
    }

    /// Whether the invocation attempt identified by `key` is hit by an
    /// injected fault. Keys must be unique per attempt (include the
    /// batch, component and attempt number) so retries re-roll
    /// independently.
    pub fn invocation_fault(&self, key: &str) -> Option<InjectedFault> {
        let (tr, th) = (self.config.transient_rate, self.config.throttle_rate);
        if tr <= 0.0 && th <= 0.0 {
            return None;
        }
        let mut r = self.rng.derive(&format!("inv-{key}"));
        let u = r.uniform();
        if u < tr {
            Some(InjectedFault::Transient)
        } else if u < tr + th {
            Some(InjectedFault::Throttled)
        } else {
            None
        }
    }

    /// The availability of the execution site identified by `site` at
    /// `at`.
    ///
    /// `"edge"` consults the dedicated
    /// [`edge_availability`](FaultConfig::edge_availability) trace unless
    /// the [`site_availability`](FaultConfig::site_availability) map
    /// overrides it; every other site id is looked up in the map, and
    /// sites absent from both are always online — so plug-in backends
    /// get outage modelling for free once they appear in the map.
    pub fn site_outage(&self, site: &str, at: SimTime) -> SiteOutage {
        let trace = match self.config.site_availability.get(site) {
            Some(trace) => trace,
            None if site == "edge" => &self.config.edge_availability,
            None => return SiteOutage::Online,
        };
        if trace.is_online(at) {
            SiteOutage::Online
        } else if trace.offline_fraction() >= 1.0 {
            SiteOutage::Forever
        } else {
            SiteOutage::Until(trace.next_online(at))
        }
    }

    /// The edge site's availability at `at` (shorthand for
    /// [`site_outage`](Self::site_outage) with `"edge"`).
    pub fn edge_outage(&self, at: SimTime) -> SiteOutage {
        self.site_outage("edge", at)
    }

    /// How many times the transfer identified by `key` drops mid-flight,
    /// capped at `max` (each drop re-sends a
    /// [`transfer_progress_loss`](FaultConfig::transfer_progress_loss)
    /// fraction of the payload).
    pub fn transfer_drops(&self, key: &str, max: u32) -> u32 {
        let p = self.config.transfer_drop_rate;
        if p <= 0.0 || max == 0 {
            return 0;
        }
        let mut r = self.rng.derive(&format!("xfer-{key}"));
        let mut drops = 0;
        while drops < max && r.chance(p.min(1.0)) {
            drops += 1;
        }
        drops
    }

    /// The latency multiplier a transfer suffers from its injected
    /// drops: `1 + progress_loss × drops`.
    pub fn transfer_penalty(&self, key: &str) -> f64 {
        const MAX_DROPS: u32 = 8;
        1.0 + self.config.transfer_progress_loss * f64::from(self.transfer_drops(key, MAX_DROPS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_net::ConnectivityTrace;
    use ntc_simcore::units::SimDuration;

    fn plan(config: FaultConfig, seed: u64) -> FaultPlan {
        FaultPlan::new(config, RngStream::root(seed).derive("faults"))
    }

    #[test]
    fn fast_path_gates_track_config() {
        assert!(!plan(FaultConfig::none(), 1).has_invocation_faults());
        assert!(!plan(FaultConfig::none(), 1).has_transfer_faults());
        assert!(plan(FaultConfig::transient(0.1), 1).has_invocation_faults());
        let cfg = FaultConfig { transfer_drop_rate: 0.2, ..FaultConfig::none() };
        assert!(plan(cfg, 1).has_transfer_faults());
    }

    #[test]
    fn shared_config_answers_like_owned() {
        let shared = FaultPlan::shared(
            std::sync::Arc::new(FaultConfig::transient(0.3)),
            RngStream::root(42).derive("faults"),
        );
        let owned = plan(FaultConfig::transient(0.3), 42);
        for i in 0..100 {
            let key = format!("k{i}");
            assert_eq!(shared.invocation_fault(&key), owned.invocation_fault(&key));
        }
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let p = plan(FaultConfig::none(), 1);
        for i in 0..1000 {
            assert_eq!(p.invocation_fault(&format!("k{i}")), None);
            assert_eq!(p.transfer_drops(&format!("k{i}"), 8), 0);
        }
    }

    #[test]
    fn plans_are_deterministic_and_order_independent() {
        let a = plan(FaultConfig::transient(0.3), 42);
        let b = plan(FaultConfig::transient(0.3), 42);
        // Query b in reverse order: answers must match a's.
        let keys: Vec<String> = (0..500).map(|i| format!("job{i}-c0-a1")).collect();
        let from_a: Vec<_> = keys.iter().map(|k| a.invocation_fault(k)).collect();
        let from_b: Vec<_> = keys.iter().rev().map(|k| b.invocation_fault(k)).collect();
        let from_b_fwd: Vec<_> = from_b.into_iter().rev().collect();
        assert_eq!(from_a, from_b_fwd);
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let a = plan(FaultConfig::transient(0.5), 1);
        let b = plan(FaultConfig::transient(0.5), 2);
        let keys: Vec<String> = (0..200).map(|i| format!("k{i}")).collect();
        let fa: Vec<_> = keys.iter().map(|k| a.invocation_fault(k)).collect();
        let fb: Vec<_> = keys.iter().map(|k| b.invocation_fault(k)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn fault_frequency_tracks_the_rate() {
        let p = plan(FaultConfig::transient(0.2), 7);
        let hits = (0..5000).filter(|i| p.invocation_fault(&format!("k{i}")).is_some()).count();
        let freq = hits as f64 / 5000.0;
        assert!((freq - 0.2).abs() < 0.03, "freq={freq}");
    }

    #[test]
    fn throttles_and_transients_split_by_rate() {
        let cfg = FaultConfig { transient_rate: 0.1, throttle_rate: 0.1, ..FaultConfig::none() };
        let p = plan(cfg, 7);
        let mut transients = 0;
        let mut throttles = 0;
        for i in 0..5000 {
            match p.invocation_fault(&format!("k{i}")) {
                Some(InjectedFault::Transient) => transients += 1,
                Some(InjectedFault::Throttled) => throttles += 1,
                None => {}
            }
        }
        assert!(transients > 0 && throttles > 0);
        let ratio = transients as f64 / throttles as f64;
        assert!((0.6..1.6).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn edge_outage_follows_the_availability_trace() {
        let cfg =
            FaultConfig { edge_availability: ConnectivityTrace::flaky(), ..FaultConfig::none() };
        let p = plan(cfg, 1);
        assert_eq!(p.edge_outage(SimTime::from_secs(60)), SiteOutage::Online);
        let mid_outage = SimTime::from_secs(110 * 60);
        assert_eq!(p.edge_outage(mid_outage), SiteOutage::Until(SimTime::from_secs(2 * 3600)));
    }

    #[test]
    fn permanently_down_edge_reports_forever() {
        let cfg = FaultConfig {
            edge_availability: ConnectivityTrace::new(
                SimDuration::from_hours(1),
                vec![(SimDuration::ZERO, false)],
            ),
            ..FaultConfig::none()
        };
        let p = plan(cfg, 1);
        assert_eq!(p.edge_outage(SimTime::ZERO), SiteOutage::Forever);
    }

    #[test]
    fn site_outages_follow_the_keyed_availability_map() {
        let mut cfg = FaultConfig::none();
        cfg.site_availability.insert(
            "cloud".into(),
            ConnectivityTrace::new(SimDuration::from_hours(1), vec![(SimDuration::ZERO, false)]),
        );
        let p = plan(cfg, 1);
        assert_eq!(p.site_outage("cloud", SimTime::ZERO), SiteOutage::Forever);
        // Unlisted sites are always online.
        assert_eq!(p.site_outage("cloud-eu", SimTime::ZERO), SiteOutage::Online);
        // The edge keeps following its dedicated trace.
        assert_eq!(p.site_outage("edge", SimTime::ZERO), SiteOutage::Online);
    }

    #[test]
    fn map_entry_overrides_the_dedicated_edge_trace() {
        let mut cfg =
            FaultConfig { edge_availability: ConnectivityTrace::flaky(), ..FaultConfig::none() };
        cfg.site_availability.insert("edge".into(), ConnectivityTrace::always());
        let p = plan(cfg, 1);
        let mid_outage = SimTime::from_secs(110 * 60);
        assert_eq!(p.site_outage("edge", mid_outage), SiteOutage::Online);
    }

    #[test]
    fn transfer_drops_respect_the_cap_and_seed() {
        let cfg = FaultConfig { transfer_drop_rate: 0.9, ..FaultConfig::none() };
        let p = plan(cfg.clone(), 3);
        let q = plan(cfg, 3);
        for i in 0..200 {
            let key = format!("t{i}");
            let d = p.transfer_drops(&key, 4);
            assert!(d <= 4);
            assert_eq!(d, q.transfer_drops(&key, 4), "same seed, same drops");
        }
    }

    #[test]
    fn transfer_penalty_scales_with_progress_loss() {
        let cfg = FaultConfig {
            transfer_drop_rate: 1.0,
            transfer_progress_loss: 0.25,
            ..FaultConfig::none()
        };
        let p = plan(cfg, 3);
        // Rate 1.0 always hits the cap of 8 drops.
        assert!((p.transfer_penalty("k") - 3.0).abs() < 1e-12);
        let none = plan(FaultConfig::none(), 3);
        assert_eq!(none.transfer_penalty("k"), 1.0);
    }
}
