//! Retryable-vs-terminal classification of backend errors.
//!
//! The engine used to treat every error as terminal. This module maps
//! each failure mode onto a recovery action ([`ErrorClass`]) and a
//! reportable [`FailureCause`], so that delay-tolerant work can wait
//! faults out while misconfiguration still fails fast.

use ntc_edge::EdgeError;
use ntc_serverless::InvokeError;
use ntc_simcore::units::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::plan::{InjectedFault, SiteOutage as Outage};

/// Why an attempt (or, ultimately, a job) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FailureCause {
    /// A transient platform error (crash, dropped response, 5xx).
    Transient,
    /// The platform throttled the invocation.
    Throttled,
    /// The invocation ran but exceeded its execution timeout.
    Timeout,
    /// The edge site was unreachable.
    EdgeOutage,
    /// Some other execution site was unreachable (a site-keyed
    /// availability schedule declared it down).
    SiteOutage,
    /// The backend permanently ran out of capacity.
    Capacity,
    /// The service or function was missing or not deployable.
    Deployment,
    /// The simulation submitted invocations out of time order (a bug in
    /// the caller, never worth retrying).
    Ordering,
    /// A hedged duplicate was deliberately cancelled because its twin
    /// finished first. Not a fault: cancellations consume no retry
    /// budget and never feed a site's failure-rate EWMA.
    HedgeCancelled,
}

impl FailureCause {
    /// A stable lowercase name for aggregation keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            FailureCause::Transient => "transient",
            FailureCause::Throttled => "throttled",
            FailureCause::Timeout => "timeout",
            FailureCause::EdgeOutage => "edge-outage",
            FailureCause::SiteOutage => "site-outage",
            FailureCause::Capacity => "capacity",
            FailureCause::Deployment => "deployment",
            FailureCause::Ordering => "ordering",
            FailureCause::HedgeCancelled => "hedge-cancelled",
        }
    }

    /// Whether this cause describes a deliberate cancellation rather
    /// than a genuine failure. Cancellations must not burn retry budget
    /// or move failure-rate EWMAs.
    pub fn is_cancellation(self) -> bool {
        matches!(self, FailureCause::HedgeCancelled)
    }
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What recovery action an error admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The failure resolves itself at a known instant: wait until then
    /// and re-attempt. This is a deterministic wait (e.g. a service
    /// still installing), not a gamble, so it consumes no retry budget.
    WaitUntil(SimTime),
    /// The attempt may succeed if simply retried after a backoff.
    Retryable,
    /// Retrying the same backend would deterministically fail again, but
    /// another backend (or the device itself) could still run the work.
    Fallback,
    /// No recovery action can succeed; fail the work.
    Terminal,
}

/// Classifies an edge-fleet error observed at `now`.
pub fn classify_edge(err: &EdgeError, now: SimTime) -> (ErrorClass, FailureCause) {
    match err {
        EdgeError::UnknownService(_) => (ErrorClass::Terminal, FailureCause::Deployment),
        EdgeError::NotInstalled { ready_at: Some(ready), .. } if *ready > now => {
            (ErrorClass::WaitUntil(*ready), FailureCause::Deployment)
        }
        // Already-ready according to the fleet, yet the invoke failed:
        // a race worth one more try.
        EdgeError::NotInstalled { ready_at: Some(_), .. } => {
            (ErrorClass::Retryable, FailureCause::Deployment)
        }
        EdgeError::NotInstalled { ready_at: None, .. } => {
            (ErrorClass::Fallback, FailureCause::Deployment)
        }
        EdgeError::OutOfOrder { .. } => (ErrorClass::Terminal, FailureCause::Ordering),
    }
}

/// Classifies a serverless-platform error.
pub fn classify_invoke(err: &InvokeError) -> (ErrorClass, FailureCause) {
    match err {
        InvokeError::UnknownFunction(_) => (ErrorClass::Terminal, FailureCause::Deployment),
        // Capacity never frees up (the platform documents the region as
        // permanently exhausted), so retrying the same backend is futile.
        InvokeError::CapacityExhausted => (ErrorClass::Fallback, FailureCause::Capacity),
        InvokeError::OutOfOrder { .. } => (ErrorClass::Terminal, FailureCause::Ordering),
    }
}

/// Classifies an outage of the execution site identified by `site`:
/// `None` while the site is online, a free deterministic wait when the
/// outage has a known end, and a fallback down the site chain when it
/// does not. The edge keeps its historical `edge-outage` cause; every
/// other site reports the generic `site-outage`.
pub fn classify_outage(site: &str, outage: Outage) -> Option<(ErrorClass, FailureCause)> {
    let cause = if site == "edge" { FailureCause::EdgeOutage } else { FailureCause::SiteOutage };
    match outage {
        Outage::Online => None,
        Outage::Until(resume) => Some((ErrorClass::WaitUntil(resume), cause)),
        Outage::Forever => Some((ErrorClass::Fallback, cause)),
    }
}

/// Classifies an execution timeout.
///
/// The engine fixes an invocation's compute noise per `(batch,
/// component)`, so re-running the same work on the same backend would
/// time out again deterministically — the only way out is a different
/// backend.
pub fn classify_timeout() -> (ErrorClass, FailureCause) {
    (ErrorClass::Fallback, FailureCause::Timeout)
}

/// Classifies an injected fault from a [`FaultPlan`](crate::FaultPlan).
/// Both kinds are transient by construction: each attempt re-rolls.
pub fn classify_injected(fault: InjectedFault) -> (ErrorClass, FailureCause) {
    match fault {
        InjectedFault::Transient => (ErrorClass::Retryable, FailureCause::Transient),
        InjectedFault::Throttled => (ErrorClass::Retryable, FailureCause::Throttled),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_edge::{EdgeConfig, EdgeFleet, ServiceId};
    use ntc_serverless::{FunctionConfig, FunctionId, PlatformConfig, ServerlessPlatform};
    use ntc_simcore::rng::RngStream;
    use ntc_simcore::units::DataSize;

    fn service_id() -> ServiceId {
        EdgeFleet::new(EdgeConfig::default()).register("svc")
    }

    fn function_id() -> FunctionId {
        ServerlessPlatform::new(PlatformConfig::default(), RngStream::root(0))
            .register(FunctionConfig::new("fn", DataSize::from_mib(128)))
    }

    #[test]
    fn unknown_service_is_terminal() {
        let (class, cause) = classify_edge(&EdgeError::UnknownService(service_id()), SimTime::ZERO);
        assert_eq!(class, ErrorClass::Terminal);
        assert_eq!(cause, FailureCause::Deployment);
    }

    #[test]
    fn installing_service_waits_until_ready() {
        let ready = SimTime::from_secs(30);
        let err = EdgeError::NotInstalled { service: service_id(), ready_at: Some(ready) };
        let (class, cause) = classify_edge(&err, SimTime::from_secs(10));
        assert_eq!(class, ErrorClass::WaitUntil(ready));
        assert_eq!(cause, FailureCause::Deployment);
    }

    #[test]
    fn ready_but_rejected_service_is_retryable() {
        let err = EdgeError::NotInstalled {
            service: service_id(),
            ready_at: Some(SimTime::from_secs(5)),
        };
        let (class, _) = classify_edge(&err, SimTime::from_secs(10));
        assert_eq!(class, ErrorClass::Retryable);
    }

    #[test]
    fn never_installable_service_falls_back() {
        let err = EdgeError::NotInstalled { service: service_id(), ready_at: None };
        let (class, cause) = classify_edge(&err, SimTime::ZERO);
        assert_eq!(class, ErrorClass::Fallback);
        assert_eq!(cause, FailureCause::Deployment);
    }

    #[test]
    fn out_of_order_submissions_are_terminal_bugs() {
        let e = EdgeError::OutOfOrder { submitted: SimTime::ZERO, latest: SimTime::from_secs(1) };
        assert_eq!(
            classify_edge(&e, SimTime::ZERO),
            (ErrorClass::Terminal, FailureCause::Ordering)
        );
        let i = InvokeError::OutOfOrder { submitted: SimTime::ZERO, latest: SimTime::from_secs(1) };
        assert_eq!(classify_invoke(&i), (ErrorClass::Terminal, FailureCause::Ordering));
    }

    #[test]
    fn exhausted_capacity_falls_back() {
        let (class, cause) = classify_invoke(&InvokeError::CapacityExhausted);
        assert_eq!(class, ErrorClass::Fallback);
        assert_eq!(cause, FailureCause::Capacity);
    }

    #[test]
    fn unknown_function_is_terminal() {
        let (class, cause) = classify_invoke(&InvokeError::UnknownFunction(function_id()));
        assert_eq!(class, ErrorClass::Terminal);
        assert_eq!(cause, FailureCause::Deployment);
    }

    #[test]
    fn timeouts_fall_back_rather_than_retry() {
        assert_eq!(classify_timeout(), (ErrorClass::Fallback, FailureCause::Timeout));
    }

    #[test]
    fn injected_faults_are_retryable() {
        assert_eq!(
            classify_injected(InjectedFault::Transient),
            (ErrorClass::Retryable, FailureCause::Transient)
        );
        assert_eq!(
            classify_injected(InjectedFault::Throttled),
            (ErrorClass::Retryable, FailureCause::Throttled)
        );
    }

    #[test]
    fn cause_names_are_stable() {
        assert_eq!(FailureCause::Transient.to_string(), "transient");
        assert_eq!(FailureCause::EdgeOutage.name(), "edge-outage");
        assert_eq!(FailureCause::SiteOutage.name(), "site-outage");
        assert_eq!(FailureCause::HedgeCancelled.name(), "hedge-cancelled");
    }

    #[test]
    fn only_hedge_cancellation_is_a_cancellation() {
        assert!(FailureCause::HedgeCancelled.is_cancellation());
        assert!(!FailureCause::Timeout.is_cancellation());
        assert!(!FailureCause::Transient.is_cancellation());
    }

    #[test]
    fn outages_wait_when_bounded_and_fall_back_when_not() {
        assert_eq!(classify_outage("edge", Outage::Online), None);
        let resume = SimTime::from_secs(90);
        assert_eq!(
            classify_outage("edge", Outage::Until(resume)),
            Some((ErrorClass::WaitUntil(resume), FailureCause::EdgeOutage))
        );
        assert_eq!(
            classify_outage("edge", Outage::Forever),
            Some((ErrorClass::Fallback, FailureCause::EdgeOutage))
        );
        // Non-edge sites report the generic cause.
        assert_eq!(
            classify_outage("cloud", Outage::Forever),
            Some((ErrorClass::Fallback, FailureCause::SiteOutage))
        );
    }
}
