//! Static description of how unreliable the world is.

use std::collections::BTreeMap;

use ntc_net::ConnectivityTrace;
use ntc_simcore::units::SimDuration;
use serde::{Deserialize, Serialize};

/// Fault-injection parameters for one environment.
///
/// Rates are per-attempt probabilities in `[0, 1]`. The default
/// ([`FaultConfig::none`]) injects nothing, so environments that predate
/// fault modelling behave exactly as before.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that one offloaded invocation attempt fails with a
    /// transient error (instance crash, dropped response, 5xx).
    pub transient_rate: f64,
    /// Probability that one offloaded invocation attempt is throttled by
    /// the platform (429-style admission rejection).
    pub throttle_rate: f64,
    /// When the edge site is reachable at all: outage windows during
    /// which every edge invocation is rejected. Plays the same role for
    /// the edge fleet that the UE `ConnectivityTrace` plays for the
    /// device radio.
    pub edge_availability: ConnectivityTrace,
    /// Availability schedules for additional execution sites, keyed by
    /// site id (e.g. `"cloud"`, or a plug-in site such as
    /// `"cloud-eu"`). Sites absent from the map are always online. An
    /// `"edge"` entry overrides
    /// [`edge_availability`](Self::edge_availability).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub site_availability: BTreeMap<String, ConnectivityTrace>,
    /// Probability that a UE-side transfer drops mid-flight and must
    /// re-send part of its payload.
    pub transfer_drop_rate: f64,
    /// Fraction of the transfer re-done after each mid-flight drop
    /// (partial-progress loss), in `[0, 1]`.
    pub transfer_progress_loss: f64,
    /// How long the caller takes to observe a failed attempt (error
    /// propagation + detection), charged before any recovery action.
    pub error_detect_latency: SimDuration,
}

impl FaultConfig {
    /// A world without injected faults.
    pub fn none() -> Self {
        FaultConfig {
            transient_rate: 0.0,
            throttle_rate: 0.0,
            edge_availability: ConnectivityTrace::always(),
            site_availability: BTreeMap::new(),
            transfer_drop_rate: 0.0,
            transfer_progress_loss: 0.5,
            error_detect_latency: SimDuration::from_millis(500),
        }
    }

    /// Only transient invocation errors, at the given per-attempt rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn transient(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        FaultConfig { transient_rate: rate, ..FaultConfig::none() }
    }

    /// Whether this configuration injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.transient_rate == 0.0
            && self.throttle_rate == 0.0
            && self.transfer_drop_rate == 0.0
            && self.edge_availability.offline_fraction() == 0.0
            && self.site_availability.values().all(|t| t.offline_fraction() == 0.0)
    }

    /// Combined per-attempt probability of any injected invocation fault.
    pub fn invocation_fault_rate(&self) -> f64 {
        (self.transient_rate + self.throttle_rate).min(1.0)
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_injects_nothing() {
        let c = FaultConfig::none();
        assert!(c.is_none());
        assert_eq!(c.invocation_fault_rate(), 0.0);
    }

    #[test]
    fn transient_sets_only_the_transient_rate() {
        let c = FaultConfig::transient(0.1);
        assert!(!c.is_none());
        assert_eq!(c.transient_rate, 0.1);
        assert_eq!(c.throttle_rate, 0.0);
        assert!((c.invocation_fault_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn transient_rejects_out_of_range_rates() {
        let _ = FaultConfig::transient(1.5);
    }

    #[test]
    fn edge_outages_make_a_config_non_trivial() {
        let c =
            FaultConfig { edge_availability: ConnectivityTrace::flaky(), ..FaultConfig::none() };
        assert!(!c.is_none());
    }

    #[test]
    fn combined_rate_saturates_at_one() {
        let c = FaultConfig { transient_rate: 0.8, throttle_rate: 0.7, ..FaultConfig::none() };
        assert_eq!(c.invocation_fault_rate(), 1.0);
    }
}
