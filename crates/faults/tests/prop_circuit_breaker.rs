//! Property-based tests of the circuit-breaker invariants: an Open
//! breaker always recovers once its site does, and healthy (Closed)
//! sites are never probed.

use proptest::prelude::*;

use ntc_faults::health::{Admission, BreakerState, HealthConfig, SiteHealth};
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{SimDuration, SimTime};

fn config(failure_threshold: u32, error_rate_threshold: f64, alpha: f64) -> HealthConfig {
    HealthConfig {
        failure_threshold,
        error_rate_threshold,
        ewma_alpha: alpha,
        min_samples: 4,
        ..HealthConfig::overload_default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// However the breaker was tripped (any failure pattern, any
    /// threshold configuration), once the site recovers — every probe
    /// from now on succeeds — the breaker reaches Closed again in a
    /// bounded number of cooldown cycles. It never stays Open forever.
    #[test]
    fn breaker_never_stays_open_under_a_recovering_site(
        seed in 0u64..1024,
        failure_threshold in 1u32..8,
        error_rate_threshold in 0.2f64..0.9,
        alpha in 0.05f64..0.6,
        failures in 1u32..64,
    ) {
        let cfg = config(failure_threshold, error_rate_threshold, alpha);
        let mut h = SiteHealth::new("edge", cfg);
        let rng = RngStream::root(seed).derive("health");

        // Arbitrary outage: hammer the site with at least enough
        // consecutive failures to trip whichever threshold binds first.
        let mut t = SimTime::ZERO;
        for _ in 0..failures.max(failure_threshold) {
            h.record_failure(t, &rng);
            t += SimDuration::from_secs(1);
        }
        prop_assert_eq!(h.state(), BreakerState::Open, "enough failures must trip");

        // The site recovers: every admitted request now succeeds. Walk
        // time forward; each step either waits out a cooldown or answers
        // a probe. The longest possible path is one probe per cooldown,
        // and cooldowns are capped, so a handful of cycles must suffice.
        for _ in 0..16 {
            if h.state() == BreakerState::Closed {
                break;
            }
            t += cfg.cooldown_cap;
            match h.check(t) {
                Admission::Probe => h.record_success(SimDuration::from_secs(1)),
                Admission::Ready => {}
                Admission::Unavailable => prop_assert!(
                    false,
                    "breaker unavailable a full cooldown_cap after opening at {t}"
                ),
            }
        }
        prop_assert_eq!(
            h.state(),
            BreakerState::Closed,
            "recovering site stuck {:?} after 16 cooldown cycles",
            h.state()
        );
        // And once Closed, traffic flows immediately.
        prop_assert_eq!(h.check(t), Admission::Ready);
    }

    /// A Closed breaker never answers `Probe`: probes are reserved for
    /// the HalfOpen recovery handshake, so healthy sites see normal
    /// traffic only — regardless of how many sub-threshold failures and
    /// successes they absorb.
    #[test]
    fn closed_sites_are_never_probed(
        seed in 0u64..1024,
        pattern in 0u64..u64::MAX,
        steps in 1u32..200,
    ) {
        // High thresholds keep the breaker Closed through the whole run.
        let cfg = config(u32::MAX, 1.1, 0.2);
        let mut h = SiteHealth::new("cloud", cfg);
        let rng = RngStream::root(seed).derive("health");

        let mut t = SimTime::ZERO;
        for i in 0..steps {
            prop_assert_eq!(h.state(), BreakerState::Closed);
            let adm = h.check(t);
            prop_assert!(
                adm == Admission::Ready,
                "closed site answered {:?} at step {}", adm, i
            );
            if (pattern >> (i % 64)) & 1 == 1 {
                h.record_failure(t, &rng);
            } else {
                h.record_success(SimDuration::from_secs(2));
            }
            t += SimDuration::from_secs(30);
        }
        prop_assert_eq!(h.transitions(), 0, "a closed-forever site transitions never");
    }
}
