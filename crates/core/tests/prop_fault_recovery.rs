//! Property-based tests of the fault-recovery invariants: for any fault
//! plan short of total failure, a patiently retrying NTC policy loses no
//! jobs, and its retry accounting stays physically consistent.

use proptest::prelude::*;

use ntc_core::{Engine, Environment, FaultConfig, NtcConfig, OffloadPolicy};
use ntc_faults::{RetryBudget, RetryPolicy};
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any transient/throttle fault rate below 1.0, combined with an
    /// unbounded retry budget, yields zero NTC job loss; every job makes
    /// at least one attempt; and backoff time fits inside the job's
    /// dispatch-to-finish span.
    #[test]
    fn unbounded_retries_absorb_any_partial_fault_rate(
        transient in 0.0f64..0.6,
        throttle in 0.0f64..0.3,
        drop_rate in 0.0f64..0.5,
        seed in 0u64..32,
    ) {
        let mut env = Environment::metro_reference();
        env.faults = FaultConfig {
            transient_rate: transient,
            throttle_rate: throttle,
            transfer_drop_rate: drop_rate,
            ..FaultConfig::none()
        };
        let policy = OffloadPolicy::Ntc(NtcConfig {
            retry: RetryPolicy {
                base: SimDuration::from_secs(1),
                cap: SimDuration::from_secs(60),
                max_attempts: u32::MAX,
                budget: RetryBudget::Unbounded,
            },
            ..Default::default()
        });
        let specs = [StreamSpec::poisson(Archetype::LogAnalytics, 0.01)];
        let engine = Engine::new(env, seed);
        let r = engine.run(&policy, &specs, SimDuration::from_hours(2));

        prop_assert_eq!(r.failures(), 0, "lost jobs at rate {}+{}", transient, throttle);
        for j in &r.jobs {
            prop_assert!(j.attempts >= 1, "job {} made no attempts", j.id);
            prop_assert!(
                j.backoff <= j.finish.saturating_duration_since(j.dispatched),
                "job {} backoff {} exceeds its {}..{} execution span",
                j.id, j.backoff, j.dispatched, j.finish
            );
            prop_assert!(j.cause.is_none());
        }
    }
}
