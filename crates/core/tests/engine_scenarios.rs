//! Scenario tests of the execution engine under varied environments:
//! rural networks, IoT hardware, constrained platforms, congestion, and
//! the off-peak extension.

use ntc_core::{DeviceModel, Engine, Environment, NtcConfig, OffloadPolicy};
use ntc_net::{BandwidthTrace, Topology};
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};

#[test]
fn rural_topology_shifts_the_balance_toward_local() {
    // Slower WAN makes offloading photo batches less attractive in
    // latency; the cloud still wins on battery.
    let mut env = Environment::metro_reference();
    env.topology = Topology::rural_reference();
    let engine = Engine::new(env, 21);
    let specs = [StreamSpec::poisson(Archetype::PhotoPipeline, 0.02)];
    let horizon = SimDuration::from_hours(2);
    let local = engine.run(&OffloadPolicy::LocalOnly, &specs, horizon);
    let cloud = engine.run(&OffloadPolicy::CloudAll, &specs, horizon);
    assert!(cloud.device_energy < local.device_energy);
    // The rural WAN inflates cloud latency well past the metro case.
    let metro = Engine::new(Environment::metro_reference(), 21).run(
        &OffloadPolicy::CloudAll,
        &specs,
        horizon,
    );
    let rural_p50 = cloud.latency_summary().unwrap().p50;
    let metro_p50 = metro.latency_summary().unwrap().p50;
    assert!(rural_p50 > metro_p50 * 1.3, "rural {rural_p50} vs metro {metro_p50}");
}

#[test]
fn iot_gateway_benefits_even_more_from_offloading() {
    let mut env = Environment::metro_reference();
    env.device = DeviceModel::iot_gateway();
    let engine = Engine::new(env, 22);
    let specs = [StreamSpec::poisson(Archetype::SciSweep, 0.002)];
    let horizon = SimDuration::from_hours(3);
    let local = engine.run(&OffloadPolicy::LocalOnly, &specs, horizon);
    let cloud = engine.run(&OffloadPolicy::CloudAll, &specs, horizon);
    let l50 = local.latency_summary().unwrap().p50;
    let c50 = cloud.latency_summary().unwrap().p50;
    // 800 MHz gateway vs a 2.5 GHz vCPU: at least 2.5x faster offloaded.
    assert!(c50 < l50 / 2.5, "cloud {c50}s vs local {l50}s");
}

#[test]
fn congestion_free_world_is_faster_for_cloud_transfers() {
    let mut free = Environment::metro_reference();
    free.wan_congestion = BandwidthTrace::constant();
    let congested = Environment::metro_reference();
    let specs = [StreamSpec::poisson(Archetype::VideoTranscode, 0.003)];
    // Must span the congested hours (08:00 onwards, worst 18:00-23:00).
    let horizon = SimDuration::from_hours(24);
    let fast = Engine::new(free, 23).run(&OffloadPolicy::CloudAll, &specs, horizon);
    let slow = Engine::new(congested, 23).run(&OffloadPolicy::CloudAll, &specs, horizon);
    let f95 = fast.latency_summary().unwrap().p95;
    let s95 = slow.latency_summary().unwrap().p95;
    assert!(f95 < s95, "constant-bandwidth p95 {f95} should beat congested {s95}");
    // Less time on the radio also means less battery.
    assert!(fast.device_energy <= slow.device_energy);
}

#[test]
fn off_peak_policy_meets_deadlines_and_holds_into_the_night() {
    let engine = Engine::new(Environment::metro_reference(), 24);
    let specs = [StreamSpec::poisson(Archetype::SciSweep, 0.002)]; // 24 h slack
    let horizon = SimDuration::from_hours(30);
    let policy = OffloadPolicy::Ntc(NtcConfig { off_peak: true, ..Default::default() });
    let r = engine.run(&policy, &specs, horizon);
    assert_eq!(r.deadline_misses(), 0);
    assert_eq!(policy.name(), "ntc[+offpeak]");
    // Jobs arriving during the day are held to the 00:00–06:00 band.
    let held_to_night = r
        .jobs
        .iter()
        .filter(|j| {
            let arrival_hour = (j.arrival.as_micros() / 3_600_000_000) % 24;
            let dispatch_hour = (j.dispatched.as_micros() / 3_600_000_000) % 24;
            (6..24).contains(&arrival_hour) && dispatch_hour < 6
        })
        .count();
    assert!(held_to_night > 0, "daytime arrivals should ride the night band");
}

#[test]
fn tiny_edge_fleet_saturates_where_cloud_does_not() {
    let mut env = Environment::metro_reference();
    env.edge.servers = 1;
    env.edge.slots_per_server = 1;
    let engine = Engine::new(env, 25);
    // Tight slack so queueing converts to misses.
    let specs = [StreamSpec::poisson(Archetype::LogAnalytics, 0.2).with_slack_factor(0.05)];
    let horizon = SimDuration::from_hours(1);
    let edge = engine.run(&OffloadPolicy::EdgeAll, &specs, horizon);
    let cloud = engine.run(&OffloadPolicy::CloudAll, &specs, horizon);
    assert!(edge.miss_rate() > 0.5, "a one-slot fleet must drown: {}", edge.miss_rate());
    assert!(cloud.miss_rate() < 0.05, "the elastic cloud must not: {}", cloud.miss_rate());
}

#[test]
fn free_billing_makes_ntc_and_cloud_all_cost_nothing() {
    let mut env = Environment::metro_reference();
    env.platform.billing = ntc_serverless::BillingModel::free();
    env.energy_price_per_joule = ntc_simcore::units::Money::ZERO;
    let engine = Engine::new(env, 26);
    let specs = [StreamSpec::poisson(Archetype::MlInference, 0.02)];
    let horizon = SimDuration::from_hours(1);
    for policy in [OffloadPolicy::CloudAll, OffloadPolicy::ntc()] {
        let r = engine.run(&policy, &specs, horizon);
        assert_eq!(r.total_cost(), ntc_simcore::units::Money::ZERO, "{policy}");
    }
}

#[test]
fn ntc_survives_transient_faults_that_sink_the_baseline() {
    // Acceptance scenario for the fault-injection subsystem: at a 10%
    // transient invocation-fault rate, the retrying NTC policy completes
    // at least 99% of jobs while the zero-retry cloud baseline loses a
    // strictly positive fraction of the very same stream.
    let mut env = Environment::metro_reference();
    env.faults = ntc_core::FaultConfig::transient(0.10);
    let engine = Engine::new(env, 42);
    let specs = [
        StreamSpec::poisson(Archetype::PhotoPipeline, 0.01),
        StreamSpec::poisson(Archetype::LogAnalytics, 0.008),
    ];
    let horizon = SimDuration::from_hours(6);

    let ntc = engine.run(&OffloadPolicy::ntc(), &specs, horizon);
    let baseline = engine.run(&OffloadPolicy::CloudAll, &specs, horizon);

    assert!(!ntc.jobs.is_empty());
    let completed = ntc.jobs.len() as u64 - ntc.failures();
    assert!(
        completed as f64 >= 0.99 * ntc.jobs.len() as f64,
        "ntc completed {completed}/{} under 10% faults",
        ntc.jobs.len()
    );
    assert!(ntc.total_retries() > 0, "ntc must have retried through faults");
    assert!(baseline.failures() > 0, "the zero-retry baseline must lose jobs at a 10% fault rate");
    // Determinism: the same seed reproduces the faulty run bit-for-bit.
    let again = engine.run(&OffloadPolicy::ntc(), &specs, horizon);
    assert_eq!(ntc.jobs, again.jobs);
}

#[test]
fn horizon_tail_jobs_still_complete() {
    // Jobs arriving just before the horizon drain after it; nothing is
    // silently dropped.
    let engine = Engine::new(Environment::metro_reference(), 27);
    let specs = [StreamSpec::poisson(Archetype::ReportRendering, 0.05)];
    let horizon = SimDuration::from_mins(30);
    let r = engine.run(&OffloadPolicy::ntc(), &specs, horizon);
    let generated = ntc_workloads::generate_jobs(
        &specs,
        horizon,
        &ntc_simcore::rng::RngStream::root(27).derive("engine").derive("jobs"),
    );
    assert_eq!(r.jobs.len(), generated.len(), "every generated job must have a result");
}
