//! Determinism regression tests: the engine's reproducibility contract.
//!
//! The contract has three faces, and each one guards a different
//! optimisation in the kernel:
//!
//! * *run twice, same bytes* — the calendar event queue must preserve the
//!   heap's exact (time, FIFO) pop order;
//! * *fresh scratch vs reused scratch, same bytes* — [`RunScratch`] reuse
//!   must refill buffers, never leak state between runs;
//! * *1 thread vs N threads, same bytes* — the sweep runner's derived
//!   seeds and order-stable collection must make thread count invisible.
//!
//! "Same bytes" is literal: results are compared through their serialized
//! JSON, the same representation the fig/tab binaries commit to
//! `results/`.

use ntc_core::{run_replications, Engine, Environment, OffloadPolicy, RunResult, RunScratch};
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};

fn specs() -> [StreamSpec; 2] {
    [
        StreamSpec::poisson(Archetype::PhotoPipeline, 0.03),
        StreamSpec::poisson(Archetype::MlInference, 0.01),
    ]
}

fn horizon() -> SimDuration {
    SimDuration::from_mins(45)
}

/// Serializes exactly like the bench binaries do, so "byte-identical"
/// here means byte-identical in `results/`.
fn bytes(r: &RunResult) -> String {
    serde_json::to_string(r).expect("RunResult serializes")
}

#[test]
fn same_seed_same_bytes_across_runs() {
    let engine = Engine::new(Environment::metro_reference(), 9);
    for policy in [OffloadPolicy::ntc(), OffloadPolicy::CloudAll, OffloadPolicy::LocalOnly] {
        let a = engine.run(&policy, &specs(), horizon());
        let b = engine.run(&policy, &specs(), horizon());
        assert_eq!(bytes(&a), bytes(&b), "two runs of {} diverged", policy.name());
    }
}

#[test]
fn reused_scratch_matches_fresh_run() {
    let engine = Engine::new(Environment::metro_reference(), 9);
    let policy = OffloadPolicy::ntc();
    let fresh: Vec<String> = (0..4)
        .map(|i| {
            bytes(&engine.run_seeded(9 + i, &policy, &specs(), horizon(), &mut RunScratch::new()))
        })
        .collect();
    // One scratch across all seeds — and dirty it with a different
    // workload first, so the test fails if any buffer survives reset.
    let mut scratch = RunScratch::new();
    engine.run_seeded(
        1234,
        &OffloadPolicy::EdgeAll,
        &[StreamSpec::poisson(Archetype::ReportRendering, 0.05)],
        SimDuration::from_mins(20),
        &mut scratch,
    );
    for (i, expected) in fresh.iter().enumerate() {
        let got =
            bytes(&engine.run_seeded(9 + i as u64, &policy, &specs(), horizon(), &mut scratch));
        assert_eq!(&got, expected, "reused scratch diverged on seed {}", 9 + i as u64);
    }
}

#[test]
fn thread_count_is_invisible_in_replications() {
    let env = Environment::metro_reference();
    let policy = OffloadPolicy::ntc();
    let one = run_replications(&env, &policy, &specs(), horizon(), 70, 6, 1);
    for threads in [2, 3, 6, 8] {
        let many = run_replications(&env, &policy, &specs(), horizon(), 70, 6, threads);
        assert_eq!(one.len(), many.len());
        for (i, (a, b)) in one.iter().zip(&many).enumerate() {
            assert_eq!(
                bytes(a),
                bytes(b),
                "replication {i} diverged between 1 and {threads} threads"
            );
        }
    }
}
