//! Behavioral conformance suite for [`ExecutionSite`] implementations.
//!
//! Every trait obligation gets one `#[test]`, exercised against all
//! registered sites through the same generic fixture, so a fourth
//! backend inherits the whole suite by being added to the registry (and
//! to [`fixture`]'s provisioning loop if it needs provisioning).

use ntc_core::{
    deploy, Deployment, Environment, InvokeRequest, OffloadPolicy, SiteId, SiteRegistry, SiteRole,
};
use ntc_faults::{FaultConfig, FaultPlan, SiteOutage};
use ntc_net::ConnectivityTrace;
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{Cycles, SimDuration, SimTime};
use ntc_taskgraph::ComponentId;
use ntc_workloads::Archetype;

/// A registry with one provisioned deployment per remote site: index 0 is
/// cloud-backed, index 1 is edge-backed. Deterministic for a given seed.
struct Fixture {
    env: Environment,
    registry: SiteRegistry,
    deployments: Vec<Deployment>,
}

/// One provisioned (site, deployment, component) case.
struct Case {
    site: SiteId,
    di: usize,
    comp: ComponentId,
}

fn fixture(seed: u64) -> Fixture {
    let env = Environment::metro_reference();
    let rng = RngStream::root(seed);
    let mut registry = SiteRegistry::standard(&env, &rng);
    let slack = Archetype::PhotoPipeline.typical_slack();
    let deployments = vec![
        deploy(&OffloadPolicy::CloudAll, Archetype::PhotoPipeline, &env, 0.1, slack, &rng),
        deploy(&OffloadPolicy::EdgeAll, Archetype::PhotoPipeline, &env, 0.1, slack, &rng),
    ];
    for (di, d) in deployments.iter().enumerate() {
        let comp = d.plan.offloaded().next().expect("full offload has offloaded components");
        let site = registry.get_mut(&SiteId::from(d.backend));
        site.attach();
        site.provision(di, d, comp, SiteRole::Primary);
    }
    Fixture { env, registry, deployments }
}

impl Fixture {
    /// The provisioned remote cases plus the (provision-free) device case.
    fn cases(&self) -> Vec<Case> {
        let mut cases: Vec<Case> = self
            .deployments
            .iter()
            .enumerate()
            .map(|(di, d)| Case {
                site: SiteId::from(d.backend),
                di,
                comp: d.plan.offloaded().next().expect("offloaded component"),
            })
            .collect();
        cases.push(Case { site: SiteId::device(), di: 0, comp: ComponentId::from_index(0) });
        cases
    }

    /// Runs one batch-sized invocation of `case` at `at` and returns the
    /// outcome. Remote sites get the coalesced work, the device site the
    /// per-member split of the same total.
    fn invoke(&mut self, case: &Case, at: SimTime, work: Cycles) -> ntc_core::SiteOutcome {
        let member_works = [work];
        let remote = self.registry.get(&case.site).is_remote();
        let req = InvokeRequest {
            at,
            di: case.di,
            comp: case.comp,
            work: if remote { work } else { Cycles::new(0) },
            member_works: if remote { &[] } else { &member_works },
            device: &self.env.device,
        };
        self.registry.get_mut(&case.site).invoke(&req)
    }
}

/// A fault plan in which every *remote* site is permanently offline.
fn all_remote_sites_dark(fx: &Fixture) -> FaultPlan {
    let mut cfg = FaultConfig::none();
    let dead = ConnectivityTrace::new(SimDuration::from_hours(1), vec![(SimDuration::ZERO, false)]);
    for site in fx.registry.iter().filter(|s| s.is_remote()) {
        cfg.site_availability.insert(site.id().as_str().to_string(), dead.clone());
    }
    FaultPlan::new(cfg, RngStream::root(1))
}

#[test]
fn identities_and_ranks_are_distinct_and_device_is_last() {
    let fx = fixture(7);
    let ids: Vec<&SiteId> = fx.registry.iter().map(|s| s.id()).collect();
    let mut unique = ids.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), ids.len(), "site ids must be unique");
    let ranks: Vec<u32> = fx.registry.iter().map(|s| s.fallback_rank()).collect();
    assert!(ranks.windows(2).all(|w| w[0] < w[1]), "registry iterates in strict rank order");
    let last = fx.registry.iter().last().expect("non-empty registry");
    assert_eq!(last.id(), &SiteId::device(), "the device is the fallback of last resort");
    assert!(!last.is_remote());
}

#[test]
fn outages_honor_the_fault_plan_on_every_remote_site() {
    let fx = fixture(7);
    let dark = all_remote_sites_dark(&fx);
    let clear = FaultPlan::new(FaultConfig::none(), RngStream::root(1));
    let at = SimTime::ZERO + SimDuration::from_mins(30);
    for site in fx.registry.iter() {
        if site.is_remote() {
            assert_eq!(
                site.outage(&dark, at),
                SiteOutage::Forever,
                "{}: a permanently-dark schedule must read as Forever",
                site.id()
            );
        } else {
            // A member's device is reachable from itself even when every
            // remote site is dark.
            assert_eq!(site.outage(&dark, at), SiteOutage::Online, "{}", site.id());
        }
        assert_eq!(site.outage(&clear, at), SiteOutage::Online, "{}", site.id());
    }
}

#[test]
fn provisioning_gates_can_serve_on_remote_sites_only() {
    let env = Environment::metro_reference();
    let registry = SiteRegistry::standard(&env, &RngStream::root(3));
    let comp = ComponentId::from_index(0);
    for site in registry.iter() {
        assert_eq!(
            site.can_serve(0, comp),
            !site.is_remote(),
            "{}: fresh remote sites serve nothing; the device serves anything",
            site.id()
        );
    }
    let fx = fixture(7);
    for case in fx.cases() {
        assert!(
            fx.registry.get(&case.site).can_serve(case.di, case.comp),
            "{}: provisioned component must be servable",
            case.site
        );
    }
}

#[test]
fn cost_is_monotone_in_work() {
    let at = SimTime::ZERO + SimDuration::from_hours(1);
    let light = Cycles::new(1_000_000);
    let heavy = Cycles::new(50_000_000_000);
    let horizon_end = SimTime::ZERO + SimDuration::from_hours(2);
    let drained = SimTime::ZERO + SimDuration::from_hours(10);
    let cases = fixture(7).cases();
    for case in &cases {
        let run = |work: Cycles| {
            let mut fx = fixture(7);
            fx.invoke(case, at, work).unwrap_or_else(|e| {
                panic!("{}: clean invocation failed: {e:?}", case.site);
            });
            fx.registry.get_mut(&case.site).cost(drained, horizon_end)
        };
        let cheap = run(light);
        let dear = run(heavy);
        assert!(
            dear >= cheap,
            "{}: cost must not decrease with work ({cheap} vs {dear})",
            case.site
        );
        let fx = fixture(7);
        if fx.registry.get(&case.site).capabilities().metered {
            assert!(dear > cheap, "{}: metered sites bill execution time", case.site);
        }
    }
}

#[test]
fn invocations_are_deterministic_under_a_fixed_seed() {
    let at = SimTime::ZERO + SimDuration::from_hours(1);
    let work = Cycles::new(10_000_000_000);
    let cases = fixture(7).cases();
    for case in &cases {
        let mut a = fixture(7);
        let mut b = fixture(7);
        let ra = a.invoke(case, at, work).expect("clean invocation succeeds");
        let rb = b.invoke(case, at, work).expect("clean invocation succeeds");
        assert_eq!(ra, rb, "{}: same seed must replay the same outcome", case.site);
        assert!(ra.finish >= at, "{}: completion cannot precede submission", case.site);
    }
}

#[test]
fn health_reporting_obligations_hold_for_every_site() {
    let fx = fixture(7);
    for site in fx.registry.iter() {
        let hint = site.concurrency_hint();
        assert!(hint >= 1, "{}: concurrency hint must be at least 1", site.id());
        assert_eq!(
            hint,
            site.concurrency_hint(),
            "{}: the hint is a static width, not a load signal",
            site.id()
        );
        if !site.is_remote() {
            // The device scales per member: it never queues, which it
            // reports as unbounded width.
            assert_eq!(hint, u32::MAX, "{}", site.id());
        }
    }
    // The fixed edge fleet is the one genuinely bounded site: its width
    // is exactly its slot count, the divisor the admission controller
    // turns queue occupancy into waiting time with.
    let edge = fx.registry.get(&SiteId::edge());
    let slots = fx.env.edge.servers * fx.env.edge.slots_per_server;
    assert_eq!(edge.concurrency_hint(), slots, "edge width is its slot count");
    assert!(edge.concurrency_hint() < u32::MAX, "a fixed fleet is bounded");
}

#[test]
fn shares_and_paths_stay_physical() {
    let fx = fixture(7);
    for site in fx.registry.iter() {
        for hour in 0..24 {
            let at = SimTime::ZERO + SimDuration::from_hours(hour);
            let share = site.wan_share(&fx.env, at);
            assert!(
                share > 0.0 && share <= 1.0,
                "{}: wan share {share} at hour {hour} outside (0, 1]",
                site.id()
            );
        }
        let planning = site.planning_share(&fx.env);
        assert!(planning > 0.0 && planning <= 1.0, "{}", site.id());
        assert!(site.ue_path(&fx.env).base_latency() >= SimDuration::ZERO);
        assert!(
            site.execution_speed(&fx.env, ntc_core::deploy::DEFAULT_MEMORY).as_hz() > 0,
            "{}: execution speed must be positive",
            site.id()
        );
    }
}
