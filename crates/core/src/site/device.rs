//! The on-device execution site: the fallback of last resort.

use ntc_alloc::SiteCapabilities;
use ntc_faults::{FaultPlan, SiteOutage};
use ntc_net::PathModel;
use ntc_simcore::units::{ClockSpeed, DataSize, Energy, Money, SimDuration, SimTime};
use ntc_taskgraph::ComponentId;

use super::{ExecutionSite, InvokeRequest, Invoked, SiteId, SiteOutcome, SiteRole};
use crate::deploy::Deployment;
use crate::environment::Environment;

/// Execution on the batch members' own devices: each member runs its own
/// share in parallel, so wall-clock is the slowest member and battery
/// energy is paid by every member. Needs no provisioning, suffers no
/// outages, costs no money — only time and battery.
#[derive(Debug)]
pub struct DeviceSite {
    id: SiteId,
}

impl DeviceSite {
    /// A fresh device site.
    pub fn new() -> Self {
        DeviceSite { id: SiteId::device() }
    }
}

impl Default for DeviceSite {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecutionSite for DeviceSite {
    fn id(&self) -> &SiteId {
        &self.id
    }

    fn is_remote(&self) -> bool {
        false
    }

    fn fallback_rank(&self) -> u32 {
        30
    }

    fn ue_path<'e>(&self, env: &'e Environment) -> &'e PathModel {
        // Device execution never crosses the network; the edge path is
        // the conservative stand-in for planning queries that insist.
        &env.topology.ue_edge
    }

    fn internal_path<'e>(&self, env: &'e Environment) -> &'e PathModel {
        &env.intra_edge
    }

    fn wan_share(&self, _env: &Environment, _at: SimTime) -> f64 {
        1.0
    }

    fn planning_share(&self, _env: &Environment) -> f64 {
        1.0
    }

    fn outage(&self, _faults: &FaultPlan, _at: SimTime) -> SiteOutage {
        // A member's device is, by definition, reachable from itself.
        SiteOutage::Online
    }

    fn attach(&mut self) {}

    fn provision(
        &mut self,
        _di: usize,
        _d: &Deployment,
        _comp: ComponentId,
        _role: SiteRole,
    ) -> Option<SimDuration> {
        None
    }

    fn can_serve(&self, _di: usize, _comp: ComponentId) -> bool {
        true
    }

    fn invoke(&mut self, req: &InvokeRequest<'_>) -> SiteOutcome {
        let mut slowest = SimDuration::ZERO;
        let mut energy = Energy::ZERO;
        for &work in req.member_works {
            slowest = slowest.max(req.device.execution_time(work));
            energy += req.device.compute_energy(work);
        }
        Ok(Invoked { finish: req.at + slowest, device_energy: energy })
    }

    fn keep_warm(&mut self, _at: SimTime, _di: usize, _comp: ComponentId) {}

    fn cost(&mut self, _drained_end: SimTime, _horizon_end: SimTime) -> Money {
        Money::ZERO
    }

    fn execution_speed(&self, env: &Environment, _memory: DataSize) -> ClockSpeed {
        env.device.clock
    }

    fn marginal_cost(&self, _env: &Environment, _memory: DataSize) -> (Money, Money) {
        (Money::ZERO, Money::ZERO)
    }

    fn capabilities(&self) -> SiteCapabilities {
        SiteCapabilities::local()
    }

    fn concurrency_hint(&self) -> u32 {
        // Every member executes on its own hardware: width scales with
        // the batch, so the site never queues.
        u32::MAX
    }
}
