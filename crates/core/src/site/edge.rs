//! The edge fleet execution site.

use std::collections::HashMap;

use ntc_alloc::SiteCapabilities;
use ntc_edge::{EdgeConfig, EdgeFleet, ServiceId};
use ntc_faults::{classify_edge, FaultPlan, SiteOutage};
use ntc_net::PathModel;
use ntc_simcore::units::{ClockSpeed, DataSize, Energy, Money, SimDuration, SimTime};
use ntc_taskgraph::ComponentId;

use super::{ExecutionSite, InvokeRequest, Invoked, SiteId, SiteOutcome, SiteRole};
use crate::deploy::Deployment;
use crate::environment::Environment;

/// A pre-paid edge fleet on the metro LAN: slot admission, installation
/// delay, flat standing cost, no per-invocation fee.
#[derive(Debug)]
pub struct EdgeSite {
    id: SiteId,
    fleet: EdgeFleet,
    svcs: HashMap<(usize, ComponentId), ServiceId>,
    /// Whether any deployment targets this site as its primary; the
    /// standing infrastructure cost is billed from the moment it does,
    /// busy or idle.
    attached: bool,
}

impl EdgeSite {
    /// Wraps a fleet built from `config`.
    pub fn new(config: EdgeConfig) -> Self {
        EdgeSite {
            id: SiteId::edge(),
            fleet: EdgeFleet::new(config),
            svcs: HashMap::new(),
            attached: false,
        }
    }

    /// The wrapped fleet (for inspection in tests and reports).
    pub fn fleet(&self) -> &EdgeFleet {
        &self.fleet
    }
}

impl ExecutionSite for EdgeSite {
    fn id(&self) -> &SiteId {
        &self.id
    }

    fn is_remote(&self) -> bool {
        true
    }

    fn fallback_rank(&self) -> u32 {
        10
    }

    fn ue_path<'e>(&self, env: &'e Environment) -> &'e PathModel {
        &env.topology.ue_edge
    }

    fn internal_path<'e>(&self, env: &'e Environment) -> &'e PathModel {
        &env.intra_edge
    }

    fn wan_share(&self, _env: &Environment, _at: SimTime) -> f64 {
        // The edge LAN is assumed provisioned for local traffic;
        // congestion applies to the WAN segment only.
        1.0
    }

    fn planning_share(&self, _env: &Environment) -> f64 {
        1.0
    }

    fn outage(&self, faults: &FaultPlan, at: SimTime) -> SiteOutage {
        faults.site_outage(self.id.as_str(), at)
    }

    fn attach(&mut self) {
        self.attached = true;
    }

    fn provision(
        &mut self,
        di: usize,
        d: &Deployment,
        comp: ComponentId,
        _role: SiteRole,
    ) -> Option<SimDuration> {
        let c = d.graph.component(comp);
        let s = self.fleet.register(format!("{}/{}", d.archetype.name(), c.name()));
        self.fleet.install(SimTime::ZERO, s, c.artifact_size());
        self.svcs.insert((di, comp), s);
        None
    }

    fn can_serve(&self, di: usize, comp: ComponentId) -> bool {
        self.svcs.contains_key(&(di, comp))
    }

    fn invoke(&mut self, req: &InvokeRequest<'_>) -> SiteOutcome {
        let s = self.svcs[&(req.di, req.comp)];
        match self.fleet.invoke(req.at, s, req.work) {
            Ok(out) => Ok(Invoked { finish: out.finish, device_energy: Energy::ZERO }),
            Err(e) => Err(classify_edge(&e, req.at)),
        }
    }

    fn keep_warm(&mut self, _at: SimTime, _di: usize, _comp: ComponentId) {
        // Edge services are always resident once installed.
    }

    fn cost(&mut self, _drained_end: SimTime, horizon_end: SimTime) -> Money {
        if self.attached {
            self.fleet.infrastructure_cost(horizon_end)
        } else {
            Money::ZERO
        }
    }

    fn execution_speed(&self, env: &Environment, _memory: DataSize) -> ClockSpeed {
        env.edge.clock
    }

    fn marginal_cost(&self, _env: &Environment, _memory: DataSize) -> (Money, Money) {
        // Edge infrastructure is pre-paid: marginal money per job is zero.
        (Money::ZERO, Money::ZERO)
    }

    fn capabilities(&self) -> SiteCapabilities {
        SiteCapabilities::flat_rate()
    }

    fn concurrency_hint(&self) -> u32 {
        let c = self.fleet.config();
        c.servers.saturating_mul(c.slots_per_server).max(1)
    }
}
