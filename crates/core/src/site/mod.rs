//! Execution sites: the pluggable backends of the engine.
//!
//! Everything the engine asks of a backend — UE and internal network
//! paths, WAN congestion share, provisioning and invocation semantics,
//! outage lookup, per-invocation and standing cost, and fallback
//! ordering — is captured by the [`ExecutionSite`] trait. The engine
//! itself is backend-agnostic: it walks a per-deployment *site chain*
//! (e.g. edge → cloud → device) and talks to whatever [`SiteRegistry`]
//! entry the chain names. Adding a backend (a second cloud region, a
//! sharded fleet) means implementing the trait and registering it — no
//! engine changes, no new `match` arms.
//!
//! The three built-in sites mirror the paper's comparison:
//!
//! * [`CloudSite`] — a metered serverless platform
//!   ([`ntc_serverless`]): cold starts, queueing, per-invocation
//!   billing, WAN congestion.
//! * [`EdgeSite`] — a pre-paid edge fleet ([`ntc_edge`]): slot
//!   admission, installation delay, flat standing cost, LAN paths.
//! * [`DeviceSite`] — the members' own devices: no transfers, no
//!   faults, battery energy instead of money.

mod cloud;
mod device;
mod edge;

use core::fmt;

pub use cloud::CloudSite;
pub use device::DeviceSite;
pub use edge::EdgeSite;
pub use ntc_alloc::SiteCapabilities;

use ntc_faults::{ErrorClass, FailureCause, FaultPlan, SiteOutage};
use ntc_net::PathModel;
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{ClockSpeed, Cycles, DataSize, Energy, Money, SimDuration, SimTime};
use ntc_taskgraph::ComponentId;
use serde::{Deserialize, Serialize};

use crate::deploy::Deployment;
use crate::device::DeviceModel;
use crate::environment::Environment;
use crate::policy::Backend;

/// The stable identity of one execution site.
///
/// Site ids name registry entries, key fault-plan availability
/// schedules, and appear verbatim in fault keys and reports (the
/// [`Display`](fmt::Display) form), so they must stay stable across
/// runs. The built-in ids are `"cloud"`, `"edge"` and `"device"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SiteId(String);

impl SiteId {
    /// The built-in cloud serverless site.
    pub fn cloud() -> Self {
        SiteId("cloud".into())
    }

    /// The built-in edge fleet site.
    pub fn edge() -> Self {
        SiteId("edge".into())
    }

    /// The built-in on-device site.
    pub fn device() -> Self {
        SiteId("device".into())
    }

    /// A custom site id, for plug-in backends.
    pub fn new(name: impl Into<String>) -> Self {
        SiteId(name.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<Backend> for SiteId {
    fn from(backend: Backend) -> Self {
        match backend {
            Backend::Cloud => SiteId::cloud(),
            Backend::Edge => SiteId::edge(),
        }
    }
}

/// An interned execution-site identity: the site's position in its
/// [`SiteRegistry`] (fallback-rank order), assigned once at registry
/// build time.
///
/// Tokens replace [`SiteId`] strings everywhere inside the engine's hot
/// path — site chains, health slots, breaker counters — turning every
/// per-event site lookup from a string scan into an array index. String
/// ids survive only at the serde boundaries (deployment configs, fault
/// plans, reports) and in RNG key material, where their stable spelling
/// is part of the determinism contract.
///
/// A token is only meaningful for the registry that minted it; the
/// health ledger shares the same indexing because both are built from
/// the registry's iteration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteToken(u32);

impl SiteToken {
    /// The token's dense array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Why a component is being provisioned on a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteRole {
    /// The deployment's first-choice site.
    Primary,
    /// A standby mirror, provisioned so a failure on an earlier chain
    /// entry can re-route mid-run. Mirrors are never kept warm.
    Mirror,
}

/// One invocation request, covering both remote coalesced execution and
/// per-member device execution.
#[derive(Debug)]
pub struct InvokeRequest<'a> {
    /// Submission instant.
    pub at: SimTime,
    /// Deployment index the component belongs to.
    pub di: usize,
    /// The component to execute.
    pub comp: ComponentId,
    /// Coalesced batch work (what remote sites execute once).
    pub work: Cycles,
    /// Per-member work (what each member's own device executes).
    pub member_works: &'a [Cycles],
    /// The UE hardware model, for device-side execution and energy.
    pub device: &'a DeviceModel,
}

/// A successful invocation: when it finishes and what it cost the
/// members' batteries (zero for remote sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invoked {
    /// Completion instant.
    pub finish: SimTime,
    /// Battery energy drawn on the members' devices.
    pub device_energy: Energy,
}

/// Outcome of one invocation attempt on a site.
pub type SiteOutcome = Result<Invoked, (ErrorClass, FailureCause)>;

/// Everything the engine asks of an execution backend.
///
/// Implementations wrap one concrete substrate (a serverless platform,
/// an edge fleet, the members' devices) behind a uniform surface. The
/// engine never matches on a backend enum: dispatch, transfer timing,
/// execution, recovery and accounting all go through this trait, so a
/// fourth backend is a plug-in, not a refactor (see `DESIGN.md` §2 for
/// the ≤50-line recipe).
pub trait ExecutionSite {
    /// The site's stable identity.
    fn id(&self) -> &SiteId;

    /// Whether work here leaves the device. Remote sites pay transfers
    /// and are subject to the fault machinery; non-remote sites execute
    /// on the members' own hardware with neither.
    fn is_remote(&self) -> bool;

    /// Where this site sorts in a failure-driven fallback chain (lower
    /// ranks are tried first; the device is last). The built-ins use
    /// spaced ranks — edge 10, cloud 20, device 30 — so a plug-in can
    /// slot anywhere between them without touching existing sites.
    fn fallback_rank(&self) -> u32;

    /// The UE ↔ site network path.
    fn ue_path<'e>(&self, env: &'e Environment) -> &'e PathModel;

    /// The path between two components hosted on this site.
    fn internal_path<'e>(&self, env: &'e Environment) -> &'e PathModel;

    /// Share of nominal UE-path bandwidth available at `at` (congestion
    /// applies to the WAN; provisioned local segments report 1.0).
    fn wan_share(&self, env: &Environment, at: SimTime) -> f64;

    /// The bandwidth share planning should assume (the congestion
    /// trough for WAN sites, 1.0 elsewhere).
    fn planning_share(&self, env: &Environment) -> f64;

    /// The site's availability at `at` under `faults`.
    fn outage(&self, faults: &FaultPlan, at: SimTime) -> SiteOutage;

    /// Marks this site as a deployment's primary, so standing
    /// infrastructure cost is billed even if no work ever arrives.
    fn attach(&mut self);

    /// Provisions `comp` of deployment `di` on this site. Returns the
    /// keep-warm ping period the engine should schedule, if any.
    fn provision(
        &mut self,
        di: usize,
        d: &Deployment,
        comp: ComponentId,
        role: SiteRole,
    ) -> Option<SimDuration>;

    /// Whether `comp` of deployment `di` can execute here (it was
    /// provisioned, or the site needs no provisioning).
    fn can_serve(&self, di: usize, comp: ComponentId) -> bool;

    /// Executes one attempt.
    fn invoke(&mut self, req: &InvokeRequest<'_>) -> SiteOutcome;

    /// Fires a keep-warm ping for `comp` of deployment `di`.
    fn keep_warm(&mut self, at: SimTime, di: usize, comp: ComponentId);

    /// Total money this site charged: metered sites bill work drained
    /// through `drained_end`; flat-rate sites bill standing
    /// infrastructure through `horizon_end` once attached.
    fn cost(&mut self, drained_end: SimTime, horizon_end: SimTime) -> Money;

    /// Execution speed of one invocation at `memory` (planning).
    fn execution_speed(&self, env: &Environment, memory: DataSize) -> ClockSpeed;

    /// Marginal money per second of execution and per request at
    /// `memory` (planning; zero for pre-paid sites).
    fn marginal_cost(&self, env: &Environment, memory: DataSize) -> (Money, Money);

    /// What allocation may assume about this site.
    fn capabilities(&self) -> SiteCapabilities;

    /// How many invocations the site can execute concurrently — the
    /// width the health layer divides queue occupancy by when it
    /// estimates queueing delay (see
    /// [`SiteHealth::queue_delay`](ntc_faults::SiteHealth::queue_delay)).
    /// Must be at least 1. Sites that scale per member (the device)
    /// report `u32::MAX`: they never queue.
    fn concurrency_hint(&self) -> u32;
}

/// The set of execution sites one engine run dispatches to.
///
/// Sites are stored in fallback-rank order, so iteration (provisioning,
/// cost assembly) is deterministic.
pub struct SiteRegistry {
    sites: Vec<Box<dyn ExecutionSite>>,
}

impl fmt::Debug for SiteRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.sites.iter().map(|s| s.id())).finish()
    }
}

impl SiteRegistry {
    /// Builds a registry from sites, sorted by fallback rank.
    pub fn new(mut sites: Vec<Box<dyn ExecutionSite>>) -> Self {
        sites.sort_by_key(|s| s.fallback_rank());
        SiteRegistry { sites }
    }

    /// The standard three-site registry (edge, cloud, device) backed by
    /// live simulators, drawing platform randomness from `rng` exactly
    /// as the pre-trait engine did.
    pub fn standard(env: &Environment, rng: &RngStream) -> Self {
        Self::new(vec![
            Box::new(CloudSite::new(env.platform.clone(), rng.derive("platform"))),
            Box::new(EdgeSite::new(env.edge)),
            Box::new(DeviceSite::new()),
        ])
    }

    /// A registry for planning-time queries only (paths, speeds, costs,
    /// capabilities): cheap to build, fed no engine randomness.
    pub fn planning(env: &Environment) -> Self {
        Self::standard(env, &RngStream::root(0))
    }

    /// The site registered under `id`.
    ///
    /// # Panics
    ///
    /// Panics if no site has that id — a deployment naming an
    /// unregistered site is a configuration bug.
    pub fn get(&self, id: &SiteId) -> &dyn ExecutionSite {
        self.sites
            .iter()
            .find(|s| s.id() == id)
            .unwrap_or_else(|| panic!("no execution site registered as '{id}'"))
            .as_ref()
    }

    /// Mutable access to the site registered under `id`.
    ///
    /// # Panics
    ///
    /// Panics if no site has that id.
    pub fn get_mut(&mut self, id: &SiteId) -> &mut dyn ExecutionSite {
        self.sites
            .iter_mut()
            .find(|s| s.id() == id)
            .unwrap_or_else(|| panic!("no execution site registered as '{id}'"))
            .as_mut()
    }

    /// Interns `id`, returning its [`SiteToken`]. Resolve once (at chain
    /// construction), then index with [`site`](Self::site) /
    /// [`site_mut`](Self::site_mut) on the hot path.
    ///
    /// # Panics
    ///
    /// Panics if no site has that id — a deployment naming an
    /// unregistered site is a configuration bug.
    pub fn token_of(&self, id: &SiteId) -> SiteToken {
        self.sites
            .iter()
            .position(|s| s.id() == id)
            .map(|i| SiteToken(i as u32))
            .unwrap_or_else(|| panic!("no execution site registered as '{id}'"))
    }

    /// The site behind `token` (O(1)).
    pub fn site(&self, token: SiteToken) -> &dyn ExecutionSite {
        self.sites[token.index()].as_ref()
    }

    /// Mutable access to the site behind `token` (O(1)).
    pub fn site_mut(&mut self, token: SiteToken) -> &mut dyn ExecutionSite {
        self.sites[token.index()].as_mut()
    }

    /// Number of registered sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// All sites, in fallback-rank order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn ExecutionSite> {
        self.sites.iter().map(|s| s.as_ref())
    }

    /// All sites mutably, in fallback-rank order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Box<dyn ExecutionSite>> {
        self.sites.iter_mut()
    }

    /// The failure-driven site-preference chain for a deployment whose
    /// primary is `primary`: the primary first, then every site of
    /// strictly greater fallback rank, in rank order. With fallback
    /// disabled the chain is just the primary.
    pub fn fallback_chain(&self, primary: &SiteId, fallback_enabled: bool) -> Vec<SiteId> {
        let mut chain = vec![primary.clone()];
        if fallback_enabled {
            let rank = self.get(primary).fallback_rank();
            chain.extend(
                self.sites.iter().filter(|s| s.fallback_rank() > rank).map(|s| s.id().clone()),
            );
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_ids_display_their_names() {
        assert_eq!(SiteId::cloud().to_string(), "cloud");
        assert_eq!(SiteId::edge().to_string(), "edge");
        assert_eq!(SiteId::device().to_string(), "device");
        assert_eq!(SiteId::new("cloud-eu").as_str(), "cloud-eu");
        assert_eq!(SiteId::from(Backend::Cloud), SiteId::cloud());
        assert_eq!(SiteId::from(Backend::Edge), SiteId::edge());
    }

    #[test]
    fn registry_resolves_all_standard_sites() {
        let reg = SiteRegistry::planning(&Environment::metro_reference());
        for id in [SiteId::edge(), SiteId::cloud(), SiteId::device()] {
            assert_eq!(reg.get(&id).id(), &id);
        }
        assert!(reg.get(&SiteId::device()).can_serve(0, ComponentId::from_index(0)));
    }

    #[test]
    #[should_panic(expected = "no execution site")]
    fn unknown_site_ids_panic() {
        let reg = SiteRegistry::planning(&Environment::metro_reference());
        let _ = reg.get(&SiteId::new("mars"));
    }

    #[test]
    fn tokens_index_registry_order() {
        let reg = SiteRegistry::planning(&Environment::metro_reference());
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
        for (i, id) in [SiteId::edge(), SiteId::cloud(), SiteId::device()].iter().enumerate() {
            let tok = reg.token_of(id);
            assert_eq!(tok.index(), i, "registry order is fallback-rank order");
            assert_eq!(reg.site(tok).id(), id);
        }
    }

    #[test]
    #[should_panic(expected = "no execution site")]
    fn unknown_token_lookups_panic() {
        let reg = SiteRegistry::planning(&Environment::metro_reference());
        let _ = reg.token_of(&SiteId::new("mars"));
    }

    #[test]
    fn fallback_chains_walk_rank_order() {
        let reg = SiteRegistry::planning(&Environment::metro_reference());
        assert_eq!(
            reg.fallback_chain(&SiteId::edge(), true),
            vec![SiteId::edge(), SiteId::cloud(), SiteId::device()]
        );
        assert_eq!(
            reg.fallback_chain(&SiteId::cloud(), true),
            vec![SiteId::cloud(), SiteId::device()]
        );
        assert_eq!(reg.fallback_chain(&SiteId::edge(), false), vec![SiteId::edge()]);
    }
}
