//! The cloud serverless execution site.

use std::collections::HashMap;

use ntc_alloc::{SiteCapabilities, WarmStrategy};
use ntc_faults::{classify_invoke, classify_timeout, FaultPlan, SiteOutage};
use ntc_net::PathModel;
use ntc_serverless::{FunctionConfig, FunctionId, PlatformConfig, ServerlessPlatform};
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{ClockSpeed, Cycles, DataSize, Energy, Money, SimDuration, SimTime};
use ntc_taskgraph::ComponentId;

use super::{ExecutionSite, InvokeRequest, Invoked, SiteId, SiteOutcome, SiteRole};
use crate::deploy::Deployment;
use crate::environment::Environment;

/// A metered serverless platform behind the WAN: cold starts, queueing,
/// per-invocation billing, diurnal congestion on the UE path.
#[derive(Debug)]
pub struct CloudSite {
    id: SiteId,
    platform: ServerlessPlatform,
    fns: HashMap<(usize, ComponentId), FunctionId>,
}

impl CloudSite {
    /// Wraps a platform built from `config`, drawing from `rng`.
    pub fn new(config: PlatformConfig, rng: RngStream) -> Self {
        CloudSite {
            id: SiteId::cloud(),
            platform: ServerlessPlatform::new(config, rng),
            fns: HashMap::new(),
        }
    }

    /// The wrapped platform (for inspection in tests and reports).
    pub fn platform(&self) -> &ServerlessPlatform {
        &self.platform
    }
}

impl ExecutionSite for CloudSite {
    fn id(&self) -> &SiteId {
        &self.id
    }

    fn is_remote(&self) -> bool {
        true
    }

    fn fallback_rank(&self) -> u32 {
        20
    }

    fn ue_path<'e>(&self, env: &'e Environment) -> &'e PathModel {
        &env.topology.ue_cloud
    }

    fn internal_path<'e>(&self, env: &'e Environment) -> &'e PathModel {
        &env.intra_cloud
    }

    fn wan_share(&self, env: &Environment, at: SimTime) -> f64 {
        env.wan_congestion.share_at(at).clamp(0.01, 1.0)
    }

    fn planning_share(&self, env: &Environment) -> f64 {
        // Plan WAN transfers at the congestion trough so held jobs stay
        // deadline-safe even if released into the evening peak.
        env.wan_congestion.min_share().max(0.01)
    }

    fn outage(&self, faults: &FaultPlan, at: SimTime) -> SiteOutage {
        faults.site_outage(self.id.as_str(), at)
    }

    fn attach(&mut self) {}

    fn provision(
        &mut self,
        di: usize,
        d: &Deployment,
        comp: ComponentId,
        role: SiteRole,
    ) -> Option<SimDuration> {
        let c = d.graph.component(comp);
        let name = match role {
            SiteRole::Primary => format!("{}/{}", d.archetype.name(), c.name()),
            // Mirrors accrue no cost from registration alone: nothing
            // is billed unless they are invoked.
            SiteRole::Mirror => format!("{}/{}@fallback", d.archetype.name(), c.name()),
        };
        let f = self.platform.register(
            FunctionConfig::new(name, d.memory[comp.index()]).with_artifact_size(c.artifact_size()),
        );
        self.fns.insert((di, comp), f);
        if role == SiteRole::Primary {
            match d.warm {
                WarmStrategy::Provisioned { count } => {
                    self.platform.set_provisioned(SimTime::ZERO, f, count);
                }
                WarmStrategy::Warmer { period } if !period.is_zero() => return Some(period),
                _ => {}
            }
        }
        None
    }

    fn can_serve(&self, di: usize, comp: ComponentId) -> bool {
        self.fns.contains_key(&(di, comp))
    }

    fn invoke(&mut self, req: &InvokeRequest<'_>) -> SiteOutcome {
        let f = self.fns[&(req.di, req.comp)];
        match self.platform.invoke(req.at, f, req.work) {
            Ok(out) if !out.timed_out => {
                Ok(Invoked { finish: out.finish, device_energy: Energy::ZERO })
            }
            Ok(_) => Err(classify_timeout()),
            Err(e) => Err(classify_invoke(&e)),
        }
    }

    fn keep_warm(&mut self, at: SimTime, di: usize, comp: ComponentId) {
        if let Some(&f) = self.fns.get(&(di, comp)) {
            let _ = self.platform.invoke(at, f, Cycles::new(1_000));
        }
    }

    fn cost(&mut self, drained_end: SimTime, _horizon_end: SimTime) -> Money {
        self.platform.total_cost(drained_end)
    }

    fn execution_speed(&self, env: &Environment, memory: DataSize) -> ClockSpeed {
        env.platform.cpu.effective_speed(memory)
    }

    fn marginal_cost(&self, env: &Environment, memory: DataSize) -> (Money, Money) {
        let gb = memory.as_bytes() as f64 / (1024.0 * 1024.0 * 1024.0);
        (env.platform.billing.per_gb_second.mul_f64(gb), env.platform.billing.per_request)
    }

    fn capabilities(&self) -> SiteCapabilities {
        SiteCapabilities::metered_faas(SimDuration::from_mins(15))
    }

    fn concurrency_hint(&self) -> u32 {
        self.platform.config().region_concurrency.max(1)
    }
}
