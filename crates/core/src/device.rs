//! The user equipment (UE): the compute- and battery-constrained device
//! offloading exists to relieve.

use ntc_simcore::units::{ClockSpeed, Cycles, Energy, Power, SimDuration};
use serde::{Deserialize, Serialize};

/// A UE hardware model.
///
/// Each job is assumed to originate from its own device (a population of
/// users), so device execution does not queue across jobs; the scarce
/// resources are per-job time and battery energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// CPU speed of the UE core running the app.
    pub clock: ClockSpeed,
    /// Power draw while computing.
    pub active_power: Power,
    /// Power draw while transmitting or receiving.
    pub tx_power: Power,
}

impl DeviceModel {
    /// A mid-range smartphone: 1.5 GHz sustained, 2 W active, 1.2 W radio.
    pub fn smartphone() -> Self {
        DeviceModel {
            clock: ClockSpeed::from_ghz_tenths(15),
            active_power: Power::from_watts(2),
            tx_power: Power::from_milliwatts(1200),
        }
    }

    /// A small IoT gateway: slower CPU, lower power.
    pub fn iot_gateway() -> Self {
        DeviceModel {
            clock: ClockSpeed::from_mhz(800),
            active_power: Power::from_milliwatts(900),
            tx_power: Power::from_milliwatts(700),
        }
    }

    /// The time this device needs for `work`.
    pub fn execution_time(&self, work: Cycles) -> SimDuration {
        self.clock.execution_time(work)
    }

    /// Battery energy consumed computing `work`.
    pub fn compute_energy(&self, work: Cycles) -> Energy {
        self.active_power.energy_over(self.execution_time(work))
    }

    /// Battery energy consumed keeping the radio up for `d`.
    pub fn radio_energy(&self, d: SimDuration) -> Energy {
        self.tx_power.energy_over(d)
    }
}

impl Default for DeviceModel {
    fn default() -> Self {
        Self::smartphone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smartphone_numbers_are_sane() {
        let d = DeviceModel::smartphone();
        // 15 Gcyc at 1.5 GHz = 10 s, at 2 W = 20 J.
        assert_eq!(d.execution_time(Cycles::from_giga(15)), SimDuration::from_secs(10));
        assert_eq!(d.compute_energy(Cycles::from_giga(15)), Energy::from_joules(20));
    }

    #[test]
    fn gateway_is_slower_but_thriftier() {
        let phone = DeviceModel::smartphone();
        let gw = DeviceModel::iot_gateway();
        let work = Cycles::from_giga(8);
        assert!(gw.execution_time(work) > phone.execution_time(work));
        assert!(gw.active_power < phone.active_power);
    }

    #[test]
    fn radio_energy_scales_with_time() {
        let d = DeviceModel::smartphone();
        let one = d.radio_energy(SimDuration::from_secs(1));
        let ten = d.radio_energy(SimDuration::from_secs(10));
        assert_eq!(ten.as_nanojoules(), one.as_nanojoules() * 10);
    }
}
