//! Offloading policies: the strategies compared throughout the
//! evaluation, including the full NTC framework and its ablations.

use core::fmt;

use ntc_profiler::EstimatorKind;
use serde::{Deserialize, Serialize};

/// Where offloaded components execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// Cloud serverless platform.
    Cloud,
    /// Edge fleet.
    Edge,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Cloud => "cloud",
            Backend::Edge => "edge",
        })
    }
}

/// Configuration of the full NTC framework, with ablation switches
/// (Figure 6): each `use_*` flag disables one contribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NtcConfig {
    /// C1: learn demands by profiling (off → static annotations).
    pub use_profiler: bool,
    /// C3: min-cut partitioning (off → offload everything offloadable).
    pub use_partitioner: bool,
    /// C2: memory-size allocation (off → platform default size).
    pub use_allocator: bool,
    /// C5: deadline-aware batching (off → dispatch immediately).
    pub use_batching: bool,
    /// Run a batch on the device when offloading provably cannot meet its
    /// deadline (e.g. a connectivity outage longer than the remaining
    /// slack) but local execution can.
    pub local_fallback: bool,
    /// C5 extension: steer held jobs into the nightly off-peak band
    /// (00:00–06:00) when their slack reaches it, to ride uncongested
    /// WAN bandwidth and bigger coalesced batches.
    pub off_peak: bool,
    /// Estimator family for the profiler.
    pub estimator: EstimatorKind,
    /// Profiling invocations per archetype at deployment time.
    pub profile_samples: u32,
}

impl Default for NtcConfig {
    fn default() -> Self {
        NtcConfig {
            use_profiler: true,
            use_partitioner: true,
            use_allocator: true,
            use_batching: true,
            local_fallback: true,
            off_peak: false,
            estimator: EstimatorKind::Hybrid,
            profile_samples: 40,
        }
    }
}

/// A complete offloading strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OffloadPolicy {
    /// Everything runs on the UE.
    LocalOnly,
    /// Every offloadable component runs on the edge fleet.
    EdgeAll,
    /// Every offloadable component runs on cloud functions at the
    /// platform-default memory size, dispatched immediately.
    CloudAll,
    /// The paper's framework: profile → partition → allocate → batch,
    /// targeting the cloud.
    Ntc(NtcConfig),
}

impl OffloadPolicy {
    /// The full framework with default settings.
    pub fn ntc() -> Self {
        OffloadPolicy::Ntc(NtcConfig::default())
    }

    /// The backend offloaded components use under this policy.
    pub fn backend(&self) -> Backend {
        match self {
            OffloadPolicy::EdgeAll => Backend::Edge,
            _ => Backend::Cloud,
        }
    }

    /// A short stable name for result tables.
    pub fn name(&self) -> String {
        match self {
            OffloadPolicy::LocalOnly => "local-only".into(),
            OffloadPolicy::EdgeAll => "edge-all".into(),
            OffloadPolicy::CloudAll => "cloud-all".into(),
            OffloadPolicy::Ntc(cfg) => {
                if *cfg == NtcConfig::default() {
                    "ntc".into()
                } else {
                    let mut offs = Vec::new();
                    if !cfg.use_profiler {
                        offs.push("profiler");
                    }
                    if !cfg.use_partitioner {
                        offs.push("partitioner");
                    }
                    if !cfg.use_allocator {
                        offs.push("allocator");
                    }
                    if !cfg.use_batching {
                        offs.push("batching");
                    }
                    if offs.is_empty() {
                        if cfg.off_peak {
                            "ntc[+offpeak]".into()
                        } else {
                            format!("ntc[{}x{}]", cfg.estimator, cfg.profile_samples)
                        }
                    } else {
                        format!("ntc[-{}]", offs.join(",-"))
                    }
                }
            }
        }
    }
}

impl fmt::Display for OffloadPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(OffloadPolicy::LocalOnly.name(), "local-only");
        assert_eq!(OffloadPolicy::EdgeAll.name(), "edge-all");
        assert_eq!(OffloadPolicy::CloudAll.name(), "cloud-all");
        assert_eq!(OffloadPolicy::ntc().name(), "ntc");
        let ablated = OffloadPolicy::Ntc(NtcConfig { use_batching: false, ..Default::default() });
        assert_eq!(ablated.name(), "ntc[-batching]");
    }

    #[test]
    fn backends() {
        assert_eq!(OffloadPolicy::EdgeAll.backend(), Backend::Edge);
        assert_eq!(OffloadPolicy::CloudAll.backend(), Backend::Cloud);
        assert_eq!(OffloadPolicy::ntc().backend(), Backend::Cloud);
        assert_eq!(Backend::Edge.to_string(), "edge");
    }
}
