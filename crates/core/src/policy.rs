//! Offloading policies: the strategies compared throughout the
//! evaluation, including the full NTC framework and its ablations.

use core::fmt;

use ntc_faults::{HealthConfig, RetryPolicy};
use ntc_profiler::EstimatorKind;
use serde::{Deserialize, Serialize};

/// Where offloaded components execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// Cloud serverless platform.
    Cloud,
    /// Edge fleet.
    Edge,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Cloud => "cloud",
            Backend::Edge => "edge",
        })
    }
}

/// Configuration of the full NTC framework, with ablation switches
/// (Figure 6): each `use_*` flag disables one contribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NtcConfig {
    /// C1: learn demands by profiling (off → static annotations).
    pub use_profiler: bool,
    /// C3: min-cut partitioning (off → offload everything offloadable).
    pub use_partitioner: bool,
    /// C2: memory-size allocation (off → platform default size).
    pub use_allocator: bool,
    /// C5: deadline-aware batching (off → dispatch immediately).
    pub use_batching: bool,
    /// Run a batch on the device when offloading provably cannot meet its
    /// deadline (e.g. a connectivity outage longer than the remaining
    /// slack) but local execution can.
    pub local_fallback: bool,
    /// C5 extension: steer held jobs into the nightly off-peak band
    /// (00:00–06:00) when their slack reaches it, to ride uncongested
    /// WAN bandwidth and bigger coalesced batches.
    pub off_peak: bool,
    /// Estimator family for the profiler.
    pub estimator: EstimatorKind,
    /// Profiling invocations per archetype at deployment time.
    pub profile_samples: u32,
    /// How failed offloaded attempts are retried. NTC work is
    /// delay-tolerant, so the default retries patiently with capped
    /// exponential backoff; baselines never retry.
    pub retry: RetryPolicy,
    /// Failure-driven backend fallback: when a backend declares an
    /// attempt unrecoverable (outage, exhausted capacity, timeout), move
    /// the batch down the chain edge → cloud → device instead of losing
    /// it. Distinct from [`local_fallback`](Self::local_fallback), which
    /// acts *before* dispatch on latency estimates.
    pub fallback: bool,
    /// The backend offloaded components target first. The default is the
    /// paper's cloud-first stance; `Backend::Edge` demonstrates the full
    /// edge → cloud → device fallback chain.
    pub primary_backend: Backend,
    /// The overload-aware health layer: per-site circuit breakers,
    /// queue-delay admission control (defer or shed) and hedged
    /// requests. Defaults to fully disabled, which is behaviourally —
    /// and serialisation-wise — identical to builds that predate the
    /// layer.
    #[serde(default)]
    pub health: HealthConfig,
}

impl Default for NtcConfig {
    fn default() -> Self {
        NtcConfig {
            use_profiler: true,
            use_partitioner: true,
            use_allocator: true,
            use_batching: true,
            local_fallback: true,
            off_peak: false,
            estimator: EstimatorKind::Hybrid,
            profile_samples: 40,
            retry: RetryPolicy::ntc_default(),
            fallback: true,
            primary_backend: Backend::Cloud,
            health: HealthConfig::disabled(),
        }
    }
}

/// A complete offloading strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OffloadPolicy {
    /// Everything runs on the UE.
    LocalOnly,
    /// Every offloadable component runs on the edge fleet.
    EdgeAll,
    /// Every offloadable component runs on cloud functions at the
    /// platform-default memory size, dispatched immediately.
    CloudAll,
    /// The paper's framework: profile → partition → allocate → batch,
    /// targeting the cloud.
    Ntc(NtcConfig),
}

impl OffloadPolicy {
    /// The full framework with default settings.
    pub fn ntc() -> Self {
        OffloadPolicy::Ntc(NtcConfig::default())
    }

    /// The backend offloaded components use under this policy.
    pub fn backend(&self) -> Backend {
        match self {
            OffloadPolicy::EdgeAll => Backend::Edge,
            OffloadPolicy::Ntc(cfg) => cfg.primary_backend,
            _ => Backend::Cloud,
        }
    }

    /// How failed offloaded attempts are retried under this policy. The
    /// baselines model conventional latency-critical deployments: the
    /// first failure is final.
    pub fn retry_policy(&self) -> RetryPolicy {
        match self {
            OffloadPolicy::Ntc(cfg) => cfg.retry,
            _ => RetryPolicy::none(),
        }
    }

    /// Whether unrecoverable backend errors trigger a fallback down the
    /// chain edge → cloud → device instead of failing the work.
    pub fn fallback_enabled(&self) -> bool {
        match self {
            OffloadPolicy::Ntc(cfg) => cfg.fallback,
            _ => false,
        }
    }

    /// The overload-aware health configuration this policy runs under.
    /// Baselines model conventional deployments with no health layer.
    pub fn health(&self) -> HealthConfig {
        match self {
            OffloadPolicy::Ntc(cfg) => cfg.health,
            _ => HealthConfig::disabled(),
        }
    }

    /// A short stable name for result tables.
    pub fn name(&self) -> String {
        match self {
            OffloadPolicy::LocalOnly => "local-only".into(),
            OffloadPolicy::EdgeAll => "edge-all".into(),
            OffloadPolicy::CloudAll => "cloud-all".into(),
            OffloadPolicy::Ntc(cfg) => {
                if *cfg == NtcConfig::default() {
                    "ntc".into()
                } else {
                    let mut offs = Vec::new();
                    if !cfg.use_profiler {
                        offs.push("profiler");
                    }
                    if !cfg.use_partitioner {
                        offs.push("partitioner");
                    }
                    if !cfg.use_allocator {
                        offs.push("allocator");
                    }
                    if !cfg.use_batching {
                        offs.push("batching");
                    }
                    if cfg.retry == RetryPolicy::none() {
                        offs.push("retry");
                    }
                    if !cfg.fallback {
                        offs.push("fallback");
                    }
                    let mut adds = Vec::new();
                    if cfg.off_peak {
                        adds.push("offpeak");
                    }
                    if cfg.primary_backend == Backend::Edge {
                        adds.push("edge");
                    }
                    if cfg.health.breakers {
                        adds.push("breakers");
                    }
                    if cfg.health.admission {
                        adds.push("admission");
                    }
                    if cfg.health.hedge {
                        adds.push("hedge");
                    }
                    if !offs.is_empty() {
                        format!("ntc[-{}]", offs.join(",-"))
                    } else if !adds.is_empty() {
                        format!("ntc[+{}]", adds.join(",+"))
                    } else {
                        format!("ntc[{}x{}]", cfg.estimator, cfg.profile_samples)
                    }
                }
            }
        }
    }
}

impl fmt::Display for OffloadPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(OffloadPolicy::LocalOnly.name(), "local-only");
        assert_eq!(OffloadPolicy::EdgeAll.name(), "edge-all");
        assert_eq!(OffloadPolicy::CloudAll.name(), "cloud-all");
        assert_eq!(OffloadPolicy::ntc().name(), "ntc");
        let ablated = OffloadPolicy::Ntc(NtcConfig { use_batching: false, ..Default::default() });
        assert_eq!(ablated.name(), "ntc[-batching]");
        let no_retry =
            OffloadPolicy::Ntc(NtcConfig { retry: RetryPolicy::none(), ..Default::default() });
        assert_eq!(no_retry.name(), "ntc[-retry]");
        let edge_first =
            OffloadPolicy::Ntc(NtcConfig { primary_backend: Backend::Edge, ..Default::default() });
        assert_eq!(edge_first.name(), "ntc[+edge]");
        let overload = OffloadPolicy::Ntc(NtcConfig {
            health: HealthConfig::overload_default(),
            ..Default::default()
        });
        assert_eq!(overload.name(), "ntc[+breakers,+admission,+hedge]");
        let hedged = OffloadPolicy::Ntc(NtcConfig {
            health: HealthConfig { hedge: true, ..HealthConfig::disabled() },
            ..Default::default()
        });
        assert_eq!(hedged.name(), "ntc[+hedge]");
    }

    #[test]
    fn health_defaults_off_and_only_ntc_carries_it() {
        assert!(!OffloadPolicy::ntc().health().enabled());
        assert!(!OffloadPolicy::CloudAll.health().enabled());
        let on = OffloadPolicy::Ntc(NtcConfig {
            health: HealthConfig::overload_default(),
            ..Default::default()
        });
        assert!(on.health().breakers && on.health().admission && on.health().hedge);
        // Serde default: configs that predate the field still load.
        let legacy: NtcConfig = serde_json::from_str(
            &serde_json::to_string(&NtcConfig::default()).unwrap().replace("\"health\"", "\"_h\""),
        )
        .unwrap_or(NtcConfig::default());
        assert_eq!(legacy.health, HealthConfig::disabled());
    }

    #[test]
    fn backends() {
        assert_eq!(OffloadPolicy::EdgeAll.backend(), Backend::Edge);
        assert_eq!(OffloadPolicy::CloudAll.backend(), Backend::Cloud);
        assert_eq!(OffloadPolicy::ntc().backend(), Backend::Cloud);
        let edge_first =
            OffloadPolicy::Ntc(NtcConfig { primary_backend: Backend::Edge, ..Default::default() });
        assert_eq!(edge_first.backend(), Backend::Edge);
        assert_eq!(Backend::Edge.to_string(), "edge");
    }

    #[test]
    fn baselines_never_retry_but_ntc_does() {
        assert_eq!(OffloadPolicy::CloudAll.retry_policy(), RetryPolicy::none());
        assert_eq!(OffloadPolicy::EdgeAll.retry_policy(), RetryPolicy::none());
        assert_eq!(OffloadPolicy::LocalOnly.retry_policy(), RetryPolicy::none());
        assert_eq!(OffloadPolicy::ntc().retry_policy(), RetryPolicy::ntc_default());
        assert!(OffloadPolicy::ntc().fallback_enabled());
        assert!(!OffloadPolicy::CloudAll.fallback_enabled());
    }
}
