//! The complete simulated world an offloading policy operates in.

use ntc_edge::EdgeConfig;
use ntc_faults::FaultConfig;
use ntc_net::{BandwidthTrace, ConnectivityTrace, LinkModel, PathModel, Topology};
use ntc_serverless::PlatformConfig;
use ntc_simcore::units::{Bandwidth, DataSize, Energy, Money, SimDuration};
use serde::{Deserialize, Serialize};

use crate::device::DeviceModel;

/// Everything outside the policy's control: device hardware, networks,
/// the cloud platform, the edge fleet, and pricing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Environment {
    /// UE hardware.
    pub device: DeviceModel,
    /// UE / edge / cloud connectivity.
    pub topology: Topology,
    /// Time-varying congestion on the UE ↔ cloud WAN (share of nominal
    /// bandwidth available by time of day).
    pub wan_congestion: BandwidthTrace,
    /// When the UE can reach any network at all (outage schedule).
    pub connectivity: ConnectivityTrace,
    /// Cloud FaaS platform configuration.
    pub platform: PlatformConfig,
    /// Edge fleet configuration.
    pub edge: EdgeConfig,
    /// Path between two cloud functions (storage hop).
    pub intra_cloud: PathModel,
    /// Path between two services on the same edge site.
    pub intra_edge: PathModel,
    /// Size of the result notification returned to the device.
    pub result_return: DataSize,
    /// Electricity-equivalent price of UE energy, per joule.
    pub energy_price_per_joule: Money,
    /// Safety margin subtracted from deadlines when holding jobs.
    pub completion_margin: SimDuration,
    /// Injected faults: transient invocation errors, throttling, edge
    /// outage windows and transfer drops. Defaults to none.
    pub faults: FaultConfig,
}

impl Environment {
    /// The metropolitan reference environment used throughout the
    /// evaluation: smartphone UE, metro networks, Lambda-like cloud,
    /// four-server edge site.
    pub fn metro_reference() -> Self {
        Environment {
            device: DeviceModel::smartphone(),
            topology: Topology::metro_reference(),
            wan_congestion: BandwidthTrace::diurnal_congestion(),
            connectivity: ConnectivityTrace::always(),
            platform: PlatformConfig::default(),
            edge: EdgeConfig::default(),
            intra_cloud: PathModel::single(LinkModel::new(
                SimDuration::from_millis(5),
                Bandwidth::from_megabits_per_sec(1000),
            )),
            intra_edge: PathModel::single(LinkModel::new(
                SimDuration::from_millis(1),
                Bandwidth::from_megabits_per_sec(2000),
            )),
            result_return: DataSize::from_kib(100),
            // ~\$0.45/kWh mobile-charging equivalent = \$1.25e-7 per joule.
            energy_price_per_joule: Money::from_nano_usd(125),
            completion_margin: SimDuration::from_secs(60),
            faults: FaultConfig::none(),
        }
    }

    /// The monetary value of `energy` at this environment's price.
    pub fn energy_cost(&self, energy: Energy) -> Money {
        self.energy_price_per_joule.mul_f64(energy.as_joules_f64())
    }
}

impl Default for Environment {
    fn default() -> Self {
        Self::metro_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_environment_is_consistent() {
        let env = Environment::metro_reference();
        assert!(env.topology.ue_edge.base_latency() < env.topology.ue_cloud.base_latency());
        assert!(env.intra_cloud.base_latency() < env.topology.ue_cloud.base_latency());
        assert!(env.result_return > DataSize::ZERO);
    }

    #[test]
    fn congestion_trace_is_diurnal() {
        let env = Environment::metro_reference();
        assert!(env.wan_congestion.min_share() < 1.0);
    }

    #[test]
    fn energy_pricing() {
        let env = Environment::metro_reference();
        // 1 kWh = 3.6 MJ at 125 n$/J = \$0.45.
        let c = env.energy_cost(Energy::from_joules(3_600_000));
        assert!((c.as_usd_f64() - 0.45).abs() < 1e-9, "{c}");
    }
}
