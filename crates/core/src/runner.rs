//! Parallel experiment runner: independent replications with
//! deterministic per-replication seeds, executed across threads.
//!
//! The simulation kernel is single-threaded by design (determinism); the
//! parallelism here is across *replications*, which share nothing. Results
//! come back in replication order regardless of thread scheduling, so a
//! parallel run is bit-identical to a sequential one.

use ntc_simcore::stats::Welford;
use ntc_simcore::units::SimDuration;
use ntc_workloads::StreamSpec;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::engine::Engine;
use crate::environment::Environment;
use crate::policy::OffloadPolicy;
use crate::report::RunResult;

/// Runs `replications` independent copies of (policy, specs, horizon),
/// seeding replication `i` with `base_seed + i`, in parallel across up to
/// `threads` threads.
///
/// Results are returned in replication order.
///
/// # Panics
///
/// Panics if `replications` is zero or `threads` is zero.
pub fn run_replications(
    env: &Environment,
    policy: &OffloadPolicy,
    specs: &[StreamSpec],
    horizon: SimDuration,
    base_seed: u64,
    replications: u32,
    threads: usize,
) -> Vec<RunResult> {
    assert!(replications > 0, "need at least one replication");
    assert!(threads > 0, "need at least one thread");
    let mut results: Vec<Option<RunResult>> = (0..replications).map(|_| None).collect();
    let next = Mutex::new(0u32);
    let slots = Mutex::new(&mut results);

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(replications as usize) {
            scope.spawn(|_| loop {
                let i = {
                    let mut n = next.lock();
                    if *n >= replications {
                        break;
                    }
                    let i = *n;
                    *n += 1;
                    i
                };
                let engine = Engine::new(env.clone(), base_seed + u64::from(i));
                let result = engine.run(policy, specs, horizon);
                slots.lock()[i as usize] = Some(result);
            });
        }
    })
    .expect("replication worker panicked");

    results.into_iter().map(|r| r.expect("all replications completed")).collect()
}

/// Mean ± stddev of a metric across replications.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Number of replications.
    pub n: u64,
    /// Mean across replications.
    pub mean: f64,
    /// Sample standard deviation across replications.
    pub std_dev: f64,
}

/// Summarises `metric` over replication results.
pub fn across<T: Fn(&RunResult) -> f64>(results: &[RunResult], metric: T) -> MetricSummary {
    let mut w = Welford::new();
    for r in results {
        w.record(metric(r));
    }
    MetricSummary { n: w.count(), mean: w.mean(), std_dev: w.std_dev() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_workloads::Archetype;

    fn tiny() -> ([StreamSpec; 1], SimDuration) {
        ([StreamSpec::poisson(Archetype::MlInference, 0.02)], SimDuration::from_mins(30))
    }

    #[test]
    fn parallel_equals_sequential() {
        let env = Environment::metro_reference();
        let (specs, horizon) = tiny();
        let seq = run_replications(&env, &OffloadPolicy::CloudAll, &specs, horizon, 100, 4, 1);
        let par = run_replications(&env, &OffloadPolicy::CloudAll, &specs, horizon, 100, 4, 4);
        assert_eq!(seq.len(), 4);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.jobs, b.jobs, "parallel execution must not change results");
            assert_eq!(a.cloud_cost, b.cloud_cost);
        }
    }

    #[test]
    fn replications_differ_from_each_other() {
        let env = Environment::metro_reference();
        let (specs, horizon) = tiny();
        let rs = run_replications(&env, &OffloadPolicy::CloudAll, &specs, horizon, 5, 2, 2);
        assert_ne!(rs[0].jobs, rs[1].jobs);
    }

    #[test]
    fn across_summarises() {
        let env = Environment::metro_reference();
        let (specs, horizon) = tiny();
        let rs = run_replications(&env, &OffloadPolicy::CloudAll, &specs, horizon, 7, 3, 3);
        let s = across(&rs, |r| r.jobs.len() as f64);
        assert_eq!(s.n, 3);
        assert!(s.mean > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_panics() {
        let env = Environment::metro_reference();
        let (specs, horizon) = tiny();
        run_replications(&env, &OffloadPolicy::LocalOnly, &specs, horizon, 0, 0, 1);
    }
}
