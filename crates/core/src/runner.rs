//! Parallel experiment runner: deterministic fan-out of independent
//! simulation runs — replications *and* whole parameter sweeps — across a
//! thread pool.
//!
//! The simulation kernel is single-threaded by design (determinism); the
//! parallelism here is across *grid points*, which share nothing. Two
//! invariants make a parallel run bit-identical to a sequential one:
//!
//! 1. **Derived seeds, not shared streams.** Every point computes its RNG
//!    root purely from its own identity (an explicit seed, typically
//!    `base_seed + index`), never from a stream another point also
//!    advances.
//! 2. **Order-stable collection.** Workers claim points from a shared
//!    counter (dynamic load balancing — grid points vary wildly in cost)
//!    but write each result into its point's pre-assigned slot, so the
//!    returned `Vec` is in grid order regardless of thread scheduling.
//!
//! Each worker owns one long-lived piece of per-thread state (for
//! [`run_replications`], an [`Engine`] plus a
//! [`RunScratch`]), so steady-state sweeping allocates
//! almost nothing per point.
//!
//! Thread count resolution: explicit argument → `NTC_THREADS` →
//! [`std::thread::available_parallelism`] (see [`default_threads`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ntc_simcore::stats::Welford;
use ntc_simcore::units::SimDuration;
use ntc_workloads::StreamSpec;
use serde::{Deserialize, Serialize};

use crate::engine::{Engine, RunScratch};
use crate::environment::Environment;
use crate::policy::OffloadPolicy;
use crate::report::RunResult;

/// The worker-thread count used when the caller does not pin one: the
/// `NTC_THREADS` environment variable if set to a positive integer, else
/// [`std::thread::available_parallelism`], else 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("NTC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// Maps every grid point through `f` on a pool of `threads` workers,
/// returning results in point order. `init` builds one state value per
/// worker (an engine, a scratch, a measurement rig …) that `f` reuses
/// across all points that worker claims.
///
/// `f` receives `(worker_state, point, point_index)` and must derive any
/// randomness from the point identity alone — the index and the point are
/// the same whether the sweep runs on 1 thread or 64, so obeying that rule
/// makes the sweep's output independent of `threads`.
///
/// # Panics
///
/// Panics if `threads` is zero or any worker panics.
pub fn run_sweep_with<P, R, S, I, F>(points: &[P], threads: usize, init: I, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &P, usize) -> R + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let threads = threads.min(points.len()).max(1);
    if threads == 1 {
        // Fast path: no pool, no locks — and trivially the reference
        // ordering the parallel path must reproduce.
        let mut state = init();
        return points.iter().enumerate().map(|(i, p)| f(&mut state, p, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..points.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= points.len() {
                        break;
                    }
                    let r = f(&mut state, &points[i], i);
                    slots.lock().expect("sweep slots poisoned")[i] = Some(r);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("sweep slots poisoned")
        .into_iter()
        .map(|r| r.expect("all points completed"))
        .collect()
}

/// [`run_sweep_with`] without per-worker state: runs `f` over every grid
/// point on `threads` workers, results in point order.
pub fn run_sweep<P, R, F>(points: &[P], threads: usize, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P, usize) -> R + Sync,
{
    run_sweep_with(points, threads, || (), |(), p, i| f(p, i))
}

/// Runs `replications` independent copies of (policy, specs, horizon),
/// seeding replication `i` with `base_seed + i`, in parallel across up to
/// `threads` threads.
///
/// Results are returned in replication order and are bit-identical for
/// every `threads` value. Each worker reuses one engine and one
/// [`RunScratch`], so replication `i` costs one
/// simulation, not one simulation plus a heap of setup allocations.
///
/// # Panics
///
/// Panics if `replications` is zero or `threads` is zero.
pub fn run_replications(
    env: &Environment,
    policy: &OffloadPolicy,
    specs: &[StreamSpec],
    horizon: SimDuration,
    base_seed: u64,
    replications: u32,
    threads: usize,
) -> Vec<RunResult> {
    assert!(replications > 0, "need at least one replication");
    let seeds: Vec<u64> = (0..replications).map(|i| base_seed + u64::from(i)).collect();
    run_sweep_with(
        &seeds,
        threads,
        || (Engine::new(env.clone(), base_seed), RunScratch::new()),
        |(engine, scratch), &seed, _| engine.run_seeded(seed, policy, specs, horizon, scratch),
    )
}

/// Mean ± stddev of a metric across replications.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Number of replications.
    pub n: u64,
    /// Mean across replications.
    pub mean: f64,
    /// Sample standard deviation across replications.
    pub std_dev: f64,
}

/// Summarises `metric` over replication results.
pub fn across<T: Fn(&RunResult) -> f64>(results: &[RunResult], metric: T) -> MetricSummary {
    let mut w = Welford::new();
    for r in results {
        w.record(metric(r));
    }
    MetricSummary { n: w.count(), mean: w.mean(), std_dev: w.std_dev() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_workloads::Archetype;

    fn tiny() -> ([StreamSpec; 1], SimDuration) {
        ([StreamSpec::poisson(Archetype::MlInference, 0.02)], SimDuration::from_mins(30))
    }

    #[test]
    fn parallel_equals_sequential() {
        let env = Environment::metro_reference();
        let (specs, horizon) = tiny();
        let seq = run_replications(&env, &OffloadPolicy::CloudAll, &specs, horizon, 100, 4, 1);
        let par = run_replications(&env, &OffloadPolicy::CloudAll, &specs, horizon, 100, 4, 4);
        assert_eq!(seq.len(), 4);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.jobs, b.jobs, "parallel execution must not change results");
            assert_eq!(a.cloud_cost, b.cloud_cost);
        }
    }

    #[test]
    fn replications_differ_from_each_other() {
        let env = Environment::metro_reference();
        let (specs, horizon) = tiny();
        let rs = run_replications(&env, &OffloadPolicy::CloudAll, &specs, horizon, 5, 2, 2);
        assert_ne!(rs[0].jobs, rs[1].jobs);
    }

    #[test]
    fn across_summarises() {
        let env = Environment::metro_reference();
        let (specs, horizon) = tiny();
        let rs = run_replications(&env, &OffloadPolicy::CloudAll, &specs, horizon, 7, 3, 3);
        let s = across(&rs, |r| r.jobs.len() as f64);
        assert_eq!(s.n, 3);
        assert!(s.mean > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_panics() {
        let env = Environment::metro_reference();
        let (specs, horizon) = tiny();
        run_replications(&env, &OffloadPolicy::LocalOnly, &specs, horizon, 0, 0, 1);
    }

    #[test]
    fn sweep_preserves_point_order() {
        let points: Vec<u64> = (0..97).collect();
        let out = run_sweep(&points, 8, |&p, i| {
            assert_eq!(p, i as u64);
            p * 3
        });
        assert_eq!(out, points.iter().map(|p| p * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_with_reuses_worker_state() {
        let points: Vec<u32> = (0..32).collect();
        // Each worker counts how many points it handled in its state; the
        // per-point result must not depend on that count.
        let out = run_sweep_with(
            &points,
            4,
            || 0usize,
            |handled, &p, _| {
                *handled += 1;
                p + 1
            },
        );
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_thread_count_does_not_change_results() {
        let env = Environment::metro_reference();
        let (specs, horizon) = tiny();
        let points: Vec<u64> = vec![7, 8, 9, 10, 11];
        let run = |threads| {
            run_sweep_with(
                &points,
                threads,
                || (Engine::new(env.clone(), 0), RunScratch::new()),
                |(engine, scratch), &seed, _| {
                    engine.run_seeded(seed, &OffloadPolicy::ntc(), &specs, horizon, scratch)
                },
            )
        };
        let one = run(1);
        let many = run(4);
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.jobs, b.jobs);
        }
    }
}
