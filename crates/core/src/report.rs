//! Result records of an end-to-end run: per-job outcomes and aggregate
//! metrics, serialisable for the experiment harness.

use std::collections::BTreeMap;

use ntc_faults::FailureCause;
use ntc_simcore::metrics::Histogram;
use ntc_simcore::stats::{Summary, Welford};
use ntc_simcore::timeseries::TimeSeries;
use ntc_simcore::units::{DataSize, Energy, Money, SimDuration, SimTime};
use ntc_workloads::Archetype;
use serde::{Deserialize, Serialize};

/// The outcome of one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// The job's stream id.
    pub id: u64,
    /// Which application it invoked.
    pub archetype: Archetype,
    /// When it arrived.
    pub arrival: SimTime,
    /// When it was released to execution (after any deliberate holding).
    pub dispatched: SimTime,
    /// When its results reached the device.
    pub finish: SimTime,
    /// Its deadline.
    pub deadline: SimTime,
    /// Whether a cloud/edge failure lost the job.
    pub failed: bool,
    /// Execution attempts made for the job's batch (1 = first attempt
    /// succeeded; the maximum across the graph's components).
    pub attempts: u32,
    /// Time the job's batch spent waiting in retry backoff (the maximum
    /// cumulative backoff across components, so it never exceeds
    /// `finish - dispatched`).
    pub backoff: SimDuration,
    /// Backend fallback switches the job's batch performed (edge → cloud
    /// → device).
    pub fallbacks: u32,
    /// Why the job was lost, when it was.
    pub cause: Option<FailureCause>,
}

impl JobResult {
    /// End-to-end latency (arrival to results on device).
    pub fn latency(&self) -> SimDuration {
        self.finish - self.arrival
    }

    /// Whether the job finished by its deadline (failed jobs never do).
    pub fn met_deadline(&self) -> bool {
        !self.failed && self.finish <= self.deadline
    }
}

/// A constant-memory latency sketch: exact first/second moments
/// (Welford, in seconds) plus a log-bucketed histogram (microseconds)
/// for quantiles with relative error below
/// [`Histogram::RELATIVE_ERROR_BOUND`] (< 1/32 ≈ 3.1%). Count, mean,
/// min and max are exact; only p50/p95/p99 carry the bucket error.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyDigest {
    /// Exact streaming mean/variance of the latency, in seconds.
    pub moments: Welford,
    /// Log-bucketed latency histogram over microseconds.
    pub histogram: Histogram,
}

impl LatencyDigest {
    /// Folds one latency observation into the digest.
    pub fn observe(&mut self, latency: SimDuration) {
        self.moments.record(latency.as_secs_f64());
        self.histogram.record_duration(latency);
    }

    /// A [`Summary`] in seconds served from the sketch, or `None` if
    /// empty. Count, mean, min and max are exact; the percentiles are
    /// histogram bucket upper bounds (never underestimates, within the
    /// documented bound).
    pub fn summary(&self) -> Option<Summary> {
        if self.moments.count() == 0 {
            return None;
        }
        let q = |p: f64| self.histogram.value_at_quantile(p) as f64 / 1e6;
        Some(Summary {
            count: self.moments.count(),
            mean: self.moments.mean(),
            min: self.histogram.min().unwrap_or(0) as f64 / 1e6,
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            max: self.histogram.max().unwrap_or(0) as f64 / 1e6,
        })
    }
}

/// One failure cause's lost-job count (named struct rather than a map so
/// the entry order is an explicit, committed part of the report format).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CauseCount {
    /// The failure cause.
    pub cause: FailureCause,
    /// Jobs lost to it.
    pub count: u64,
}

/// One archetype's streaming aggregate within [`RunAggregates`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArchetypeAggregate {
    /// The application.
    pub archetype: Archetype,
    /// Jobs of this archetype.
    pub jobs: u64,
    /// Deadline misses (including failures).
    pub misses: u64,
    /// Platform failures.
    pub failures: u64,
    /// Streaming latency sketch.
    pub latency: LatencyDigest,
    /// Total deliberate hold before dispatch, in seconds (divide by
    /// `jobs` for the mean).
    pub hold_s: f64,
}

/// Streaming whole-run aggregates: everything the per-job methods of
/// [`RunResult`] derive from `jobs`, folded in one pass at result-record
/// time with O(1) memory in the job count.
///
/// Present on a [`RunResult`] exactly when the run used
/// `JobRetention::Aggregates`; the report methods transparently serve
/// from it when the per-job vector is empty. Counts, rates, means and
/// totals are exact; latency percentiles carry the histogram's
/// documented error bound.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunAggregates {
    /// Total jobs.
    pub jobs: u64,
    /// Jobs that missed their deadline or failed.
    pub deadline_misses: u64,
    /// Jobs lost to platform failures.
    pub failures: u64,
    /// Total execution attempts (≥ the job count).
    pub total_attempts: u64,
    /// Total retry-backoff wait.
    pub total_backoff: SimDuration,
    /// Total backend fallback switches.
    pub total_fallbacks: u64,
    /// Lost-job counts per failure cause, sorted by cause name.
    pub failure_causes: Vec<CauseCount>,
    /// Whole-run latency sketch.
    pub latency: LatencyDigest,
    /// Per-archetype aggregates, sorted by archetype name.
    pub by_archetype: Vec<ArchetypeAggregate>,
}

impl RunAggregates {
    /// Folds one job outcome into the aggregates. The few-element cause
    /// and archetype tables use linear probes — both are bounded by the
    /// enum sizes, not the job count.
    pub fn record(&mut self, r: &JobResult) {
        self.jobs += 1;
        if !r.met_deadline() {
            self.deadline_misses += 1;
        }
        if r.failed {
            self.failures += 1;
        }
        self.total_attempts += u64::from(r.attempts);
        self.total_backoff += r.backoff;
        self.total_fallbacks += u64::from(r.fallbacks);
        if let Some(c) = r.cause {
            match self.failure_causes.iter_mut().find(|e| e.cause.name() == c.name()) {
                Some(e) => e.count += 1,
                None => self.failure_causes.push(CauseCount { cause: c, count: 1 }),
            }
        }
        self.latency.observe(r.latency());
        let hold = (r.dispatched - r.arrival).as_secs_f64();
        let slot = match self.by_archetype.iter_mut().find(|a| a.archetype == r.archetype) {
            Some(a) => a,
            None => {
                self.by_archetype.push(ArchetypeAggregate {
                    archetype: r.archetype,
                    jobs: 0,
                    misses: 0,
                    failures: 0,
                    latency: LatencyDigest::default(),
                    hold_s: 0.0,
                });
                self.by_archetype.last_mut().expect("just pushed")
            }
        };
        slot.jobs += 1;
        if !r.met_deadline() {
            slot.misses += 1;
        }
        if r.failed {
            slot.failures += 1;
        }
        slot.latency.observe(r.latency());
        slot.hold_s += hold;
    }

    /// Sorts the cause and archetype tables into their committed name
    /// order. Call once when the run closes.
    pub fn finalize(&mut self) {
        self.failure_causes.sort_by_key(|e| e.cause.name());
        self.by_archetype.sort_by_key(|a| a.archetype.name());
    }

    /// The per-archetype breakdown served from the sketch.
    fn breakdown(&self) -> Vec<ArchetypeBreakdown> {
        self.by_archetype
            .iter()
            .map(|a| ArchetypeBreakdown {
                archetype: a.archetype,
                jobs: a.jobs as usize,
                misses: a.misses,
                failures: a.failures,
                latency: a.latency.summary(),
                mean_hold_s: a.hold_s / a.jobs as f64,
            })
            .collect()
    }
}

/// Aggregate outcome of one policy over one job stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// The policy that produced this run.
    pub policy: String,
    /// Per-job outcomes, in arrival order. Empty when the run was made
    /// with `JobRetention::Aggregates`, in which case `aggregates`
    /// carries the streaming equivalents.
    pub jobs: Vec<JobResult>,
    /// Total serverless bill (invocations + provisioning + warmers).
    pub cloud_cost: Money,
    /// Flat edge-infrastructure bill over the horizon.
    pub edge_cost: Money,
    /// UE battery energy consumed across all jobs.
    pub device_energy: Energy,
    /// The UE energy expressed as money (electricity-equivalent price).
    pub device_energy_cost: Money,
    /// Bytes uploaded from devices.
    pub bytes_up: DataSize,
    /// Bytes downloaded to devices.
    pub bytes_down: DataSize,
    /// Job completions per simulated hour.
    pub completions_per_hour: TimeSeries,
    /// The simulated horizon.
    pub horizon: SimDuration,
    /// Overload-layer counters, present only when the run's policy
    /// enabled any part of the health layer (breakers, admission
    /// control or hedging); `None` reproduces the legacy report
    /// byte for byte.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub overload: Option<OverloadStats>,
    /// Streaming aggregates, present only for `JobRetention::Aggregates`
    /// runs (where `jobs` is empty); `None` reproduces the legacy
    /// report byte for byte.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub aggregates: Option<RunAggregates>,
}

impl RunResult {
    /// Total monetary cost: cloud + edge + device electricity.
    pub fn total_cost(&self) -> Money {
        self.cloud_cost + self.edge_cost + self.device_energy_cost
    }

    /// Total jobs in the run, whichever retention mode produced it.
    pub fn job_count(&self) -> u64 {
        match &self.aggregates {
            Some(a) => a.jobs,
            None => self.jobs.len() as u64,
        }
    }

    /// Number of jobs that missed their deadline or failed.
    pub fn deadline_misses(&self) -> u64 {
        match &self.aggregates {
            Some(a) => a.deadline_misses,
            None => self.jobs.iter().filter(|j| !j.met_deadline()).count() as u64,
        }
    }

    /// Deadline-miss rate in `[0, 1]`; zero for an empty run.
    pub fn miss_rate(&self) -> f64 {
        let jobs = self.job_count();
        if jobs == 0 {
            0.0
        } else {
            self.deadline_misses() as f64 / jobs as f64
        }
    }

    /// Goodput: jobs that met their deadline, per simulated hour. The
    /// overload experiments rank policies by this — raw completions
    /// overcount work that arrived too late to matter.
    pub fn goodput_per_hour(&self) -> f64 {
        let hours = self.horizon.as_secs_f64() / 3600.0;
        if hours <= 0.0 {
            return 0.0;
        }
        (self.job_count() - self.deadline_misses()) as f64 / hours
    }

    /// Number of jobs lost to platform failures.
    pub fn failures(&self) -> u64 {
        match &self.aggregates {
            Some(a) => a.failures,
            None => self.jobs.iter().filter(|j| j.failed).count() as u64,
        }
    }

    /// Total execution attempts across all jobs (≥ the job count).
    pub fn total_attempts(&self) -> u64 {
        match &self.aggregates {
            Some(a) => a.total_attempts,
            None => self.jobs.iter().map(|j| u64::from(j.attempts)).sum(),
        }
    }

    /// Total retries: attempts beyond each job's first.
    pub fn total_retries(&self) -> u64 {
        match &self.aggregates {
            // Every job records at least one attempt, so the retry total
            // is exactly the attempts in excess of the job count.
            Some(a) => a.total_attempts.saturating_sub(a.jobs),
            None => self.jobs.iter().map(|j| u64::from(j.attempts.saturating_sub(1))).sum(),
        }
    }

    /// Total time jobs spent waiting in retry backoff.
    pub fn total_backoff(&self) -> SimDuration {
        match &self.aggregates {
            Some(a) => a.total_backoff,
            None => self.jobs.iter().map(|j| j.backoff).sum(),
        }
    }

    /// Total backend fallback switches across all jobs.
    pub fn total_fallbacks(&self) -> u64 {
        match &self.aggregates {
            Some(a) => a.total_fallbacks,
            None => self.jobs.iter().map(|j| u64::from(j.fallbacks)).sum(),
        }
    }

    /// Failed-job counts keyed by failure cause name, sorted by name.
    pub fn failure_causes(&self) -> BTreeMap<&'static str, u64> {
        if let Some(a) = &self.aggregates {
            return a.failure_causes.iter().map(|e| (e.cause.name(), e.count)).collect();
        }
        let mut causes = BTreeMap::new();
        for j in &self.jobs {
            if let Some(c) = j.cause {
                *causes.entry(c.name()).or_insert(0) += 1;
            }
        }
        causes
    }

    /// The whole-run latency summary and the per-archetype breakdown,
    /// computed together from a single sort over the run's latencies
    /// (or straight from the streaming sketch, with no sort at all).
    /// Callers that need both should call this once instead of
    /// [`latency_summary`](Self::latency_summary) plus
    /// [`by_archetype`](Self::by_archetype), which each redo the work.
    pub fn metrics(&self) -> (Option<Summary>, Vec<ArchetypeBreakdown>) {
        if let Some(a) = &self.aggregates {
            return (a.latency.summary(), a.breakdown());
        }
        struct Group {
            archetype: Archetype,
            jobs: usize,
            misses: u64,
            failures: u64,
            hold_sum: f64,
            latencies: Vec<f64>,
        }
        // Counters accumulate in arrival order; latencies are distributed
        // from one globally value-sorted buffer, whose per-group
        // subsequences are exactly the ascending per-group sorts (ties
        // are bit-identical f64s), so every Summary field matches the
        // sort-per-group result bit for bit.
        let mut groups: BTreeMap<&'static str, Group> = BTreeMap::new();
        for j in &self.jobs {
            let g = groups.entry(j.archetype.name()).or_insert_with(|| Group {
                archetype: j.archetype,
                jobs: 0,
                misses: 0,
                failures: 0,
                hold_sum: 0.0,
                latencies: Vec::new(),
            });
            g.jobs += 1;
            if !j.met_deadline() {
                g.misses += 1;
            }
            if j.failed {
                g.failures += 1;
            }
            g.hold_sum += (j.dispatched - j.arrival).as_secs_f64();
        }
        let mut tagged: Vec<(f64, &'static str)> =
            self.jobs.iter().map(|j| (j.latency().as_secs_f64(), j.archetype.name())).collect();
        tagged.sort_by(|a, b| a.0.total_cmp(&b.0));
        let sorted: Vec<f64> = tagged.iter().map(|&(v, _)| v).collect();
        let latency = Summary::of_sorted(&sorted);
        for &(v, name) in &tagged {
            groups.get_mut(name).expect("every job has a group").latencies.push(v);
        }
        let breakdown = groups
            .into_values()
            .map(|g| ArchetypeBreakdown {
                archetype: g.archetype,
                jobs: g.jobs,
                misses: g.misses,
                failures: g.failures,
                latency: Summary::of_sorted(&g.latencies),
                mean_hold_s: g.hold_sum / g.jobs as f64,
            })
            .collect();
        (latency, breakdown)
    }

    /// Latency summary in seconds, or `None` for an empty run. Exact in
    /// `Full` retention; percentiles within the histogram bound in
    /// `Aggregates`.
    pub fn latency_summary(&self) -> Option<Summary> {
        if let Some(a) = &self.aggregates {
            return a.latency.summary();
        }
        let xs: Vec<f64> = self.jobs.iter().map(|j| j.latency().as_secs_f64()).collect();
        Summary::of(&xs)
    }

    /// Mean cost per job, or zero for an empty run.
    pub fn cost_per_job(&self) -> Money {
        let jobs = self.job_count();
        if jobs == 0 {
            Money::ZERO
        } else {
            self.total_cost() / jobs as i64
        }
    }

    /// Per-archetype outcome breakdown, sorted by archetype name.
    /// Callers that also need [`latency_summary`](Self::latency_summary)
    /// should use [`metrics`](Self::metrics), which sorts once for both.
    pub fn by_archetype(&self) -> Vec<ArchetypeBreakdown> {
        self.metrics().1
    }

    /// Serialises the full result as pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialisation fails (all fields are plain data; it
    /// cannot in practice).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunResult serialises")
    }
}

/// Counters of the overload-aware dispatch layer over one run: how often
/// work was deferred, shed down the chain, steered around an Open
/// breaker, or hedged onto a second site.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OverloadStats {
    /// Batches shed to the next chain site by admission control.
    pub sheds: u64,
    /// Dispatch deferrals granted to delay-tolerant batches.
    pub deferrals: u64,
    /// Executions steered past an Open breaker at dispatch.
    pub breaker_skips: u64,
    /// Hedged (duplicated) invocations launched.
    pub hedges: u64,
    /// Hedges whose duplicate finished first.
    pub hedges_won: u64,
    /// Hedges whose duplicate lost (or failed outright).
    pub hedges_lost: u64,
    /// Invocations cancelled as hedge losers (never counted as failures
    /// and never charged against retry budget).
    pub hedge_cancelled: u64,
    /// Breaker state transitions per site, keyed by site name.
    pub breaker_transitions: BTreeMap<String, u32>,
}

/// One archetype's slice of a [`RunResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchetypeBreakdown {
    /// The application.
    pub archetype: Archetype,
    /// Jobs of this archetype.
    pub jobs: usize,
    /// Deadline misses (including failures).
    pub misses: u64,
    /// Platform failures.
    pub failures: u64,
    /// Latency summary in seconds.
    pub latency: Option<Summary>,
    /// Mean deliberate hold before dispatch, in seconds.
    pub mean_hold_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, arrival_s: u64, finish_s: u64, deadline_s: u64, failed: bool) -> JobResult {
        JobResult {
            id,
            archetype: Archetype::PhotoPipeline,
            arrival: SimTime::from_secs(arrival_s),
            dispatched: SimTime::from_secs(arrival_s),
            finish: SimTime::from_secs(finish_s),
            deadline: SimTime::from_secs(deadline_s),
            failed,
            attempts: 1,
            backoff: SimDuration::ZERO,
            fallbacks: 0,
            cause: if failed { Some(FailureCause::Transient) } else { None },
        }
    }

    fn run(jobs: Vec<JobResult>) -> RunResult {
        RunResult {
            policy: "test".into(),
            jobs,
            cloud_cost: Money::from_cents(30),
            edge_cost: Money::from_cents(50),
            device_energy: Energy::from_joules(100),
            device_energy_cost: Money::from_cents(20),
            bytes_up: DataSize::from_mib(1),
            bytes_down: DataSize::from_mib(2),
            completions_per_hour: TimeSeries::new(SimDuration::from_hours(1)),
            horizon: SimDuration::from_hours(1),
            overload: None,
            aggregates: None,
        }
    }

    /// The same run served through streaming aggregates instead of the
    /// per-job vector.
    fn aggregated(jobs: Vec<JobResult>) -> RunResult {
        let mut agg = RunAggregates::default();
        for j in &jobs {
            agg.record(j);
        }
        agg.finalize();
        let mut r = run(vec![]);
        r.aggregates = Some(agg);
        r
    }

    #[test]
    fn deadline_accounting() {
        let r = run(vec![
            job(0, 0, 10, 20, false), // met
            job(1, 0, 30, 20, false), // missed
            job(2, 0, 10, 20, true),  // failed → counts as miss
        ]);
        assert_eq!(r.deadline_misses(), 2);
        assert_eq!(r.failures(), 1);
        assert!((r.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn totals_add_up() {
        let r = run(vec![job(0, 0, 10, 20, false), job(1, 0, 10, 20, false)]);
        assert_eq!(r.total_cost(), Money::from_cents(100));
        assert_eq!(r.cost_per_job(), Money::from_cents(50));
    }

    #[test]
    fn latency_summary_reflects_jobs() {
        let r = run(vec![job(0, 0, 5, 100, false), job(1, 10, 25, 100, false)]);
        let s = r.latency_summary().unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 15.0);
    }

    #[test]
    fn empty_run_is_well_behaved() {
        let r = run(vec![]);
        assert_eq!(r.miss_rate(), 0.0);
        assert_eq!(r.cost_per_job(), Money::ZERO);
        assert!(r.latency_summary().is_none());
        assert!(r.by_archetype().is_empty());
    }

    #[test]
    fn by_archetype_groups_and_counts() {
        let mut jobs = vec![job(0, 0, 10, 20, false), job(1, 0, 30, 20, false)];
        jobs.push(JobResult { archetype: Archetype::SciSweep, ..job(2, 0, 5, 50, false) });
        let r = run(jobs);
        let groups = r.by_archetype();
        assert_eq!(groups.len(), 2);
        let photo = groups.iter().find(|g| g.archetype == Archetype::PhotoPipeline).unwrap();
        assert_eq!(photo.jobs, 2);
        assert_eq!(photo.misses, 1);
        let sci = groups.iter().find(|g| g.archetype == Archetype::SciSweep).unwrap();
        assert_eq!(sci.jobs, 1);
        assert_eq!(sci.misses, 0);
    }

    #[test]
    fn retry_accounting_sums_over_jobs() {
        let mut a = job(0, 0, 10, 20, false);
        a.attempts = 3;
        a.backoff = SimDuration::from_secs(4);
        a.fallbacks = 1;
        let mut b = job(1, 0, 10, 20, true);
        b.attempts = 5;
        b.backoff = SimDuration::from_secs(6);
        b.cause = Some(FailureCause::Timeout);
        let r = run(vec![a, b]);
        assert_eq!(r.total_attempts(), 8);
        assert_eq!(r.total_retries(), 6);
        assert_eq!(r.total_backoff(), SimDuration::from_secs(10));
        assert_eq!(r.total_fallbacks(), 1);
        let causes = r.failure_causes();
        assert_eq!(causes.get("timeout"), Some(&1));
        assert_eq!(causes.len(), 1);
    }

    #[test]
    fn goodput_counts_only_deadline_met_jobs() {
        let r = run(vec![
            job(0, 0, 10, 20, false), // met
            job(1, 0, 30, 20, false), // missed
            job(2, 0, 10, 20, true),  // failed
        ]);
        assert_eq!(r.goodput_per_hour(), 1.0, "one met job over a one-hour horizon");
        assert_eq!(run(vec![]).goodput_per_hour(), 0.0);
    }

    #[test]
    fn overload_stats_absent_by_default() {
        let r = run(vec![job(0, 0, 10, 20, false)]);
        assert!(r.overload.is_none());
        let stats = OverloadStats { hedges: 3, hedges_won: 2, ..Default::default() };
        assert_eq!(stats.hedges_won, 2);
        assert!(stats.breaker_transitions.is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let r = run(vec![job(0, 0, 10, 20, false)]);
        let s = r.to_json();
        let back: RunResult = serde_json::from_str(&s).unwrap();
        assert_eq!(back.jobs, r.jobs);
        assert_eq!(back.cloud_cost, r.cloud_cost);
    }

    #[test]
    fn aggregates_match_full_retention_counters() {
        let mut jobs = vec![
            job(0, 0, 10, 20, false), // met
            job(1, 0, 30, 20, false), // missed
            job(2, 0, 10, 20, true),  // failed
        ];
        jobs[1].attempts = 3;
        jobs[1].backoff = SimDuration::from_secs(2);
        jobs[1].fallbacks = 1;
        jobs.push(JobResult { archetype: Archetype::SciSweep, ..job(3, 0, 5, 50, false) });
        let full = run(jobs.clone());
        let agg = aggregated(jobs);
        assert_eq!(agg.job_count(), full.job_count());
        assert_eq!(agg.deadline_misses(), full.deadline_misses());
        assert_eq!(agg.miss_rate(), full.miss_rate());
        assert_eq!(agg.goodput_per_hour(), full.goodput_per_hour());
        assert_eq!(agg.failures(), full.failures());
        assert_eq!(agg.total_attempts(), full.total_attempts());
        assert_eq!(agg.total_retries(), full.total_retries());
        assert_eq!(agg.total_backoff(), full.total_backoff());
        assert_eq!(agg.total_fallbacks(), full.total_fallbacks());
        assert_eq!(agg.failure_causes(), full.failure_causes());
        assert_eq!(agg.cost_per_job(), full.cost_per_job());
        let (fs, fb) = full.metrics();
        let (as_, ab) = agg.metrics();
        let (fs, as_) = (fs.unwrap(), as_.unwrap());
        assert_eq!(as_.count, fs.count);
        assert!((as_.mean - fs.mean).abs() <= 1e-9 * fs.mean.abs());
        assert_eq!(as_.min, fs.min);
        assert_eq!(as_.max, fs.max);
        assert_eq!(ab.len(), fb.len());
        for (a, f) in ab.iter().zip(&fb) {
            assert_eq!(a.archetype, f.archetype);
            assert_eq!(a.jobs, f.jobs);
            assert_eq!(a.misses, f.misses);
            assert_eq!(a.failures, f.failures);
            assert_eq!(a.mean_hold_s, f.mean_hold_s);
        }
    }

    #[test]
    fn digest_quantiles_stay_within_documented_bound() {
        let mut d = LatencyDigest::default();
        let mut xs = Vec::new();
        for i in 0..5_000u64 {
            let us = 1_000 + i * 977;
            d.observe(SimDuration::from_micros(us));
            xs.push(us as f64 / 1e6);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let s = d.summary().unwrap();
        assert_eq!(s.count, 5_000);
        assert_eq!(s.min, xs[0]);
        assert_eq!(s.max, *xs.last().unwrap());
        for (q, got) in [(0.50, s.p50), (0.95, s.p95), (0.99, s.p99)] {
            // Exact rank-k order statistic (k = ceil(q·n), 1-indexed).
            let k = ((q * xs.len() as f64).ceil() as usize).max(1);
            let exact = xs[k - 1];
            assert!(got >= exact, "q={q}: {got} underestimates {exact}");
            assert!(
                got <= exact * (1.0 + Histogram::RELATIVE_ERROR_BOUND),
                "q={q}: {got} exceeds bound over {exact}"
            );
        }
    }

    #[test]
    fn one_sort_metrics_match_per_call_summaries() {
        let mut jobs = vec![job(0, 0, 12, 20, false), job(1, 3, 10, 20, false)];
        jobs.push(JobResult { archetype: Archetype::SciSweep, ..job(2, 0, 40, 50, false) });
        let r = run(jobs);
        let (summary, breakdown) = r.metrics();
        assert_eq!(summary, r.latency_summary());
        assert_eq!(breakdown, r.by_archetype());
        let photo = breakdown.iter().find(|g| g.archetype == Archetype::PhotoPipeline).unwrap();
        assert_eq!(photo.latency.unwrap().count, 2);
    }
}
