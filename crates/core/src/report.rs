//! Result records of an end-to-end run: per-job outcomes and aggregate
//! metrics, serialisable for the experiment harness.

use std::collections::BTreeMap;

use ntc_faults::FailureCause;
use ntc_simcore::stats::Summary;
use ntc_simcore::timeseries::TimeSeries;
use ntc_simcore::units::{DataSize, Energy, Money, SimDuration, SimTime};
use ntc_workloads::Archetype;
use serde::{Deserialize, Serialize};

/// The outcome of one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// The job's stream id.
    pub id: u64,
    /// Which application it invoked.
    pub archetype: Archetype,
    /// When it arrived.
    pub arrival: SimTime,
    /// When it was released to execution (after any deliberate holding).
    pub dispatched: SimTime,
    /// When its results reached the device.
    pub finish: SimTime,
    /// Its deadline.
    pub deadline: SimTime,
    /// Whether a cloud/edge failure lost the job.
    pub failed: bool,
    /// Execution attempts made for the job's batch (1 = first attempt
    /// succeeded; the maximum across the graph's components).
    pub attempts: u32,
    /// Time the job's batch spent waiting in retry backoff (the maximum
    /// cumulative backoff across components, so it never exceeds
    /// `finish - dispatched`).
    pub backoff: SimDuration,
    /// Backend fallback switches the job's batch performed (edge → cloud
    /// → device).
    pub fallbacks: u32,
    /// Why the job was lost, when it was.
    pub cause: Option<FailureCause>,
}

impl JobResult {
    /// End-to-end latency (arrival to results on device).
    pub fn latency(&self) -> SimDuration {
        self.finish - self.arrival
    }

    /// Whether the job finished by its deadline (failed jobs never do).
    pub fn met_deadline(&self) -> bool {
        !self.failed && self.finish <= self.deadline
    }
}

/// Aggregate outcome of one policy over one job stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// The policy that produced this run.
    pub policy: String,
    /// Per-job outcomes, in arrival order.
    pub jobs: Vec<JobResult>,
    /// Total serverless bill (invocations + provisioning + warmers).
    pub cloud_cost: Money,
    /// Flat edge-infrastructure bill over the horizon.
    pub edge_cost: Money,
    /// UE battery energy consumed across all jobs.
    pub device_energy: Energy,
    /// The UE energy expressed as money (electricity-equivalent price).
    pub device_energy_cost: Money,
    /// Bytes uploaded from devices.
    pub bytes_up: DataSize,
    /// Bytes downloaded to devices.
    pub bytes_down: DataSize,
    /// Job completions per simulated hour.
    pub completions_per_hour: TimeSeries,
    /// The simulated horizon.
    pub horizon: SimDuration,
    /// Overload-layer counters, present only when the run's policy
    /// enabled any part of the health layer (breakers, admission
    /// control or hedging); `None` reproduces the legacy report
    /// byte for byte.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub overload: Option<OverloadStats>,
}

impl RunResult {
    /// Total monetary cost: cloud + edge + device electricity.
    pub fn total_cost(&self) -> Money {
        self.cloud_cost + self.edge_cost + self.device_energy_cost
    }

    /// Number of jobs that missed their deadline or failed.
    pub fn deadline_misses(&self) -> u64 {
        self.jobs.iter().filter(|j| !j.met_deadline()).count() as u64
    }

    /// Deadline-miss rate in `[0, 1]`; zero for an empty run.
    pub fn miss_rate(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.deadline_misses() as f64 / self.jobs.len() as f64
        }
    }

    /// Goodput: jobs that met their deadline, per simulated hour. The
    /// overload experiments rank policies by this — raw completions
    /// overcount work that arrived too late to matter.
    pub fn goodput_per_hour(&self) -> f64 {
        let hours = self.horizon.as_secs_f64() / 3600.0;
        if hours <= 0.0 {
            return 0.0;
        }
        self.jobs.iter().filter(|j| j.met_deadline()).count() as f64 / hours
    }

    /// Number of jobs lost to platform failures.
    pub fn failures(&self) -> u64 {
        self.jobs.iter().filter(|j| j.failed).count() as u64
    }

    /// Total execution attempts across all jobs (≥ the job count).
    pub fn total_attempts(&self) -> u64 {
        self.jobs.iter().map(|j| u64::from(j.attempts)).sum()
    }

    /// Total retries: attempts beyond each job's first.
    pub fn total_retries(&self) -> u64 {
        self.jobs.iter().map(|j| u64::from(j.attempts.saturating_sub(1))).sum()
    }

    /// Total time jobs spent waiting in retry backoff.
    pub fn total_backoff(&self) -> SimDuration {
        self.jobs.iter().map(|j| j.backoff).sum()
    }

    /// Total backend fallback switches across all jobs.
    pub fn total_fallbacks(&self) -> u64 {
        self.jobs.iter().map(|j| u64::from(j.fallbacks)).sum()
    }

    /// Failed-job counts keyed by failure cause name, sorted by name.
    pub fn failure_causes(&self) -> BTreeMap<&'static str, u64> {
        let mut causes = BTreeMap::new();
        for j in &self.jobs {
            if let Some(c) = j.cause {
                *causes.entry(c.name()).or_insert(0) += 1;
            }
        }
        causes
    }

    /// Latency summary in seconds, or `None` for an empty run.
    pub fn latency_summary(&self) -> Option<Summary> {
        let xs: Vec<f64> = self.jobs.iter().map(|j| j.latency().as_secs_f64()).collect();
        Summary::of(&xs)
    }

    /// Mean cost per job, or zero for an empty run.
    pub fn cost_per_job(&self) -> Money {
        if self.jobs.is_empty() {
            Money::ZERO
        } else {
            self.total_cost() / self.jobs.len() as i64
        }
    }

    /// Per-archetype outcome breakdown, sorted by archetype name.
    pub fn by_archetype(&self) -> Vec<ArchetypeBreakdown> {
        let mut groups: BTreeMap<&'static str, Vec<&JobResult>> = BTreeMap::new();
        for j in &self.jobs {
            groups.entry(j.archetype.name()).or_default().push(j);
        }
        groups
            .into_values()
            .map(|js| {
                let archetype = js[0].archetype;
                let latencies: Vec<f64> = js.iter().map(|j| j.latency().as_secs_f64()).collect();
                let holds: f64 =
                    js.iter().map(|j| (j.dispatched - j.arrival).as_secs_f64()).sum::<f64>()
                        / js.len() as f64;
                ArchetypeBreakdown {
                    archetype,
                    jobs: js.len(),
                    misses: js.iter().filter(|j| !j.met_deadline()).count() as u64,
                    failures: js.iter().filter(|j| j.failed).count() as u64,
                    latency: Summary::of(&latencies),
                    mean_hold_s: holds,
                }
            })
            .collect()
    }

    /// Serialises the full result as pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialisation fails (all fields are plain data; it
    /// cannot in practice).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunResult serialises")
    }
}

/// Counters of the overload-aware dispatch layer over one run: how often
/// work was deferred, shed down the chain, steered around an Open
/// breaker, or hedged onto a second site.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OverloadStats {
    /// Batches shed to the next chain site by admission control.
    pub sheds: u64,
    /// Dispatch deferrals granted to delay-tolerant batches.
    pub deferrals: u64,
    /// Executions steered past an Open breaker at dispatch.
    pub breaker_skips: u64,
    /// Hedged (duplicated) invocations launched.
    pub hedges: u64,
    /// Hedges whose duplicate finished first.
    pub hedges_won: u64,
    /// Hedges whose duplicate lost (or failed outright).
    pub hedges_lost: u64,
    /// Invocations cancelled as hedge losers (never counted as failures
    /// and never charged against retry budget).
    pub hedge_cancelled: u64,
    /// Breaker state transitions per site, keyed by site name.
    pub breaker_transitions: BTreeMap<String, u32>,
}

/// One archetype's slice of a [`RunResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchetypeBreakdown {
    /// The application.
    pub archetype: Archetype,
    /// Jobs of this archetype.
    pub jobs: usize,
    /// Deadline misses (including failures).
    pub misses: u64,
    /// Platform failures.
    pub failures: u64,
    /// Latency summary in seconds.
    pub latency: Option<Summary>,
    /// Mean deliberate hold before dispatch, in seconds.
    pub mean_hold_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, arrival_s: u64, finish_s: u64, deadline_s: u64, failed: bool) -> JobResult {
        JobResult {
            id,
            archetype: Archetype::PhotoPipeline,
            arrival: SimTime::from_secs(arrival_s),
            dispatched: SimTime::from_secs(arrival_s),
            finish: SimTime::from_secs(finish_s),
            deadline: SimTime::from_secs(deadline_s),
            failed,
            attempts: 1,
            backoff: SimDuration::ZERO,
            fallbacks: 0,
            cause: if failed { Some(FailureCause::Transient) } else { None },
        }
    }

    fn run(jobs: Vec<JobResult>) -> RunResult {
        RunResult {
            policy: "test".into(),
            jobs,
            cloud_cost: Money::from_cents(30),
            edge_cost: Money::from_cents(50),
            device_energy: Energy::from_joules(100),
            device_energy_cost: Money::from_cents(20),
            bytes_up: DataSize::from_mib(1),
            bytes_down: DataSize::from_mib(2),
            completions_per_hour: TimeSeries::new(SimDuration::from_hours(1)),
            horizon: SimDuration::from_hours(1),
            overload: None,
        }
    }

    #[test]
    fn deadline_accounting() {
        let r = run(vec![
            job(0, 0, 10, 20, false), // met
            job(1, 0, 30, 20, false), // missed
            job(2, 0, 10, 20, true),  // failed → counts as miss
        ]);
        assert_eq!(r.deadline_misses(), 2);
        assert_eq!(r.failures(), 1);
        assert!((r.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn totals_add_up() {
        let r = run(vec![job(0, 0, 10, 20, false), job(1, 0, 10, 20, false)]);
        assert_eq!(r.total_cost(), Money::from_cents(100));
        assert_eq!(r.cost_per_job(), Money::from_cents(50));
    }

    #[test]
    fn latency_summary_reflects_jobs() {
        let r = run(vec![job(0, 0, 5, 100, false), job(1, 10, 25, 100, false)]);
        let s = r.latency_summary().unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 15.0);
    }

    #[test]
    fn empty_run_is_well_behaved() {
        let r = run(vec![]);
        assert_eq!(r.miss_rate(), 0.0);
        assert_eq!(r.cost_per_job(), Money::ZERO);
        assert!(r.latency_summary().is_none());
        assert!(r.by_archetype().is_empty());
    }

    #[test]
    fn by_archetype_groups_and_counts() {
        let mut jobs = vec![job(0, 0, 10, 20, false), job(1, 0, 30, 20, false)];
        jobs.push(JobResult { archetype: Archetype::SciSweep, ..job(2, 0, 5, 50, false) });
        let r = run(jobs);
        let groups = r.by_archetype();
        assert_eq!(groups.len(), 2);
        let photo = groups.iter().find(|g| g.archetype == Archetype::PhotoPipeline).unwrap();
        assert_eq!(photo.jobs, 2);
        assert_eq!(photo.misses, 1);
        let sci = groups.iter().find(|g| g.archetype == Archetype::SciSweep).unwrap();
        assert_eq!(sci.jobs, 1);
        assert_eq!(sci.misses, 0);
    }

    #[test]
    fn retry_accounting_sums_over_jobs() {
        let mut a = job(0, 0, 10, 20, false);
        a.attempts = 3;
        a.backoff = SimDuration::from_secs(4);
        a.fallbacks = 1;
        let mut b = job(1, 0, 10, 20, true);
        b.attempts = 5;
        b.backoff = SimDuration::from_secs(6);
        b.cause = Some(FailureCause::Timeout);
        let r = run(vec![a, b]);
        assert_eq!(r.total_attempts(), 8);
        assert_eq!(r.total_retries(), 6);
        assert_eq!(r.total_backoff(), SimDuration::from_secs(10));
        assert_eq!(r.total_fallbacks(), 1);
        let causes = r.failure_causes();
        assert_eq!(causes.get("timeout"), Some(&1));
        assert_eq!(causes.len(), 1);
    }

    #[test]
    fn goodput_counts_only_deadline_met_jobs() {
        let r = run(vec![
            job(0, 0, 10, 20, false), // met
            job(1, 0, 30, 20, false), // missed
            job(2, 0, 10, 20, true),  // failed
        ]);
        assert_eq!(r.goodput_per_hour(), 1.0, "one met job over a one-hour horizon");
        assert_eq!(run(vec![]).goodput_per_hour(), 0.0);
    }

    #[test]
    fn overload_stats_absent_by_default() {
        let r = run(vec![job(0, 0, 10, 20, false)]);
        assert!(r.overload.is_none());
        let stats = OverloadStats { hedges: 3, hedges_won: 2, ..Default::default() };
        assert_eq!(stats.hedges_won, 2);
        assert!(stats.breaker_transitions.is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let r = run(vec![job(0, 0, 10, 20, false)]);
        let s = r.to_json();
        let back: RunResult = serde_json::from_str(&s).unwrap();
        assert_eq!(back.jobs, r.jobs);
        assert_eq!(back.cloud_cost, r.cloud_cost);
    }
}
