//! Deployment construction: applying a policy to an application yields a
//! [`Deployment`] — the partition plan, per-component memory sizes,
//! dispatch policy and warming strategy the execution engine runs with.
//!
//! This is the framework's "release" step: under the NTC policy it chains
//! contribution C1 (profile), C3 (partition), C2 (allocate) and C5
//! (batching), exactly as the CI/CD pipeline stages do.

use ntc_alloc::{allocate, recommend_for_site, AllocationRequest, DispatchPolicy, WarmStrategy};
use ntc_partition::{
    CostParams, FullOffload, KeepLocal, MinCutPartitioner, PartitionContext, PartitionPlan,
    Partitioner, Side,
};
use ntc_profiler::AppProfiler;
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{Cycles, DataSize, SimDuration};
use ntc_taskgraph::{ComponentId, TaskGraph};
use ntc_workloads::Archetype;
use serde::{Deserialize, Serialize};

use crate::environment::Environment;
use crate::policy::{Backend, NtcConfig, OffloadPolicy};
use crate::site::{ExecutionSite, SiteId, SiteRegistry};

/// The memory size granting one full vCPU — the baseline policies'
/// deployment size.
pub const DEFAULT_MEMORY: DataSize = DataSize::from_bytes(1769 * 1024 * 1024);

/// The platform's out-of-the-box memory size (Lambda defaults to
/// 128 MiB) — what a team gets when nobody tunes the allocation
/// (the `use_allocator: false` ablation).
pub const UNTUNED_MEMORY: DataSize = DataSize::from_mib(128);

/// A deployed application: everything the engine needs to execute jobs of
/// one archetype under one policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Deployment {
    /// The application.
    pub archetype: Archetype,
    /// Its task graph.
    pub graph: TaskGraph,
    /// Component → side assignment (Cloud side = the policy's backend).
    pub plan: PartitionPlan,
    /// Where offloaded components run.
    pub backend: Backend,
    /// Per-component function memory size (meaningful for offloaded
    /// components on the cloud backend).
    pub memory: Vec<DataSize>,
    /// When to release arriving jobs.
    pub dispatch: DispatchPolicy,
    /// Cold-start mitigation for offloaded functions.
    pub warm: WarmStrategy,
    /// Estimated end-to-end completion time of one job (for safe holding).
    pub est_completion: SimDuration,
    /// The per-component demand estimates the decisions were based on.
    pub demands: Vec<Cycles>,
    /// The representative input the estimates refer to.
    pub reference_input: DataSize,
    /// Largest number of jobs one coalesced invocation may carry before
    /// the window is split into chunks (keeps batch executions far from
    /// the function timeout even under demand-noise and input tails).
    pub max_batch_members: u32,
    /// Largest total input one coalesced invocation may carry; windows
    /// accumulating more input are split into chunks. Derived from the
    /// slowest offloaded component's demand model, its memory size, and a
    /// 2x demand-noise margin against the function timeout.
    pub max_batch_bytes: DataSize,
    /// Estimated completion of one job run entirely on the device.
    pub est_local: SimDuration,
    /// Whether batches that provably cannot make their deadline offloaded
    /// (but can locally) should execute on the device instead.
    pub fallback_local: bool,
    /// Failure-driven site-preference chain, primary first: where the
    /// engine provisions this deployment and, on unrecoverable errors,
    /// the order it degrades along. Empty (the serde default, for
    /// deployments recorded before chains existed) means "just the
    /// primary backend, no fallback".
    #[serde(default)]
    pub site_chain: Vec<SiteId>,
}

impl Deployment {
    /// Whether `id` runs away from the device.
    pub fn is_offloaded(&self, id: ComponentId) -> bool {
        self.plan.side(id) == Side::Cloud
    }

    /// Number of offloaded components.
    pub fn offloaded_count(&self) -> usize {
        self.plan.offloaded().count()
    }

    /// Deterministic end-to-end latency estimate of one job with the
    /// given input under this deployment (annotation demands, base
    /// network latencies, no queueing or cold starts).
    pub fn estimated_latency(&self, env: &Environment, input: DataSize) -> SimDuration {
        let demands: Vec<Cycles> =
            self.graph.ids().map(|id| self.graph.component(id).demand_cycles(input)).collect();
        let sites = SiteRegistry::planning(env);
        // Nominal (uncongested) conditions: this is a descriptive figure,
        // not the conservative planning estimate used to hold jobs.
        estimate_completion_at_share(
            env,
            sites.get(&SiteId::from(self.backend)),
            &self.graph,
            &self.plan,
            &self.memory,
            &demands,
            input,
            Some(1.0),
        )
    }

    /// The site-preference chain, falling back to "just the primary
    /// backend" for deployments recorded before chains existed.
    pub fn resolved_chain(&self) -> Vec<SiteId> {
        if self.site_chain.is_empty() {
            vec![SiteId::from(self.backend)]
        } else {
            self.site_chain.clone()
        }
    }
}

fn cost_params(env: &Environment, site: &dyn ExecutionSite) -> CostParams {
    let path = site.ue_path(env);
    let (money_per_sec, per_request) = site.marginal_cost(env, DEFAULT_MEMORY);
    CostParams {
        device_speed: env.device.clock,
        cloud_speed: site.execution_speed(env, DEFAULT_MEMORY),
        link_latency: path.base_latency(),
        link_bandwidth: path.bottleneck_bandwidth(),
        device_active_power: env.device.active_power,
        device_tx_power: env.device.tx_power,
        cloud_money_per_sec: money_per_sec,
        money_per_request: per_request,
        weights: Default::default(),
    }
}

/// Representative inputs: the mean and the empirical tail (sample
/// maximum) of a deterministic sample of the archetype's input
/// distribution.
fn reference_inputs(archetype: Archetype, rng: &RngStream) -> (DataSize, DataSize) {
    let mut r = rng.derive("reference-input");
    let n = 64u64;
    let samples: Vec<u64> = (0..n).map(|_| archetype.sample_input(&mut r).as_bytes()).collect();
    let mean = samples.iter().sum::<u64>() / n;
    let tail = *samples.iter().max().expect("non-empty sample");
    (DataSize::from_bytes(mean), DataSize::from_bytes(tail))
}

/// Synthetic profiling run: observe `samples` executions of every
/// component with the archetype's runtime noise, exactly as the engine
/// will generate them.
fn train_profiler(
    graph: &TaskGraph,
    archetype: Archetype,
    cfg: &NtcConfig,
    rng: &RngStream,
) -> AppProfiler {
    let mut profiler = AppProfiler::new(graph, cfg.estimator).with_min_observations(3);
    let mut r = rng.derive("profiling");
    let sigma = archetype.demand_noise_sigma();
    let drift = archetype.demand_drift();
    for _ in 0..cfg.profile_samples {
        let input = archetype.sample_input(&mut r);
        for (id, c) in graph.components() {
            let actual = c.demand_cycles(input).get() as f64 * drift * r.lognormal(0.0, sigma);
            profiler.observe(id, input, Cycles::new(actual.round() as u64));
        }
    }
    profiler
}

/// Estimates the sequential completion time of one job under a plan:
/// device execution + remote execution at the chosen memory + boundary
/// transfers + the result return.
fn estimate_completion(
    env: &Environment,
    site: &dyn ExecutionSite,
    graph: &TaskGraph,
    plan: &PartitionPlan,
    memory: &[DataSize],
    demands: &[Cycles],
    input: DataSize,
) -> SimDuration {
    estimate_completion_at_share(env, site, graph, plan, memory, demands, input, None)
}

#[allow(clippy::too_many_arguments)]
fn estimate_completion_at_share(
    env: &Environment,
    site: &dyn ExecutionSite,
    graph: &TaskGraph,
    plan: &PartitionPlan,
    memory: &[DataSize],
    demands: &[Cycles],
    input: DataSize,
    share_override: Option<f64>,
) -> SimDuration {
    let mut total = SimDuration::ZERO;
    for id in graph.ids() {
        let work = demands[id.index()];
        total += match plan.side(id) {
            Side::Device => env.device.execution_time(work),
            Side::Cloud => site.execution_speed(env, memory[id.index()]).execution_time(work),
        };
    }
    let path = site.ue_path(env);
    let worst_share = share_override.unwrap_or_else(|| site.planning_share(env));
    let bw = path.bottleneck_bandwidth().mul_f64(worst_share);
    for flow in plan.cut_flows(graph) {
        let bytes = flow.payload_bytes(input);
        total += path.base_latency() + bw.transfer_time(bytes);
    }
    total += path.base_latency() + bw.transfer_time(env.result_return);
    total
}

/// Builds the deployment of `archetype` under `policy` in `env`, for
/// traffic at `rate_per_sec` whose jobs carry roughly `expected_slack` of
/// deadline slack.
///
/// Deterministic given the same `rng` stream.
pub fn deploy(
    policy: &OffloadPolicy,
    archetype: Archetype,
    env: &Environment,
    rate_per_sec: f64,
    expected_slack: SimDuration,
    rng: &RngStream,
) -> Deployment {
    let graph = archetype.graph();
    let rng = rng.derive(&format!("deploy-{}", archetype.name()));
    let backend = policy.backend();
    // Planning-time view of the available sites: the primary's declared
    // capabilities (metered? warmable? timeout-bound?) gate the decisions
    // below, so a new backend only has to describe itself.
    let sites = SiteRegistry::planning(env);
    let primary = SiteId::from(backend);
    let site = sites.get(&primary);
    let caps = site.capabilities();
    let (input, tail_input) = reference_inputs(archetype, &rng);

    // --- C1: demands. ---
    let (demands, profiled): (Vec<Cycles>, bool) = match policy {
        OffloadPolicy::Ntc(cfg) if cfg.use_profiler => {
            let profiler = train_profiler(&graph, archetype, cfg, &rng);
            (graph.ids().map(|id| profiler.predict(id, input)).collect(), true)
        }
        _ => (graph.ids().map(|id| graph.component(id).demand_cycles(input)).collect(), false),
    };
    let _ = profiled;

    // --- C3: the plan. ---
    let plan = match policy {
        OffloadPolicy::LocalOnly => {
            KeepLocal.partition(&PartitionContext::new(&graph, input, cost_params(env, site)))
        }
        OffloadPolicy::EdgeAll | OffloadPolicy::CloudAll => {
            FullOffload.partition(&PartitionContext::new(&graph, input, cost_params(env, site)))
        }
        OffloadPolicy::Ntc(cfg) => {
            let ctx = PartitionContext::new(&graph, input, cost_params(env, site))
                .with_demands(demands.clone());
            if cfg.use_partitioner {
                MinCutPartitioner.partition(&ctx)
            } else {
                FullOffload.partition(&ctx)
            }
        }
    };

    // --- C5: dispatch + warming (decided first: batching determines how
    // much work one invocation will carry). ---
    let slack = expected_slack;
    let offloaded = plan.offloaded().count().max(1);
    let (dispatch, warm) = match policy {
        OffloadPolicy::Ntc(cfg) => {
            let dispatch = if cfg.use_batching && !slack.is_zero() && plan.offloaded().count() > 0 {
                let window = slack.mul_f64(0.1);
                if cfg.off_peak {
                    DispatchPolicy::OffPeak { window, start_hour: 0, end_hour: 6 }
                } else {
                    DispatchPolicy::Windowed { window }
                }
            } else {
                DispatchPolicy::Immediate
            };
            let interarrival = if rate_per_sec > 0.0 {
                SimDuration::from_secs_f64((1.0 / rate_per_sec).min(3.15e7))
            } else {
                SimDuration::from_hours(24 * 365)
            };
            let warm = recommend_for_site(&caps, interarrival, env.platform.keep_alive.idle_ttl());
            (dispatch, warm)
        }
        _ => (DispatchPolicy::Immediate, WarmStrategy::PlatformOnly),
    };

    // Expected coalesced batch size (with 2x burst headroom) — one
    // invocation carries this many jobs' worth of input.
    // Dimensioned per *chunk*: an off-peak release drains a large pile,
    // but the engine splits it into byte-capped chunks that execute on
    // separate instances, so each invocation still carries roughly one
    // window's worth of traffic.
    let expected_members = match dispatch {
        DispatchPolicy::Windowed { window } | DispatchPolicy::OffPeak { window, .. } => {
            (rate_per_sec * window.as_secs_f64() * 2.0).ceil().max(1.0) as u64
        }
        _ => 1,
    };
    let batch_input = input * expected_members;

    // --- C2: memory sizes, dimensioned for the expected batch. ---
    let memory: Vec<DataSize> = match policy {
        // C2 disabled: the platform's untuned default size.
        OffloadPolicy::Ntc(cfg) if !cfg.use_allocator && caps.metered => {
            graph.ids().map(|id| UNTUNED_MEMORY.max(graph.component(id).memory())).collect()
        }
        OffloadPolicy::Ntc(cfg) if cfg.use_allocator && caps.metered => graph
            .ids()
            .map(|id| {
                if plan.side(id) == Side::Cloud {
                    // Scale the profiled single-job demand to batch size
                    // using the annotation's input dependence.
                    let ann_single = graph.component(id).demand_cycles(input).get().max(1);
                    let ann_batch = graph
                        .component(id)
                        .batch_demand_cycles(expected_members, batch_input)
                        .get();
                    // What the profiler learned about this component,
                    // relative to its annotation (drift recovery).
                    let learned_ratio = demands[id.index()].get() as f64 / ann_single as f64;
                    let factor = ann_batch as f64 / ann_single as f64;
                    let work = demands[id.index()].mul_f64(factor.max(1.0));
                    // Timeout safety must also survive a lone tail-input
                    // job with worst-case demand noise (~2x).
                    let tail_work = graph
                        .component(id)
                        .demand_cycles(tail_input)
                        .mul_f64(2.0 * learned_ratio.max(0.25));
                    let guard_work = work.max(tail_work);
                    let req = AllocationRequest {
                        work,
                        rate_per_sec,
                        slack,
                        slack_share: 0.5 / offloaded as f64,
                    };
                    let a = allocate(
                        &req,
                        &env.platform.cpu,
                        &env.platform.billing,
                        env.platform.keep_alive,
                    );
                    // Respect the component's own footprint floor, and never
                    // pick a size whose batch execution could hit the
                    // function timeout.
                    let mut pick = a.memory.memory.max(graph.component(id).memory());
                    let timeout_guard = |m: DataSize| {
                        site.execution_speed(env, m).execution_time(guard_work)
                            <= SimDuration::from_mins(10)
                    };
                    if !timeout_guard(pick) {
                        let bumped = ntc_alloc::standard_sizes()
                            .into_iter()
                            .find(|&candidate| candidate > pick && timeout_guard(candidate));
                        // No ladder size is safe: take the largest.
                        pick = bumped.unwrap_or(DataSize::from_mib(10240)).max(pick);
                    }
                    pick
                } else {
                    DEFAULT_MEMORY
                }
            })
            .collect(),
        _ => graph.ids().map(|id| DEFAULT_MEMORY.max(graph.component(id).memory())).collect(),
    };

    // Completion estimate used to hold jobs safely: when batching, a
    // window's worth of jobs coalesce into one invocation, so the estimate
    // covers the *expected batch* (conservatively, annotation demands at
    // the batch-sized input).
    let window_of = |d: DispatchPolicy| match d {
        DispatchPolicy::Windowed { window } | DispatchPolicy::OffPeak { window, .. } => {
            Some(window)
        }
        _ => None,
    };
    let mut est_completion = if let Some(window) = window_of(dispatch) {
        let expected = (rate_per_sec * window.as_secs_f64()).ceil().max(1.0) as u64;
        let est_batch_input = input * expected;
        let batch_demands: Vec<Cycles> = graph
            .ids()
            .map(|id| {
                let ann_single = graph.component(id).demand_cycles(input).get().max(1);
                let learned_ratio = demands[id.index()].get() as f64 / ann_single as f64;
                graph
                    .component(id)
                    .batch_demand_cycles(expected, est_batch_input)
                    .mul_f64(learned_ratio.max(0.25))
            })
            .collect();
        estimate_completion(env, site, &graph, &plan, &memory, &batch_demands, est_batch_input)
    } else {
        estimate_completion(env, site, &graph, &plan, &memory, &demands, input)
    };
    if matches!(dispatch, DispatchPolicy::OffPeak { .. }) {
        // A nightly release may hand this job a *full* byte-capped chunk:
        // by construction such a chunk runs up to 5 min at estimated
        // demand (10 min with the 2x noise margin). Reserve for it.
        est_completion += SimDuration::from_mins(10);
    }

    // Device-only completion estimate, for the connectivity-outage local
    // fallback: no transfers, just serial device execution.
    let local_plan = PartitionPlan::all_device(&graph);
    let est_local = estimate_completion(env, site, &graph, &local_plan, &memory, &demands, input);
    let fallback_local = matches!(policy, OffloadPolicy::Ntc(cfg) if cfg.local_fallback);

    // Cap coalesced batch size: a chunk's estimated execution at its
    // component's memory must stay within a third of the 15-minute
    // function timeout, leaving room for input tails and demand noise.
    let (max_batch_members, max_batch_bytes) =
        if matches!(dispatch, DispatchPolicy::Windowed { .. } | DispatchPolicy::OffPeak { .. })
            && caps.invocation_timeout.is_some()
        {
            // A chunk must finish within 5 minutes at estimated demand — with
            // the 2x noise margin that is still under the 15-minute timeout.
            let budget_secs = 300.0;
            let noise_margin = 2.0;
            let budget = SimDuration::from_secs_f64(budget_secs / noise_margin);
            let mut byte_cap = u64::MAX;
            let mut member_cap = 64u64;
            for id in plan.offloaded() {
                let speed = site.execution_speed(env, memory[id.index()]);
                let model = graph.component(id).demand();
                // Input-proportional demand bounds the chunk's total bytes.
                if model.per_input_byte > 0.0 {
                    let cycles_budget =
                        speed.as_hz() as f64 * budget_secs / noise_margin - model.fixed;
                    let cap = (cycles_budget / model.per_input_byte).max(0.0) as u64;
                    byte_cap = byte_cap.min(cap);
                }
                // Non-batchable fixed demand bounds the member count directly.
                let mut k = 1u64;
                while k < 64 {
                    let w = graph.component(id).batch_demand_cycles(k + 1, input * (k + 1));
                    if speed.execution_time(w) > budget {
                        break;
                    }
                    k += 1;
                }
                member_cap = member_cap.min(k);
            }
            (member_cap.max(1) as u32, DataSize::from_bytes(byte_cap))
        } else {
            (u32::MAX, DataSize::from_bytes(u64::MAX))
        };

    let site_chain = sites.fallback_chain(&primary, policy.fallback_enabled());

    Deployment {
        archetype,
        graph,
        plan,
        backend,
        memory,
        dispatch,
        warm,
        est_completion,
        demands,
        reference_input: input,
        max_batch_members,
        max_batch_bytes,
        est_local,
        fallback_local,
        site_chain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Environment {
        Environment::metro_reference()
    }

    fn rng() -> RngStream {
        RngStream::root(42)
    }

    #[test]
    fn local_only_offloads_nothing() {
        let d = deploy(
            &OffloadPolicy::LocalOnly,
            Archetype::PhotoPipeline,
            &env(),
            0.1,
            Archetype::PhotoPipeline.typical_slack(),
            &rng(),
        );
        assert_eq!(d.offloaded_count(), 0);
        assert_eq!(d.dispatch, DispatchPolicy::Immediate);
    }

    #[test]
    fn cloud_all_offloads_everything_offloadable() {
        let d = deploy(
            &OffloadPolicy::CloudAll,
            Archetype::PhotoPipeline,
            &env(),
            0.1,
            Archetype::PhotoPipeline.typical_slack(),
            &rng(),
        );
        assert_eq!(d.offloaded_count(), d.graph.len() - 1); // entry pinned
        assert_eq!(d.backend, Backend::Cloud);
    }

    #[test]
    fn edge_all_targets_edge() {
        let d = deploy(
            &OffloadPolicy::EdgeAll,
            Archetype::MlInference,
            &env(),
            0.1,
            Archetype::MlInference.typical_slack(),
            &rng(),
        );
        assert_eq!(d.backend, Backend::Edge);
        assert!(d.offloaded_count() > 0);
    }

    #[test]
    fn ntc_batches_and_offloads_heavy_components() {
        let d = deploy(
            &OffloadPolicy::ntc(),
            Archetype::SciSweep,
            &env(),
            0.01,
            Archetype::SciSweep.typical_slack(),
            &rng(),
        );
        assert!(d.offloaded_count() >= 1, "the 60 Gcyc simulate step must offload");
        assert!(matches!(d.dispatch, DispatchPolicy::Windowed { .. }));
        assert!(d.est_completion > SimDuration::ZERO);
    }

    #[test]
    fn ablation_flags_change_the_deployment() {
        let base = deploy(
            &OffloadPolicy::ntc(),
            Archetype::ReportRendering,
            &env(),
            0.05,
            Archetype::ReportRendering.typical_slack(),
            &rng(),
        );
        let no_batch = deploy(
            &OffloadPolicy::Ntc(NtcConfig { use_batching: false, ..Default::default() }),
            Archetype::ReportRendering,
            &env(),
            0.05,
            Archetype::ReportRendering.typical_slack(),
            &rng(),
        );
        assert!(matches!(base.dispatch, DispatchPolicy::Windowed { .. }));
        assert_eq!(no_batch.dispatch, DispatchPolicy::Immediate);

        let no_alloc = deploy(
            &OffloadPolicy::Ntc(NtcConfig { use_allocator: false, ..Default::default() }),
            Archetype::ReportRendering,
            &env(),
            0.05,
            Archetype::ReportRendering.typical_slack(),
            &rng(),
        );
        for id in no_alloc.graph.ids() {
            let floor = no_alloc.graph.component(id).memory();
            assert_eq!(no_alloc.memory[id.index()], UNTUNED_MEMORY.max(floor));
        }
    }

    #[test]
    fn deployment_is_deterministic() {
        let a = deploy(
            &OffloadPolicy::ntc(),
            Archetype::LogAnalytics,
            &env(),
            0.1,
            Archetype::LogAnalytics.typical_slack(),
            &rng(),
        );
        let b = deploy(
            &OffloadPolicy::ntc(),
            Archetype::LogAnalytics,
            &env(),
            0.1,
            Archetype::LogAnalytics.typical_slack(),
            &rng(),
        );
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.memory, b.memory);
        assert_eq!(a.demands, b.demands);
    }

    #[test]
    fn profiler_estimates_are_near_annotations() {
        let d = deploy(
            &OffloadPolicy::ntc(),
            Archetype::PhotoPipeline,
            &env(),
            0.1,
            Archetype::PhotoPipeline.typical_slack(),
            &rng(),
        );
        for (id, c) in d.graph.components() {
            let annotated = c.demand_cycles(d.reference_input).get() as f64;
            let estimated = d.demands[id.index()].get() as f64;
            if annotated > 0.0 {
                let rel = (estimated - annotated).abs() / annotated;
                assert!(rel < 0.5, "{}: {rel}", c.name());
            }
        }
    }

    #[test]
    fn memory_respects_component_footprint() {
        let d = deploy(
            &OffloadPolicy::ntc(),
            Archetype::MlInference,
            &env(),
            0.1,
            Archetype::MlInference.typical_slack(),
            &rng(),
        );
        for (id, c) in d.graph.components() {
            if d.is_offloaded(id) {
                assert!(d.memory[id.index()] >= c.memory());
            }
        }
    }
}
