//! End-to-end engine behaviour tests, run against the full site pipeline.

use ntc_simcore::units::{DataSize, Energy, SimDuration};
use ntc_workloads::{Archetype, StreamSpec};

use crate::engine::Engine;
use crate::environment::Environment;
use crate::policy::{Backend, OffloadPolicy};

fn engine() -> Engine {
    Engine::new(Environment::metro_reference(), 7)
}

fn photo_specs(rate: f64) -> [StreamSpec; 1] {
    [StreamSpec::poisson(Archetype::PhotoPipeline, rate)]
}

#[test]
fn all_jobs_complete_under_every_policy() {
    let e = engine();
    let horizon = SimDuration::from_hours(2);
    for policy in [
        OffloadPolicy::LocalOnly,
        OffloadPolicy::EdgeAll,
        OffloadPolicy::CloudAll,
        OffloadPolicy::ntc(),
    ] {
        let r = e.run(&policy, &photo_specs(0.02), horizon);
        assert!(!r.jobs.is_empty(), "{policy}: no jobs ran");
        assert_eq!(r.failures(), 0, "{policy}: unexpected failures");
        for j in &r.jobs {
            assert!(j.finish >= j.arrival, "{policy}: job finished before arriving");
        }
    }
}

#[test]
fn every_job_gets_a_result() {
    let e = engine();
    for policy in [OffloadPolicy::CloudAll, OffloadPolicy::ntc()] {
        let r = e.run(&policy, &photo_specs(0.05), SimDuration::from_hours(2));
        let mut ids: Vec<u64> = r.jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), r.jobs.len(), "{policy}: duplicate results");
    }
}

#[test]
fn local_only_costs_no_money_but_burns_battery() {
    let e = engine();
    let r = e.run(&OffloadPolicy::LocalOnly, &photo_specs(0.02), SimDuration::from_hours(1));
    assert_eq!(r.cloud_cost, ntc_simcore::units::Money::ZERO);
    assert_eq!(r.edge_cost, ntc_simcore::units::Money::ZERO);
    assert!(r.device_energy > Energy::ZERO);
    assert_eq!(r.bytes_up, DataSize::ZERO);
}

#[test]
fn cloud_all_moves_bytes_and_money() {
    let e = engine();
    let r = e.run(&OffloadPolicy::CloudAll, &photo_specs(0.02), SimDuration::from_hours(1));
    assert!(r.cloud_cost > ntc_simcore::units::Money::ZERO);
    assert!(r.bytes_up > DataSize::ZERO);
    assert!(r.bytes_down > DataSize::ZERO);
    assert_eq!(r.edge_cost, ntc_simcore::units::Money::ZERO);
}

#[test]
fn edge_all_pays_infrastructure_even_when_idle() {
    let e = engine();
    let r = e.run(&OffloadPolicy::EdgeAll, &photo_specs(0.001), SimDuration::from_hours(1));
    assert!(r.edge_cost > ntc_simcore::units::Money::ZERO);
    assert_eq!(r.cloud_cost, ntc_simcore::units::Money::ZERO);
}

#[test]
fn offloading_beats_local_latency_for_heavy_work() {
    let e = engine();
    let specs = [StreamSpec::poisson(Archetype::SciSweep, 0.002)];
    let horizon = SimDuration::from_hours(4);
    let local = e.run(&OffloadPolicy::LocalOnly, &specs, horizon);
    let cloud = e.run(&OffloadPolicy::CloudAll, &specs, horizon);
    let l50 = local.latency_summary().unwrap().p50;
    let c50 = cloud.latency_summary().unwrap().p50;
    // The default cloud function gets one 2.5 GHz vCPU vs the 1.5 GHz
    // UE core: ~1.7× faster even after paying the WAN transfers.
    assert!(c50 < l50 * 0.7, "cloud p50 {c50}s should beat local {l50}s");
}

#[test]
fn ntc_is_cheaper_than_cloud_all() {
    let e = engine();
    let specs = [StreamSpec::poisson(Archetype::ReportRendering, 0.01)];
    let horizon = SimDuration::from_hours(6);
    let naive = e.run(&OffloadPolicy::CloudAll, &specs, horizon);
    let ntc = e.run(&OffloadPolicy::ntc(), &specs, horizon);
    assert!(
        ntc.total_cost() <= naive.total_cost(),
        "ntc {} should not out-cost cloud-all {}",
        ntc.total_cost(),
        naive.total_cost()
    );
    assert_eq!(ntc.miss_rate(), 0.0, "slack is huge; nothing should miss");
}

#[test]
fn batching_coalesces_jobs_and_meets_deadlines() {
    let e = engine();
    let specs = [StreamSpec::poisson(Archetype::ReportRendering, 0.01)];
    let r = e.run(&OffloadPolicy::ntc(), &specs, SimDuration::from_hours(4));
    let held = r.jobs.iter().filter(|j| j.dispatched > j.arrival).count();
    assert!(held > 0, "batching should hold at least some jobs");
    assert_eq!(r.deadline_misses(), 0);
    // Coalescing: several jobs share a finish instant.
    let mut finishes: Vec<_> = r.jobs.iter().map(|j| j.finish).collect();
    finishes.sort_unstable();
    finishes.dedup();
    assert!(finishes.len() < r.jobs.len(), "some jobs should share a batch");
}

#[test]
fn sparse_traffic_deployment_warms_and_stays_mostly_warm() {
    // 1 job / 25 min < the 10-min platform TTL: the deployment picks a
    // warmer, and the engine's periodic pings keep tails down.
    let e = engine();
    let specs = [StreamSpec::poisson(Archetype::MlInference, 1.0 / 1500.0)];
    let r = e.run(&OffloadPolicy::ntc(), &specs, SimDuration::from_hours(12));
    assert!(!r.jobs.is_empty());
    assert_eq!(r.failures(), 0);
    // With warming, p95 should sit close to p50 (no pervasive cold tail).
    let s = r.latency_summary().unwrap();
    assert!(s.p95 < s.p50 * 20.0, "p95 {} vs p50 {}", s.p95, s.p50);
    // And the run still costs money (pings and invocations are billed).
    assert!(r.cloud_cost > ntc_simcore::units::Money::ZERO);
}

#[test]
fn bursty_stream_survives_end_to_end() {
    let e = engine();
    let specs = [StreamSpec::bursty(
        Archetype::LogAnalytics,
        0.005,
        1.0,
        SimDuration::from_mins(30),
        SimDuration::from_mins(2),
    )];
    for policy in [OffloadPolicy::CloudAll, OffloadPolicy::ntc()] {
        let r = e.run(&policy, &specs, SimDuration::from_hours(6));
        assert_eq!(r.failures(), 0, "{policy}");
        assert_eq!(r.deadline_misses(), 0, "{policy}");
    }
}

#[test]
fn hourly_completions_sum_to_job_count() {
    let e = engine();
    let r = e.run(&OffloadPolicy::ntc(), &photo_specs(0.05), SimDuration::from_hours(3));
    let total: u64 =
        (0..r.completions_per_hour.len()).map(|i| r.completions_per_hour.count(i)).sum();
    assert_eq!(total, r.jobs.len() as u64);
}

#[test]
fn runs_are_reproducible() {
    let e = engine();
    let a = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(1));
    let b = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(1));
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.cloud_cost, b.cloud_cost);
    assert_eq!(a.device_energy, b.device_energy);
}

#[test]
fn empty_spec_list_yields_an_empty_result() {
    let e = engine();
    let r = e.run(&OffloadPolicy::ntc(), &[], SimDuration::from_hours(1));
    assert!(r.jobs.is_empty());
    assert_eq!(r.total_cost(), ntc_simcore::units::Money::ZERO);
    assert_eq!(r.device_energy, Energy::ZERO);
}

#[test]
fn different_seeds_differ() {
    let a = Engine::new(Environment::metro_reference(), 1).run(
        &OffloadPolicy::ntc(),
        &photo_specs(0.02),
        SimDuration::from_hours(1),
    );
    let b = Engine::new(Environment::metro_reference(), 2).run(
        &OffloadPolicy::ntc(),
        &photo_specs(0.02),
        SimDuration::from_hours(1),
    );
    assert_ne!(a.jobs, b.jobs);
}

// --- Fault injection and recovery. ---

fn faulty_env(rate: f64) -> Environment {
    let mut env = Environment::metro_reference();
    env.faults = ntc_faults::FaultConfig::transient(rate);
    env
}

#[test]
fn fault_free_runs_record_single_attempts() {
    let e = engine();
    let r = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(1));
    for j in &r.jobs {
        assert_eq!(j.attempts, 1);
        assert_eq!(j.backoff, SimDuration::ZERO);
        assert_eq!(j.fallbacks, 0);
        assert!(j.cause.is_none());
    }
    assert_eq!(r.total_retries(), 0);
}

#[test]
fn ntc_retries_through_transient_faults() {
    let e = Engine::new(faulty_env(0.10), 7);
    let r = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(2));
    assert!(!r.jobs.is_empty());
    assert_eq!(r.failures(), 0, "NTC must ride out transient faults by retrying");
    assert!(r.total_retries() > 0, "a 10% fault rate must trigger retries");
    assert!(r.total_backoff() > SimDuration::ZERO);
}

#[test]
fn zero_retry_baseline_loses_jobs_under_faults() {
    let e = Engine::new(faulty_env(0.10), 7);
    let r = e.run(&OffloadPolicy::CloudAll, &photo_specs(0.02), SimDuration::from_hours(2));
    assert!(r.failures() > 0, "a zero-retry baseline must lose jobs at 10% faults");
    assert_eq!(r.failure_causes().get("transient"), Some(&r.failures()));
}

#[test]
fn faulty_runs_are_reproducible() {
    let e = Engine::new(faulty_env(0.2), 11);
    let a = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(1));
    let b = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(1));
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.cloud_cost, b.cloud_cost);
    assert_eq!(a.device_energy, b.device_energy);
}

#[test]
fn backoff_never_exceeds_job_latency() {
    let e = Engine::new(faulty_env(0.3), 5);
    let r = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(2));
    assert!(r.total_retries() > 0);
    for j in &r.jobs {
        assert!(
            j.backoff <= j.finish.saturating_duration_since(j.dispatched),
            "job {}: backoff {} vs latency {}",
            j.id,
            j.backoff,
            j.finish.saturating_duration_since(j.dispatched)
        );
    }
}

#[test]
fn permanent_edge_outage_falls_back_to_cloud() {
    let mut env = Environment::metro_reference();
    env.faults.edge_availability = ntc_net::ConnectivityTrace::new(
        SimDuration::from_hours(1),
        vec![(SimDuration::ZERO, false)],
    );
    let e = Engine::new(env, 7);
    let policy = OffloadPolicy::Ntc(crate::NtcConfig {
        primary_backend: Backend::Edge,
        ..Default::default()
    });
    let r = e.run(&policy, &photo_specs(0.02), SimDuration::from_hours(2));
    assert!(!r.jobs.is_empty());
    assert_eq!(r.failures(), 0, "the cloud fallback must save every job");
    assert!(r.total_fallbacks() > 0, "every batch must have fallen back");
    assert!(
        r.cloud_cost > ntc_simcore::units::Money::ZERO,
        "fallback work is billed on the platform"
    );
}

#[test]
fn edge_outage_without_fallback_fails_jobs() {
    let mut env = Environment::metro_reference();
    env.faults.edge_availability = ntc_net::ConnectivityTrace::new(
        SimDuration::from_hours(1),
        vec![(SimDuration::ZERO, false)],
    );
    let e = Engine::new(env, 7);
    let policy = OffloadPolicy::Ntc(crate::NtcConfig {
        primary_backend: Backend::Edge,
        fallback: false,
        ..Default::default()
    });
    let r = e.run(&policy, &photo_specs(0.02), SimDuration::from_hours(2));
    assert!(r.failures() > 0);
    assert!(r.failure_causes().contains_key("edge-outage"));
}
