//! End-to-end engine behaviour tests, run against the full site pipeline.

use ntc_simcore::units::{DataSize, Energy, SimDuration};
use ntc_workloads::{Archetype, StreamSpec};

use crate::engine::Engine;
use crate::environment::Environment;
use crate::policy::{Backend, OffloadPolicy};

fn engine() -> Engine {
    Engine::new(Environment::metro_reference(), 7)
}

fn photo_specs(rate: f64) -> [StreamSpec; 1] {
    [StreamSpec::poisson(Archetype::PhotoPipeline, rate)]
}

#[test]
fn all_jobs_complete_under_every_policy() {
    let e = engine();
    let horizon = SimDuration::from_hours(2);
    for policy in [
        OffloadPolicy::LocalOnly,
        OffloadPolicy::EdgeAll,
        OffloadPolicy::CloudAll,
        OffloadPolicy::ntc(),
    ] {
        let r = e.run(&policy, &photo_specs(0.02), horizon);
        assert!(!r.jobs.is_empty(), "{policy}: no jobs ran");
        assert_eq!(r.failures(), 0, "{policy}: unexpected failures");
        for j in &r.jobs {
            assert!(j.finish >= j.arrival, "{policy}: job finished before arriving");
        }
    }
}

#[test]
fn every_job_gets_a_result() {
    let e = engine();
    for policy in [OffloadPolicy::CloudAll, OffloadPolicy::ntc()] {
        let r = e.run(&policy, &photo_specs(0.05), SimDuration::from_hours(2));
        let mut ids: Vec<u64> = r.jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), r.jobs.len(), "{policy}: duplicate results");
    }
}

#[test]
fn local_only_costs_no_money_but_burns_battery() {
    let e = engine();
    let r = e.run(&OffloadPolicy::LocalOnly, &photo_specs(0.02), SimDuration::from_hours(1));
    assert_eq!(r.cloud_cost, ntc_simcore::units::Money::ZERO);
    assert_eq!(r.edge_cost, ntc_simcore::units::Money::ZERO);
    assert!(r.device_energy > Energy::ZERO);
    assert_eq!(r.bytes_up, DataSize::ZERO);
}

#[test]
fn cloud_all_moves_bytes_and_money() {
    let e = engine();
    let r = e.run(&OffloadPolicy::CloudAll, &photo_specs(0.02), SimDuration::from_hours(1));
    assert!(r.cloud_cost > ntc_simcore::units::Money::ZERO);
    assert!(r.bytes_up > DataSize::ZERO);
    assert!(r.bytes_down > DataSize::ZERO);
    assert_eq!(r.edge_cost, ntc_simcore::units::Money::ZERO);
}

#[test]
fn edge_all_pays_infrastructure_even_when_idle() {
    let e = engine();
    let r = e.run(&OffloadPolicy::EdgeAll, &photo_specs(0.001), SimDuration::from_hours(1));
    assert!(r.edge_cost > ntc_simcore::units::Money::ZERO);
    assert_eq!(r.cloud_cost, ntc_simcore::units::Money::ZERO);
}

#[test]
fn offloading_beats_local_latency_for_heavy_work() {
    let e = engine();
    let specs = [StreamSpec::poisson(Archetype::SciSweep, 0.002)];
    let horizon = SimDuration::from_hours(4);
    let local = e.run(&OffloadPolicy::LocalOnly, &specs, horizon);
    let cloud = e.run(&OffloadPolicy::CloudAll, &specs, horizon);
    let l50 = local.latency_summary().unwrap().p50;
    let c50 = cloud.latency_summary().unwrap().p50;
    // The default cloud function gets one 2.5 GHz vCPU vs the 1.5 GHz
    // UE core: ~1.7× faster even after paying the WAN transfers.
    assert!(c50 < l50 * 0.7, "cloud p50 {c50}s should beat local {l50}s");
}

#[test]
fn ntc_is_cheaper_than_cloud_all() {
    let e = engine();
    let specs = [StreamSpec::poisson(Archetype::ReportRendering, 0.01)];
    let horizon = SimDuration::from_hours(6);
    let naive = e.run(&OffloadPolicy::CloudAll, &specs, horizon);
    let ntc = e.run(&OffloadPolicy::ntc(), &specs, horizon);
    assert!(
        ntc.total_cost() <= naive.total_cost(),
        "ntc {} should not out-cost cloud-all {}",
        ntc.total_cost(),
        naive.total_cost()
    );
    assert_eq!(ntc.miss_rate(), 0.0, "slack is huge; nothing should miss");
}

#[test]
fn batching_coalesces_jobs_and_meets_deadlines() {
    let e = engine();
    let specs = [StreamSpec::poisson(Archetype::ReportRendering, 0.01)];
    let r = e.run(&OffloadPolicy::ntc(), &specs, SimDuration::from_hours(4));
    let held = r.jobs.iter().filter(|j| j.dispatched > j.arrival).count();
    assert!(held > 0, "batching should hold at least some jobs");
    assert_eq!(r.deadline_misses(), 0);
    // Coalescing: several jobs share a finish instant.
    let mut finishes: Vec<_> = r.jobs.iter().map(|j| j.finish).collect();
    finishes.sort_unstable();
    finishes.dedup();
    assert!(finishes.len() < r.jobs.len(), "some jobs should share a batch");
}

#[test]
fn sparse_traffic_deployment_warms_and_stays_mostly_warm() {
    // 1 job / 25 min < the 10-min platform TTL: the deployment picks a
    // warmer, and the engine's periodic pings keep tails down.
    let e = engine();
    let specs = [StreamSpec::poisson(Archetype::MlInference, 1.0 / 1500.0)];
    let r = e.run(&OffloadPolicy::ntc(), &specs, SimDuration::from_hours(12));
    assert!(!r.jobs.is_empty());
    assert_eq!(r.failures(), 0);
    // With warming, p95 should sit close to p50 (no pervasive cold tail).
    let s = r.latency_summary().unwrap();
    assert!(s.p95 < s.p50 * 20.0, "p95 {} vs p50 {}", s.p95, s.p50);
    // And the run still costs money (pings and invocations are billed).
    assert!(r.cloud_cost > ntc_simcore::units::Money::ZERO);
}

#[test]
fn bursty_stream_survives_end_to_end() {
    let e = engine();
    let specs = [StreamSpec::bursty(
        Archetype::LogAnalytics,
        0.005,
        1.0,
        SimDuration::from_mins(30),
        SimDuration::from_mins(2),
    )];
    for policy in [OffloadPolicy::CloudAll, OffloadPolicy::ntc()] {
        let r = e.run(&policy, &specs, SimDuration::from_hours(6));
        assert_eq!(r.failures(), 0, "{policy}");
        assert_eq!(r.deadline_misses(), 0, "{policy}");
    }
}

#[test]
fn hourly_completions_sum_to_job_count() {
    let e = engine();
    let r = e.run(&OffloadPolicy::ntc(), &photo_specs(0.05), SimDuration::from_hours(3));
    let total: u64 =
        (0..r.completions_per_hour.len()).map(|i| r.completions_per_hour.count(i)).sum();
    assert_eq!(total, r.jobs.len() as u64);
}

#[test]
fn runs_are_reproducible() {
    let e = engine();
    let a = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(1));
    let b = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(1));
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.cloud_cost, b.cloud_cost);
    assert_eq!(a.device_energy, b.device_energy);
}

#[test]
fn empty_spec_list_yields_an_empty_result() {
    let e = engine();
    let r = e.run(&OffloadPolicy::ntc(), &[], SimDuration::from_hours(1));
    assert!(r.jobs.is_empty());
    assert_eq!(r.total_cost(), ntc_simcore::units::Money::ZERO);
    assert_eq!(r.device_energy, Energy::ZERO);
}

#[test]
fn different_seeds_differ() {
    let a = Engine::new(Environment::metro_reference(), 1).run(
        &OffloadPolicy::ntc(),
        &photo_specs(0.02),
        SimDuration::from_hours(1),
    );
    let b = Engine::new(Environment::metro_reference(), 2).run(
        &OffloadPolicy::ntc(),
        &photo_specs(0.02),
        SimDuration::from_hours(1),
    );
    assert_ne!(a.jobs, b.jobs);
}

// --- Job retention modes. ---

#[test]
fn aggregates_retention_matches_full_metrics() {
    use crate::engine::{JobRetention, RunScratch};
    let e = Engine::new(faulty_env(0.10), 7);
    let specs = photo_specs(0.02);
    let horizon = SimDuration::from_hours(2);
    let mut scratch = RunScratch::new();
    for policy in [OffloadPolicy::CloudAll, OffloadPolicy::EdgeAll, OffloadPolicy::ntc()] {
        let full = e.run_seeded(7, &policy, &specs, horizon, &mut scratch);
        let agg =
            e.run_retained(7, &policy, &specs, horizon, &mut scratch, JobRetention::Aggregates);
        assert!(agg.jobs.is_empty(), "{policy}: aggregates mode must not retain jobs");
        assert!(agg.aggregates.is_some(), "{policy}: aggregates missing");
        assert!(full.aggregates.is_none(), "{policy}: full mode must not aggregate");
        // Counts, totals and rates are exact in both modes.
        assert_eq!(agg.job_count(), full.job_count(), "{policy}");
        assert_eq!(agg.deadline_misses(), full.deadline_misses(), "{policy}");
        assert_eq!(agg.miss_rate(), full.miss_rate(), "{policy}");
        assert_eq!(agg.goodput_per_hour(), full.goodput_per_hour(), "{policy}");
        assert_eq!(agg.failures(), full.failures(), "{policy}");
        assert_eq!(agg.total_attempts(), full.total_attempts(), "{policy}");
        assert_eq!(agg.total_retries(), full.total_retries(), "{policy}");
        assert_eq!(agg.total_backoff(), full.total_backoff(), "{policy}");
        assert_eq!(agg.total_fallbacks(), full.total_fallbacks(), "{policy}");
        assert_eq!(agg.failure_causes(), full.failure_causes(), "{policy}");
        // The simulation itself is untouched by retention.
        assert_eq!(agg.cloud_cost, full.cloud_cost, "{policy}");
        assert_eq!(agg.edge_cost, full.edge_cost, "{policy}");
        assert_eq!(agg.device_energy, full.device_energy, "{policy}");
        assert_eq!(agg.bytes_up, full.bytes_up, "{policy}");
        assert_eq!(agg.bytes_down, full.bytes_down, "{policy}");
        assert_eq!(agg.completions_per_hour, full.completions_per_hour, "{policy}");
        // Latency: count/min/max exact, mean to fp accumulation-order
        // tolerance, percentiles within the histogram's bound.
        let fs = full.latency_summary().unwrap();
        let as_ = agg.latency_summary().unwrap();
        assert_eq!(as_.count, fs.count, "{policy}");
        assert!((as_.mean - fs.mean).abs() <= 1e-9 * fs.mean.abs(), "{policy}");
        assert!((as_.min - fs.min).abs() < 1e-9, "{policy}");
        assert!((as_.max - fs.max).abs() < 1e-9, "{policy}");
        // Percentiles: the digest reports a bucket upper bound on the
        // rank-ceil order statistic, so check the documented bound
        // against the exact order statistics of the retained jobs.
        let bound = 1.0 + ntc_simcore::metrics::Histogram::RELATIVE_ERROR_BOUND;
        let mut lats: Vec<f64> = full.jobs.iter().map(|j| j.latency().as_secs_f64()).collect();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (q, a) in [(0.50, as_.p50), (0.95, as_.p95), (0.99, as_.p99)] {
            let k = ((q * lats.len() as f64).ceil() as usize).max(1);
            let exact = lats[k - 1];
            assert!(
                a + 1e-9 >= exact && a <= exact * bound + 1e-9,
                "{policy}: q={q} digest {a} outside bound around exact {exact}"
            );
        }
        // Per-archetype breakdowns agree on counts.
        let fb = full.by_archetype();
        let ab = agg.by_archetype();
        assert_eq!(fb.len(), ab.len(), "{policy}");
        for (f, a) in fb.iter().zip(&ab) {
            assert_eq!(f.archetype, a.archetype, "{policy}");
            assert_eq!(f.jobs, a.jobs, "{policy}");
            assert_eq!(f.misses, a.misses, "{policy}");
            assert_eq!(f.failures, a.failures, "{policy}");
            assert!((f.mean_hold_s - a.mean_hold_s).abs() <= 1e-9, "{policy}");
        }
    }
}

#[test]
fn aggregates_retention_does_not_perturb_subsequent_full_runs() {
    use crate::engine::{JobRetention, RunScratch};
    let e = engine();
    let specs = photo_specs(0.02);
    let horizon = SimDuration::from_hours(1);
    let baseline = e.run(&OffloadPolicy::ntc(), &specs, horizon);
    let mut scratch = RunScratch::new();
    let _ = e.run_retained(
        7,
        &OffloadPolicy::ntc(),
        &specs,
        horizon,
        &mut scratch,
        JobRetention::Aggregates,
    );
    let after = e.run_seeded(7, &OffloadPolicy::ntc(), &specs, horizon, &mut scratch);
    assert_eq!(after.jobs, baseline.jobs, "scratch reuse across retention modes must be inert");
    assert_eq!(after.cloud_cost, baseline.cloud_cost);
}

// --- Fault injection and recovery. ---

fn faulty_env(rate: f64) -> Environment {
    let mut env = Environment::metro_reference();
    env.faults = ntc_faults::FaultConfig::transient(rate);
    env
}

#[test]
fn fault_free_runs_record_single_attempts() {
    let e = engine();
    let r = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(1));
    for j in &r.jobs {
        assert_eq!(j.attempts, 1);
        assert_eq!(j.backoff, SimDuration::ZERO);
        assert_eq!(j.fallbacks, 0);
        assert!(j.cause.is_none());
    }
    assert_eq!(r.total_retries(), 0);
}

#[test]
fn ntc_retries_through_transient_faults() {
    let e = Engine::new(faulty_env(0.10), 7);
    let r = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(2));
    assert!(!r.jobs.is_empty());
    assert_eq!(r.failures(), 0, "NTC must ride out transient faults by retrying");
    assert!(r.total_retries() > 0, "a 10% fault rate must trigger retries");
    assert!(r.total_backoff() > SimDuration::ZERO);
}

#[test]
fn zero_retry_baseline_loses_jobs_under_faults() {
    let e = Engine::new(faulty_env(0.10), 7);
    let r = e.run(&OffloadPolicy::CloudAll, &photo_specs(0.02), SimDuration::from_hours(2));
    assert!(r.failures() > 0, "a zero-retry baseline must lose jobs at 10% faults");
    assert_eq!(r.failure_causes().get("transient"), Some(&r.failures()));
}

#[test]
fn faulty_runs_are_reproducible() {
    let e = Engine::new(faulty_env(0.2), 11);
    let a = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(1));
    let b = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(1));
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.cloud_cost, b.cloud_cost);
    assert_eq!(a.device_energy, b.device_energy);
}

#[test]
fn backoff_never_exceeds_job_latency() {
    let e = Engine::new(faulty_env(0.3), 5);
    let r = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(2));
    assert!(r.total_retries() > 0);
    for j in &r.jobs {
        assert!(
            j.backoff <= j.finish.saturating_duration_since(j.dispatched),
            "job {}: backoff {} vs latency {}",
            j.id,
            j.backoff,
            j.finish.saturating_duration_since(j.dispatched)
        );
    }
}

#[test]
fn permanent_edge_outage_falls_back_to_cloud() {
    let mut env = Environment::metro_reference();
    env.faults.edge_availability = ntc_net::ConnectivityTrace::new(
        SimDuration::from_hours(1),
        vec![(SimDuration::ZERO, false)],
    );
    let e = Engine::new(env, 7);
    let policy = OffloadPolicy::Ntc(crate::NtcConfig {
        primary_backend: Backend::Edge,
        ..Default::default()
    });
    let r = e.run(&policy, &photo_specs(0.02), SimDuration::from_hours(2));
    assert!(!r.jobs.is_empty());
    assert_eq!(r.failures(), 0, "the cloud fallback must save every job");
    assert!(r.total_fallbacks() > 0, "every batch must have fallen back");
    assert!(
        r.cloud_cost > ntc_simcore::units::Money::ZERO,
        "fallback work is billed on the platform"
    );
}

#[test]
fn edge_outage_without_fallback_fails_jobs() {
    let mut env = Environment::metro_reference();
    env.faults.edge_availability = ntc_net::ConnectivityTrace::new(
        SimDuration::from_hours(1),
        vec![(SimDuration::ZERO, false)],
    );
    let e = Engine::new(env, 7);
    let policy = OffloadPolicy::Ntc(crate::NtcConfig {
        primary_backend: Backend::Edge,
        fallback: false,
        ..Default::default()
    });
    let r = e.run(&policy, &photo_specs(0.02), SimDuration::from_hours(2));
    assert!(r.failures() > 0);
    assert!(r.failure_causes().contains_key("edge-outage"));
}
