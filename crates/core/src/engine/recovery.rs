//! Recovery: acting on classified attempt failures — deterministic waits,
//! retry with decorrelated-jitter backoff, and fallback down the
//! deployment's site-preference chain (preferring sites whose breaker
//! admits when the health layer is on).

use std::fmt::Write as _;

use ntc_faults::{Admission, ErrorClass, FailureCause};
use ntc_simcore::event::Simulator;
use ntc_simcore::units::SimTime;
use ntc_taskgraph::ComponentId;

use super::{accounting, Ev, RunCtx, RunState};
use crate::site::SiteRegistry;

/// Acts on a classified attempt failure: wait, retry with backoff, fall
/// back down the site chain, or fail the batch.
#[allow(clippy::too_many_arguments)]
pub(crate) fn recover(
    ctx: &RunCtx<'_>,
    sites: &SiteRegistry,
    st: &mut RunState<'_>,
    sim: &mut Simulator<Ev>,
    t: SimTime,
    bi: usize,
    comp: ComponentId,
    class: ErrorClass,
    cause: FailureCause,
) {
    if cause.is_cancellation() {
        // Hedge-loser cancellations are deliberate, not failures: they
        // consume no retry budget and trigger no fallback. (Defensive —
        // the hedge path resolves losers without ever calling here.)
        return;
    }
    let detect = ctx.env.faults.error_detect_latency;
    match class {
        ErrorClass::WaitUntil(r) => {
            // A deterministic wait (service still installing, outage
            // with a known end): free, no retry budget consumed.
            sim.schedule_at(r.max(t), Ev::Exec(bi, comp)).expect("future");
        }
        ErrorClass::Retryable => {
            let cix = st.states.ix(bi, comp);
            let attempt = st.states.attempts[cix];
            let first = ctx.jobs[ctx.batches[bi].members[0]].id;
            // Key must stay byte-identical to the historical
            // `format!("{first}-{comp}")` — the backoff jitter stream is
            // derived by hashing it.
            st.key_buf.clear();
            write!(st.key_buf, "{first}-{comp}").expect("string write");
            let backoff = ctx.retry.backoff(ctx.retry_rng, st.key_buf.as_str(), attempt);
            let resume = t + detect + backoff;
            let min_deadline = ctx.batches[bi]
                .members
                .iter()
                .map(|&ji| ctx.jobs[ji].deadline())
                .min()
                .expect("batch is non-empty");
            if ctx.retry.allows(attempt, resume, min_deadline) {
                st.states.backoff[cix] += backoff;
                sim.schedule_at(resume, Ev::Exec(bi, comp)).expect("future");
            } else {
                fall_back_or_fail(ctx, sites, st, sim, t, bi, comp, cause);
            }
        }
        ErrorClass::Fallback => fall_back_or_fail(ctx, sites, st, sim, t, bi, comp, cause),
        ErrorClass::Terminal => {
            let RunState { states, acct, .. } = st;
            accounting::fail_batch(ctx, states, acct, t, bi, cause);
        }
    }
}

/// Advances the batch to the next site in its preference chain that can
/// serve this component, or fails it when the chain is exhausted. With
/// breakers on, sites whose breaker refuses admission are skipped —
/// falling back onto a site that is known-bad burns the attempt the
/// walk was trying to save — but the walk fails open: when every
/// candidate's breaker refuses, the plain chain walk decides, so the
/// health layer can never fail a batch the legacy path would have
/// saved.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fall_back_or_fail(
    ctx: &RunCtx<'_>,
    sites: &SiteRegistry,
    st: &mut RunState<'_>,
    sim: &mut Simulator<Ev>,
    t: SimTime,
    bi: usize,
    comp: ComponentId,
    cause: FailureCause,
) {
    let detect = ctx.env.faults.error_detect_latency;
    let di = ctx.batches[bi].di;
    let chain = &ctx.chains[di];
    let pos = st.states.chain_pos[bi];
    let serves = |i: &usize| sites.site(chain[*i]).can_serve(di, comp);
    let next = if st.health.breakers() {
        (pos + 1..chain.len())
            .filter(&serves)
            .find(|&i| st.health.site_mut(chain[i].index()).check(t) != Admission::Unavailable)
            .or_else(|| (pos + 1..chain.len()).find(&serves))
    } else {
        (pos + 1..chain.len()).find(&serves)
    };
    match next {
        Some(i) => {
            st.states.chain_pos[bi] = i;
            st.states.fallbacks[bi] += 1;
            sim.schedule_at(t + detect, Ev::Exec(bi, comp)).expect("future");
        }
        None => {
            let RunState { states, acct, .. } = st;
            accounting::fail_batch(ctx, states, acct, t, bi, cause);
        }
    }
}
