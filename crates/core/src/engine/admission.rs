//! Admission: coalescing jobs into batches, latest-safe dispatch timing,
//! the pre-dispatch local override, and per-batch state initialisation.

use std::collections::HashMap;

use ntc_alloc::dispatch_time;
use ntc_partition::Side;
use ntc_simcore::units::{DataSize, SimDuration, SimTime};
use ntc_workloads::{Archetype, Job};

use crate::deploy::Deployment;
use crate::environment::Environment;

/// One execution unit: one or more coalesced jobs of the same deployment
/// released together.
#[derive(Debug)]
pub(crate) struct Batch {
    pub di: usize,
    pub members: Vec<usize>,
    pub dispatch_at: SimTime,
    pub sum_input: DataSize,
    pub max_input: DataSize,
}

#[derive(Debug)]
pub(crate) struct BatchState {
    pub remaining_preds: Vec<usize>,
    pub ready_at: Vec<SimTime>,
    pub outstanding_exits: usize,
    pub finish: SimTime,
    pub failed: bool,
    pub finished: bool,
    /// Execution attempts per component (0 = never attempted).
    pub attempts: Vec<u32>,
    /// Cumulative retry backoff per component.
    pub backoff: Vec<SimDuration>,
    /// The side each component actually last executed on (for routing its
    /// outputs after a mid-graph fallback).
    pub exec_side: Vec<Side>,
    /// Position in the deployment's site-preference chain. 0 is the
    /// deployment's primary site; failure-driven fallback advances it.
    pub chain_pos: usize,
    /// Site fallback switches performed.
    pub fallbacks: u32,
}

/// Coalesces jobs into batches by (deployment, dispatch instant), capped
/// by the deployment's member and byte limits. Returns the batches plus
/// each job's dispatch instant.
pub(crate) fn coalesce(
    env: &Environment,
    deployments: &[Deployment],
    deployment_of: &HashMap<Archetype, usize>,
    jobs: &[Job],
) -> (Vec<Batch>, Vec<SimTime>) {
    let mut dispatched_at: Vec<SimTime> = Vec::with_capacity(jobs.len());
    let mut batch_key: HashMap<(usize, SimTime), usize> = HashMap::new();
    let mut batches: Vec<Batch> = Vec::new();
    for (ji, job) in jobs.iter().enumerate() {
        let di = deployment_of[&job.archetype];
        let d = &deployments[di];
        let at = dispatch_time(
            d.dispatch,
            job.arrival,
            job.slack,
            d.est_completion,
            env.completion_margin,
        );
        dispatched_at.push(at);
        let cap = deployments[di].max_batch_members as usize;
        let byte_cap = deployments[di].max_batch_bytes;
        let fits = |b: &Batch| {
            b.members.len() < cap
                && b.sum_input.as_bytes().saturating_add(job.input.as_bytes())
                    <= byte_cap.as_bytes()
        };
        let bi = match batch_key.get(&(di, at)) {
            Some(&bi) if fits(&batches[bi]) => bi,
            _ => {
                batches.push(Batch {
                    di,
                    members: Vec::new(),
                    dispatch_at: at,
                    sum_input: DataSize::ZERO,
                    max_input: DataSize::ZERO,
                });
                let bi = batches.len() - 1;
                batch_key.insert((di, at), bi);
                bi
            }
        };
        let b = &mut batches[bi];
        b.members.push(ji);
        b.sum_input += job.input;
        b.max_input = b.max_input.max(job.input);
    }
    (batches, dispatched_at)
}

/// Local fallback: a batch whose offloaded completion estimate (which
/// reserves for outages, chunking and noise) cannot meet its tightest
/// member deadline — but whose device execution can — runs entirely on
/// the members' own devices.
pub(crate) fn local_overrides(
    env: &Environment,
    deployments: &[Deployment],
    jobs: &[Job],
    batches: &[Batch],
) -> Vec<bool> {
    batches
        .iter()
        .map(|b| {
            let d = &deployments[b.di];
            if !d.fallback_local || d.plan.offloaded().count() == 0 {
                return false;
            }
            let min_deadline =
                b.members.iter().map(|&ji| jobs[ji].deadline()).min().expect("batch is non-empty");
            // Only outages that can actually intersect this batch's
            // execution window count against offloading.
            let outage = env.connectivity.worst_wait_within(b.dispatch_at, min_deadline);
            let reserve = d.est_completion + outage + env.completion_margin;
            let local_reserve = d.est_local + env.completion_margin;
            b.dispatch_at + reserve > min_deadline && b.dispatch_at + local_reserve <= min_deadline
        })
        .collect()
}

/// Fresh per-batch execution state.
pub(crate) fn init_states(deployments: &[Deployment], batches: &[Batch]) -> Vec<BatchState> {
    batches
        .iter()
        .map(|b| {
            let d = &deployments[b.di];
            BatchState {
                remaining_preds: d.graph.ids().map(|c| d.graph.predecessors(c).count()).collect(),
                ready_at: vec![SimTime::ZERO; d.graph.len()],
                outstanding_exits: d.graph.exits().len(),
                finish: SimTime::ZERO,
                failed: false,
                finished: false,
                attempts: vec![0; d.graph.len()],
                backoff: vec![SimDuration::ZERO; d.graph.len()],
                exec_side: vec![Side::Device; d.graph.len()],
                chain_pos: 0,
                fallbacks: 0,
            }
        })
        .collect()
}
