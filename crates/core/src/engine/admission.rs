//! Admission: coalescing jobs into batches, latest-safe dispatch timing,
//! the pre-dispatch local override, per-batch state initialisation, and
//! the overload-aware admission controller (bounded per-site queues:
//! defer delay-tolerant batches, shed tight-deadline ones down the
//! chain).
//!
//! Everything here fills caller-owned buffers (see
//! [`RunScratch`](crate::engine::RunScratch)): a reused scratch re-walks
//! the same allocations run after run instead of re-growing them.

use std::collections::HashMap;

use ntc_alloc::dispatch_time;
use ntc_partition::Side;
use ntc_simcore::units::{DataSize, SimDuration, SimTime};
use ntc_taskgraph::ComponentId;
use ntc_workloads::{Archetype, Job};

use super::accounting::HealthMap;
use super::RunCtx;
use crate::deploy::Deployment;
use crate::environment::Environment;
use crate::site::SiteRegistry;

/// A per-component sentinel in [`BatchStates::inflight_site`]: no
/// invocation of this component is currently counted against any site's
/// bounded queue.
pub(crate) const NO_SITE: u8 = u8::MAX;

/// One execution unit: one or more coalesced jobs of the same deployment
/// released together.
#[derive(Debug)]
pub(crate) struct Batch {
    pub di: usize,
    pub members: Vec<usize>,
    pub dispatch_at: SimTime,
    pub sum_input: DataSize,
    pub max_input: DataSize,
}

/// Execution state of every batch, flattened struct-of-arrays style: the
/// per-component arrays are one contiguous allocation each, with batch
/// `bi` owning the slice `off[bi]..off[bi + 1]`. Compared to the old
/// `Vec<BatchState>` (six heap allocations per batch), this keeps the
/// event loop's state accesses contiguous and lets a reused scratch
/// re-initialise with zero allocation.
#[derive(Debug, Default)]
pub(crate) struct BatchStates {
    /// Prefix offsets into the per-component arrays; `batches + 1` long.
    off: Vec<usize>,
    /// Per component: predecessors not yet delivered.
    pub remaining_preds: Vec<usize>,
    /// Per component: latest input-arrival instant seen.
    pub ready_at: Vec<SimTime>,
    /// Per component: execution attempts (0 = never attempted).
    pub attempts: Vec<u32>,
    /// Per component: cumulative retry backoff.
    pub backoff: Vec<SimDuration>,
    /// Per component: the side it actually last executed on (for routing
    /// its outputs after a mid-graph fallback).
    pub exec_side: Vec<Side>,
    /// Per batch: exit components still outstanding.
    pub outstanding_exits: Vec<usize>,
    /// Per batch: latest exit completion seen.
    pub finish: Vec<SimTime>,
    /// Per batch: terminally failed.
    pub failed: Vec<bool>,
    /// Per batch: all exits landed (or failure recorded).
    pub finished: Vec<bool>,
    /// Per batch: position in the deployment's site-preference chain.
    /// 0 is the primary site; failure-driven fallback advances it.
    pub chain_pos: Vec<usize>,
    /// Per batch: site fallback switches performed.
    pub fallbacks: Vec<u32>,
    /// Per batch: dispatch deferrals granted by admission control.
    pub deferrals: Vec<u32>,
    /// Per component: index (into the health map) of the site whose
    /// bounded queue this component's in-flight invocation occupies;
    /// [`NO_SITE`] when none. Only maintained when the health layer is
    /// enabled.
    pub inflight_site: Vec<u8>,
}

impl BatchStates {
    /// Index of `(bi, comp)` in the per-component arrays.
    #[inline]
    pub fn ix(&self, bi: usize, comp: ComponentId) -> usize {
        self.off[bi] + comp.index()
    }

    /// The per-component index range owned by batch `bi`.
    #[inline]
    pub fn range(&self, bi: usize) -> core::ops::Range<usize> {
        self.off[bi]..self.off[bi + 1]
    }

    /// Re-initialises for a fresh run over `batches`, reusing every
    /// array's capacity.
    pub fn reset(&mut self, deployments: &[Deployment], batches: &[Batch]) {
        self.off.clear();
        self.remaining_preds.clear();
        self.ready_at.clear();
        self.attempts.clear();
        self.backoff.clear();
        self.exec_side.clear();
        self.outstanding_exits.clear();
        self.finish.clear();
        self.failed.clear();
        self.finished.clear();
        self.chain_pos.clear();
        self.fallbacks.clear();
        self.deferrals.clear();
        self.inflight_site.clear();

        let mut total = 0;
        self.off.push(0);
        for b in batches {
            let d = &deployments[b.di];
            let n = d.graph.len();
            for c in d.graph.ids() {
                self.remaining_preds.push(d.graph.predecessors(c).count());
            }
            self.ready_at.resize(total + n, SimTime::ZERO);
            self.attempts.resize(total + n, 0);
            self.backoff.resize(total + n, SimDuration::ZERO);
            self.exec_side.resize(total + n, Side::Device);
            self.outstanding_exits.push(d.graph.exits().len());
            self.finish.push(SimTime::ZERO);
            self.failed.push(false);
            self.finished.push(false);
            self.chain_pos.push(0);
            self.fallbacks.push(0);
            self.deferrals.push(0);
            self.inflight_site.resize(total + n, NO_SITE);
            total += n;
            self.off.push(total);
        }
    }
}

/// The admission controller's answer for one batch at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Dispatch now, at the current chain position.
    Admit,
    /// The target site is overloaded but the batch has slack: hold it
    /// and re-dispatch at the given instant. NTC work is delay-tolerant
    /// — deferring is the graceful response to overload.
    Defer(SimTime),
    /// The target site is overloaded and the batch cannot afford to
    /// wait: shed it to the given chain position and dispatch there.
    Shed(usize),
}

/// Decides whether a batch may dispatch to its current chain site, must
/// wait out the overload, or must shed down the chain. Consulted only
/// when [`HealthConfig::admission`](ntc_faults::HealthConfig) is on; the
/// decision is a pure function of the health ledger and the batch's
/// deadline slack, so replays are bit-identical.
pub(crate) fn admission_verdict(
    ctx: &RunCtx<'_>,
    sites: &SiteRegistry,
    health: &HealthMap,
    states: &BatchStates,
    t: SimTime,
    bi: usize,
) -> Verdict {
    let b = &ctx.batches[bi];
    let d = &ctx.deployments[b.di];
    if !health.admission() || ctx.local_override[bi] || d.plan.offloaded().count() == 0 {
        return Verdict::Admit;
    }
    let chain = &ctx.chains[b.di];
    let pos = states.chain_pos[bi];
    let site = sites.site(chain[pos]);
    if !site.is_remote() {
        // The device is the terminal site: it scales per member and is
        // never overloaded.
        return Verdict::Admit;
    }
    let h = health.site(chain[pos].index());
    let wait = h.queue_delay(site.concurrency_hint());
    let margin = ctx.env.completion_margin;
    let min_deadline =
        b.members.iter().map(|&ji| ctx.jobs[ji].deadline()).min().expect("batch is non-empty");
    if !h.saturated() && t + wait + d.est_completion + margin <= min_deadline {
        return Verdict::Admit;
    }
    // Overloaded. Delay-tolerant batches wait the overload out…
    let cfg = health.cfg();
    let retry_at = t + cfg.defer_step;
    if states.deferrals[bi] < cfg.max_deferrals
        && retry_at + d.est_completion + margin <= min_deadline
    {
        return Verdict::Defer(retry_at);
    }
    // …and tight-deadline batches shed to the next chain site (every
    // later chain site mirrors the deployment, and the device serves
    // anything), rather than queueing into a miss.
    if pos + 1 < chain.len() {
        return Verdict::Shed(pos + 1);
    }
    Verdict::Admit
}

/// Coalesces jobs into batches by (deployment, dispatch instant), capped
/// by the deployment's member and byte limits. Refills `batches` and
/// `dispatched_at` (each job's dispatch instant), recycling member
/// vectors through `member_pool` and the keying map through `batch_key`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn coalesce_into(
    env: &Environment,
    deployments: &[Deployment],
    deployment_of: &HashMap<Archetype, usize>,
    jobs: &[Job],
    batches: &mut Vec<Batch>,
    member_pool: &mut Vec<Vec<usize>>,
    batch_key: &mut HashMap<(usize, SimTime), usize>,
    dispatched_at: &mut Vec<SimTime>,
) {
    for mut b in batches.drain(..) {
        b.members.clear();
        member_pool.push(core::mem::take(&mut b.members));
    }
    batch_key.clear();
    dispatched_at.clear();
    dispatched_at.reserve(jobs.len());
    for (ji, job) in jobs.iter().enumerate() {
        let di = deployment_of[&job.archetype];
        let d = &deployments[di];
        let at = dispatch_time(
            d.dispatch,
            job.arrival,
            job.slack,
            d.est_completion,
            env.completion_margin,
        );
        dispatched_at.push(at);
        let cap = deployments[di].max_batch_members as usize;
        let byte_cap = deployments[di].max_batch_bytes;
        let fits = |b: &Batch| {
            b.members.len() < cap
                && b.sum_input.as_bytes().saturating_add(job.input.as_bytes())
                    <= byte_cap.as_bytes()
        };
        let bi = match batch_key.get(&(di, at)) {
            Some(&bi) if fits(&batches[bi]) => bi,
            _ => {
                batches.push(Batch {
                    di,
                    members: member_pool.pop().unwrap_or_default(),
                    dispatch_at: at,
                    sum_input: DataSize::ZERO,
                    max_input: DataSize::ZERO,
                });
                let bi = batches.len() - 1;
                batch_key.insert((di, at), bi);
                bi
            }
        };
        let b = &mut batches[bi];
        b.members.push(ji);
        b.sum_input += job.input;
        b.max_input = b.max_input.max(job.input);
    }
}

/// Local fallback: a batch whose offloaded completion estimate (which
/// reserves for outages, chunking and noise) cannot meet its tightest
/// member deadline — but whose device execution can — runs entirely on
/// the members' own devices. Refills `out` with one flag per batch.
pub(crate) fn local_overrides_into(
    env: &Environment,
    deployments: &[Deployment],
    jobs: &[Job],
    batches: &[Batch],
    out: &mut Vec<bool>,
) {
    out.clear();
    out.extend(batches.iter().map(|b| {
        let d = &deployments[b.di];
        if !d.fallback_local || d.plan.offloaded().count() == 0 {
            return false;
        }
        let min_deadline =
            b.members.iter().map(|&ji| jobs[ji].deadline()).min().expect("batch is non-empty");
        // Only outages that can actually intersect this batch's
        // execution window count against offloading.
        let outage = env.connectivity.worst_wait_within(b.dispatch_at, min_deadline);
        let reserve = d.est_completion + outage + env.completion_margin;
        let local_reserve = d.est_local + env.completion_margin;
        b.dispatch_at + reserve > min_deadline && b.dispatch_at + local_reserve <= min_deadline
    }));
}
