//! Accounting: energy and byte counters, the per-site health ledger that
//! feeds the overload layer's EWMAs, per-job result assembly, and the
//! final run report.

use std::collections::BTreeMap;

use ntc_faults::{FailureCause, HealthConfig, SiteHealth};
use ntc_simcore::rng::RngStream;
use ntc_simcore::timeseries::TimeSeries;
use ntc_simcore::units::{DataSize, Energy, Money, SimDuration, SimTime};

use super::{BatchStates, JobRetention, RunCtx};
use crate::environment::Environment;
use crate::policy::OffloadPolicy;
use crate::report::{JobResult, OverloadStats, RunAggregates, RunResult};
use crate::site::SiteRegistry;

/// The run's per-site health ledger: one [`SiteHealth`] per registered
/// site, in registry (fallback-rank) order. Empty — and never consulted
/// — when the policy's [`HealthConfig`] is fully disabled, so legacy
/// configurations replay bit-identically.
#[derive(Debug, Default)]
pub(crate) struct HealthMap {
    cfg: HealthConfig,
    sites: Vec<SiteHealth>,
}

impl HealthMap {
    /// Re-initialises for a run under `cfg` over the registry's sites,
    /// reusing the vector's capacity. A disabled config leaves the map
    /// empty.
    pub(crate) fn reset(&mut self, cfg: HealthConfig, sites: &SiteRegistry) {
        self.cfg = cfg;
        self.sites.clear();
        if cfg.enabled() {
            self.sites.extend(sites.iter().map(|s| SiteHealth::new(s.id().as_str(), cfg)));
        }
    }

    /// Whether any health mechanism is on for this run.
    pub(crate) fn enabled(&self) -> bool {
        self.cfg.enabled() && !self.sites.is_empty()
    }

    /// Whether breaker-aware site selection is on.
    pub(crate) fn breakers(&self) -> bool {
        self.enabled() && self.cfg.breakers
    }

    /// Whether dispatch-time admission control is on.
    pub(crate) fn admission(&self) -> bool {
        self.enabled() && self.cfg.admission
    }

    /// The run's health tunables.
    pub(crate) fn cfg(&self) -> &HealthConfig {
        &self.cfg
    }

    /// The health record at `idx`.
    ///
    /// Health slots share the registry's fallback-rank order — both are
    /// built by iterating the registry — so a
    /// [`SiteToken`](crate::site::SiteToken)'s `index()` addresses its
    /// site's health directly; no string scan.
    pub(crate) fn site(&self, idx: usize) -> &SiteHealth {
        &self.sites[idx]
    }

    /// Mutable access to the health record at `idx`.
    pub(crate) fn site_mut(&mut self, idx: usize) -> &mut SiteHealth {
        &mut self.sites[idx]
    }

    /// Records a failed attempt against site `idx` — unless the cause is
    /// a deliberate hedge cancellation, which says nothing about the
    /// site's health and must not move the EWMAs.
    pub(crate) fn observe_failure(
        &mut self,
        idx: usize,
        at: SimTime,
        rng: &RngStream,
        cause: FailureCause,
    ) {
        if cause.is_cancellation() {
            self.sites[idx].record_cancelled();
        } else {
            self.sites[idx].record_failure(at, rng);
        }
    }

    /// Breaker transitions per site over the run, keyed by site name.
    /// Counting happens in the token-indexed ledger during the run; site
    /// names are materialised here once, at report build.
    fn transitions_by_site(&self) -> BTreeMap<String, u32> {
        self.sites.iter().map(|h| (h.site().to_string(), h.transitions())).collect()
    }
}

/// The streaming sink for `JobRetention::Aggregates` runs: folds every
/// [`JobResult`] into [`RunAggregates`] plus the completions time
/// series at record time, so no per-job state outlives the recording
/// call and run memory stays O(1) in the job count.
#[derive(Debug)]
pub(crate) struct RunAccumulator {
    aggregates: RunAggregates,
    completions: TimeSeries,
}

impl RunAccumulator {
    fn new() -> Self {
        RunAccumulator {
            aggregates: RunAggregates::default(),
            completions: TimeSeries::new(SimDuration::from_hours(1)),
        }
    }

    /// Folds one job outcome in. Failed jobs mark the completions
    /// series too, exactly as `Full` assembly counts them.
    fn record(&mut self, r: &JobResult) {
        self.aggregates.record(r);
        self.completions.mark(r.finish);
    }
}

/// The run's accumulating ledgers: per-job outcomes, the device-side
/// energy and traffic totals, and the overload layer's counters.
#[derive(Debug, Default)]
pub(crate) struct Accounting {
    pub results: Vec<Option<JobResult>>,
    /// Streaming sink, present only under `JobRetention::Aggregates`
    /// (in which case `results` stays empty).
    accumulator: Option<RunAccumulator>,
    pub device_energy: Energy,
    pub bytes_up: DataSize,
    pub bytes_down: DataSize,
    /// Batches shed to the next chain site by admission control.
    pub sheds: u64,
    /// Dispatch deferrals granted by admission control.
    pub deferrals: u64,
    /// Executions steered past an Open breaker.
    pub breaker_skips: u64,
    /// Hedged duplicates launched.
    pub hedges: u64,
    /// Hedges whose duplicate finished first.
    pub hedges_won: u64,
    /// Hedges whose duplicate lost or failed.
    pub hedges_lost: u64,
    /// Invocations cancelled as hedge losers.
    pub hedge_cancelled: u64,
}

impl Accounting {
    /// Re-initialises for a run over `jobs` jobs. `Full` retention
    /// reuses the result buffer's capacity; `Aggregates` leaves it
    /// empty and installs a fresh streaming accumulator instead.
    pub(crate) fn reset(&mut self, jobs: usize, retention: JobRetention) {
        self.results.clear();
        match retention {
            JobRetention::Full => {
                self.results.resize(jobs, None);
                self.accumulator = None;
            }
            JobRetention::Aggregates => {
                self.accumulator = Some(RunAccumulator::new());
            }
        }
        self.device_energy = Energy::ZERO;
        self.bytes_up = DataSize::ZERO;
        self.bytes_down = DataSize::ZERO;
        self.sheds = 0;
        self.deferrals = 0;
        self.breaker_skips = 0;
        self.hedges = 0;
        self.hedges_won = 0;
        self.hedges_lost = 0;
        self.hedge_cancelled = 0;
    }

    /// Routes one job's final outcome to the retention mode's sink: the
    /// per-job vector under `Full`, the streaming accumulator under
    /// `Aggregates`.
    pub(crate) fn record(&mut self, ji: usize, r: JobResult) {
        match &mut self.accumulator {
            Some(acc) => acc.record(&r),
            None => self.results[ji] = Some(r),
        }
    }

    /// Closes the books: drains every site's bill and assembles the
    /// [`RunResult`], leaving the ledgers empty for the next run.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        &mut self,
        policy: &OffloadPolicy,
        env: &Environment,
        horizon: SimDuration,
        horizon_end: SimTime,
        now: SimTime,
        sites: &mut SiteRegistry,
        health: &HealthMap,
    ) -> RunResult {
        let (jobs, completions_per_hour, aggregates) = match self.accumulator.take() {
            Some(mut acc) => {
                acc.aggregates.finalize();
                (Vec::new(), acc.completions, Some(acc.aggregates))
            }
            None => {
                let mut completions = TimeSeries::new(SimDuration::from_hours(1));
                for r in self.results.iter().flatten() {
                    completions.mark(r.finish);
                }
                (self.results.drain(..).flatten().collect(), completions, None)
            }
        };

        let end = now.max(horizon_end);
        let mut cloud_cost = Money::ZERO;
        let mut edge_cost = Money::ZERO;
        for site in sites.iter_mut() {
            let cost = site.cost(end, horizon_end);
            match site.id().as_str() {
                // Flat-rate edge infrastructure is reported separately
                // from metered bills; device work is paid in battery, not
                // money, and is accounted under `device_energy`.
                "edge" => edge_cost += cost,
                "device" => {}
                _ => cloud_cost += cost,
            }
        }

        RunResult {
            policy: policy.name(),
            jobs,
            cloud_cost,
            edge_cost,
            device_energy: self.device_energy,
            device_energy_cost: env.energy_cost(self.device_energy),
            bytes_up: self.bytes_up,
            bytes_down: self.bytes_down,
            completions_per_hour,
            horizon,
            overload: health.enabled().then(|| OverloadStats {
                sheds: self.sheds,
                deferrals: self.deferrals,
                breaker_skips: self.breaker_skips,
                hedges: self.hedges,
                hedges_won: self.hedges_won,
                hedges_lost: self.hedges_lost,
                hedge_cancelled: self.hedge_cancelled,
                breaker_transitions: health.transitions_by_site(),
            }),
            aggregates,
        }
    }
}

/// Records one exit-component completion; when the last exit lands, every
/// member receives its [`JobResult`].
pub(crate) fn record_exit(
    ctx: &RunCtx<'_>,
    states: &mut BatchStates,
    acct: &mut Accounting,
    bi: usize,
    finish: SimTime,
) {
    states.finish[bi] = states.finish[bi].max(finish);
    states.outstanding_exits[bi] -= 1;
    if states.outstanding_exits[bi] == 0 && !states.finished[bi] {
        states.finished[bi] = true;
        let comps = states.range(bi);
        let attempts = states.attempts[comps.clone()].iter().copied().max().unwrap_or(0).max(1);
        let backoff = states.backoff[comps].iter().copied().max().unwrap_or(SimDuration::ZERO);
        for &ji in &ctx.batches[bi].members {
            acct.record(
                ji,
                JobResult {
                    id: ctx.jobs[ji].id,
                    archetype: ctx.jobs[ji].archetype,
                    arrival: ctx.jobs[ji].arrival,
                    dispatched: ctx.dispatched_at[ji],
                    finish: states.finish[bi],
                    deadline: ctx.jobs[ji].deadline(),
                    failed: false,
                    attempts,
                    backoff,
                    fallbacks: states.fallbacks[bi],
                    cause: None,
                },
            );
        }
    }
}

/// Fails a whole batch: every member receives a failed [`JobResult`]
/// carrying the cause.
pub(crate) fn fail_batch(
    ctx: &RunCtx<'_>,
    states: &mut BatchStates,
    acct: &mut Accounting,
    t: SimTime,
    bi: usize,
    cause: FailureCause,
) {
    if states.finished[bi] {
        return;
    }
    states.failed[bi] = true;
    states.finished[bi] = true;
    let comps = states.range(bi);
    let attempts = states.attempts[comps.clone()].iter().copied().max().unwrap_or(0).max(1);
    let backoff = states.backoff[comps].iter().copied().max().unwrap_or(SimDuration::ZERO);
    let fallbacks = states.fallbacks[bi];
    for &ji in &ctx.batches[bi].members {
        acct.record(
            ji,
            JobResult {
                id: ctx.jobs[ji].id,
                archetype: ctx.jobs[ji].archetype,
                arrival: ctx.jobs[ji].arrival,
                dispatched: ctx.dispatched_at[ji],
                finish: t,
                deadline: ctx.jobs[ji].deadline(),
                failed: true,
                attempts,
                backoff,
                fallbacks,
                cause: Some(cause),
            },
        );
    }
}
