//! Accounting: energy and byte counters, per-job result assembly, and the
//! final run report.

use ntc_faults::FailureCause;
use ntc_simcore::timeseries::TimeSeries;
use ntc_simcore::units::{DataSize, Energy, Money, SimDuration, SimTime};

use super::{BatchStates, RunCtx};
use crate::environment::Environment;
use crate::policy::OffloadPolicy;
use crate::report::{JobResult, RunResult};
use crate::site::SiteRegistry;

/// The run's accumulating ledgers: per-job outcomes plus the device-side
/// energy and traffic totals.
#[derive(Debug, Default)]
pub(crate) struct Accounting {
    pub results: Vec<Option<JobResult>>,
    pub device_energy: Energy,
    pub bytes_up: DataSize,
    pub bytes_down: DataSize,
}

impl Accounting {
    /// Re-initialises for a run over `jobs` jobs, reusing the result
    /// buffer's capacity.
    pub(crate) fn reset(&mut self, jobs: usize) {
        self.results.clear();
        self.results.resize(jobs, None);
        self.device_energy = Energy::ZERO;
        self.bytes_up = DataSize::ZERO;
        self.bytes_down = DataSize::ZERO;
    }

    /// Closes the books: drains every site's bill and assembles the
    /// [`RunResult`], leaving the ledgers empty for the next run.
    pub(crate) fn assemble(
        &mut self,
        policy: &OffloadPolicy,
        env: &Environment,
        horizon: SimDuration,
        horizon_end: SimTime,
        now: SimTime,
        sites: &mut SiteRegistry,
    ) -> RunResult {
        let mut completions_per_hour = TimeSeries::new(SimDuration::from_hours(1));
        for r in self.results.iter().flatten() {
            completions_per_hour.mark(r.finish);
        }

        let end = now.max(horizon_end);
        let mut cloud_cost = Money::ZERO;
        let mut edge_cost = Money::ZERO;
        for site in sites.iter_mut() {
            let cost = site.cost(end, horizon_end);
            match site.id().as_str() {
                // Flat-rate edge infrastructure is reported separately
                // from metered bills; device work is paid in battery, not
                // money, and is accounted under `device_energy`.
                "edge" => edge_cost += cost,
                "device" => {}
                _ => cloud_cost += cost,
            }
        }

        RunResult {
            policy: policy.name(),
            jobs: self.results.drain(..).flatten().collect(),
            cloud_cost,
            edge_cost,
            device_energy: self.device_energy,
            device_energy_cost: env.energy_cost(self.device_energy),
            bytes_up: self.bytes_up,
            bytes_down: self.bytes_down,
            completions_per_hour,
            horizon,
        }
    }
}

/// Records one exit-component completion; when the last exit lands, every
/// member receives its [`JobResult`].
pub(crate) fn record_exit(
    ctx: &RunCtx<'_>,
    states: &mut BatchStates,
    acct: &mut Accounting,
    bi: usize,
    finish: SimTime,
) {
    states.finish[bi] = states.finish[bi].max(finish);
    states.outstanding_exits[bi] -= 1;
    if states.outstanding_exits[bi] == 0 && !states.finished[bi] {
        states.finished[bi] = true;
        let comps = states.range(bi);
        let attempts = states.attempts[comps.clone()].iter().copied().max().unwrap_or(0).max(1);
        let backoff = states.backoff[comps].iter().copied().max().unwrap_or(SimDuration::ZERO);
        for &ji in &ctx.batches[bi].members {
            acct.results[ji] = Some(JobResult {
                id: ctx.jobs[ji].id,
                archetype: ctx.jobs[ji].archetype,
                arrival: ctx.jobs[ji].arrival,
                dispatched: ctx.dispatched_at[ji],
                finish: states.finish[bi],
                deadline: ctx.jobs[ji].deadline(),
                failed: false,
                attempts,
                backoff,
                fallbacks: states.fallbacks[bi],
                cause: None,
            });
        }
    }
}

/// Fails a whole batch: every member receives a failed [`JobResult`]
/// carrying the cause.
pub(crate) fn fail_batch(
    ctx: &RunCtx<'_>,
    states: &mut BatchStates,
    acct: &mut Accounting,
    t: SimTime,
    bi: usize,
    cause: FailureCause,
) {
    if states.finished[bi] {
        return;
    }
    states.failed[bi] = true;
    states.finished[bi] = true;
    let comps = states.range(bi);
    let attempts = states.attempts[comps.clone()].iter().copied().max().unwrap_or(0).max(1);
    let backoff = states.backoff[comps].iter().copied().max().unwrap_or(SimDuration::ZERO);
    let fallbacks = states.fallbacks[bi];
    for &ji in &ctx.batches[bi].members {
        acct.results[ji] = Some(JobResult {
            id: ctx.jobs[ji].id,
            archetype: ctx.jobs[ji].archetype,
            arrival: ctx.jobs[ji].arrival,
            dispatched: ctx.dispatched_at[ji],
            finish: t,
            deadline: ctx.jobs[ji].deadline(),
            failed: true,
            attempts,
            backoff,
            fallbacks,
            cause: Some(cause),
        });
    }
}
