//! Accounting: energy and byte counters, per-job result assembly, and the
//! final run report.

use ntc_faults::FailureCause;
use ntc_simcore::timeseries::TimeSeries;
use ntc_simcore::units::{DataSize, Energy, Money, SimDuration, SimTime};

use super::{BatchState, RunCtx};
use crate::environment::Environment;
use crate::policy::OffloadPolicy;
use crate::report::{JobResult, RunResult};
use crate::site::SiteRegistry;

/// The run's accumulating ledgers: per-job outcomes plus the device-side
/// energy and traffic totals.
#[derive(Debug)]
pub(crate) struct Accounting {
    pub results: Vec<Option<JobResult>>,
    pub device_energy: Energy,
    pub bytes_up: DataSize,
    pub bytes_down: DataSize,
}

impl Accounting {
    pub(crate) fn new(jobs: usize) -> Self {
        Accounting {
            results: vec![None; jobs],
            device_energy: Energy::ZERO,
            bytes_up: DataSize::ZERO,
            bytes_down: DataSize::ZERO,
        }
    }

    /// Closes the books: drains every site's bill and assembles the
    /// [`RunResult`].
    pub(crate) fn assemble(
        self,
        policy: &OffloadPolicy,
        env: &Environment,
        horizon: SimDuration,
        horizon_end: SimTime,
        now: SimTime,
        sites: &mut SiteRegistry,
    ) -> RunResult {
        let mut completions_per_hour = TimeSeries::new(SimDuration::from_hours(1));
        for r in self.results.iter().flatten() {
            completions_per_hour.mark(r.finish);
        }

        let end = now.max(horizon_end);
        let mut cloud_cost = Money::ZERO;
        let mut edge_cost = Money::ZERO;
        for site in sites.iter_mut() {
            let cost = site.cost(end, horizon_end);
            match site.id().as_str() {
                // Flat-rate edge infrastructure is reported separately
                // from metered bills; device work is paid in battery, not
                // money, and is accounted under `device_energy`.
                "edge" => edge_cost += cost,
                "device" => {}
                _ => cloud_cost += cost,
            }
        }

        RunResult {
            policy: policy.name(),
            jobs: self.results.into_iter().flatten().collect(),
            cloud_cost,
            edge_cost,
            device_energy: self.device_energy,
            device_energy_cost: env.energy_cost(self.device_energy),
            bytes_up: self.bytes_up,
            bytes_down: self.bytes_down,
            completions_per_hour,
            horizon,
        }
    }
}

/// Records one exit-component completion; when the last exit lands, every
/// member receives its [`JobResult`].
pub(crate) fn record_exit(
    ctx: &RunCtx<'_>,
    states: &mut [BatchState],
    acct: &mut Accounting,
    bi: usize,
    finish: SimTime,
) {
    let st = &mut states[bi];
    st.finish = st.finish.max(finish);
    st.outstanding_exits -= 1;
    if st.outstanding_exits == 0 && !st.finished {
        st.finished = true;
        let attempts = st.attempts.iter().copied().max().unwrap_or(0).max(1);
        let backoff = st.backoff.iter().copied().max().unwrap_or(SimDuration::ZERO);
        for &ji in &ctx.batches[bi].members {
            acct.results[ji] = Some(JobResult {
                id: ctx.jobs[ji].id,
                archetype: ctx.jobs[ji].archetype,
                arrival: ctx.jobs[ji].arrival,
                dispatched: ctx.dispatched_at[ji],
                finish: st.finish,
                deadline: ctx.jobs[ji].deadline(),
                failed: false,
                attempts,
                backoff,
                fallbacks: st.fallbacks,
                cause: None,
            });
        }
    }
}

/// Fails a whole batch: every member receives a failed [`JobResult`]
/// carrying the cause.
pub(crate) fn fail_batch(
    ctx: &RunCtx<'_>,
    states: &mut [BatchState],
    acct: &mut Accounting,
    t: SimTime,
    bi: usize,
    cause: FailureCause,
) {
    let st = &mut states[bi];
    if st.finished {
        return;
    }
    st.failed = true;
    st.finished = true;
    let attempts = st.attempts.iter().copied().max().unwrap_or(0).max(1);
    let backoff = st.backoff.iter().copied().max().unwrap_or(SimDuration::ZERO);
    let fallbacks = st.fallbacks;
    for &ji in &ctx.batches[bi].members {
        acct.results[ji] = Some(JobResult {
            id: ctx.jobs[ji].id,
            archetype: ctx.jobs[ji].archetype,
            arrival: ctx.jobs[ji].arrival,
            dispatched: ctx.dispatched_at[ji],
            finish: t,
            deadline: ctx.jobs[ji].deadline(),
            failed: true,
            attempts,
            backoff,
            fallbacks,
            cause: Some(cause),
        });
    }
}
