//! Execution: provisioning deployments onto their site chains, keep-warm
//! pings, and per-component invocation through the
//! [`ExecutionSite`](crate::site::ExecutionSite) trait.

use std::fmt::Write as _;

use ntc_faults::{classify_injected, classify_outage};
use ntc_partition::Side;
use ntc_simcore::event::Simulator;
use ntc_simcore::units::{Cycles, SimDuration, SimTime};
use ntc_taskgraph::ComponentId;
use ntc_workloads::Job;

use super::{recovery, Ev, RunCtx, RunState};
use crate::deploy::Deployment;
use crate::site::{InvokeRequest, SiteId, SiteOutcome, SiteRegistry, SiteRole};

/// Provisions every deployment's offloaded components on every remote
/// site of its preference chain: the primary hosts the live functions or
/// services, later sites hold cheap mirrors so failure-driven fallback
/// can re-route mid-run. Returns keep-warm pings via the event queue.
pub(crate) fn provision_deployments(
    deployments: &[Deployment],
    chains: &[Vec<SiteId>],
    sites: &mut SiteRegistry,
    sim: &mut Simulator<Ev>,
) {
    for (di, d) in deployments.iter().enumerate() {
        let chain = &chains[di];
        sites.get_mut(&chain[0]).attach();
        for comp in d.plan.offloaded() {
            for (ci, sid) in chain.iter().enumerate() {
                let site = sites.get_mut(sid);
                if !site.is_remote() {
                    continue;
                }
                let role = if ci == 0 { SiteRole::Primary } else { SiteRole::Mirror };
                if let Some(period) = site.provision(di, d, comp, role) {
                    sim.schedule_after(period, Ev::Ping(di, comp, period));
                }
            }
        }
    }
}

/// Keep-warm ping: re-touch the primary site's function and re-arm.
pub(crate) fn handle_ping(
    ctx: &RunCtx<'_>,
    sites: &mut SiteRegistry,
    sim: &mut Simulator<Ev>,
    t: SimTime,
    di: usize,
    comp: ComponentId,
    period: SimDuration,
) {
    if t <= ctx.horizon_end {
        sites.get_mut(&ctx.chains[di][0]).keep_warm(t, di, comp);
        sim.schedule_after(period, Ev::Ping(di, comp, period));
    }
}

/// Executes one ready component of a batch on its current site.
pub(crate) fn handle_exec(
    ctx: &RunCtx<'_>,
    sites: &mut SiteRegistry,
    st: &mut RunState<'_>,
    sim: &mut Simulator<Ev>,
    t: SimTime,
    bi: usize,
    comp: ComponentId,
) {
    if st.states.failed[bi] {
        return;
    }
    let b = &ctx.batches[bi];
    let d = &ctx.deployments[b.di];
    let chain = &ctx.chains[b.di];
    let pos = st.states.chain_pos[bi];
    let degraded = ctx.local_override[bi] || !sites.get(&chain[pos]).is_remote();
    let side = if degraded { Side::Device } else { d.plan.side(comp) };
    let cix = st.states.ix(bi, comp);
    st.states.exec_side[cix] = side;
    let noise = noise_factor(ctx, st.key_buf, bi, comp);
    match side {
        Side::Device => {
            // Per-member execution on each member's own device: wall-clock
            // is the slowest member; energy is paid by every member.
            st.member_works.clear();
            st.member_works
                .extend(b.members.iter().map(|&ji| member_work(&ctx.jobs[ji], d, comp, noise)));
            let req = InvokeRequest {
                at: t,
                di: b.di,
                comp,
                work: Cycles::new(0),
                member_works: st.member_works.as_slice(),
                device: &ctx.env.device,
            };
            let inv = sites
                .get_mut(&SiteId::device())
                .invoke(&req)
                .expect("device execution cannot fail");
            st.acct.device_energy += inv.device_energy;
            sim.schedule_at(inv.finish, Ev::Done(bi, comp)).expect("future");
        }
        Side::Cloud => {
            // One invocation for the whole batch, on the concatenated
            // input: the fixed demand and the request fee amortise across
            // members.
            let annotated =
                d.graph.component(comp).batch_demand_cycles(b.members.len() as u64, b.sum_input);
            let work = Cycles::new((annotated.get() as f64 * noise).round() as u64);
            st.states.attempts[cix] += 1;
            let attempt = st.states.attempts[cix];
            let site_id = &chain[pos];
            // Fault-free plans answer every key with "no fault", so the
            // key string is only materialised when faults are configured.
            let fault = if ctx.faults.has_invocation_faults() {
                let first = ctx.jobs[b.members[0]].id;
                st.key_buf.clear();
                write!(st.key_buf, "{first}-{comp}-{site_id}-a{attempt}").expect("string write");
                ctx.faults.invocation_fault(st.key_buf.as_str())
            } else {
                None
            };
            let outcome: SiteOutcome = if let Some(fault) = fault {
                Err(classify_injected(fault))
            } else {
                let site = sites.get_mut(site_id);
                match classify_outage(site.id().as_str(), site.outage(ctx.faults, t)) {
                    Some(err) => Err(err),
                    None => site.invoke(&InvokeRequest {
                        at: t,
                        di: b.di,
                        comp,
                        work,
                        member_works: &[],
                        device: &ctx.env.device,
                    }),
                }
            };
            match outcome {
                Ok(inv) => {
                    st.acct.device_energy += inv.device_energy;
                    sim.schedule_at(inv.finish, Ev::Done(bi, comp)).expect("future");
                }
                Err((class, cause)) => {
                    recovery::recover(ctx, sites, st, sim, t, bi, comp, class, cause);
                }
            }
        }
    }
}

/// Execution-to-execution noise, sampled once per (batch, component) so
/// retries re-observe the same value. The derivation key is written into
/// `buf` — it must stay byte-identical to the historical
/// `format!("{first}-{comp}")`, because the RNG child is derived by
/// hashing the label.
fn noise_factor(ctx: &RunCtx<'_>, buf: &mut String, bi: usize, comp: ComponentId) -> f64 {
    let b = &ctx.batches[bi];
    let first = ctx.jobs[b.members[0]].id;
    let archetype = ctx.jobs[b.members[0]].archetype;
    buf.clear();
    write!(buf, "{first}-{comp}").expect("string write");
    let mut r = ctx.work_rng.derive(buf);
    archetype.demand_drift() * r.lognormal(0.0, archetype.demand_noise_sigma())
}

fn member_work(job: &Job, d: &Deployment, comp: ComponentId, noise: f64) -> Cycles {
    let annotated = d.graph.component(comp).demand_cycles(job.input).get() as f64;
    Cycles::new((annotated * noise).round() as u64)
}
