//! Execution: provisioning deployments onto their site chains, keep-warm
//! pings, per-component invocation through the
//! [`ExecutionSite`](crate::site::ExecutionSite) trait, breaker-aware
//! site selection, and deadline-budgeted hedged requests.

use std::fmt::Write as _;

use ntc_faults::{classify_injected, classify_outage, Admission};
use ntc_partition::Side;
use ntc_simcore::event::Simulator;
use ntc_simcore::units::{Cycles, SimDuration, SimTime};
use ntc_taskgraph::ComponentId;
use ntc_workloads::Job;

use super::admission::NO_SITE;
use super::{recovery, Ev, HedgePending, RunCtx, RunState};
use crate::deploy::Deployment;
use crate::site::{InvokeRequest, SiteOutcome, SiteRegistry, SiteRole, SiteToken};

/// Provisions every deployment's offloaded components on every remote
/// site of its preference chain: the primary hosts the live functions or
/// services, later sites hold cheap mirrors so failure-driven fallback
/// can re-route mid-run. Returns keep-warm pings via the event queue.
pub(crate) fn provision_deployments(
    deployments: &[Deployment],
    chains: &[Vec<SiteToken>],
    sites: &mut SiteRegistry,
    sim: &mut Simulator<Ev>,
) {
    for (di, d) in deployments.iter().enumerate() {
        let chain = &chains[di];
        sites.site_mut(chain[0]).attach();
        for comp in d.plan.offloaded() {
            for (ci, &tok) in chain.iter().enumerate() {
                let site = sites.site_mut(tok);
                if !site.is_remote() {
                    continue;
                }
                let role = if ci == 0 { SiteRole::Primary } else { SiteRole::Mirror };
                if let Some(period) = site.provision(di, d, comp, role) {
                    sim.schedule_after(period, Ev::Ping(di, comp, period));
                }
            }
        }
    }
}

/// Keep-warm ping: re-touch the primary site's function and re-arm.
pub(crate) fn handle_ping(
    ctx: &RunCtx<'_>,
    sites: &mut SiteRegistry,
    sim: &mut Simulator<Ev>,
    t: SimTime,
    di: usize,
    comp: ComponentId,
    period: SimDuration,
) {
    if t <= ctx.horizon_end {
        sites.site_mut(ctx.chains[di][0]).keep_warm(t, di, comp);
        sim.schedule_after(period, Ev::Ping(di, comp, period));
    }
}

/// Executes one ready component of a batch on its current site.
pub(crate) fn handle_exec(
    ctx: &RunCtx<'_>,
    sites: &mut SiteRegistry,
    st: &mut RunState<'_>,
    sim: &mut Simulator<Ev>,
    t: SimTime,
    bi: usize,
    comp: ComponentId,
) {
    if st.states.failed[bi] {
        return;
    }
    let b = &ctx.batches[bi];
    let d = &ctx.deployments[b.di];
    let chain = &ctx.chains[b.di];
    let mut pos = st.states.chain_pos[bi];
    // Breaker-aware selection: rather than burning an attempt (and the
    // failure-detect latency) on a site whose breaker is Open, start at
    // the first chain site that admits the request. Fail-open: when
    // every breaker refuses, keep the original site — the health layer
    // may steer, never strand. Device-side components never consult the
    // breakers: no remote invocation happens, so an admitted probe slot
    // could never resolve.
    if st.health.breakers() && !ctx.local_override[bi] && d.plan.side(comp) == Side::Cloud {
        if let Some(next) = breaker_site(ctx, sites, st, t, bi, comp, pos) {
            if next != pos {
                st.states.chain_pos[bi] = next;
                st.acct.breaker_skips += 1;
                pos = next;
            }
        }
    }
    let degraded = ctx.local_override[bi] || !sites.site(chain[pos]).is_remote();
    let side = if degraded { Side::Device } else { d.plan.side(comp) };
    let cix = st.states.ix(bi, comp);
    st.states.exec_side[cix] = side;
    let noise = noise_factor(ctx, st.key_buf, bi, comp);
    match side {
        Side::Device => {
            // Per-member execution on each member's own device: wall-clock
            // is the slowest member; energy is paid by every member.
            st.member_works.clear();
            st.member_works
                .extend(b.members.iter().map(|&ji| member_work(&ctx.jobs[ji], d, comp, noise)));
            let req = InvokeRequest {
                at: t,
                di: b.di,
                comp,
                work: Cycles::new(0),
                member_works: st.member_works.as_slice(),
                device: &ctx.env.device,
            };
            let inv =
                sites.site_mut(ctx.device).invoke(&req).expect("device execution cannot fail");
            st.acct.device_energy += inv.device_energy;
            sim.schedule_at(inv.finish, Ev::Done(bi, comp)).expect("future");
        }
        Side::Cloud => {
            // One invocation for the whole batch, on the concatenated
            // input: the fixed demand and the request fee amortise across
            // members.
            let annotated =
                d.graph.component(comp).batch_demand_cycles(b.members.len() as u64, b.sum_input);
            let work = Cycles::new((annotated.get() as f64 * noise).round() as u64);
            st.states.attempts[cix] += 1;
            let attempt = st.states.attempts[cix];
            let tok = chain[pos];
            // Fault-free plans answer every key with "no fault", so the
            // key string is only materialised when faults are configured.
            // The site's *string* id goes into the key — its spelling is
            // part of the reproducibility contract.
            let fault = if ctx.faults.has_invocation_faults() {
                let first = ctx.jobs[b.members[0]].id;
                let site_id = sites.site(tok).id();
                st.key_buf.clear();
                write!(st.key_buf, "{first}-{comp}-{site_id}-a{attempt}").expect("string write");
                ctx.faults.invocation_fault(st.key_buf.as_str())
            } else {
                None
            };
            let outcome: SiteOutcome = if let Some(fault) = fault {
                Err(classify_injected(fault))
            } else {
                let site = sites.site_mut(tok);
                match classify_outage(site.id().as_str(), site.outage(ctx.faults, t)) {
                    Some(err) => Err(err),
                    None => site.invoke(&InvokeRequest {
                        at: t,
                        di: b.di,
                        comp,
                        work,
                        member_works: &[],
                        device: &ctx.env.device,
                    }),
                }
            };
            match outcome {
                Ok(inv) => {
                    st.acct.device_energy += inv.device_energy;
                    if st.health.enabled() {
                        let idx = tok.index();
                        st.health.site_mut(idx).enter();
                        st.states.inflight_site[cix] = idx as u8;
                        let latency = inv.finish.saturating_duration_since(t);
                        // A straggler past the site's p99-derived hedge
                        // delay defers its completion: at `t + delay` a
                        // duplicate may race it on the next healthy
                        // site, and the earlier finisher wins.
                        if let Some(delay) = st.health.site(idx).hedge_delay() {
                            if latency > delay && hedge_candidate_exists(ctx, sites, bi, comp, pos)
                            {
                                st.hedges.insert(
                                    (bi, comp),
                                    HedgePending {
                                        start: t,
                                        primary_finish: inv.finish,
                                        from_pos: pos,
                                    },
                                );
                                sim.schedule_at(t + delay, Ev::HedgeFire(bi, comp))
                                    .expect("future");
                                return;
                            }
                        }
                        st.health.site_mut(idx).record_success(latency);
                    }
                    sim.schedule_at(inv.finish, Ev::Done(bi, comp)).expect("future");
                }
                Err((class, cause)) => {
                    if st.health.enabled() {
                        st.health.observe_failure(tok.index(), t, &st.health_rng, cause);
                    }
                    recovery::recover(ctx, sites, st, sim, t, bi, comp, class, cause);
                }
            }
        }
    }
}

/// The first chain position at or past `pos` whose site's breaker admits
/// a request at `t` (and which can serve the component), or `None` when
/// every breaker refuses. The scan stops at the first admitting site so
/// at most one HalfOpen probe slot is handed out per call.
fn breaker_site(
    ctx: &RunCtx<'_>,
    sites: &SiteRegistry,
    st: &mut RunState<'_>,
    t: SimTime,
    bi: usize,
    comp: ComponentId,
    pos: usize,
) -> Option<usize> {
    let di = ctx.batches[bi].di;
    let chain = &ctx.chains[di];
    (pos..chain.len()).find(|&i| {
        let tok = chain[i];
        if i > pos && !sites.site(tok).can_serve(di, comp) {
            return false;
        }
        st.health.site_mut(tok.index()).check(t) != Admission::Unavailable
    })
}

/// Whether any chain site strictly past `pos` could host a hedged
/// duplicate of this component (remote and provisioned). Breaker
/// admission is checked later, when the hedge actually fires.
fn hedge_candidate_exists(
    ctx: &RunCtx<'_>,
    sites: &SiteRegistry,
    bi: usize,
    comp: ComponentId,
    pos: usize,
) -> bool {
    let di = ctx.batches[bi].di;
    let chain = &ctx.chains[di];
    (pos + 1..chain.len()).any(|i| {
        let site = sites.site(chain[i]);
        site.is_remote() && site.can_serve(di, comp)
    })
}

/// A straggling invocation's hedge delay elapsed: launch a speculative
/// duplicate on the next healthy chain site and let the earlier finisher
/// win. The loser is cancelled — its site keeps the billing (the work
/// was submitted) but its health ledger records a deliberate
/// cancellation, never a failure.
#[allow(clippy::too_many_arguments)]
pub(crate) fn handle_hedge_fire(
    ctx: &RunCtx<'_>,
    sites: &mut SiteRegistry,
    st: &mut RunState<'_>,
    sim: &mut Simulator<Ev>,
    t: SimTime,
    bi: usize,
    comp: ComponentId,
) {
    let Some(pending) = st.hedges.remove(&(bi, comp)) else { return };
    let cix = st.states.ix(bi, comp);
    let primary_idx = usize::from(st.states.inflight_site[cix]);
    if st.states.failed[bi] {
        // Another component already failed the whole batch; release the
        // primary's queue slot and let its invocation evaporate.
        st.health.site_mut(primary_idx).leave();
        st.states.inflight_site[cix] = NO_SITE;
        return;
    }
    let b = &ctx.batches[bi];
    let d = &ctx.deployments[b.di];
    let chain = &ctx.chains[b.di];
    // The duplicate goes to the first breaker-admitting remote site
    // strictly past the primary's position.
    let target = (pending.from_pos + 1..chain.len()).find_map(|i| {
        let tok = chain[i];
        let site = sites.site(tok);
        if !site.is_remote() || !site.can_serve(b.di, comp) {
            return None;
        }
        (st.health.site_mut(tok.index()).check(t) != Admission::Unavailable)
            .then_some((i, tok.index()))
    });
    let Some((target_pos, target_idx)) = target else {
        // Nobody healthy to race against: the primary wins by default.
        resolve_primary_win(st, sim, bi, comp, primary_idx, &pending);
        return;
    };

    st.acct.hedges += 1;
    // The duplicate re-observes the same work (noise is keyed per
    // (batch, component)); its injected-fault key carries a `-hedge`
    // marker so it draws from its own stream without perturbing the
    // per-attempt keys of the retry path.
    let noise = noise_factor(ctx, st.key_buf, bi, comp);
    let annotated =
        d.graph.component(comp).batch_demand_cycles(b.members.len() as u64, b.sum_input);
    let work = Cycles::new((annotated.get() as f64 * noise).round() as u64);
    let tok = chain[target_pos];
    let fault = if ctx.faults.has_invocation_faults() {
        let first = ctx.jobs[b.members[0]].id;
        let site_id = sites.site(tok).id();
        st.key_buf.clear();
        write!(st.key_buf, "{first}-{comp}-{site_id}-hedge").expect("string write");
        ctx.faults.invocation_fault(st.key_buf.as_str())
    } else {
        None
    };
    let outcome: SiteOutcome = if let Some(fault) = fault {
        Err(classify_injected(fault))
    } else {
        let site = sites.site_mut(tok);
        match classify_outage(site.id().as_str(), site.outage(ctx.faults, t)) {
            Some(err) => Err(err),
            None => site.invoke(&InvokeRequest {
                at: t,
                di: b.di,
                comp,
                work,
                member_works: &[],
                device: &ctx.env.device,
            }),
        }
    };
    match outcome {
        Ok(hinv) if hinv.finish < pending.primary_finish => {
            // The duplicate wins: cancel the primary (a deliberate
            // cancellation — not a failure, not an observation) and
            // complete from the duplicate's site.
            st.acct.hedges_won += 1;
            st.acct.hedge_cancelled += 1;
            st.acct.device_energy += hinv.device_energy;
            st.health.site_mut(target_idx).record_success(hinv.finish.saturating_duration_since(t));
            st.health.site_mut(primary_idx).record_cancelled();
            st.health.site_mut(primary_idx).leave();
            st.health.site_mut(target_idx).enter();
            st.states.inflight_site[cix] = target_idx as u8;
            // Route downstream flows over the winning site. `max`:
            // another component may have already fallen back further.
            st.states.chain_pos[bi] = st.states.chain_pos[bi].max(target_pos);
            sim.schedule_at(hinv.finish, Ev::Done(bi, comp)).expect("future");
        }
        Ok(_) => {
            // The duplicate loses the race before it even finishes:
            // cancel it (its site keeps the billing) and let the
            // primary complete.
            st.acct.hedges_lost += 1;
            st.acct.hedge_cancelled += 1;
            st.health.site_mut(target_idx).record_cancelled();
            resolve_primary_win(st, sim, bi, comp, primary_idx, &pending);
        }
        Err((_class, cause)) => {
            // The duplicate failed outright: that *is* an observation
            // against its site, but the primary is still in flight —
            // no retry budget is spent and the batch loses nothing.
            st.acct.hedges_lost += 1;
            st.health.observe_failure(target_idx, t, &st.health_rng, cause);
            resolve_primary_win(st, sim, bi, comp, primary_idx, &pending);
        }
    }
}

/// Completes a hedged invocation from its deferred primary: records the
/// primary's success (measured from its original submission) and
/// schedules the completion it was holding back.
fn resolve_primary_win(
    st: &mut RunState<'_>,
    sim: &mut Simulator<Ev>,
    bi: usize,
    comp: ComponentId,
    primary_idx: usize,
    pending: &HedgePending,
) {
    st.health
        .site_mut(primary_idx)
        .record_success(pending.primary_finish.saturating_duration_since(pending.start));
    sim.schedule_at(pending.primary_finish, Ev::Done(bi, comp)).expect("future");
}

/// Execution-to-execution noise, sampled once per (batch, component) so
/// retries re-observe the same value. The derivation key is written into
/// `buf` — it must stay byte-identical to the historical
/// `format!("{first}-{comp}")`, because the RNG child is derived by
/// hashing the label.
fn noise_factor(ctx: &RunCtx<'_>, buf: &mut String, bi: usize, comp: ComponentId) -> f64 {
    let b = &ctx.batches[bi];
    let first = ctx.jobs[b.members[0]].id;
    let archetype = ctx.jobs[b.members[0]].archetype;
    buf.clear();
    write!(buf, "{first}-{comp}").expect("string write");
    let mut r = ctx.work_rng.derive(buf);
    archetype.demand_drift() * r.lognormal(0.0, archetype.demand_noise_sigma())
}

fn member_work(job: &Job, d: &Deployment, comp: ComponentId, noise: f64) -> Cycles {
    let annotated = d.graph.component(comp).demand_cycles(job.input).get() as f64;
    Cycles::new((annotated * noise).round() as u64)
}
