//! Transfer timing: congestion- and outage-aware uploads, inter-component
//! flows, result returns, and faulty-transfer injection.
//!
//! All durations draw from the sequential `net_rng` stream; the draw
//! order below is part of the reproducibility contract.

use std::fmt::Write as _;

use ntc_faults::FaultPlan;
use ntc_partition::Side;
use ntc_simcore::event::Simulator;
use ntc_simcore::units::{SimDuration, SimTime};
use ntc_taskgraph::ComponentId;

use super::admission::{self, Verdict, NO_SITE};
use super::{accounting, Ev, RunCtx, RunState};
use crate::site::{ExecutionSite, SiteRegistry, SiteToken};

/// The site whose network paths carry this batch's offloaded traffic: the
/// last *remote* site at or before the batch's chain position. After a
/// last-resort degrade to device, in-flight remote outputs still route
/// over the site they were produced on.
fn offload_site<'s>(
    sites: &'s SiteRegistry,
    chain: &[SiteToken],
    pos: usize,
) -> &'s dyn ExecutionSite {
    chain[..=pos]
        .iter()
        .rev()
        .map(|&tok| sites.site(tok))
        .find(|s| s.is_remote())
        .expect("site chains start at a remote site")
}

/// Scales a transfer duration by the fault plan's drop penalty for the
/// key written by `key` into `buf`. A fault-free plan leaves the duration
/// untouched without even materialising the key; when the key *is*
/// needed, it must stay byte-identical to the historical `format!`, since
/// the plan derives its answer by hashing it.
fn faulty_transfer(
    dur: SimDuration,
    faults: &FaultPlan,
    buf: &mut String,
    key: core::fmt::Arguments<'_>,
) -> SimDuration {
    if !faults.has_transfer_faults() {
        return dur;
    }
    buf.clear();
    buf.write_fmt(key).expect("string write");
    let penalty = faults.transfer_penalty(buf);
    if penalty > 1.0 {
        dur.mul_f64(penalty)
    } else {
        dur
    }
}

/// Releases a batch: consults the admission controller (which may defer
/// the release or shed the batch down its chain), then schedules every
/// entry component, timing the upload of offloaded entries over the
/// target site's UE path.
pub(crate) fn handle_dispatch(
    ctx: &RunCtx<'_>,
    sites: &SiteRegistry,
    st: &mut RunState<'_>,
    sim: &mut Simulator<Ev>,
    t: SimTime,
    bi: usize,
) {
    if st.health.admission() {
        match admission::admission_verdict(ctx, sites, st.health, st.states, t, bi) {
            Verdict::Admit => {}
            Verdict::Defer(at) => {
                st.states.deferrals[bi] += 1;
                st.acct.deferrals += 1;
                sim.schedule_at(at, Ev::Dispatch(bi)).expect("future");
                return;
            }
            Verdict::Shed(next) => {
                st.states.chain_pos[bi] = next;
                st.acct.sheds += 1;
            }
        }
    }
    let RunState { states, acct, net_rng, key_buf, .. } = st;
    let b = &ctx.batches[bi];
    let d = &ctx.deployments[b.di];
    // The upload targets the batch's *current* chain site: identical to
    // the primary unless admission control shed the batch above.
    let primary = offload_site(sites, &ctx.chains[b.di], states.chain_pos[bi]);
    for c in d.graph.entries() {
        let side = if ctx.local_override[bi] { Side::Device } else { d.plan.side(c) };
        let ready = match side {
            Side::Device => t,
            Side::Cloud => {
                // Each member uploads its own input, in parallel
                // across devices; the batch is ready when the
                // largest upload lands. Offline devices wait for
                // reconnection before transmitting.
                let online = ctx.env.connectivity.next_online(t);
                let path = primary.ue_path(ctx.env);
                let share = primary.wan_share(ctx.env, online);
                let dur = path.transfer_time_at_share(b.max_input, share, net_rng);
                let dur = faulty_transfer(dur, ctx.faults, key_buf, format_args!("up-{bi}-{c}"));
                for &ji in &b.members {
                    let jdur = path.transfer_time_at_share(ctx.jobs[ji].input, share, net_rng);
                    acct.device_energy += ctx.env.device.radio_energy(jdur);
                    acct.bytes_up += ctx.jobs[ji].input;
                }
                online + dur
            }
        };
        sim.schedule_at(ready, Ev::Exec(bi, c)).expect("ready >= now");
    }
}

/// Routes a finished component's outputs to its successors and, for exit
/// components, returns results to each member device.
pub(crate) fn handle_done(
    ctx: &RunCtx<'_>,
    sites: &SiteRegistry,
    st: &mut RunState<'_>,
    sim: &mut Simulator<Ev>,
    t: SimTime,
    bi: usize,
    comp: ComponentId,
) {
    let RunState { states, acct, net_rng, key_buf, health, .. } = st;
    // Release the bounded-queue slot this component's invocation held
    // (before the failed-batch early-out, so slots never leak).
    let cix = states.ix(bi, comp);
    if states.inflight_site[cix] != NO_SITE {
        health.site_mut(usize::from(states.inflight_site[cix])).leave();
        states.inflight_site[cix] = NO_SITE;
    }
    if states.failed[bi] {
        return;
    }
    let b = &ctx.batches[bi];
    let d = &ctx.deployments[b.di];
    let chain = &ctx.chains[b.di];
    let pos = states.chain_pos[bi];
    // What the component actually ran on (it may have fallen back
    // mid-graph), and where offloaded work now runs.
    let from_side = states.exec_side[states.ix(bi, comp)];
    let eff = offload_site(sites, chain, pos);
    let degraded = ctx.local_override[bi] || !sites.site(chain[pos]).is_remote();

    // Propagate data to successors.
    for f in d.graph.flows_from(comp) {
        let (to, payload) = (f.to, &f.payload);
        let to_side = if degraded { Side::Device } else { d.plan.side(to) };
        let dur = match (from_side, to_side) {
            (Side::Device, Side::Device) => SimDuration::ZERO,
            (Side::Cloud, Side::Cloud) => {
                // One merged transfer inside the backend.
                let bytes = payload.eval_bytes(b.sum_input);
                eff.internal_path(ctx.env).transfer_time(bytes, net_rng)
            }
            _ => {
                // Boundary crossing: per-member payloads move in
                // parallel over each member's own radio link,
                // waiting out any outage first.
                let online = ctx.env.connectivity.next_online(t);
                let path = eff.ue_path(ctx.env);
                let share = eff.wan_share(ctx.env, online);
                let dur =
                    path.transfer_time_at_share(payload.eval_bytes(b.max_input), share, net_rng);
                let dur = faulty_transfer(
                    dur,
                    ctx.faults,
                    key_buf,
                    format_args!("flow-{bi}-{comp}-{to}"),
                );
                for &ji in &b.members {
                    let bytes = payload.eval_bytes(ctx.jobs[ji].input);
                    let jdur = path.transfer_time_at_share(bytes, share, net_rng);
                    acct.device_energy += ctx.env.device.radio_energy(jdur);
                    match to_side {
                        Side::Cloud => acct.bytes_up += bytes,
                        Side::Device => acct.bytes_down += bytes,
                    }
                }
                online.saturating_duration_since(t) + dur
            }
        };
        let arrival = t + dur;
        let ti = states.ix(bi, to);
        states.ready_at[ti] = states.ready_at[ti].max(arrival);
        states.remaining_preds[ti] -= 1;
        if states.remaining_preds[ti] == 0 {
            let ready = states.ready_at[ti].max(t);
            sim.schedule_at(ready, Ev::Exec(bi, to)).expect("future");
        }
    }

    // Exit component: return results to each member device.
    if d.graph.successors(comp).next().is_none() {
        let finish = match from_side {
            Side::Device => t,
            Side::Cloud => {
                let online = ctx.env.connectivity.next_online(t);
                let path = eff.ue_path(ctx.env);
                let share = eff.wan_share(ctx.env, online);
                let dur = path.transfer_time_at_share(ctx.env.result_return, share, net_rng);
                let dur =
                    faulty_transfer(dur, ctx.faults, key_buf, format_args!("ret-{bi}-{comp}"));
                acct.device_energy += ctx.env.device.radio_energy(dur) * (b.members.len() as u64);
                acct.bytes_down += ctx.env.result_return * b.members.len() as u64;
                online + dur
            }
        };
        accounting::record_exit(ctx, states, acct, bi, finish);
    }
}
