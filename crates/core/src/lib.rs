//! # ntc-core
//!
//! The `ntc-offload` framework: a faithful, laptop-scale reproduction of
//! *Computational Offloading for Non-Time-Critical Applications*
//! (Richard Patsch, ICDCS 2022). The thesis: for delay-tolerant
//! workloads, offload to cloud serverless platforms instead of edge
//! infrastructure — determine demands (C1), allocate serverless resources
//! (C2), partition the code (C3), deploy through the ordinary CI/CD
//! pipeline (C4), and exploit deadline slack (C5).
//!
//! * [`device`] — the user equipment model.
//! * [`environment`] — device + networks + cloud + edge + pricing.
//! * [`policy`] — [`OffloadPolicy`]: local-only / edge-all / cloud-all /
//!   the full NTC framework with ablation switches.
//! * [`mod@deploy`] — policy → [`deploy::Deployment`] (profile, partition,
//!   allocate, batching plan).
//! * [`site`] — the [`ExecutionSite`] trait and registry: cloud, edge and
//!   device as uniform plug-in backends with per-site paths, outages,
//!   costs and capabilities.
//! * [`engine`] — the discrete-event execution [`Engine`] replaying job
//!   streams over all registered sites, with deterministic fault
//!   injection, retry backoff and site-chain fallback (see
//!   [`ntc_faults`]).
//! * [`runner`] — parallel, deterministic replications.
//! * [`report`] — per-job and aggregate results.
//!
//! # Examples
//!
//! ```
//! use ntc_core::{Engine, Environment, OffloadPolicy};
//! use ntc_simcore::units::SimDuration;
//! use ntc_workloads::{Archetype, StreamSpec};
//!
//! let engine = Engine::new(Environment::metro_reference(), 1);
//! let specs = [StreamSpec::poisson(Archetype::ReportRendering, 0.005)];
//! let horizon = SimDuration::from_hours(2);
//!
//! let local = engine.run(&OffloadPolicy::LocalOnly, &specs, horizon);
//! let ntc = engine.run(&OffloadPolicy::ntc(), &specs, horizon);
//! // Offloading relieves the device battery…
//! assert!(ntc.device_energy < local.device_energy);
//! // …without missing the (generous) deadlines.
//! assert_eq!(ntc.deadline_misses(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deploy;
pub mod device;
pub mod engine;
pub mod environment;
pub mod policy;
pub mod report;
pub mod runner;
pub mod site;

pub use deploy::{deploy, Deployment};
pub use device::DeviceModel;
pub use engine::{Engine, JobRetention, RunScratch};
pub use environment::Environment;
pub use ntc_faults::{FailureCause, FaultConfig, HealthConfig, RetryBudget, RetryPolicy};
pub use policy::{Backend, NtcConfig, OffloadPolicy};
pub use report::{
    ArchetypeAggregate, ArchetypeBreakdown, CauseCount, JobResult, LatencyDigest, OverloadStats,
    RunAggregates, RunResult,
};
pub use runner::{
    across, default_threads, run_replications, run_sweep, run_sweep_with, MetricSummary,
};
pub use site::{
    CloudSite, DeviceSite, EdgeSite, ExecutionSite, InvokeRequest, Invoked, SiteId, SiteOutcome,
    SiteRegistry, SiteRole, SiteToken,
};
