//! The end-to-end execution engine: replays a job stream over the
//! registered execution sites under a chosen policy, producing a
//! [`RunResult`].
//!
//! The engine is a single discrete-event loop. Because events are
//! processed in global time order, the sequential backend simulators
//! (which require non-decreasing submission times) compose correctly with
//! arbitrarily interleaved jobs. The loop itself is backend-agnostic:
//! every execution decision goes through the
//! [`ExecutionSite`](crate::site::ExecutionSite) trait, and each
//! deployment carries a site-preference chain (e.g. edge → cloud →
//! device) that recovery walks on unrecoverable failures.
//!
//! The loop's concerns live in focused submodules:
//!
//! * [`admission`](self) — job coalescing into batches, latest-safe
//!   dispatch, the pre-dispatch local override;
//! * `transfer` — congestion- and outage-aware transfer timing plus
//!   faulty-transfer injection;
//! * `execute` — provisioning and per-site invocation via the trait;
//! * `recovery` — retry backoff and fallback down the site chain;
//! * `accounting` — energy, cost and report assembly.
//!
//! # Batch coalescing
//!
//! Jobs of the same application released at the same batching-window
//! boundary are *coalesced*: their device-side components still run on
//! each user's own device (in parallel), but each offloaded component
//! executes **once** for the whole batch, on the concatenated input. This
//! is the economic heart of the non-time-critical argument: the linear
//! demand model `fixed + per_byte × input` means the fixed part (model
//! loading, template compilation, runtime warm-up) and the per-request
//! fee are paid once per batch instead of once per job.

mod accounting;
mod admission;
mod execute;
mod recovery;
#[cfg(test)]
mod tests;
mod transfer;

use std::collections::HashMap;

use ntc_faults::{FaultPlan, RetryPolicy};
use ntc_simcore::event::Simulator;
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{SimDuration, SimTime};
use ntc_taskgraph::ComponentId;
use ntc_workloads::{generate_jobs, Job, StreamSpec};

use crate::deploy::{deploy, Deployment};
use crate::environment::Environment;
use crate::policy::OffloadPolicy;
use crate::report::RunResult;
use crate::site::{SiteId, SiteRegistry};

use accounting::Accounting;
use admission::{Batch, BatchState};

/// Events of the execution loop.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// A batch is released to execution.
    Dispatch(usize),
    /// A component becomes ready to execute (all inputs arrived).
    Exec(usize, ComponentId),
    /// A component finished executing.
    Done(usize, ComponentId),
    /// A keep-warm ping for an offloaded function.
    Ping(usize, ComponentId, SimDuration),
}

/// Everything the event handlers read but never mutate.
pub(crate) struct RunCtx<'a> {
    env: &'a Environment,
    deployments: &'a [Deployment],
    /// Per-deployment site-preference chain (primary first).
    chains: &'a [Vec<SiteId>],
    jobs: &'a [Job],
    batches: &'a [Batch],
    dispatched_at: &'a [SimTime],
    local_override: &'a [bool],
    faults: &'a FaultPlan,
    retry: &'a RetryPolicy,
    retry_rng: &'a RngStream,
    work_rng: &'a RngStream,
    horizon_end: SimTime,
}

/// The mutable run state the event handlers thread through the loop.
pub(crate) struct RunState {
    states: Vec<BatchState>,
    acct: Accounting,
    /// Sequential transfer-noise stream: draw order is part of the
    /// reproducibility contract, so handlers must keep the historical
    /// call sequence.
    net_rng: RngStream,
}

/// The simulation engine: one environment, reusable across policies.
///
/// # Examples
///
/// ```
/// use ntc_core::{Engine, Environment, OffloadPolicy};
/// use ntc_simcore::units::SimDuration;
/// use ntc_workloads::{Archetype, StreamSpec};
///
/// let engine = Engine::new(Environment::metro_reference(), 42);
/// let specs = [StreamSpec::poisson(Archetype::PhotoPipeline, 0.01)];
/// let result = engine.run(
///     &OffloadPolicy::ntc(),
///     &specs,
///     SimDuration::from_hours(1),
/// );
/// assert!(result.miss_rate() <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    env: Environment,
    seed: u64,
}

impl Engine {
    /// Creates an engine over `env` with a master seed.
    pub fn new(env: Environment, seed: u64) -> Self {
        Engine { env, seed }
    }

    /// The environment this engine simulates.
    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Runs `policy` over the job stream defined by `specs` for
    /// `horizon`, letting in-flight jobs drain afterwards.
    pub fn run(
        &self,
        policy: &OffloadPolicy,
        specs: &[StreamSpec],
        horizon: SimDuration,
    ) -> RunResult {
        let rng = RngStream::root(self.seed).derive("engine");
        let jobs = generate_jobs(specs, horizon, &rng.derive("jobs"));

        // --- Faults and recovery. All fault/retry draws live in their own
        // derived streams, so a fault-free configuration replays the exact
        // event sequence of an engine without fault modelling. ---
        let faults = FaultPlan::new(self.env.faults.clone(), rng.derive("faults"));
        let retry_rng = rng.derive("retry");
        let retry = policy.retry_policy();

        // --- Deployments, one per archetype present in the stream. ---
        let mut deployments: Vec<Deployment> = Vec::new();
        let mut deployment_of: HashMap<ntc_workloads::Archetype, usize> = HashMap::new();
        for spec in specs {
            if deployment_of.contains_key(&spec.archetype) {
                continue;
            }
            let slack = spec.archetype.typical_slack().mul_f64(spec.slack_factor);
            let d =
                deploy(policy, spec.archetype, &self.env, spec.arrivals.mean_rate(), slack, &rng);
            deployment_of.insert(spec.archetype, deployments.len());
            deployments.push(d);
        }

        // --- Sites: provision every deployment along its chain. ---
        let mut sites = SiteRegistry::standard(&self.env, &rng);
        let chains: Vec<Vec<SiteId>> = deployments.iter().map(|d| d.resolved_chain()).collect();
        let mut sim: Simulator<Ev> = Simulator::new();
        execute::provision_deployments(&deployments, &chains, &mut sites, &mut sim);

        // --- Admission: coalesce jobs into batches and schedule them. ---
        let (batches, dispatched_at) =
            admission::coalesce(&self.env, &deployments, &deployment_of, &jobs);
        let local_override = admission::local_overrides(&self.env, &deployments, &jobs, &batches);
        for (bi, b) in batches.iter().enumerate() {
            sim.schedule_at(b.dispatch_at, Ev::Dispatch(bi)).expect("dispatch scheduled from t=0");
        }
        let states = admission::init_states(&deployments, &batches);

        // --- The loop. ---
        let work_rng = rng.derive("work");
        let horizon_end = SimTime::ZERO + horizon;
        let ctx = RunCtx {
            env: &self.env,
            deployments: &deployments,
            chains: &chains,
            jobs: &jobs,
            batches: &batches,
            dispatched_at: &dispatched_at,
            local_override: &local_override,
            faults: &faults,
            retry: &retry,
            retry_rng: &retry_rng,
            work_rng: &work_rng,
            horizon_end,
        };
        let mut st =
            RunState { states, acct: Accounting::new(jobs.len()), net_rng: rng.derive("net") };
        while let Some((t, ev)) = sim.step() {
            match ev {
                Ev::Ping(di, comp, period) => {
                    execute::handle_ping(&ctx, &mut sites, &mut sim, t, di, comp, period);
                }
                Ev::Dispatch(bi) => {
                    transfer::handle_dispatch(&ctx, &sites, &mut st, &mut sim, t, bi)
                }
                Ev::Exec(bi, comp) => {
                    execute::handle_exec(&ctx, &mut sites, &mut st, &mut sim, t, bi, comp);
                }
                Ev::Done(bi, comp) => {
                    transfer::handle_done(&ctx, &sites, &mut st, &mut sim, t, bi, comp);
                }
            }
        }

        st.acct.assemble(policy, &self.env, horizon, horizon_end, sim.now(), &mut sites)
    }
}
