//! The end-to-end execution engine: replays a job stream over the device,
//! edge fleet and serverless platform under a chosen policy, producing a
//! [`RunResult`].
//!
//! The engine is a single discrete-event loop. Because events are
//! processed in global time order, the sequential platform simulators
//! (which require non-decreasing submission times) compose correctly with
//! arbitrarily interleaved jobs.
//!
//! # Batch coalescing
//!
//! Jobs of the same application released at the same batching-window
//! boundary are *coalesced*: their device-side components still run on
//! each user's own device (in parallel), but each offloaded component
//! executes **once** for the whole batch, on the concatenated input. This
//! is the economic heart of the non-time-critical argument: the linear
//! demand model `fixed + per_byte × input` means the fixed part (model
//! loading, template compilation, runtime warm-up) and the per-request
//! fee are paid once per batch instead of once per job.

use std::collections::HashMap;

use ntc_alloc::{dispatch_time, WarmStrategy};
use ntc_edge::{EdgeFleet, ServiceId};
use ntc_faults::{
    classify_edge, classify_injected, classify_invoke, classify_timeout, ErrorClass, FailureCause,
    FaultPlan, RetryPolicy, SiteOutage,
};
use ntc_net::PathModel;
use ntc_partition::Side;
use ntc_serverless::{FunctionConfig, FunctionId, ServerlessPlatform};
use ntc_simcore::event::Simulator;
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{Cycles, DataSize, Energy, SimDuration, SimTime};
use ntc_taskgraph::ComponentId;
use ntc_workloads::{generate_jobs, Job, StreamSpec};

use crate::deploy::{deploy, Deployment};
use crate::environment::Environment;
use crate::policy::{Backend, OffloadPolicy};
use crate::report::{JobResult, RunResult};

/// Outcome of one offloaded execution attempt: the completion instant, or
/// a classified failure to recover from.
type AttemptOutcome = Result<SimTime, (ErrorClass, FailureCause)>;

/// Events of the execution loop.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A batch is released to execution.
    Dispatch(usize),
    /// A component becomes ready to execute (all inputs arrived).
    Exec(usize, ComponentId),
    /// A component finished executing.
    Done(usize, ComponentId),
    /// A keep-warm ping for an offloaded function.
    Ping(usize, ComponentId, SimDuration),
}

/// One execution unit: one or more coalesced jobs of the same deployment
/// released together.
#[derive(Debug)]
struct Batch {
    di: usize,
    members: Vec<usize>,
    dispatch_at: SimTime,
    sum_input: DataSize,
    max_input: DataSize,
}

#[derive(Debug)]
struct BatchState {
    remaining_preds: Vec<usize>,
    ready_at: Vec<SimTime>,
    outstanding_exits: usize,
    finish: SimTime,
    failed: bool,
    finished: bool,
    /// Execution attempts per component (0 = never attempted).
    attempts: Vec<u32>,
    /// Cumulative retry backoff per component.
    backoff: Vec<SimDuration>,
    /// The side each component actually last executed on (for routing its
    /// outputs after a mid-graph fallback).
    exec_side: Vec<Side>,
    /// Failure-driven backend override: set when the batch fell back from
    /// its deployment backend (edge → cloud).
    site: Option<Backend>,
    /// Last-resort fallback: the batch degraded to its members' devices.
    forced_local: bool,
    /// Backend fallback switches performed.
    fallbacks: u32,
}

/// The simulation engine: one environment, reusable across policies.
///
/// # Examples
///
/// ```
/// use ntc_core::{Engine, Environment, OffloadPolicy};
/// use ntc_simcore::units::SimDuration;
/// use ntc_workloads::{Archetype, StreamSpec};
///
/// let engine = Engine::new(Environment::metro_reference(), 42);
/// let specs = [StreamSpec::poisson(Archetype::PhotoPipeline, 0.01)];
/// let result = engine.run(
///     &OffloadPolicy::ntc(),
///     &specs,
///     SimDuration::from_hours(1),
/// );
/// assert!(result.miss_rate() <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    env: Environment,
    seed: u64,
}

impl Engine {
    /// Creates an engine over `env` with a master seed.
    pub fn new(env: Environment, seed: u64) -> Self {
        Engine { env, seed }
    }

    /// The environment this engine simulates.
    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Runs `policy` over the job stream defined by `specs` for
    /// `horizon`, letting in-flight jobs drain afterwards.
    pub fn run(
        &self,
        policy: &OffloadPolicy,
        specs: &[StreamSpec],
        horizon: SimDuration,
    ) -> RunResult {
        let rng = RngStream::root(self.seed).derive("engine");
        let jobs = generate_jobs(specs, horizon, &rng.derive("jobs"));

        // --- Faults and recovery. All fault/retry draws live in their own
        // derived streams, so a fault-free configuration replays the exact
        // event sequence of an engine without fault modelling. ---
        let faults = FaultPlan::new(self.env.faults.clone(), rng.derive("faults"));
        let retry_rng = rng.derive("retry");
        let retry = policy.retry_policy();
        let fallback_enabled = policy.fallback_enabled();

        // --- Deployments, one per archetype present in the stream. ---
        let mut deployments: Vec<Deployment> = Vec::new();
        let mut deployment_of: HashMap<ntc_workloads::Archetype, usize> = HashMap::new();
        for spec in specs {
            if deployment_of.contains_key(&spec.archetype) {
                continue;
            }
            let slack = spec.archetype.typical_slack().mul_f64(spec.slack_factor);
            let d =
                deploy(policy, spec.archetype, &self.env, spec.arrivals.mean_rate(), slack, &rng);
            deployment_of.insert(spec.archetype, deployments.len());
            deployments.push(d);
        }

        // --- Backends. ---
        let mut platform =
            ServerlessPlatform::new(self.env.platform.clone(), rng.derive("platform"));
        let mut fleet = EdgeFleet::new(self.env.edge);
        let mut fn_ids: Vec<HashMap<ComponentId, FunctionId>> = Vec::new();
        let mut svc_ids: Vec<HashMap<ComponentId, ServiceId>> = Vec::new();
        let mut sim: Simulator<Ev> = Simulator::new();

        for (di, d) in deployments.iter().enumerate() {
            let mut fns = HashMap::new();
            let mut svcs = HashMap::new();
            for id in d.plan.offloaded() {
                let c = d.graph.component(id);
                match d.backend {
                    Backend::Cloud => {
                        let f = platform.register(
                            FunctionConfig::new(
                                format!("{}/{}", d.archetype.name(), c.name()),
                                d.memory[id.index()],
                            )
                            .with_artifact_size(c.artifact_size()),
                        );
                        match d.warm {
                            WarmStrategy::Provisioned { count } => {
                                platform.set_provisioned(SimTime::ZERO, f, count);
                            }
                            WarmStrategy::Warmer { period } if !period.is_zero() => {
                                sim.schedule_after(period, Ev::Ping(di, id, period));
                            }
                            _ => {}
                        }
                        fns.insert(id, f);
                    }
                    Backend::Edge => {
                        let s = fleet.register(format!("{}/{}", d.archetype.name(), c.name()));
                        fleet.install(SimTime::ZERO, s, c.artifact_size());
                        svcs.insert(id, s);
                        // With failure-driven fallback, mirror the service
                        // as a cloud function so an edge outage can
                        // re-route mid-run. Registration alone accrues no
                        // cost: nothing is billed unless it is invoked.
                        if fallback_enabled {
                            let f = platform.register(
                                FunctionConfig::new(
                                    format!("{}/{}@fallback", d.archetype.name(), c.name()),
                                    d.memory[id.index()],
                                )
                                .with_artifact_size(c.artifact_size()),
                            );
                            fns.insert(id, f);
                        }
                    }
                }
            }
            fn_ids.push(fns);
            svc_ids.push(svcs);
        }

        // --- Coalesce jobs into batches by (deployment, dispatch instant). ---
        let mut dispatched_at: Vec<SimTime> = Vec::with_capacity(jobs.len());
        let mut batch_key: HashMap<(usize, SimTime), usize> = HashMap::new();
        let mut batches: Vec<Batch> = Vec::new();
        for (ji, job) in jobs.iter().enumerate() {
            let di = deployment_of[&job.archetype];
            let d = &deployments[di];
            let at = dispatch_time(
                d.dispatch,
                job.arrival,
                job.slack,
                d.est_completion,
                self.env.completion_margin,
            );
            dispatched_at.push(at);
            let cap = deployments[di].max_batch_members as usize;
            let byte_cap = deployments[di].max_batch_bytes;
            let fits = |b: &Batch| {
                b.members.len() < cap
                    && b.sum_input.as_bytes().saturating_add(job.input.as_bytes())
                        <= byte_cap.as_bytes()
            };
            let bi = match batch_key.get(&(di, at)) {
                Some(&bi) if fits(&batches[bi]) => bi,
                _ => {
                    batches.push(Batch {
                        di,
                        members: Vec::new(),
                        dispatch_at: at,
                        sum_input: DataSize::ZERO,
                        max_input: DataSize::ZERO,
                    });
                    let bi = batches.len() - 1;
                    batch_key.insert((di, at), bi);
                    bi
                }
            };
            let b = &mut batches[bi];
            b.members.push(ji);
            b.sum_input += job.input;
            b.max_input = b.max_input.max(job.input);
        }
        // Local fallback: a batch whose offloaded completion estimate
        // (which reserves for outages, chunking and noise) cannot meet its
        // tightest member deadline — but whose device execution can —
        // runs entirely on the members' own devices.
        let local_override: Vec<bool> = batches
            .iter()
            .map(|b| {
                let d = &deployments[b.di];
                if !d.fallback_local || d.plan.offloaded().count() == 0 {
                    return false;
                }
                let min_deadline = b
                    .members
                    .iter()
                    .map(|&ji| jobs[ji].deadline())
                    .min()
                    .expect("batch is non-empty");
                // Only outages that can actually intersect this batch's
                // execution window count against offloading.
                let outage = self.env.connectivity.worst_wait_within(b.dispatch_at, min_deadline);
                let reserve = d.est_completion + outage + self.env.completion_margin;
                let local_reserve = d.est_local + self.env.completion_margin;
                b.dispatch_at + reserve > min_deadline
                    && b.dispatch_at + local_reserve <= min_deadline
            })
            .collect();
        for (bi, b) in batches.iter().enumerate() {
            sim.schedule_at(b.dispatch_at, Ev::Dispatch(bi)).expect("dispatch scheduled from t=0");
        }

        // --- Per-batch state. ---
        let mut states: Vec<BatchState> = batches
            .iter()
            .map(|b| {
                let d = &deployments[b.di];
                BatchState {
                    remaining_preds: d
                        .graph
                        .ids()
                        .map(|c| d.graph.predecessors(c).count())
                        .collect(),
                    ready_at: vec![SimTime::ZERO; d.graph.len()],
                    outstanding_exits: d.graph.exits().len(),
                    finish: SimTime::ZERO,
                    failed: false,
                    finished: false,
                    attempts: vec![0; d.graph.len()],
                    backoff: vec![SimDuration::ZERO; d.graph.len()],
                    exec_side: vec![Side::Device; d.graph.len()],
                    site: None,
                    forced_local: false,
                    fallbacks: 0,
                }
            })
            .collect();

        // --- The loop. ---
        let mut results: Vec<Option<JobResult>> = vec![None; jobs.len()];
        let mut device_energy = Energy::ZERO;
        let mut bytes_up = DataSize::ZERO;
        let mut bytes_down = DataSize::ZERO;
        let work_rng = rng.derive("work");
        let mut net_rng = rng.derive("net");
        let horizon_end = SimTime::ZERO + horizon;

        while let Some((t, ev)) = sim.step() {
            match ev {
                Ev::Ping(di, comp, period) => {
                    if t <= horizon_end {
                        if let Some(&f) = fn_ids[di].get(&comp) {
                            let _ = platform.invoke(t, f, Cycles::new(1_000));
                        }
                        sim.schedule_after(period, Ev::Ping(di, comp, period));
                    }
                }
                Ev::Dispatch(bi) => {
                    let b = &batches[bi];
                    let d = &deployments[b.di];
                    for c in d.graph.entries() {
                        let side = if local_override[bi] { Side::Device } else { d.plan.side(c) };
                        let ready = match side {
                            Side::Device => t,
                            Side::Cloud => {
                                // Each member uploads its own input, in parallel
                                // across devices; the batch is ready when the
                                // largest upload lands. Offline devices wait for
                                // reconnection before transmitting.
                                let online = self.env.connectivity.next_online(t);
                                let path = self.ue_path(d.backend);
                                let share = self.wan_share(d.backend, online);
                                let dur =
                                    path.transfer_time_at_share(b.max_input, share, &mut net_rng);
                                let dur =
                                    self.faulty_transfer(dur, &faults, &format!("up-{bi}-{c}"));
                                for &ji in &b.members {
                                    let jdur = path.transfer_time_at_share(
                                        jobs[ji].input,
                                        share,
                                        &mut net_rng,
                                    );
                                    device_energy += self.env.device.radio_energy(jdur);
                                    bytes_up += jobs[ji].input;
                                }
                                online + dur
                            }
                        };
                        sim.schedule_at(ready, Ev::Exec(bi, c)).expect("ready >= now");
                    }
                }
                Ev::Exec(bi, comp) => {
                    if states[bi].failed {
                        continue;
                    }
                    let b = &batches[bi];
                    let d = &deployments[b.di];
                    let side = if local_override[bi] || states[bi].forced_local {
                        Side::Device
                    } else {
                        d.plan.side(comp)
                    };
                    states[bi].exec_side[comp.index()] = side;
                    match side {
                        Side::Device => {
                            // Per-member execution on each member's own device:
                            // wall-clock is the slowest member; energy is paid
                            // by every member.
                            let noise = self.noise_factor(&work_rng, bi, &batches, &jobs, comp);
                            let mut slowest = SimDuration::ZERO;
                            for &ji in &b.members {
                                let work = self.member_work(&jobs[ji], d, comp, noise);
                                slowest = slowest.max(self.env.device.execution_time(work));
                                device_energy += self.env.device.compute_energy(work);
                            }
                            sim.schedule_at(t + slowest, Ev::Done(bi, comp)).expect("future");
                        }
                        Side::Cloud => {
                            // One invocation for the whole batch, on the
                            // concatenated input: the fixed demand and the
                            // request fee amortise across members.
                            let noise = self.noise_factor(&work_rng, bi, &batches, &jobs, comp);
                            let annotated = d
                                .graph
                                .component(comp)
                                .batch_demand_cycles(b.members.len() as u64, b.sum_input);
                            let work = Cycles::new((annotated.get() as f64 * noise).round() as u64);
                            let site = states[bi].site.unwrap_or(d.backend);
                            states[bi].attempts[comp.index()] += 1;
                            let attempt = states[bi].attempts[comp.index()];
                            let first = jobs[b.members[0]].id;
                            let fault_key = format!("{first}-{comp}-{site}-a{attempt}");
                            let outcome: AttemptOutcome = if let Some(fault) =
                                faults.invocation_fault(&fault_key)
                            {
                                Err(classify_injected(fault))
                            } else {
                                match site {
                                    Backend::Cloud => {
                                        let f = fn_ids[b.di][&comp];
                                        match platform.invoke(t, f, work) {
                                            Ok(out) if !out.timed_out => Ok(out.finish),
                                            Ok(_) => Err(classify_timeout()),
                                            Err(e) => Err(classify_invoke(&e)),
                                        }
                                    }
                                    Backend::Edge => match faults.edge_outage(t) {
                                        SiteOutage::Online => {
                                            let s = svc_ids[b.di][&comp];
                                            match fleet.invoke(t, s, work) {
                                                Ok(out) => Ok(out.finish),
                                                Err(e) => Err(classify_edge(&e, t)),
                                            }
                                        }
                                        SiteOutage::Until(r) => Err((
                                            ErrorClass::WaitUntil(r),
                                            FailureCause::EdgeOutage,
                                        )),
                                        SiteOutage::Forever => {
                                            Err((ErrorClass::Fallback, FailureCause::EdgeOutage))
                                        }
                                    },
                                }
                            };
                            match outcome {
                                Ok(finish) => {
                                    sim.schedule_at(finish, Ev::Done(bi, comp)).expect("future");
                                }
                                Err((class, cause)) => {
                                    let can_cloud = fn_ids[b.di].contains_key(&comp);
                                    self.recover(
                                        bi,
                                        comp,
                                        t,
                                        site,
                                        class,
                                        cause,
                                        &retry,
                                        fallback_enabled,
                                        can_cloud,
                                        &retry_rng,
                                        &batches,
                                        &jobs,
                                        &dispatched_at,
                                        &mut states,
                                        &mut results,
                                        &mut sim,
                                    );
                                }
                            }
                        }
                    }
                }
                Ev::Done(bi, comp) => {
                    if states[bi].failed {
                        continue;
                    }
                    let b = &batches[bi];
                    let d = &deployments[b.di];
                    // What the component actually ran on (it may have fallen
                    // back mid-graph), and where offloaded work now runs.
                    let from_side = states[bi].exec_side[comp.index()];
                    let eff = states[bi].site.unwrap_or(d.backend);

                    // Propagate data to successors.
                    let flows: Vec<(ComponentId, &ntc_taskgraph::LinearModel)> =
                        d.graph.flows_from(comp).map(|f| (f.to, &f.payload)).collect();
                    for (to, payload) in flows {
                        let to_side = if local_override[bi] || states[bi].forced_local {
                            Side::Device
                        } else {
                            d.plan.side(to)
                        };
                        let dur = match (from_side, to_side) {
                            (Side::Device, Side::Device) => SimDuration::ZERO,
                            (Side::Cloud, Side::Cloud) => {
                                // One merged transfer inside the backend.
                                let bytes = payload.eval_bytes(b.sum_input);
                                self.remote_internal_path(eff).transfer_time(bytes, &mut net_rng)
                            }
                            _ => {
                                // Boundary crossing: per-member payloads move in
                                // parallel over each member's own radio link,
                                // waiting out any outage first.
                                let online = self.env.connectivity.next_online(t);
                                let path = self.ue_path(eff);
                                let share = self.wan_share(eff, online);
                                let dur = path.transfer_time_at_share(
                                    payload.eval_bytes(b.max_input),
                                    share,
                                    &mut net_rng,
                                );
                                let dur = self.faulty_transfer(
                                    dur,
                                    &faults,
                                    &format!("flow-{bi}-{comp}-{to}"),
                                );
                                for &ji in &b.members {
                                    let bytes = payload.eval_bytes(jobs[ji].input);
                                    let jdur =
                                        path.transfer_time_at_share(bytes, share, &mut net_rng);
                                    device_energy += self.env.device.radio_energy(jdur);
                                    match to_side {
                                        Side::Cloud => bytes_up += bytes,
                                        Side::Device => bytes_down += bytes,
                                    }
                                }
                                online.saturating_duration_since(t) + dur
                            }
                        };
                        let arrival = t + dur;
                        let st = &mut states[bi];
                        st.ready_at[to.index()] = st.ready_at[to.index()].max(arrival);
                        st.remaining_preds[to.index()] -= 1;
                        if st.remaining_preds[to.index()] == 0 {
                            let ready = st.ready_at[to.index()].max(t);
                            sim.schedule_at(ready, Ev::Exec(bi, to)).expect("future");
                        }
                    }

                    // Exit component: return results to each member device.
                    if d.graph.successors(comp).next().is_none() {
                        let finish = match from_side {
                            Side::Device => t,
                            Side::Cloud => {
                                let online = self.env.connectivity.next_online(t);
                                let path = self.ue_path(eff);
                                let share = self.wan_share(eff, online);
                                let dur = path.transfer_time_at_share(
                                    self.env.result_return,
                                    share,
                                    &mut net_rng,
                                );
                                let dur =
                                    self.faulty_transfer(dur, &faults, &format!("ret-{bi}-{comp}"));
                                device_energy +=
                                    self.env.device.radio_energy(dur) * (b.members.len() as u64);
                                bytes_down += self.env.result_return * b.members.len() as u64;
                                online + dur
                            }
                        };
                        let st = &mut states[bi];
                        st.finish = st.finish.max(finish);
                        st.outstanding_exits -= 1;
                        if st.outstanding_exits == 0 && !st.finished {
                            st.finished = true;
                            let attempts = st.attempts.iter().copied().max().unwrap_or(0).max(1);
                            let backoff =
                                st.backoff.iter().copied().max().unwrap_or(SimDuration::ZERO);
                            for &ji in &b.members {
                                results[ji] = Some(JobResult {
                                    id: jobs[ji].id,
                                    archetype: jobs[ji].archetype,
                                    arrival: jobs[ji].arrival,
                                    dispatched: dispatched_at[ji],
                                    finish: st.finish,
                                    deadline: jobs[ji].deadline(),
                                    failed: false,
                                    attempts,
                                    backoff,
                                    fallbacks: st.fallbacks,
                                    cause: None,
                                });
                            }
                        }
                    }
                }
            }
        }

        let mut completions_per_hour =
            ntc_simcore::timeseries::TimeSeries::new(SimDuration::from_hours(1));
        for r in results.iter().flatten() {
            completions_per_hour.mark(r.finish);
        }

        let end = sim.now().max(horizon_end);
        let cloud_cost = platform.total_cost(end);
        let edge_cost = if deployments.iter().any(|d| d.backend == Backend::Edge) {
            fleet.infrastructure_cost(horizon_end)
        } else {
            ntc_simcore::units::Money::ZERO
        };

        RunResult {
            policy: policy.name(),
            jobs: results.into_iter().flatten().collect(),
            cloud_cost,
            edge_cost,
            device_energy,
            device_energy_cost: self.env.energy_cost(device_energy),
            bytes_up,
            bytes_down,
            completions_per_hour,
            horizon,
        }
    }

    /// Congestion applies to the WAN (cloud) segment only; the edge LAN
    /// is assumed provisioned for local traffic.
    fn wan_share(&self, backend: Backend, at: SimTime) -> f64 {
        match backend {
            Backend::Cloud => self.env.wan_congestion.share_at(at).clamp(0.01, 1.0),
            Backend::Edge => 1.0,
        }
    }

    fn ue_path(&self, backend: Backend) -> &PathModel {
        match backend {
            Backend::Cloud => &self.env.topology.ue_cloud,
            Backend::Edge => &self.env.topology.ue_edge,
        }
    }

    fn remote_internal_path(&self, backend: Backend) -> &PathModel {
        match backend {
            Backend::Cloud => &self.env.intra_cloud,
            Backend::Edge => &self.env.intra_edge,
        }
    }

    /// Execution-to-execution noise, sampled once per (batch, component)
    /// so retries re-observe the same value.
    fn noise_factor(
        &self,
        work_rng: &RngStream,
        bi: usize,
        batches: &[Batch],
        jobs: &[Job],
        comp: ComponentId,
    ) -> f64 {
        let b = &batches[bi];
        let first = jobs[b.members[0]].id;
        let archetype = jobs[b.members[0]].archetype;
        let mut r = work_rng.derive(&format!("{first}-{comp}"));
        archetype.demand_drift() * r.lognormal(0.0, archetype.demand_noise_sigma())
    }

    fn member_work(&self, job: &Job, d: &Deployment, comp: ComponentId, noise: f64) -> Cycles {
        let annotated = d.graph.component(comp).demand_cycles(job.input).get() as f64;
        Cycles::new((annotated * noise).round() as u64)
    }

    /// Scales a transfer duration by the fault plan's drop penalty for
    /// `key`. A fault-free plan leaves the duration untouched.
    fn faulty_transfer(&self, dur: SimDuration, faults: &FaultPlan, key: &str) -> SimDuration {
        let penalty = faults.transfer_penalty(key);
        if penalty > 1.0 {
            dur.mul_f64(penalty)
        } else {
            dur
        }
    }

    /// Acts on a classified attempt failure: wait, retry with backoff,
    /// fall back down the backend chain, or fail the batch.
    #[allow(clippy::too_many_arguments)]
    fn recover(
        &self,
        bi: usize,
        comp: ComponentId,
        t: SimTime,
        site: Backend,
        class: ErrorClass,
        cause: FailureCause,
        retry: &RetryPolicy,
        fallback_enabled: bool,
        can_cloud: bool,
        retry_rng: &RngStream,
        batches: &[Batch],
        jobs: &[Job],
        dispatched_at: &[SimTime],
        states: &mut [BatchState],
        results: &mut [Option<JobResult>],
        sim: &mut Simulator<Ev>,
    ) {
        let detect = self.env.faults.error_detect_latency;
        match class {
            ErrorClass::WaitUntil(r) => {
                // A deterministic wait (service still installing, outage
                // with a known end): free, no retry budget consumed.
                sim.schedule_at(r.max(t), Ev::Exec(bi, comp)).expect("future");
            }
            ErrorClass::Retryable => {
                let attempt = states[bi].attempts[comp.index()];
                let first = jobs[batches[bi].members[0]].id;
                let backoff = retry.backoff(retry_rng, &format!("{first}-{comp}"), attempt);
                let resume = t + detect + backoff;
                let min_deadline = batches[bi]
                    .members
                    .iter()
                    .map(|&ji| jobs[ji].deadline())
                    .min()
                    .expect("batch is non-empty");
                if retry.allows(attempt, resume, min_deadline) {
                    states[bi].backoff[comp.index()] += backoff;
                    sim.schedule_at(resume, Ev::Exec(bi, comp)).expect("future");
                } else {
                    self.fall_back_or_fail(
                        bi,
                        comp,
                        t,
                        site,
                        cause,
                        fallback_enabled,
                        can_cloud,
                        batches,
                        jobs,
                        dispatched_at,
                        states,
                        results,
                        sim,
                    );
                }
            }
            ErrorClass::Fallback => {
                self.fall_back_or_fail(
                    bi,
                    comp,
                    t,
                    site,
                    cause,
                    fallback_enabled,
                    can_cloud,
                    batches,
                    jobs,
                    dispatched_at,
                    states,
                    results,
                    sim,
                );
            }
            ErrorClass::Terminal => {
                self.fail_batch(bi, t, cause, batches, jobs, dispatched_at, states, results);
            }
        }
    }

    /// Moves a batch down the fallback chain (edge → cloud → device) or
    /// fails it when the chain is exhausted or disabled.
    #[allow(clippy::too_many_arguments)]
    fn fall_back_or_fail(
        &self,
        bi: usize,
        comp: ComponentId,
        t: SimTime,
        site: Backend,
        cause: FailureCause,
        fallback_enabled: bool,
        can_cloud: bool,
        batches: &[Batch],
        jobs: &[Job],
        dispatched_at: &[SimTime],
        states: &mut [BatchState],
        results: &mut [Option<JobResult>],
        sim: &mut Simulator<Ev>,
    ) {
        let detect = self.env.faults.error_detect_latency;
        if fallback_enabled && site == Backend::Edge && can_cloud {
            // Edge → cloud: the mirrored function takes over the batch's
            // remaining offloaded components.
            states[bi].site = Some(Backend::Cloud);
            states[bi].fallbacks += 1;
            sim.schedule_at(t + detect, Ev::Exec(bi, comp)).expect("future");
        } else if fallback_enabled && !states[bi].forced_local {
            // Last resort: degrade the batch to its members' own devices.
            states[bi].forced_local = true;
            states[bi].fallbacks += 1;
            sim.schedule_at(t + detect, Ev::Exec(bi, comp)).expect("future");
        } else {
            self.fail_batch(bi, t, cause, batches, jobs, dispatched_at, states, results);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn fail_batch(
        &self,
        bi: usize,
        t: SimTime,
        cause: FailureCause,
        batches: &[Batch],
        jobs: &[Job],
        dispatched_at: &[SimTime],
        states: &mut [BatchState],
        results: &mut [Option<JobResult>],
    ) {
        let st = &mut states[bi];
        if st.finished {
            return;
        }
        st.failed = true;
        st.finished = true;
        let attempts = st.attempts.iter().copied().max().unwrap_or(0).max(1);
        let backoff = st.backoff.iter().copied().max().unwrap_or(SimDuration::ZERO);
        let fallbacks = st.fallbacks;
        for &ji in &batches[bi].members {
            results[ji] = Some(JobResult {
                id: jobs[ji].id,
                archetype: jobs[ji].archetype,
                arrival: jobs[ji].arrival,
                dispatched: dispatched_at[ji],
                finish: t,
                deadline: jobs[ji].deadline(),
                failed: true,
                attempts,
                backoff,
                fallbacks,
                cause: Some(cause),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_workloads::Archetype;

    fn engine() -> Engine {
        Engine::new(Environment::metro_reference(), 7)
    }

    fn photo_specs(rate: f64) -> [StreamSpec; 1] {
        [StreamSpec::poisson(Archetype::PhotoPipeline, rate)]
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        let e = engine();
        let horizon = SimDuration::from_hours(2);
        for policy in [
            OffloadPolicy::LocalOnly,
            OffloadPolicy::EdgeAll,
            OffloadPolicy::CloudAll,
            OffloadPolicy::ntc(),
        ] {
            let r = e.run(&policy, &photo_specs(0.02), horizon);
            assert!(!r.jobs.is_empty(), "{policy}: no jobs ran");
            assert_eq!(r.failures(), 0, "{policy}: unexpected failures");
            for j in &r.jobs {
                assert!(j.finish >= j.arrival, "{policy}: job finished before arriving");
            }
        }
    }

    #[test]
    fn every_job_gets_a_result() {
        let e = engine();
        for policy in [OffloadPolicy::CloudAll, OffloadPolicy::ntc()] {
            let r = e.run(&policy, &photo_specs(0.05), SimDuration::from_hours(2));
            let mut ids: Vec<u64> = r.jobs.iter().map(|j| j.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), r.jobs.len(), "{policy}: duplicate results");
        }
    }

    #[test]
    fn local_only_costs_no_money_but_burns_battery() {
        let e = engine();
        let r = e.run(&OffloadPolicy::LocalOnly, &photo_specs(0.02), SimDuration::from_hours(1));
        assert_eq!(r.cloud_cost, ntc_simcore::units::Money::ZERO);
        assert_eq!(r.edge_cost, ntc_simcore::units::Money::ZERO);
        assert!(r.device_energy > Energy::ZERO);
        assert_eq!(r.bytes_up, DataSize::ZERO);
    }

    #[test]
    fn cloud_all_moves_bytes_and_money() {
        let e = engine();
        let r = e.run(&OffloadPolicy::CloudAll, &photo_specs(0.02), SimDuration::from_hours(1));
        assert!(r.cloud_cost > ntc_simcore::units::Money::ZERO);
        assert!(r.bytes_up > DataSize::ZERO);
        assert!(r.bytes_down > DataSize::ZERO);
        assert_eq!(r.edge_cost, ntc_simcore::units::Money::ZERO);
    }

    #[test]
    fn edge_all_pays_infrastructure_even_when_idle() {
        let e = engine();
        let r = e.run(&OffloadPolicy::EdgeAll, &photo_specs(0.001), SimDuration::from_hours(1));
        assert!(r.edge_cost > ntc_simcore::units::Money::ZERO);
        assert_eq!(r.cloud_cost, ntc_simcore::units::Money::ZERO);
    }

    #[test]
    fn offloading_beats_local_latency_for_heavy_work() {
        let e = engine();
        let specs = [StreamSpec::poisson(Archetype::SciSweep, 0.002)];
        let horizon = SimDuration::from_hours(4);
        let local = e.run(&OffloadPolicy::LocalOnly, &specs, horizon);
        let cloud = e.run(&OffloadPolicy::CloudAll, &specs, horizon);
        let l50 = local.latency_summary().unwrap().p50;
        let c50 = cloud.latency_summary().unwrap().p50;
        // The default cloud function gets one 2.5 GHz vCPU vs the 1.5 GHz
        // UE core: ~1.7× faster even after paying the WAN transfers.
        assert!(c50 < l50 * 0.7, "cloud p50 {c50}s should beat local {l50}s");
    }

    #[test]
    fn ntc_is_cheaper_than_cloud_all() {
        let e = engine();
        let specs = [StreamSpec::poisson(Archetype::ReportRendering, 0.01)];
        let horizon = SimDuration::from_hours(6);
        let naive = e.run(&OffloadPolicy::CloudAll, &specs, horizon);
        let ntc = e.run(&OffloadPolicy::ntc(), &specs, horizon);
        assert!(
            ntc.total_cost() <= naive.total_cost(),
            "ntc {} should not out-cost cloud-all {}",
            ntc.total_cost(),
            naive.total_cost()
        );
        assert_eq!(ntc.miss_rate(), 0.0, "slack is huge; nothing should miss");
    }

    #[test]
    fn batching_coalesces_jobs_and_meets_deadlines() {
        let e = engine();
        let specs = [StreamSpec::poisson(Archetype::ReportRendering, 0.01)];
        let r = e.run(&OffloadPolicy::ntc(), &specs, SimDuration::from_hours(4));
        let held = r.jobs.iter().filter(|j| j.dispatched > j.arrival).count();
        assert!(held > 0, "batching should hold at least some jobs");
        assert_eq!(r.deadline_misses(), 0);
        // Coalescing: several jobs share a finish instant.
        let mut finishes: Vec<_> = r.jobs.iter().map(|j| j.finish).collect();
        finishes.sort_unstable();
        finishes.dedup();
        assert!(finishes.len() < r.jobs.len(), "some jobs should share a batch");
    }

    #[test]
    fn sparse_traffic_deployment_warms_and_stays_mostly_warm() {
        // 1 job / 25 min < the 10-min platform TTL: the deployment picks a
        // warmer, and the engine's periodic pings keep tails down.
        let e = engine();
        let specs = [StreamSpec::poisson(Archetype::MlInference, 1.0 / 1500.0)];
        let r = e.run(&OffloadPolicy::ntc(), &specs, SimDuration::from_hours(12));
        assert!(!r.jobs.is_empty());
        assert_eq!(r.failures(), 0);
        // With warming, p95 should sit close to p50 (no pervasive cold tail).
        let s = r.latency_summary().unwrap();
        assert!(s.p95 < s.p50 * 20.0, "p95 {} vs p50 {}", s.p95, s.p50);
        // And the run still costs money (pings and invocations are billed).
        assert!(r.cloud_cost > ntc_simcore::units::Money::ZERO);
    }

    #[test]
    fn bursty_stream_survives_end_to_end() {
        let e = engine();
        let specs = [StreamSpec::bursty(
            Archetype::LogAnalytics,
            0.005,
            1.0,
            SimDuration::from_mins(30),
            SimDuration::from_mins(2),
        )];
        for policy in [OffloadPolicy::CloudAll, OffloadPolicy::ntc()] {
            let r = e.run(&policy, &specs, SimDuration::from_hours(6));
            assert_eq!(r.failures(), 0, "{policy}");
            assert_eq!(r.deadline_misses(), 0, "{policy}");
        }
    }

    #[test]
    fn hourly_completions_sum_to_job_count() {
        let e = engine();
        let r = e.run(&OffloadPolicy::ntc(), &photo_specs(0.05), SimDuration::from_hours(3));
        let total: u64 =
            (0..r.completions_per_hour.len()).map(|i| r.completions_per_hour.count(i)).sum();
        assert_eq!(total, r.jobs.len() as u64);
    }

    #[test]
    fn runs_are_reproducible() {
        let e = engine();
        let a = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(1));
        let b = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(1));
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.cloud_cost, b.cloud_cost);
        assert_eq!(a.device_energy, b.device_energy);
    }

    #[test]
    fn empty_spec_list_yields_an_empty_result() {
        let e = engine();
        let r = e.run(&OffloadPolicy::ntc(), &[], SimDuration::from_hours(1));
        assert!(r.jobs.is_empty());
        assert_eq!(r.total_cost(), ntc_simcore::units::Money::ZERO);
        assert_eq!(r.device_energy, Energy::ZERO);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Engine::new(Environment::metro_reference(), 1).run(
            &OffloadPolicy::ntc(),
            &photo_specs(0.02),
            SimDuration::from_hours(1),
        );
        let b = Engine::new(Environment::metro_reference(), 2).run(
            &OffloadPolicy::ntc(),
            &photo_specs(0.02),
            SimDuration::from_hours(1),
        );
        assert_ne!(a.jobs, b.jobs);
    }

    // --- Fault injection and recovery. ---

    fn faulty_env(rate: f64) -> Environment {
        let mut env = Environment::metro_reference();
        env.faults = ntc_faults::FaultConfig::transient(rate);
        env
    }

    #[test]
    fn fault_free_runs_record_single_attempts() {
        let e = engine();
        let r = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(1));
        for j in &r.jobs {
            assert_eq!(j.attempts, 1);
            assert_eq!(j.backoff, SimDuration::ZERO);
            assert_eq!(j.fallbacks, 0);
            assert!(j.cause.is_none());
        }
        assert_eq!(r.total_retries(), 0);
    }

    #[test]
    fn ntc_retries_through_transient_faults() {
        let e = Engine::new(faulty_env(0.10), 7);
        let r = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(2));
        assert!(!r.jobs.is_empty());
        assert_eq!(r.failures(), 0, "NTC must ride out transient faults by retrying");
        assert!(r.total_retries() > 0, "a 10% fault rate must trigger retries");
        assert!(r.total_backoff() > SimDuration::ZERO);
    }

    #[test]
    fn zero_retry_baseline_loses_jobs_under_faults() {
        let e = Engine::new(faulty_env(0.10), 7);
        let r = e.run(&OffloadPolicy::CloudAll, &photo_specs(0.02), SimDuration::from_hours(2));
        assert!(r.failures() > 0, "a zero-retry baseline must lose jobs at 10% faults");
        assert_eq!(r.failure_causes().get("transient"), Some(&r.failures()));
    }

    #[test]
    fn faulty_runs_are_reproducible() {
        let e = Engine::new(faulty_env(0.2), 11);
        let a = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(1));
        let b = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(1));
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.cloud_cost, b.cloud_cost);
        assert_eq!(a.device_energy, b.device_energy);
    }

    #[test]
    fn backoff_never_exceeds_job_latency() {
        let e = Engine::new(faulty_env(0.3), 5);
        let r = e.run(&OffloadPolicy::ntc(), &photo_specs(0.02), SimDuration::from_hours(2));
        assert!(r.total_retries() > 0);
        for j in &r.jobs {
            assert!(
                j.backoff <= j.finish.saturating_duration_since(j.dispatched),
                "job {}: backoff {} vs latency {}",
                j.id,
                j.backoff,
                j.finish.saturating_duration_since(j.dispatched)
            );
        }
    }

    #[test]
    fn permanent_edge_outage_falls_back_to_cloud() {
        let mut env = Environment::metro_reference();
        env.faults.edge_availability = ntc_net::ConnectivityTrace::new(
            SimDuration::from_hours(1),
            vec![(SimDuration::ZERO, false)],
        );
        let e = Engine::new(env, 7);
        let policy = OffloadPolicy::Ntc(crate::NtcConfig {
            primary_backend: Backend::Edge,
            ..Default::default()
        });
        let r = e.run(&policy, &photo_specs(0.02), SimDuration::from_hours(2));
        assert!(!r.jobs.is_empty());
        assert_eq!(r.failures(), 0, "the cloud fallback must save every job");
        assert!(r.total_fallbacks() > 0, "every batch must have fallen back");
        assert!(
            r.cloud_cost > ntc_simcore::units::Money::ZERO,
            "fallback work is billed on the platform"
        );
    }

    #[test]
    fn edge_outage_without_fallback_fails_jobs() {
        let mut env = Environment::metro_reference();
        env.faults.edge_availability = ntc_net::ConnectivityTrace::new(
            SimDuration::from_hours(1),
            vec![(SimDuration::ZERO, false)],
        );
        let e = Engine::new(env, 7);
        let policy = OffloadPolicy::Ntc(crate::NtcConfig {
            primary_backend: Backend::Edge,
            fallback: false,
            ..Default::default()
        });
        let r = e.run(&policy, &photo_specs(0.02), SimDuration::from_hours(2));
        assert!(r.failures() > 0);
        assert!(r.failure_causes().contains_key("edge-outage"));
    }
}
