//! The end-to-end execution engine: replays a job stream over the
//! registered execution sites under a chosen policy, producing a
//! [`RunResult`].
//!
//! The engine is a single discrete-event loop. Because events are
//! processed in global time order, the sequential backend simulators
//! (which require non-decreasing submission times) compose correctly with
//! arbitrarily interleaved jobs. The loop itself is backend-agnostic:
//! every execution decision goes through the
//! [`ExecutionSite`](crate::site::ExecutionSite) trait, and each
//! deployment carries a site-preference chain (e.g. edge → cloud →
//! device) that recovery walks on unrecoverable failures.
//!
//! The loop's concerns live in focused submodules:
//!
//! * [`admission`](self) — job coalescing into batches, latest-safe
//!   dispatch, the pre-dispatch local override, and overload-aware
//!   admission control (defer delay-tolerant batches, shed
//!   tight-deadline ones down the chain);
//! * `transfer` — congestion- and outage-aware transfer timing plus
//!   faulty-transfer injection;
//! * `execute` — provisioning and per-site invocation via the trait,
//!   breaker-aware site selection, and deadline-budgeted hedged
//!   requests for stragglers;
//! * `recovery` — retry backoff and fallback down the site chain,
//!   skipping sites whose breaker is Open;
//! * `accounting` — energy, cost, per-site health ledgers and report
//!   assembly.
//!
//! The overload layer (see `DESIGN.md` §6) is entirely opt-in via
//! [`NtcConfig::health`](crate::policy::NtcConfig): with every mechanism
//! off the engine draws no extra randomness, schedules no extra events
//! and reproduces pre-layer runs bit for bit.
//!
//! # Batch coalescing
//!
//! Jobs of the same application released at the same batching-window
//! boundary are *coalesced*: their device-side components still run on
//! each user's own device (in parallel), but each offloaded component
//! executes **once** for the whole batch, on the concatenated input. This
//! is the economic heart of the non-time-critical argument: the linear
//! demand model `fixed + per_byte × input` means the fixed part (model
//! loading, template compilation, runtime warm-up) and the per-request
//! fee are paid once per batch instead of once per job.
//!
//! # Allocation discipline
//!
//! Every run-sized buffer — jobs, batches, per-batch state, result
//! slots, the event calendar — lives in a [`RunScratch`]. A fresh run
//! allocates them once; reusing the scratch across runs (as
//! [`run_seeded`](Engine::run_seeded) encourages and the sweep runner
//! does per worker thread) re-fills the same allocations, so steady-state
//! replication throughput is bounded by simulation work, not the
//! allocator.

mod accounting;
mod admission;
mod execute;
mod recovery;
#[cfg(test)]
mod tests;
mod transfer;

use std::collections::HashMap;
use std::sync::Arc;

use ntc_faults::{FaultConfig, FaultPlan, RetryPolicy};
use ntc_simcore::event::Simulator;
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{Cycles, SimDuration, SimTime};
use ntc_taskgraph::ComponentId;
use ntc_workloads::{generate_jobs_into, Archetype, Job, StreamSpec};

use crate::deploy::{deploy, Deployment};
use crate::environment::Environment;
use crate::policy::OffloadPolicy;
use crate::report::RunResult;
use crate::site::{SiteId, SiteRegistry, SiteToken};

use accounting::{Accounting, HealthMap};
use admission::{Batch, BatchStates};

/// What a run keeps per job.
///
/// `Full` retains one [`JobResult`](crate::report::JobResult) per job in
/// [`RunResult::jobs`] — the historical behaviour, and the default; every
/// report metric is exact and the run replays byte-identically to
/// pre-knob engines. `Aggregates` never materialises the per-job vector:
/// outcomes fold into streaming
/// [`RunAggregates`](crate::report::RunAggregates) (Welford moments plus
/// a log-bucketed latency histogram) at record time, so run memory is
/// O(1) in the job count — the mode the million-user scale experiment
/// (fig11) runs in. The simulation itself is identical either way:
/// retention touches no RNG stream and schedules no events, so counts,
/// rates and totals agree exactly between modes; only latency
/// percentiles carry the histogram's documented error bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum JobRetention {
    /// Keep every per-job outcome (exact metrics, O(jobs) memory).
    #[default]
    Full,
    /// Stream outcomes into constant-memory aggregates.
    Aggregates,
}

/// Events of the execution loop.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// A batch is released to execution.
    Dispatch(usize),
    /// A component becomes ready to execute (all inputs arrived).
    Exec(usize, ComponentId),
    /// A component finished executing.
    Done(usize, ComponentId),
    /// A keep-warm ping for an offloaded function.
    Ping(usize, ComponentId, SimDuration),
    /// A slow invocation's hedge delay elapsed: launch (or cancel) its
    /// speculative duplicate on the next healthy chain site.
    HedgeFire(usize, ComponentId),
}

/// A primary invocation whose completion is deferred pending a hedge
/// decision: when its [`Ev::HedgeFire`] fires, a duplicate may race it
/// and the earlier finisher wins.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HedgePending {
    /// When the primary invocation was submitted.
    pub start: SimTime,
    /// When the primary invocation will finish if it wins.
    pub primary_finish: SimTime,
    /// The chain position the primary ran at (the duplicate searches
    /// strictly past it).
    pub from_pos: usize,
}

/// Everything the event handlers read but never mutate.
pub(crate) struct RunCtx<'a> {
    env: &'a Environment,
    deployments: &'a [Deployment],
    /// Per-deployment site-preference chain (primary first), interned to
    /// registry tokens once at run start: every hot-path site access is
    /// an array index, with the string [`SiteId`]s re-materialised only
    /// for RNG key material and fault classification.
    chains: &'a [Vec<SiteToken>],
    /// The interned device site, for per-member device execution.
    device: SiteToken,
    jobs: &'a [Job],
    batches: &'a [Batch],
    dispatched_at: &'a [SimTime],
    local_override: &'a [bool],
    faults: &'a FaultPlan,
    retry: &'a RetryPolicy,
    retry_rng: &'a RngStream,
    work_rng: &'a RngStream,
    horizon_end: SimTime,
}

/// The mutable run state the event handlers thread through the loop;
/// borrows the scratch's buffers.
pub(crate) struct RunState<'s> {
    states: &'s mut BatchStates,
    acct: &'s mut Accounting,
    /// Sequential transfer-noise stream: draw order is part of the
    /// reproducibility contract, so handlers must keep the historical
    /// call sequence.
    net_rng: RngStream,
    /// Per-event device work-list, reused between events.
    member_works: &'s mut Vec<Cycles>,
    /// The per-site health ledger: breakers, latency EWMAs, bounded
    /// queues. Empty (and never consulted) when the policy's health
    /// layer is disabled.
    health: &'s mut HealthMap,
    /// Cooldown-jitter stream for breaker trips; every draw derives its
    /// own child keyed by site and open-count, so health randomness
    /// never perturbs any legacy stream.
    health_rng: RngStream,
    /// Invocations whose completion is deferred pending a hedge
    /// decision, keyed by `(batch, component)`.
    hedges: &'s mut HashMap<(usize, ComponentId), HedgePending>,
    /// Reused buffer for fault/backoff/noise derivation keys. The key
    /// *strings* are part of the reproducibility contract (they are
    /// hashed to derive RNG children), so writers must reproduce the
    /// historical `format!` output byte for byte.
    key_buf: &'s mut String,
}

/// Reusable run buffers: all the run-sized allocations `Engine::run`
/// needs — the event calendar, job/batch/state vectors, accounting slots
/// and string keys. Create once, pass to
/// [`run_seeded`](Engine::run_seeded) repeatedly; each run clears and
/// refills the buffers in place. A fresh scratch behaves identically to a
/// reused one — reuse changes performance, never results.
#[derive(Debug, Default)]
pub struct RunScratch {
    sim: Simulator<Ev>,
    jobs: Vec<Job>,
    deployments: Vec<Deployment>,
    deployment_of: HashMap<Archetype, usize>,
    chains: Vec<Vec<SiteToken>>,
    batches: Vec<Batch>,
    member_pool: Vec<Vec<usize>>,
    batch_key: HashMap<(usize, SimTime), usize>,
    dispatched_at: Vec<SimTime>,
    local_override: Vec<bool>,
    states: BatchStates,
    acct: Accounting,
    member_works: Vec<Cycles>,
    key_buf: String,
    health: HealthMap,
    hedges: HashMap<(usize, ComponentId), HedgePending>,
}

impl RunScratch {
    /// Creates an empty scratch; buffers grow to steady-state capacity
    /// over the first run and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The simulation engine: one environment, reusable across policies.
///
/// # Examples
///
/// ```
/// use ntc_core::{Engine, Environment, OffloadPolicy};
/// use ntc_simcore::units::SimDuration;
/// use ntc_workloads::{Archetype, StreamSpec};
///
/// let engine = Engine::new(Environment::metro_reference(), 42);
/// let specs = [StreamSpec::poisson(Archetype::PhotoPipeline, 0.01)];
/// let result = engine.run(
///     &OffloadPolicy::ntc(),
///     &specs,
///     SimDuration::from_hours(1),
/// );
/// assert!(result.miss_rate() <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    env: Environment,
    seed: u64,
    /// The environment's fault config, shared once here so every run (and
    /// every replication in a sweep) hands the same `Arc` to its
    /// [`FaultPlan`] instead of deep-cloning traces per run.
    faults: Arc<FaultConfig>,
}

impl Engine {
    /// Creates an engine over `env` with a master seed.
    pub fn new(env: Environment, seed: u64) -> Self {
        let faults = Arc::new(env.faults.clone());
        Engine { env, seed, faults }
    }

    /// The environment this engine simulates.
    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Runs `policy` over the job stream defined by `specs` for
    /// `horizon`, letting in-flight jobs drain afterwards.
    pub fn run(
        &self,
        policy: &OffloadPolicy,
        specs: &[StreamSpec],
        horizon: SimDuration,
    ) -> RunResult {
        self.run_seeded(self.seed, policy, specs, horizon, &mut RunScratch::new())
    }

    /// [`run`](Self::run) with an explicit master seed and a reusable
    /// [`RunScratch`]: the allocation-free replication path. The result
    /// for a given `(seed, policy, specs, horizon)` is bit-identical to
    /// `Engine::new(env, seed).run(policy, specs, horizon)` regardless of
    /// what the scratch was previously used for.
    pub fn run_seeded(
        &self,
        seed: u64,
        policy: &OffloadPolicy,
        specs: &[StreamSpec],
        horizon: SimDuration,
        scratch: &mut RunScratch,
    ) -> RunResult {
        self.run_retained(seed, policy, specs, horizon, scratch, JobRetention::Full)
    }

    /// [`run_seeded`](Self::run_seeded) with an explicit [`JobRetention`]
    /// mode. `Full` is exactly `run_seeded`; `Aggregates` runs the same
    /// simulation (same RNG draws, same event sequence) but streams job
    /// outcomes into constant-memory [`RunAggregates`]
    /// (`RunResult::aggregates`) instead of retaining `RunResult::jobs`.
    ///
    /// [`RunAggregates`]: crate::report::RunAggregates
    pub fn run_retained(
        &self,
        seed: u64,
        policy: &OffloadPolicy,
        specs: &[StreamSpec],
        horizon: SimDuration,
        scratch: &mut RunScratch,
        retention: JobRetention,
    ) -> RunResult {
        let rng = RngStream::root(seed).derive("engine");
        generate_jobs_into(specs, horizon, &rng.derive("jobs"), &mut scratch.jobs);

        // --- Faults and recovery. All fault/retry draws live in their own
        // derived streams, so a fault-free configuration replays the exact
        // event sequence of an engine without fault modelling. ---
        let faults = FaultPlan::shared(Arc::clone(&self.faults), rng.derive("faults"));
        let retry_rng = rng.derive("retry");
        let retry = policy.retry_policy();

        // --- Deployments, one per archetype present in the stream. ---
        scratch.deployments.clear();
        scratch.deployment_of.clear();
        for spec in specs {
            if scratch.deployment_of.contains_key(&spec.archetype) {
                continue;
            }
            let slack = spec.archetype.typical_slack().mul_f64(spec.slack_factor);
            let d =
                deploy(policy, spec.archetype, &self.env, spec.arrivals.mean_rate(), slack, &rng);
            scratch.deployment_of.insert(spec.archetype, scratch.deployments.len());
            scratch.deployments.push(d);
        }

        // --- Sites: provision every deployment along its chain. ---
        let mut sites = SiteRegistry::standard(&self.env, &rng);
        scratch.health.reset(policy.health(), &sites);
        scratch.hedges.clear();
        scratch.chains.clear();
        scratch.chains.extend(
            scratch
                .deployments
                .iter()
                .map(|d| d.resolved_chain().iter().map(|id| sites.token_of(id)).collect()),
        );
        let device = sites.token_of(&SiteId::device());
        scratch.sim.reset();
        execute::provision_deployments(
            &scratch.deployments,
            &scratch.chains,
            &mut sites,
            &mut scratch.sim,
        );

        // --- Admission: coalesce jobs into batches and schedule them. ---
        admission::coalesce_into(
            &self.env,
            &scratch.deployments,
            &scratch.deployment_of,
            &scratch.jobs,
            &mut scratch.batches,
            &mut scratch.member_pool,
            &mut scratch.batch_key,
            &mut scratch.dispatched_at,
        );
        admission::local_overrides_into(
            &self.env,
            &scratch.deployments,
            &scratch.jobs,
            &scratch.batches,
            &mut scratch.local_override,
        );
        for (bi, b) in scratch.batches.iter().enumerate() {
            scratch
                .sim
                .schedule_at(b.dispatch_at, Ev::Dispatch(bi))
                .expect("dispatch scheduled from t=0");
        }
        scratch.states.reset(&scratch.deployments, &scratch.batches);
        scratch.acct.reset(scratch.jobs.len(), retention);

        // --- The loop. ---
        let work_rng = rng.derive("work");
        let horizon_end = SimTime::ZERO + horizon;
        let ctx = RunCtx {
            env: &self.env,
            deployments: &scratch.deployments,
            chains: &scratch.chains,
            device,
            jobs: &scratch.jobs,
            batches: &scratch.batches,
            dispatched_at: &scratch.dispatched_at,
            local_override: &scratch.local_override,
            faults: &faults,
            retry: &retry,
            retry_rng: &retry_rng,
            work_rng: &work_rng,
            horizon_end,
        };
        let sim = &mut scratch.sim;
        let mut st = RunState {
            states: &mut scratch.states,
            acct: &mut scratch.acct,
            net_rng: rng.derive("net"),
            member_works: &mut scratch.member_works,
            health: &mut scratch.health,
            health_rng: rng.derive("health"),
            hedges: &mut scratch.hedges,
            key_buf: &mut scratch.key_buf,
        };
        while let Some((t, ev)) = sim.step() {
            match ev {
                Ev::Ping(di, comp, period) => {
                    execute::handle_ping(&ctx, &mut sites, sim, t, di, comp, period);
                }
                Ev::Dispatch(bi) => transfer::handle_dispatch(&ctx, &sites, &mut st, sim, t, bi),
                Ev::Exec(bi, comp) => {
                    execute::handle_exec(&ctx, &mut sites, &mut st, sim, t, bi, comp);
                }
                Ev::Done(bi, comp) => {
                    transfer::handle_done(&ctx, &sites, &mut st, sim, t, bi, comp);
                }
                Ev::HedgeFire(bi, comp) => {
                    execute::handle_hedge_fire(&ctx, &mut sites, &mut st, sim, t, bi, comp);
                }
            }
        }

        let RunState { acct, health, .. } = st;
        acct.assemble(policy, &self.env, horizon, horizon_end, sim.now(), &mut sites, health)
    }
}
