//! Scenario tests of the release pipeline: long release sequences,
//! repeated regressions, recovery, and audit-trail integrity.

use ntc_cicd::{Outcome, Pipeline, PipelineConfig, ReleaseSpec, Stage};
use ntc_simcore::rng::RngStream;
use ntc_taskgraph::TaskGraph;
use ntc_workloads::Archetype;

fn app() -> TaskGraph {
    Archetype::LogAnalytics.graph()
}

fn release(version: u64, demand_factor: f64) -> ReleaseSpec {
    ReleaseSpec { version, graph: app(), demand_factor, noise_sigma: 0.08 }
}

#[test]
fn long_healthy_sequence_promotes_everything() {
    let mut p = Pipeline::new(PipelineConfig::default(), RngStream::root(10));
    for v in 1..=20 {
        let r = p.run(&release(v, 1.0));
        assert!(matches!(r.outcome, Outcome::Promoted { .. }), "v{v} should promote");
    }
    assert_eq!(p.plan_history().len(), 20);
    assert_eq!(p.live_version(), Some(20));
}

#[test]
fn consecutive_regressions_all_bounce_off_the_same_baseline() {
    let mut p = Pipeline::new(PipelineConfig::default(), RngStream::root(11));
    p.run(&release(1, 1.0));
    for v in 2..=5 {
        let r = p.run(&release(v, 2.5));
        assert!(matches!(r.outcome, Outcome::RolledBack { .. }), "v{v} should roll back");
        assert_eq!(p.live_version(), Some(1), "v1 must stay live through every bounce");
    }
    // A fixed release finally lands.
    let fixed = p.run(&release(6, 1.05));
    assert!(matches!(fixed.outcome, Outcome::Promoted { .. }));
    assert_eq!(p.live_version(), Some(6));
    assert_eq!(p.plan_history().len(), 2);
}

#[test]
fn gradual_drift_under_the_slo_is_never_caught() {
    // Each release drifts +20% against the previous *accepted* baseline —
    // under the 1.5x SLO, so the canary (by design) lets the frog boil.
    let mut p = Pipeline::new(PipelineConfig::default(), RngStream::root(12));
    let mut factor = 1.0;
    for v in 1..=6 {
        let r = p.run(&release(v, factor));
        assert!(matches!(r.outcome, Outcome::Promoted { .. }), "v{v} drift within SLO");
        factor *= 1.2;
    }
    // Documented behaviour: rollback compares to the last *good* release,
    // so cumulative drift passes 2x overall without tripping — the
    // per-release SLO bounds the rate, not the total.
    assert_eq!(p.live_version(), Some(6));
}

#[test]
fn sudden_regression_after_drift_is_still_caught() {
    let mut p = Pipeline::new(PipelineConfig::default(), RngStream::root(13));
    p.run(&release(1, 1.0));
    p.run(&release(2, 1.3));
    let bad = p.run(&release(3, 1.3 * 2.0));
    assert!(matches!(bad.outcome, Outcome::RolledBack { .. }));
    assert_eq!(p.live_version(), Some(2));
}

#[test]
fn first_release_has_no_baseline_and_always_promotes() {
    let mut p = Pipeline::new(PipelineConfig::default(), RngStream::root(14));
    // Even a terrible first release promotes: there is nothing to compare
    // against (and nothing already in production to protect).
    let r = p.run(&release(1, 10.0));
    assert!(matches!(r.outcome, Outcome::Promoted { .. }));
}

#[test]
fn stage_durations_are_positive_and_ordered() {
    let mut p = Pipeline::new(PipelineConfig::default(), RngStream::root(15));
    let r = p.run(&release(1, 1.0));
    let order: Vec<Stage> = r.stages.iter().map(|&(s, _)| s).collect();
    let expected_prefix = [Stage::Build, Stage::Test, Stage::Profile, Stage::Partition];
    assert_eq!(&order[..4], &expected_prefix);
    assert!(order.contains(&Stage::Deploy));
    assert!(order.last() == Some(&Stage::Promote));
    for &(stage, d) in &r.stages {
        assert!(d.as_micros() > 0 || stage == Stage::Partition, "{stage} has zero duration");
    }
}

#[test]
fn pipelines_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut p = Pipeline::new(PipelineConfig::default(), RngStream::root(seed));
        (1..=5).map(|v| p.run(&release(v, if v == 3 { 3.0 } else { 1.0 }))).collect::<Vec<_>>()
    };
    let a = run(99);
    let b = run(99);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x, y);
    }
    let c = run(100);
    assert!(a.iter().zip(&c).any(|(x, y)| x.total() != y.total()), "different seeds should differ");
}

#[test]
fn monitor_closes_the_iteration_loop() {
    use ntc_cicd::{MonitorAction, ProductionMonitor};

    let mut p = Pipeline::new(PipelineConfig::default(), RngStream::root(16));
    p.run(&release(1, 1.0));
    let mut monitor: ProductionMonitor = p.start_monitor().expect("live release");

    // Steady production, then the runtime drifts +60 %.
    let baseline = monitor.baseline_demand();
    for _ in 0..400 {
        assert_eq!(monitor.observe(baseline), None);
    }
    let action = (0..300).find_map(|_| monitor.observe(baseline * 1.6));
    assert!(matches!(action, Some(MonitorAction::Reprofile(_))), "drift must be flagged");

    // The team iterates: a new release re-profiles the drifted demand.
    // (demand_factor carries the drift; the canary compares against v1's
    // baseline and tolerates it only because 1.6 > 1.5 — so this release
    // rolls back, forcing an explicit SLO renegotiation.)
    let attempted = p.run(&release(2, 1.6));
    assert!(matches!(attempted.outcome, Outcome::RolledBack { .. }));

    // With the SLO consciously relaxed for the re-baseline release, the
    // iteration lands and the monitor is re-armed on the new normal.
    let relaxed_cfg = PipelineConfig { slo_regression_factor: 2.0, ..Default::default() };
    let mut p2 = Pipeline::new(relaxed_cfg, RngStream::root(16));
    p2.run(&release(1, 1.0));
    let ok = p2.run(&release(2, 1.6));
    assert!(matches!(ok.outcome, Outcome::Promoted { .. }));
    let m2 = p2.start_monitor().expect("live release");
    assert!(m2.baseline_demand() > baseline * 1.3, "monitor re-baselined on the new demand");
}

#[test]
fn monitor_absent_before_any_promotion() {
    let p = Pipeline::new(PipelineConfig::default(), RngStream::root(17));
    assert!(p.start_monitor().is_none());
}
