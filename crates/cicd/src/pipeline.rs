//! The offloading-aware CI/CD pipeline (contribution **C4**): profiling,
//! partitioning and canary validation as first-class release stages, with
//! versioned partition plans and rollback to the last good release.

use core::fmt;

use ntc_partition::{CostParams, MinCutPartitioner, PartitionContext, PartitionPlan, Partitioner};
use ntc_profiler::{AppProfiler, EstimatorKind};
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{Cycles, DataSize, SimDuration};
use ntc_taskgraph::TaskGraph;
use serde::{Deserialize, Serialize};

use crate::artifact::{Artifact, ArtifactRegistry, ContentHash};

/// The stages of an offloading-aware release pipeline, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Compile and package the application.
    Build,
    /// Run the test suite.
    Test,
    /// Execute profiling invocations to determine computational demands.
    Profile,
    /// Compute the partition plan from the fitted demands.
    Partition,
    /// Publish artifacts for each partition.
    Package,
    /// Deploy offloaded partitions to the FaaS platform.
    Deploy,
    /// Route a traffic sample to the new release and compare to the SLO.
    Canary,
    /// Promote the release (full traffic).
    Promote,
    /// Restore the previous release's plan and artifacts.
    Rollback,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Build => "build",
            Stage::Test => "test",
            Stage::Profile => "profile",
            Stage::Partition => "partition",
            Stage::Package => "package",
            Stage::Deploy => "deploy",
            Stage::Canary => "canary",
            Stage::Promote => "promote",
            Stage::Rollback => "rollback",
        };
        f.write_str(s)
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Whether the offloading stages (profile/partition/canary) run at
    /// all; `false` models a conventional pipeline.
    pub offloading_stages: bool,
    /// Profiling invocations per component.
    pub profile_invocations: u32,
    /// Mean duration of one profiling invocation batch.
    pub profile_invocation_time: SimDuration,
    /// Canary invocations routed to the new release.
    pub canary_invocations: u32,
    /// Mean duration of one canary invocation.
    pub canary_invocation_time: SimDuration,
    /// Canary fails when measured demand exceeds the last good release by
    /// this factor (e.g. 1.5 = +50 %).
    pub slo_regression_factor: f64,
    /// Fixed build-stage duration.
    pub build_time: SimDuration,
    /// Fixed test-stage duration.
    pub test_time: SimDuration,
    /// Deployment time per MiB of artifact uploaded.
    pub deploy_per_mib: SimDuration,
    /// Environment for the partition stage.
    pub cost_params: CostParams,
    /// Representative job input size for partitioning.
    pub reference_input: DataSize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            offloading_stages: true,
            profile_invocations: 30,
            profile_invocation_time: SimDuration::from_millis(400),
            canary_invocations: 20,
            canary_invocation_time: SimDuration::from_millis(500),
            slo_regression_factor: 1.5,
            build_time: SimDuration::from_mins(3),
            test_time: SimDuration::from_mins(4),
            deploy_per_mib: SimDuration::from_millis(50),
            cost_params: CostParams::default(),
            reference_input: DataSize::from_mib(1),
        }
    }
}

/// A release entering the pipeline.
///
/// `demand_factor` models how the *actual* runtime demand of this build
/// compares to the static annotations — a value well above 1.0 is a
/// performance regression the canary should catch.
#[derive(Debug, Clone)]
pub struct ReleaseSpec {
    /// Monotonically increasing release version.
    pub version: u64,
    /// The application being released.
    pub graph: TaskGraph,
    /// True demand relative to annotations (1.0 = as annotated).
    pub demand_factor: f64,
    /// Lognormal noise sigma on measured demand.
    pub noise_sigma: f64,
}

/// How a pipeline run ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// The release was promoted; the partition plan is live.
    Promoted {
        /// The plan now serving traffic.
        plan: PartitionPlan,
    },
    /// The canary breached the SLO; the previous release was restored.
    RolledBack {
        /// Measured demand relative to the last good release.
        regression: f64,
    },
    /// A stage failed outright (test failures, deploy error).
    Failed {
        /// The stage that failed.
        stage: Stage,
    },
}

/// Timing and outcome of one pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Release version.
    pub version: u64,
    /// Per-stage wall-clock durations, in execution order.
    pub stages: Vec<(Stage, SimDuration)>,
    /// Final outcome.
    pub outcome: Outcome,
}

impl PipelineReport {
    /// Total pipeline duration.
    pub fn total(&self) -> SimDuration {
        self.stages.iter().map(|&(_, d)| d).sum()
    }

    /// The duration of `stage` if it ran.
    pub fn stage(&self, stage: Stage) -> Option<SimDuration> {
        self.stages.iter().find(|&&(s, _)| s == stage).map(|&(_, d)| d)
    }
}

#[derive(Debug, Clone)]
struct GoodRelease {
    version: u64,
    plan: PartitionPlan,
    mean_demand: f64,
}

/// The offloading-aware release pipeline.
///
/// # Examples
///
/// ```
/// use ntc_cicd::pipeline::{Pipeline, PipelineConfig, ReleaseSpec, Outcome};
/// use ntc_simcore::rng::RngStream;
/// use ntc_taskgraph::{TaskGraphBuilder, Component, LinearModel};
///
/// let mut b = TaskGraphBuilder::new("svc");
/// let c = b.add_component(Component::new("work").with_demand(LinearModel::constant(2e9)));
/// let graph = b.build().unwrap();
///
/// let mut pipeline = Pipeline::new(PipelineConfig::default(), RngStream::root(1));
/// let report = pipeline.run(&ReleaseSpec { version: 1, graph, demand_factor: 1.0, noise_sigma: 0.05 });
/// assert!(matches!(report.outcome, Outcome::Promoted { .. }));
/// ```
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    rng: RngStream,
    registry: ArtifactRegistry,
    last_good: Option<GoodRelease>,
    plan_history: Vec<(u64, PartitionPlan)>,
}

impl Pipeline {
    /// Creates a pipeline.
    pub fn new(config: PipelineConfig, rng: RngStream) -> Self {
        Pipeline {
            config,
            rng: rng.derive("cicd"),
            registry: ArtifactRegistry::new(),
            last_good: None,
            plan_history: Vec::new(),
        }
    }

    /// The artifact registry the pipeline publishes into.
    pub fn registry(&self) -> &ArtifactRegistry {
        &self.registry
    }

    /// The currently live partition plan, if any release was promoted.
    pub fn live_plan(&self) -> Option<&PartitionPlan> {
        self.last_good.as_ref().map(|g| &g.plan)
    }

    /// The version of the currently live release, if any.
    pub fn live_version(&self) -> Option<u64> {
        self.last_good.as_ref().map(|g| g.version)
    }

    /// All promoted plans with their versions (audit trail).
    pub fn plan_history(&self) -> &[(u64, PartitionPlan)] {
        &self.plan_history
    }

    /// Starts a production monitor around the live release's profiled
    /// demand, or `None` when nothing is live (or the live baseline is
    /// zero).
    pub fn start_monitor(&self) -> Option<crate::monitor::ProductionMonitor> {
        let good = self.last_good.as_ref()?;
        if good.mean_demand > 0.0 {
            Some(crate::monitor::ProductionMonitor::new(good.mean_demand))
        } else {
            None
        }
    }

    /// Runs the pipeline for one release.
    pub fn run(&mut self, spec: &ReleaseSpec) -> PipelineReport {
        let mut stages: Vec<(Stage, SimDuration)> = Vec::new();
        let cfg = self.config.clone();
        let mut rng = self.rng.derive(&format!("release-{}", spec.version));

        stages.push((Stage::Build, cfg.build_time.mul_f64(rng.lognormal(0.0, 0.1))));
        stages.push((Stage::Test, cfg.test_time.mul_f64(rng.lognormal(0.0, 0.1))));

        // --- Profile: measure demands on the new build. ---
        let mut profiler =
            AppProfiler::new(&spec.graph, EstimatorKind::Hybrid).with_min_observations(1);
        let mut measured_total = 0.0;
        if cfg.offloading_stages {
            let mut elapsed = SimDuration::ZERO;
            for _ in 0..cfg.profile_invocations {
                for (id, c) in spec.graph.components() {
                    let annotated = c.demand_cycles(cfg.reference_input).get() as f64;
                    let measured =
                        annotated * spec.demand_factor * rng.lognormal(0.0, spec.noise_sigma);
                    profiler.observe(id, cfg.reference_input, Cycles::new(measured.round() as u64));
                }
                elapsed += cfg.profile_invocation_time;
            }
            for id in spec.graph.ids() {
                measured_total += profiler.predict(id, cfg.reference_input).get() as f64;
            }
            stages.push((Stage::Profile, elapsed));
        }

        // --- Partition: plan from fitted demands. ---
        let plan = if cfg.offloading_stages {
            let demands: Vec<Cycles> =
                spec.graph.ids().map(|id| profiler.predict(id, cfg.reference_input)).collect();
            let ctx = PartitionContext::new(&spec.graph, cfg.reference_input, cfg.cost_params)
                .with_demands(demands);
            let plan = MinCutPartitioner.partition(&ctx);
            stages.push((Stage::Partition, SimDuration::from_millis(200)));
            plan
        } else {
            PartitionPlan::all_device(&spec.graph)
        };

        // --- Package: publish one artifact per component. ---
        let mut package_bytes = DataSize::ZERO;
        for (_, c) in spec.graph.components() {
            let descriptor = format!("{}:{}:{}", spec.graph.name(), c.name(), spec.version);
            self.registry.publish(Artifact {
                name: format!("{}/{}", spec.graph.name(), c.name()),
                version: spec.version,
                size: c.artifact_size(),
                hash: ContentHash::of(&descriptor),
            });
            package_bytes += c.artifact_size();
        }
        stages.push((Stage::Package, SimDuration::from_millis(500)));

        // --- Deploy: upload offloaded partitions. ---
        let offloaded_bytes: DataSize =
            plan.offloaded().map(|id| spec.graph.component(id).artifact_size()).sum();
        let deploy_bytes = if cfg.offloading_stages { offloaded_bytes } else { package_bytes };
        stages.push((Stage::Deploy, cfg.deploy_per_mib.mul_f64(deploy_bytes.as_mib_f64())));

        // --- Canary: compare measured demand to the last good release. ---
        if cfg.offloading_stages {
            let canary_time = cfg.canary_invocation_time * u64::from(cfg.canary_invocations);
            stages.push((Stage::Canary, canary_time));
            if let Some(good) = &self.last_good {
                let regression =
                    if good.mean_demand > 0.0 { measured_total / good.mean_demand } else { 1.0 };
                if regression > cfg.slo_regression_factor {
                    stages.push((Stage::Rollback, SimDuration::from_secs(30)));
                    return PipelineReport {
                        version: spec.version,
                        stages,
                        outcome: Outcome::RolledBack { regression },
                    };
                }
            }
        }

        // --- Promote. ---
        stages.push((Stage::Promote, SimDuration::from_secs(10)));
        self.last_good = Some(GoodRelease {
            version: spec.version,
            plan: plan.clone(),
            mean_demand: if cfg.offloading_stages {
                measured_total
            } else {
                spec.graph.total_work(cfg.reference_input).get() as f64
            },
        });
        self.plan_history.push((spec.version, plan.clone()));
        PipelineReport { version: spec.version, stages, outcome: Outcome::Promoted { plan } }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_taskgraph::{Component, LinearModel, Pinning, TaskGraphBuilder};

    fn app() -> TaskGraph {
        let mut b = TaskGraphBuilder::new("svc");
        let ui = b.add_component(Component::new("ui").with_pinning(Pinning::Device));
        let work = b.add_component(
            Component::new("work")
                .with_demand(LinearModel::constant(5e9))
                .with_artifact_size(DataSize::from_mib(20)),
        );
        b.add_flow(ui, work, LinearModel::constant(10_000.0));
        b.build().unwrap()
    }

    fn release(version: u64, demand_factor: f64) -> ReleaseSpec {
        ReleaseSpec { version, graph: app(), demand_factor, noise_sigma: 0.05 }
    }

    fn pipeline() -> Pipeline {
        Pipeline::new(PipelineConfig::default(), RngStream::root(11))
    }

    #[test]
    fn healthy_release_is_promoted() {
        let mut p = pipeline();
        let report = p.run(&release(1, 1.0));
        assert!(matches!(report.outcome, Outcome::Promoted { .. }));
        assert!(report.stage(Stage::Profile).is_some());
        assert!(report.stage(Stage::Canary).is_some());
        assert!(report.stage(Stage::Rollback).is_none());
        assert!(p.live_plan().is_some());
        assert_eq!(p.plan_history().len(), 1);
    }

    #[test]
    fn demand_regression_is_rolled_back() {
        let mut p = pipeline();
        p.run(&release(1, 1.0));
        let v1_plan = p.live_plan().cloned();
        let report = p.run(&release(2, 3.0)); // 3× the demand: breach
        match &report.outcome {
            Outcome::RolledBack { regression } => {
                assert!(*regression > 2.0, "regression={regression}")
            }
            other => panic!("expected rollback, got {other:?}"),
        }
        assert!(report.stage(Stage::Rollback).is_some());
        // The live plan is still v1's.
        assert_eq!(p.live_plan().cloned(), v1_plan);
        assert_eq!(p.plan_history().len(), 1);
    }

    #[test]
    fn mild_drift_within_slo_is_promoted() {
        let mut p = pipeline();
        p.run(&release(1, 1.0));
        let report = p.run(&release(2, 1.2)); // +20 % < 1.5× SLO
        assert!(matches!(report.outcome, Outcome::Promoted { .. }));
        assert_eq!(p.plan_history().len(), 2);
    }

    #[test]
    fn conventional_pipeline_skips_offload_stages() {
        let cfg = PipelineConfig { offloading_stages: false, ..Default::default() };
        let mut p = Pipeline::new(cfg, RngStream::root(2));
        let report = p.run(&release(1, 1.0));
        assert!(report.stage(Stage::Profile).is_none());
        assert!(report.stage(Stage::Partition).is_none());
        assert!(report.stage(Stage::Canary).is_none());
        assert!(
            matches!(&report.outcome, Outcome::Promoted { plan } if plan.offloaded().count() == 0)
        );
    }

    #[test]
    fn offload_stages_add_bounded_overhead() {
        let mut with = pipeline();
        let mut without = Pipeline::new(
            PipelineConfig { offloading_stages: false, ..Default::default() },
            RngStream::root(11),
        );
        let a = with.run(&release(1, 1.0)).total();
        let b = without.run(&release(1, 1.0)).total();
        assert!(a > b, "offload stages take time");
        // Bounded: profiling+canary budget dominates; under 2× here.
        assert!(a < b * 2, "overhead should be bounded: {a} vs {b}");
    }

    #[test]
    fn artifacts_are_versioned_and_deduplicated() {
        let mut p = pipeline();
        p.run(&release(1, 1.0));
        p.run(&release(2, 1.0));
        // Content descriptor includes the version, so two versions exist.
        assert_eq!(p.registry().version_count("svc/work"), 2);
    }

    #[test]
    fn report_total_sums_stages() {
        let mut p = pipeline();
        let report = p.run(&release(1, 1.0));
        let sum: SimDuration = report.stages.iter().map(|&(_, d)| d).sum();
        assert_eq!(report.total(), sum);
        assert!(report.total() > SimDuration::from_mins(5));
    }
}
