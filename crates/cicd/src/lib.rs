//! # ntc-cicd
//!
//! Deployment-process integration (contribution **C4** of *Computational
//! Offloading for Non-Time-Critical Applications*, ICDCS 2022): the
//! offloading decisions ride the ordinary release pipeline — profiling,
//! partitioning, packaging, deployment and canary validation are pipeline
//! stages, partition plans are versioned artifacts, and a breached SLO
//! rolls the whole release back.
//!
//! * [`artifact`] — content-addressed, versioned artifact registry.
//! * [`pipeline`] — the stage machine ([`Pipeline`]) with canary + rollback.
//!
//! # Examples
//!
//! ```
//! use ntc_cicd::{Outcome, Pipeline, PipelineConfig, ReleaseSpec};
//! use ntc_simcore::rng::RngStream;
//! use ntc_taskgraph::{TaskGraphBuilder, Component, LinearModel};
//!
//! let mut b = TaskGraphBuilder::new("svc");
//! b.add_component(Component::new("work").with_demand(LinearModel::constant(1e9)));
//! let graph = b.build().unwrap();
//!
//! let mut pipe = Pipeline::new(PipelineConfig::default(), RngStream::root(3));
//! let ok = pipe.run(&ReleaseSpec { version: 1, graph: graph.clone(), demand_factor: 1.0, noise_sigma: 0.05 });
//! assert!(matches!(ok.outcome, Outcome::Promoted { .. }));
//! // A 4× demand regression is caught by the canary and rolled back.
//! let bad = pipe.run(&ReleaseSpec { version: 2, graph, demand_factor: 4.0, noise_sigma: 0.05 });
//! assert!(matches!(bad.outcome, Outcome::RolledBack { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod monitor;
pub mod pipeline;

pub use artifact::{Artifact, ArtifactRegistry, ContentHash};
pub use monitor::{MonitorAction, ProductionMonitor};
pub use pipeline::{Outcome, Pipeline, PipelineConfig, PipelineReport, ReleaseSpec, Stage};
