//! Content-addressed artifact registry: the hand-off point between
//! pipeline stages and deployment targets.

use core::fmt;
use std::collections::HashMap;

use ntc_simcore::units::DataSize;
use serde::{Deserialize, Serialize};

/// A content hash over artifact bytes (FNV-1a over the logical content
/// descriptor — the simulation has no real bytes to hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContentHash(u64);

impl ContentHash {
    /// Hashes a logical content descriptor.
    pub fn of(descriptor: &str) -> Self {
        const PRIME: u64 = 0x100000001b3;
        let mut h = 0xcbf29ce484222325u64;
        for b in descriptor.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        ContentHash(h)
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A versioned, content-addressed build artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Artifact {
    /// Component or bundle name.
    pub name: String,
    /// Release version this artifact belongs to.
    pub version: u64,
    /// Size of the deployable.
    pub size: DataSize,
    /// Content hash (identical content ⇒ identical hash across versions).
    pub hash: ContentHash,
}

/// An in-memory artifact registry with content-addressed de-duplication.
///
/// # Examples
///
/// ```
/// use ntc_cicd::artifact::{Artifact, ArtifactRegistry, ContentHash};
/// use ntc_simcore::units::DataSize;
///
/// let mut reg = ArtifactRegistry::new();
/// let a = Artifact {
///     name: "resize".into(),
///     version: 1,
///     size: DataSize::from_mib(10),
///     hash: ContentHash::of("resize-v1"),
/// };
/// reg.publish(a.clone());
/// assert_eq!(reg.latest("resize"), Some(&a));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ArtifactRegistry {
    by_name: HashMap<String, Vec<Artifact>>,
}

impl ArtifactRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes an artifact. Re-publishing identical content for the same
    /// name is a no-op (content addressing); a new version is appended.
    pub fn publish(&mut self, artifact: Artifact) {
        let entry = self.by_name.entry(artifact.name.clone()).or_default();
        if entry.last().is_some_and(|a| a.hash == artifact.hash) {
            return;
        }
        entry.push(artifact);
    }

    /// The most recently published artifact for `name`.
    pub fn latest(&self, name: &str) -> Option<&Artifact> {
        self.by_name.get(name).and_then(|v| v.last())
    }

    /// A specific version of `name`, if it was published.
    pub fn version(&self, name: &str, version: u64) -> Option<&Artifact> {
        self.by_name.get(name).and_then(|v| v.iter().rev().find(|a| a.version == version))
    }

    /// The number of stored versions of `name`.
    pub fn version_count(&self, name: &str) -> usize {
        self.by_name.get(name).map_or(0, Vec::len)
    }

    /// Total stored bytes across all artifacts (registry footprint).
    pub fn total_size(&self) -> DataSize {
        self.by_name.values().flatten().map(|a| a.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn art(name: &str, version: u64, content: &str) -> Artifact {
        Artifact {
            name: name.into(),
            version,
            size: DataSize::from_mib(5),
            hash: ContentHash::of(content),
        }
    }

    #[test]
    fn publish_and_lookup() {
        let mut reg = ArtifactRegistry::new();
        reg.publish(art("a", 1, "a1"));
        reg.publish(art("a", 2, "a2"));
        reg.publish(art("b", 1, "b1"));
        assert_eq!(reg.latest("a").unwrap().version, 2);
        assert_eq!(reg.version("a", 1).unwrap().version, 1);
        assert_eq!(reg.version_count("a"), 2);
        assert_eq!(reg.latest("missing"), None);
        assert_eq!(reg.total_size(), DataSize::from_mib(15));
    }

    #[test]
    fn identical_content_is_deduplicated() {
        let mut reg = ArtifactRegistry::new();
        reg.publish(art("a", 1, "same"));
        reg.publish(art("a", 2, "same"));
        assert_eq!(reg.version_count("a"), 1, "unchanged content must not create a version");
        reg.publish(art("a", 3, "different"));
        assert_eq!(reg.version_count("a"), 2);
    }

    #[test]
    fn hashes_differ_for_different_content() {
        assert_ne!(ContentHash::of("x"), ContentHash::of("y"));
        assert_eq!(ContentHash::of("x"), ContentHash::of("x"));
        assert_eq!(format!("{}", ContentHash::of("x")).len(), 16);
    }
}
