//! Post-promotion production monitoring: watch the live release's demand
//! and trigger a re-profile/re-release when it drifts.
//!
//! This closes the Design-Science-Research iteration loop of the paper:
//! profile → partition → deploy → **observe → iterate**. The canary
//! (Table 4) guards the *release boundary*; the monitor guards the long
//! tail of production time after it.

use ntc_profiler::{Drift, PageHinkley};
use serde::{Deserialize, Serialize};

/// What the monitor asks the team (or the automation) to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MonitorAction {
    /// Demand drifted; run a new pipeline iteration so profiling,
    /// partitioning and allocation can catch up.
    Reprofile(Drift),
}

/// Watches observed demand against the promoted release's profiled
/// baseline.
///
/// # Examples
///
/// ```
/// use ntc_cicd::monitor::{MonitorAction, ProductionMonitor};
///
/// let mut m = ProductionMonitor::new(1_000_000.0);
/// // Steady production: quiet.
/// for _ in 0..200 {
///     assert_eq!(m.observe(1_000_000.0), None);
/// }
/// // Demand grows 60 %: a re-profile is requested.
/// let action = (0..200).find_map(|_| m.observe(1_600_000.0));
/// assert!(matches!(action, Some(MonitorAction::Reprofile(_))));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProductionMonitor {
    baseline_demand: f64,
    detector: PageHinkley,
    observed: u64,
    triggered: u64,
}

impl ProductionMonitor {
    /// Creates a monitor around the release's profiled mean demand.
    ///
    /// # Panics
    ///
    /// Panics if `baseline_demand` is not positive.
    pub fn new(baseline_demand: f64) -> Self {
        assert!(
            baseline_demand > 0.0 && baseline_demand.is_finite(),
            "baseline demand must be positive"
        );
        ProductionMonitor {
            baseline_demand,
            detector: PageHinkley::for_demand_ratios(),
            observed: 0,
            triggered: 0,
        }
    }

    /// The baseline this monitor compares against.
    pub fn baseline_demand(&self) -> f64 {
        self.baseline_demand
    }

    /// Observations fed since creation.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// How many times the monitor has requested a re-profile.
    pub fn triggered(&self) -> u64 {
        self.triggered
    }

    /// Feeds one production measurement of total job demand (cycles).
    /// Returns an action when drift is confirmed.
    pub fn observe(&mut self, measured_demand: f64) -> Option<MonitorAction> {
        self.observed += 1;
        let ratio = measured_demand / self.baseline_demand;
        self.detector.observe(ratio).map(|d| {
            self.triggered += 1;
            MonitorAction::Reprofile(d)
        })
    }

    /// Re-baselines after a new release is promoted.
    pub fn rebaseline(&mut self, baseline_demand: f64) {
        assert!(
            baseline_demand > 0.0 && baseline_demand.is_finite(),
            "baseline demand must be positive"
        );
        self.baseline_demand = baseline_demand;
        self.detector = PageHinkley::for_demand_ratios();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_simcore::rng::RngStream;

    #[test]
    fn quiet_production_never_triggers() {
        let mut m = ProductionMonitor::new(5e9);
        let mut rng = RngStream::root(4).derive("prod");
        for _ in 0..3_000 {
            let demand = 5e9 * rng.lognormal(0.0, 0.08);
            assert_eq!(m.observe(demand), None);
        }
        assert_eq!(m.triggered(), 0);
        assert_eq!(m.observed(), 3_000);
    }

    #[test]
    fn library_regression_triggers_reprofile_up() {
        let mut m = ProductionMonitor::new(5e9);
        let mut rng = RngStream::root(5).derive("prod");
        for _ in 0..500 {
            m.observe(5e9 * rng.lognormal(0.0, 0.08));
        }
        let action = (0..300).find_map(|_| m.observe(5e9 * 1.6 * rng.lognormal(0.0, 0.08)));
        assert_eq!(action, Some(MonitorAction::Reprofile(Drift::Up)));
        assert_eq!(m.triggered(), 1);
    }

    #[test]
    fn optimisation_triggers_reprofile_down() {
        let mut m = ProductionMonitor::new(5e9);
        for _ in 0..300 {
            m.observe(5e9);
        }
        let action = (0..300).find_map(|_| m.observe(5e9 * 0.5));
        assert_eq!(action, Some(MonitorAction::Reprofile(Drift::Down)));
    }

    #[test]
    fn rebaseline_accepts_the_new_normal() {
        let mut m = ProductionMonitor::new(5e9);
        for _ in 0..300 {
            m.observe(5e9);
        }
        m.rebaseline(8e9);
        for _ in 0..300 {
            assert_eq!(m.observe(8e9), None, "the new baseline is the new normal");
        }
        assert_eq!(m.baseline_demand(), 8e9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_baseline_panics() {
        let _ = ProductionMonitor::new(0.0);
    }
}
