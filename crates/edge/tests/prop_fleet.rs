//! Property-based tests of the edge fleet's capacity and accounting
//! invariants.

use proptest::prelude::*;

use ntc_edge::{EdgeConfig, EdgeFleet};
use ntc_simcore::units::{Cycles, DataSize, Money, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// At most `slots` jobs can overlap in time: for any instant the
    /// number of in-flight invocations never exceeds fleet capacity.
    #[test]
    fn slot_capacity_is_never_exceeded(
        servers in 1u32..4,
        slots in 1u32..4,
        n in 1usize..50,
        gap_ms in 0u64..5_000,
        work_giga in 1u64..60,
    ) {
        let mut fleet = EdgeFleet::new(EdgeConfig { servers, slots_per_server: slots, ..Default::default() });
        let svc = fleet.register("svc");
        fleet.install(SimTime::ZERO, svc, DataSize::from_mib(1));
        let mut t = SimTime::from_secs(1);
        let mut intervals: Vec<(SimTime, SimTime)> = Vec::new();
        for _ in 0..n {
            let out = fleet.invoke(t, svc, Cycles::from_giga(work_giga)).unwrap();
            let start = out.submitted + out.queue_wait;
            intervals.push((start, out.finish));
            t += SimDuration::from_millis(gap_ms);
        }
        let cap = (servers * slots) as usize;
        for &(probe, _) in &intervals {
            let overlapping = intervals.iter().filter(|&&(s, f)| s <= probe && probe < f).count();
            prop_assert!(overlapping <= cap, "{overlapping} jobs in flight with {cap} slots");
        }
    }

    /// Queue waits are zero while the fleet has a free slot and execution
    /// never shrinks below the work/clock quotient.
    #[test]
    fn exec_time_matches_clock(work_giga in 1u64..200) {
        let mut fleet = EdgeFleet::new(EdgeConfig::default());
        let svc = fleet.register("svc");
        fleet.install(SimTime::ZERO, svc, DataSize::from_mib(1));
        let out = fleet.invoke(SimTime::from_secs(1), svc, Cycles::from_giga(work_giga)).unwrap();
        let expected = fleet.config().clock.execution_time(Cycles::from_giga(work_giga));
        prop_assert_eq!(out.exec, expected);
        prop_assert!(out.queue_wait.is_zero());
    }

    /// Infrastructure cost is linear in time and server count, and
    /// utilisation stays in [0, 1].
    #[test]
    fn cost_and_utilisation_are_bounded(
        servers in 1u32..16,
        hours in 1u64..100,
        n in 0usize..30,
    ) {
        let mut fleet =
            EdgeFleet::new(EdgeConfig { servers, slots_per_server: 2, ..Default::default() });
        let svc = fleet.register("svc");
        fleet.install(SimTime::ZERO, svc, DataSize::from_mib(1));
        let mut t = SimTime::from_secs(10);
        for _ in 0..n {
            fleet.invoke(t, svc, Cycles::from_giga(10)).unwrap();
            t += SimDuration::from_secs(30);
        }
        let until = SimTime::from_secs(hours * 3600);
        let cost = fleet.infrastructure_cost(until);
        let per_server_hour = Money::from_usd_f64(0.35);
        let expected = per_server_hour.mul_f64((hours * u64::from(servers)) as f64);
        prop_assert!((cost.as_nano_usd() - expected.as_nano_usd()).abs() <= 1);
        let u = fleet.utilization(until.max(t));
        prop_assert!((0.0..=1.0).contains(&u), "utilisation {u}");
    }
}
