//! # ntc-edge
//!
//! Edge-computing baseline substrate for the `ntc-offload` framework: a
//! pre-provisioned, capacity-limited fleet of edge servers with flat-rate
//! infrastructure cost. This is the comparator that *Computational
//! Offloading for Non-Time-Critical Applications* (ICDCS 2022) argues can
//! be skipped when jobs tolerate delay: low RTT, but finite capacity and a
//! bill that accrues whether or not anyone uses it.
//!
//! # Examples
//!
//! ```
//! use ntc_edge::{EdgeConfig, EdgeFleet};
//! use ntc_simcore::units::{Cycles, DataSize, SimTime};
//!
//! let mut edge = EdgeFleet::new(EdgeConfig::default());
//! let svc = edge.register("ocr");
//! let ready = edge.install(SimTime::ZERO, svc, DataSize::from_mib(80));
//! let out = edge.invoke(ready, svc, Cycles::from_giga(2))?;
//! println!("done at {}, fleet bill so far {}", out.finish, edge.infrastructure_cost(out.finish));
//! # Ok::<(), ntc_edge::EdgeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;

pub use fleet::{EdgeConfig, EdgeError, EdgeFleet, EdgeOutcome, ServiceId, ServiceStats};
