//! A fleet of capacity-limited edge servers — the Edge Computing baseline
//! whose "significant drawback … is the required infrastructure".

use core::fmt;

use ntc_simcore::metrics::Histogram;
use ntc_simcore::units::{ClockSpeed, Cycles, DataSize, Money, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of a service deployed on an [`EdgeFleet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceId(pub(crate) u32);

impl ServiceId {
    /// The dense index of this service.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc{}", self.0)
    }
}

/// Configuration of the edge fleet.
///
/// Unlike the elastic cloud, the fleet is *pre-provisioned*: a fixed number
/// of servers with a fixed number of execution slots each, paid for by the
/// hour whether used or not.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeConfig {
    /// Number of edge servers at the site.
    pub servers: u32,
    /// Concurrent execution slots per server.
    pub slots_per_server: u32,
    /// Clock speed of one slot.
    pub clock: ClockSpeed,
    /// Amortised infrastructure cost per server-hour (capex + opex).
    pub cost_per_server_hour: Money,
    /// Delay to install a new service artifact on the fleet.
    pub install_delay_per_mib: SimDuration,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            servers: 4,
            slots_per_server: 8,
            clock: ClockSpeed::from_ghz_tenths(28),
            cost_per_server_hour: Money::from_usd_f64(0.35),
            install_delay_per_mib: SimDuration::from_millis(20),
        }
    }
}

/// Errors from using the edge fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeError {
    /// The service id is not registered.
    UnknownService(ServiceId),
    /// The service has not finished installing at the requested time.
    NotInstalled {
        /// The service being invoked.
        service: ServiceId,
        /// When (if ever) the service becomes ready.
        ready_at: Option<SimTime>,
    },
    /// Invocations must be submitted in non-decreasing time order.
    OutOfOrder {
        /// The time the caller submitted.
        submitted: SimTime,
        /// The fleet's latest accepted time.
        latest: SimTime,
    },
}

impl fmt::Display for EdgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeError::UnknownService(id) => write!(f, "unknown edge service {id}"),
            EdgeError::NotInstalled { service, ready_at: Some(t) } => {
                write!(f, "service {service} not installed until {t}")
            }
            EdgeError::NotInstalled { service, ready_at: None } => {
                write!(f, "service {service} was never installed")
            }
            EdgeError::OutOfOrder { submitted, latest } => {
                write!(f, "invocation at {submitted} precedes already-processed {latest}")
            }
        }
    }
}

impl std::error::Error for EdgeError {}

/// The resolved result of one edge invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeOutcome {
    /// When the invocation was submitted.
    pub submitted: SimTime,
    /// Time spent waiting for a free slot.
    pub queue_wait: SimDuration,
    /// Execution duration.
    pub exec: SimDuration,
    /// When the result is available.
    pub finish: SimTime,
}

impl EdgeOutcome {
    /// Total latency from submission to result.
    pub fn latency(&self) -> SimDuration {
        self.finish - self.submitted
    }
}

/// Per-service counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Completed invocations.
    pub invocations: u64,
    /// Invocations that had to wait for a slot.
    pub queued: u64,
    /// Latency distribution (µs).
    pub latency: Histogram,
    /// Queue-wait distribution (µs).
    pub queue_wait: Histogram,
}

#[derive(Debug)]
struct ServiceState {
    #[allow(dead_code)] // name kept for diagnostics / DOT dumps
    name: String,
    ready_at: Option<SimTime>,
    stats: ServiceStats,
}

/// A simulated edge site: fixed slots, proximity latency handled by the
/// caller's network path, flat-rate infrastructure cost.
///
/// Driven sequentially like
/// [`ntc_serverless::ServerlessPlatform`](https://docs.rs) — invocations
/// must arrive in non-decreasing time order.
///
/// # Examples
///
/// ```
/// use ntc_edge::{EdgeConfig, EdgeFleet};
/// use ntc_simcore::units::{Cycles, DataSize, SimTime};
///
/// let mut edge = EdgeFleet::new(EdgeConfig::default());
/// let svc = edge.register("detector");
/// edge.install(SimTime::ZERO, svc, DataSize::from_mib(100));
/// let out = edge.invoke(SimTime::from_secs(10), svc, Cycles::from_giga(1))?;
/// assert!(out.queue_wait.is_zero());
/// # Ok::<(), ntc_edge::EdgeError>(())
/// ```
#[derive(Debug)]
pub struct EdgeFleet {
    config: EdgeConfig,
    services: Vec<ServiceState>,
    slots: Vec<SimTime>, // busy-until per slot, fleet-wide
    latest: SimTime,
    busy_micros: u128,
}

impl EdgeFleet {
    /// Creates a fleet from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero servers or slots.
    pub fn new(config: EdgeConfig) -> Self {
        assert!(config.servers > 0 && config.slots_per_server > 0, "fleet must have capacity");
        let total = (config.servers * config.slots_per_server) as usize;
        EdgeFleet {
            config,
            services: Vec::new(),
            slots: vec![SimTime::ZERO; total],
            latest: SimTime::ZERO,
            busy_micros: 0,
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &EdgeConfig {
        &self.config
    }

    /// The total number of execution slots.
    pub fn total_slots(&self) -> usize {
        self.slots.len()
    }

    /// Registers a service (not yet installed).
    pub fn register(&mut self, name: impl Into<String>) -> ServiceId {
        let id = ServiceId(u32::try_from(self.services.len()).expect("too many services"));
        self.services.push(ServiceState {
            name: name.into(),
            ready_at: None,
            stats: ServiceStats::default(),
        });
        id
    }

    /// Starts installing `service` at `at`; it becomes invocable once the
    /// artifact has been distributed to the site.
    ///
    /// Returns the readiness instant.
    ///
    /// # Panics
    ///
    /// Panics if `service` is unknown.
    pub fn install(&mut self, at: SimTime, service: ServiceId, artifact: DataSize) -> SimTime {
        let delay = self.config.install_delay_per_mib.mul_f64(artifact.as_mib_f64());
        let ready = at + delay;
        self.services[service.index()].ready_at = Some(ready);
        ready
    }

    /// Accumulated statistics of `service`.
    ///
    /// # Panics
    ///
    /// Panics if `service` is unknown.
    pub fn stats(&self, service: ServiceId) -> &ServiceStats {
        &self.services[service.index()].stats
    }

    /// The flat infrastructure cost of running the fleet until `until`.
    pub fn infrastructure_cost(&self, until: SimTime) -> Money {
        let hours = until.saturating_duration_since(SimTime::ZERO).as_secs_f64() / 3600.0;
        self.config.cost_per_server_hour.mul_f64(hours * f64::from(self.config.servers))
    }

    /// Mean slot utilisation over `[0, until]`, in `[0, 1]`.
    pub fn utilization(&self, until: SimTime) -> f64 {
        let span = until.as_micros() as u128 * self.slots.len() as u128;
        if span == 0 {
            return 0.0;
        }
        (self.busy_micros as f64 / span as f64).min(1.0)
    }

    /// Submits an invocation of `service` at time `at` needing `work`
    /// cycles. If all slots are busy the invocation queues on the
    /// earliest-free slot.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError`] if the service is unknown or not installed by
    /// `at`, or if `at` precedes an already processed invocation.
    pub fn invoke(
        &mut self,
        at: SimTime,
        service: ServiceId,
        work: Cycles,
    ) -> Result<EdgeOutcome, EdgeError> {
        let state = self.services.get(service.index()).ok_or(EdgeError::UnknownService(service))?;
        match state.ready_at {
            Some(ready) if ready <= at => {}
            ready_at => return Err(EdgeError::NotInstalled { service, ready_at }),
        }
        if at < self.latest {
            return Err(EdgeError::OutOfOrder { submitted: at, latest: self.latest });
        }
        self.latest = at;

        let exec = self.config.clock.execution_time(work);
        let (slot, &free_at) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|&(_, t)| *t)
            .expect("fleet has at least one slot");
        let start = at.max(free_at);
        let finish = start + exec;
        self.slots[slot] = finish;
        self.busy_micros += u128::from(exec.as_micros());

        let queue_wait = start - at;
        let outcome = EdgeOutcome { submitted: at, queue_wait, exec, finish };
        let stats = &mut self.services[service.index()].stats;
        stats.invocations += 1;
        if !queue_wait.is_zero() {
            stats.queued += 1;
        }
        stats.latency.record_duration(outcome.latency());
        stats.queue_wait.record_duration(queue_wait);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet() -> EdgeFleet {
        EdgeFleet::new(EdgeConfig { servers: 1, slots_per_server: 2, ..Default::default() })
    }

    #[test]
    fn install_then_invoke() {
        let mut f = small_fleet();
        let s = f.register("svc");
        let ready = f.install(SimTime::ZERO, s, DataSize::from_mib(100));
        assert_eq!(ready, SimTime::from_micros(2_000_000)); // 100 MiB × 20 ms
        let out = f.invoke(ready, s, Cycles::from_giga(28)).unwrap(); // 10 s at 2.8 GHz
        assert_eq!(out.exec, SimDuration::from_secs(10));
        assert!(out.queue_wait.is_zero());
    }

    #[test]
    fn uninstalled_service_is_rejected() {
        let mut f = small_fleet();
        let s = f.register("svc");
        let err = f.invoke(SimTime::ZERO, s, Cycles::from_mega(1)).unwrap_err();
        assert_eq!(err, EdgeError::NotInstalled { service: s, ready_at: None });
        let ready = f.install(SimTime::ZERO, s, DataSize::from_mib(100));
        let early = f.invoke(SimTime::from_millis(1), s, Cycles::from_mega(1)).unwrap_err();
        assert_eq!(early, EdgeError::NotInstalled { service: s, ready_at: Some(ready) });
    }

    #[test]
    fn saturated_fleet_queues() {
        let mut f = small_fleet();
        let s = f.register("svc");
        f.install(SimTime::ZERO, s, DataSize::from_mib(1));
        let t0 = SimTime::from_secs(1);
        let work = Cycles::from_giga(28); // 10 s each
        let a = f.invoke(t0, s, work).unwrap();
        let b = f.invoke(t0, s, work).unwrap();
        let c = f.invoke(t0, s, work).unwrap();
        assert!(a.queue_wait.is_zero() && b.queue_wait.is_zero());
        assert_eq!(c.queue_wait, SimDuration::from_secs(10));
        assert_eq!(f.stats(s).queued, 1);
        assert_eq!(f.stats(s).invocations, 3);
    }

    #[test]
    fn infrastructure_cost_accrues_even_when_idle() {
        let f = EdgeFleet::new(EdgeConfig::default());
        let day = SimTime::from_secs(24 * 3600);
        let cost = f.infrastructure_cost(day);
        // 4 servers × $0.35/h × 24 h = $33.60.
        assert!((cost.as_usd_f64() - 33.6).abs() < 1e-6);
    }

    #[test]
    fn utilization_reflects_busy_time() {
        let mut f = small_fleet();
        let s = f.register("svc");
        f.install(SimTime::ZERO, s, DataSize::from_mib(1));
        // One 10 s job on a 2-slot fleet observed over 20 s: 10/(2×20) = 0.25.
        f.invoke(SimTime::from_secs(1), s, Cycles::from_giga(28)).unwrap();
        let u = f.utilization(SimTime::from_secs(20));
        assert!((u - 0.25).abs() < 0.01, "u={u}");
        assert_eq!(f.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn out_of_order_is_rejected() {
        let mut f = small_fleet();
        let s = f.register("svc");
        f.install(SimTime::ZERO, s, DataSize::from_mib(1));
        f.invoke(SimTime::from_secs(10), s, Cycles::from_mega(1)).unwrap();
        let err = f.invoke(SimTime::from_secs(5), s, Cycles::from_mega(1)).unwrap_err();
        assert!(matches!(err, EdgeError::OutOfOrder { .. }));
        assert!(err.to_string().contains("precedes"));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_fleet_panics() {
        let _ = EdgeFleet::new(EdgeConfig { servers: 0, ..Default::default() });
    }
}
