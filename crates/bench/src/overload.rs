//! Shared sweep core of the **Figure 10** overload experiment.
//!
//! Lives in the library (rather than the `fig10_overload` binary) so the
//! determinism integration test can run the exact sweep the figure is
//! built from at different thread counts and compare rows.
//!
//! The scenario: an edge-primary NTC deployment under a flaky edge site
//! (transient faults plus a flapping availability trace), swept over
//! arrival-rate multipliers. Four health-layer variants run the *same*
//! traffic: everything off (the PR-3 engine), breakers + admission
//! control, hedging alone, and the full overload-aware stance. The
//! figure plots goodput and deadline-miss curves per variant; the
//! headline shape is that NTC traffic defers and completes — overload
//! degrades goodput gracefully instead of cascading.

use ntc_core::{
    run_sweep_with, Backend, Engine, Environment, FaultConfig, HealthConfig, NtcConfig,
    OffloadPolicy, RunScratch,
};
use ntc_edge::EdgeConfig;
use ntc_net::ConnectivityTrace;
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};
use serde::Serialize;

/// One measured (variant, multiplier) cell of Figure 10.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Row {
    /// Health-layer variant label.
    pub variant: String,
    /// Arrival-rate multiplier over the base traffic.
    pub multiplier: f64,
    /// Jobs arrived within the horizon.
    pub jobs: usize,
    /// Jobs that terminally failed.
    pub failures: u64,
    /// Jobs that completed after their deadline (or failed).
    pub deadline_misses: u64,
    /// Deadline-miss fraction.
    pub miss_rate: f64,
    /// Deadline-met completions per simulated hour — the goodput axis.
    pub goodput_per_hour: f64,
    /// Batches shed down their chain by admission control.
    pub sheds: u64,
    /// Dispatch deferrals granted by admission control.
    pub deferrals: u64,
    /// Dispatches redirected past an Open breaker.
    pub breaker_skips: u64,
    /// Hedged duplicates launched.
    pub hedges: u64,
    /// Hedges that beat their primary.
    pub hedges_won: u64,
    /// Hedges their primary beat.
    pub hedges_lost: u64,
    /// Breaker state transitions summed over all sites.
    pub breaker_transitions: u64,
    /// Total run cost in USD.
    pub total_cost_usd: f64,
}

/// The four health-layer variants of the figure, in plot order. The
/// thresholds are shared; only the mechanism switches differ. The queue
/// bound is sized to the experiment's two-slot edge (a couple of
/// batches deep), where the global default of 64 is sized to the
/// metro-reference 32-slot fleet and would never bind here.
pub fn variants() -> [(&'static str, HealthConfig); 4] {
    let base = HealthConfig {
        queue_bound: 6,
        defer_step: SimDuration::from_mins(5),
        ..HealthConfig::disabled()
    };
    [
        ("off", HealthConfig::disabled()),
        ("breakers+admission", HealthConfig { breakers: true, admission: true, ..base }),
        ("hedge", HealthConfig { hedge: true, ..base }),
        ("all-on", HealthConfig { breakers: true, admission: true, hedge: true, ..base }),
    ]
}

/// The arrival-rate multipliers swept: smoke keeps CI fast, the full
/// sweep is what `results/fig10_overload.json` is built from.
pub fn multipliers(smoke: bool) -> &'static [f64] {
    if smoke {
        &[1.0, 3.0]
    } else {
        &[1.0, 1.5, 2.0, 3.0, 4.0]
    }
}

/// The environment all variants share: a metro reference deployment whose
/// edge site is flaky — transient invocation faults plus a flapping
/// availability trace — so breakers have something to trip on.
fn overload_environment() -> Environment {
    let mut env = Environment::metro_reference();
    // A deliberately small edge — one server, two slots — so the arrival
    // sweep actually drives it into saturation; the metro-reference
    // 32-slot fleet would absorb every multiplier here without queueing.
    env.edge = EdgeConfig { servers: 1, slots_per_server: 2, ..EdgeConfig::default() };
    let mut faults = FaultConfig::transient(0.12);
    // The edge flaps: 48 min up, 12 min down, every hour.
    faults.site_availability.insert(
        "edge".to_string(),
        ConnectivityTrace::new(
            SimDuration::from_hours(1),
            vec![(SimDuration::ZERO, true), (SimDuration::from_mins(48), false)],
        ),
    );
    env.faults = faults;
    env
}

/// The policy one variant runs: edge-primary, unbatched (deferral needs
/// per-batch slack, and batching would coalesce it away) NTC with the
/// variant's health configuration. Everything else stays at the NTC
/// defaults so the only degree of freedom across variants is the health
/// layer.
fn policy(health: HealthConfig) -> OffloadPolicy {
    OffloadPolicy::Ntc(NtcConfig {
        use_batching: false,
        primary_backend: Backend::Edge,
        health,
        ..Default::default()
    })
}

/// The base traffic at multiplier 1.0; rates scale linearly with the
/// multiplier. Three delay-tolerant streams (the deferral clientele)
/// plus one tight-deadline photo stream whose slack cannot absorb a
/// deferral — under saturation those batches must shed down the chain
/// instead of queueing into a miss.
fn specs(multiplier: f64) -> [StreamSpec; 4] {
    let mut tight = StreamSpec::poisson(Archetype::PhotoPipeline, 0.008 * multiplier);
    tight.slack_factor = 0.15;
    [
        StreamSpec::poisson(Archetype::PhotoPipeline, 0.02 * multiplier),
        StreamSpec::poisson(Archetype::MlInference, 0.012 * multiplier),
        StreamSpec::poisson(Archetype::LogAnalytics, 0.008 * multiplier),
        tight,
    ]
}

/// Runs the full (variant × multiplier) grid on `threads` workers and
/// returns the rows in grid order. Deterministic in `(seed, horizon,
/// multipliers)` and — by the sweep contract — independent of `threads`.
pub fn rows(seed: u64, horizon: SimDuration, multipliers: &[f64], threads: usize) -> Vec<Row> {
    let variants = variants();
    let grid: Vec<(f64, &(&'static str, HealthConfig))> =
        multipliers.iter().flat_map(|&m| variants.iter().map(move |v| (m, v))).collect();
    run_sweep_with(&grid, threads, RunScratch::new, |scratch, &(m, &(name, health)), _| {
        let engine = Engine::new(overload_environment(), seed);
        let r = engine.run_seeded(seed, &policy(health), &specs(m), horizon, scratch);
        let o = r.overload.clone().unwrap_or_default();
        Row {
            variant: name.to_string(),
            multiplier: m,
            jobs: r.jobs.len(),
            failures: r.failures(),
            deadline_misses: r.deadline_misses(),
            miss_rate: r.miss_rate(),
            goodput_per_hour: r.goodput_per_hour(),
            sheds: o.sheds,
            deferrals: o.deferrals,
            breaker_skips: o.breaker_skips,
            hedges: o.hedges,
            hedges_won: o.hedges_won,
            hedges_lost: o.hedges_lost,
            breaker_transitions: o.breaker_transitions.values().map(|&n| u64::from(n)).sum(),
            total_cost_usd: r.total_cost().as_usd_f64(),
        }
    })
}
