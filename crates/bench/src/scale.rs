//! Shared sweep core of the **Figure 11** scale experiment.
//!
//! Lives in the library (rather than the `fig11_scale` binary) so the
//! determinism integration test can run the exact sweep the figure is
//! built from at different thread counts and compare rows.
//!
//! The scenario: a metro population of `users` devices each emitting
//! delay-tolerant log-analytics jobs at a fixed per-user rate, so the
//! aggregate arrival rate — and with it the job count — scales linearly
//! with the population. CloudAll and EdgeAll both serve every point of
//! the sweep. Every run uses [`JobRetention::Aggregates`]: the engine
//! folds each job into the streaming accumulator at completion time and
//! retains no per-job vector, which is what lets the million-user point
//! fit in constant result-side memory. The figure's axes are simulated
//! jobs per wall-clock second and peak resident memory against the user
//! count; the metric columns below confirm the aggregate outputs stay
//! exact while doing so.

use ntc_core::{run_sweep_with, Engine, Environment, JobRetention, OffloadPolicy, RunScratch};
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};
use serde::Serialize;

/// Jobs per simulated second each user contributes. At the full sweep's
/// 30-minute horizon this puts the million-user point at ~3.6 M jobs —
/// two orders of magnitude past what the retained-mode experiments
/// carry.
pub const PER_USER_RATE: f64 = 0.002;

/// One measured (users, policy) cell of Figure 11.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScaleRow {
    /// Simulated user population.
    pub users: u64,
    /// Policy label (`cloud-all` / `edge-all`).
    pub policy: String,
    /// Jobs arrived within the horizon.
    pub jobs: u64,
    /// Mean end-to-end latency, seconds.
    pub mean_latency_s: f64,
    /// Median latency, seconds (histogram bucket bound).
    pub p50_s: f64,
    /// 95th-percentile latency, seconds (histogram bucket bound).
    pub p95_s: f64,
    /// 99th-percentile latency, seconds (histogram bucket bound).
    pub p99_s: f64,
    /// Deadline-miss fraction.
    pub miss_rate: f64,
    /// Jobs that terminally failed.
    pub failures: u64,
}

/// The policies compared at every population size, in plot order.
pub fn policies() -> [OffloadPolicy; 2] {
    [OffloadPolicy::CloudAll, OffloadPolicy::EdgeAll]
}

/// The user populations swept: quick keeps CI fast, the full sweep ends
/// at the million-user point `results/fig11_scale.json` is built from.
pub fn user_counts(quick: bool) -> &'static [u64] {
    if quick {
        &[10_000, 50_000]
    } else {
        &[10_000, 100_000, 300_000, 1_000_000]
    }
}

/// Horizon of one run (shrunk under `--quick`).
pub fn horizon(quick: bool) -> SimDuration {
    if quick {
        SimDuration::from_mins(10)
    } else {
        SimDuration::from_mins(30)
    }
}

/// The traffic `users` devices generate: one aggregate log-analytics
/// stream at the population's pooled rate. Tight slack (5 % of the
/// archetype deadline) keeps the miss-rate column informative at scale —
/// at the default slack neither backend ever misses and the comparison
/// degenerates.
pub fn specs(users: u64) -> [StreamSpec; 1] {
    [StreamSpec::poisson(Archetype::LogAnalytics, users as f64 * PER_USER_RATE)
        .with_slack_factor(0.05)]
}

/// Runs one (users, policy) point under streaming aggregation and
/// reduces it to a row. Shared by the sweep below and the binary's
/// serially-timed measurement loop.
pub fn run_point(
    seed: u64,
    users: u64,
    policy: &OffloadPolicy,
    horizon: SimDuration,
    scratch: &mut RunScratch,
) -> ScaleRow {
    let engine = Engine::new(Environment::metro_reference(), seed);
    let r = engine.run_retained(
        seed,
        policy,
        &specs(users),
        horizon,
        scratch,
        JobRetention::Aggregates,
    );
    let lat = r.latency_summary();
    ScaleRow {
        users,
        policy: policy.name(),
        jobs: r.job_count(),
        mean_latency_s: lat.map_or(0.0, |s| s.mean),
        p50_s: lat.map_or(0.0, |s| s.p50),
        p95_s: lat.map_or(0.0, |s| s.p95),
        p99_s: lat.map_or(0.0, |s| s.p99),
        miss_rate: r.miss_rate(),
        failures: r.failures(),
    }
}

/// Runs the full (users × policy) grid on `threads` workers and returns
/// the rows in grid order. Deterministic in `(seed, horizon, users)` and
/// — by the sweep contract — independent of `threads`.
pub fn rows(seed: u64, users: &[u64], horizon: SimDuration, threads: usize) -> Vec<ScaleRow> {
    let policies = policies();
    let grid: Vec<(u64, &OffloadPolicy)> =
        users.iter().flat_map(|&u| policies.iter().map(move |p| (u, p))).collect();
    run_sweep_with(&grid, threads, RunScratch::new, |scratch, &(u, policy), _| {
        run_point(seed, u, policy, horizon, scratch)
    })
}
