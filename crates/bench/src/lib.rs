//! # ntc-bench
//!
//! Experiment harness for the `ntc-offload` reproduction: one binary per
//! table/figure of the reconstructed evaluation (see `DESIGN.md` §4), plus
//! Criterion micro-benchmarks of the framework's own overheads.
//!
//! Every binary accepts `--seed <u64>` (default 42) and `--threads <n>`
//! (default `NTC_THREADS`, else all cores; thread count never changes the
//! numbers, only the wall-clock) and prints an aligned text table; it
//! also writes the raw series as JSON under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

pub mod dispatch;
pub mod kernel;
pub mod overload;
pub mod scale;

/// Parses `--seed <u64>` from the process arguments (default 42).
pub fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == "--seed").and_then(|w| w[1].parse().ok()).unwrap_or(42)
}

/// Parses `--quick` from the process arguments: experiments shrink their
/// horizons/replications so CI stays fast.
pub fn quick_from_args() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Resolves the sweep worker-thread count: `--threads <n>` from the
/// process arguments, else `NTC_THREADS`, else
/// [`std::thread::available_parallelism`]. Thread count never changes the
/// numbers an experiment produces — only how fast they arrive.
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--threads")
        .and_then(|w| w[1].parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(ntc_core::default_threads)
}

/// Writes `value` as pretty JSON to `results/<id>.json`, creating the
/// directory as needed. Returns the path written.
///
/// # Panics
///
/// Panics on serialisation or I/O failure — an experiment that cannot
/// record its results should fail loudly.
pub fn write_json<T: Serialize>(id: &str, value: &T) -> PathBuf {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{id}.json"));
    fs::write(&path, serde_json::to_string_pretty(value).expect("serialise results"))
        .expect("write results file");
    path
}

/// A minimal aligned-column text table for experiment output.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.1234), "12.3%");
    }
}
