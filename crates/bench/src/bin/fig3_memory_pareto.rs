//! **Figure 3** — Cost vs completion-time Pareto over FaaS memory sizes.
//!
//! Sweeps the memory ladder for the video-transcode hot component.
//! Expectation (DESIGN.md §4): execution time falls until the CPU cap,
//! cost stays ~flat below the one-vCPU knee and rises past it; the
//! allocator's pick is the cheapest point meeting the deadline budget.

use ntc_alloc::{pareto_frontier, select_memory, standard_sizes, sweep};
use ntc_bench::{f3, seed_from_args, threads_from_args, write_json, Table};
use ntc_core::run_sweep;
use ntc_serverless::{BillingModel, CpuScaling};
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::SimDuration;
use ntc_workloads::Archetype;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    memory_mib: f64,
    exec_s: f64,
    cost_usd: f64,
    on_frontier: bool,
    allocator_pick: bool,
}

fn main() {
    let seed = seed_from_args();
    let cpu = CpuScaling::lambda_like();
    let billing = BillingModel::aws_like();

    // The transcode component at a typical video input.
    let graph = Archetype::VideoTranscode.graph();
    let input = {
        let mut rng = RngStream::root(seed).derive("input");
        Archetype::VideoTranscode.sample_input(&mut rng)
    };
    let (_, transcode) =
        graph.components().max_by_key(|(_, c)| c.demand_cycles(input)).expect("non-empty graph");
    let work = transcode.demand_cycles(input);

    // Each ladder rung is an independent (exec, cost) evaluation, so the
    // ladder fans out across the sweep pool like every other grid here.
    let sizes = standard_sizes();
    let points: Vec<ntc_alloc::MemoryPoint> =
        run_sweep(&sizes, threads_from_args(), |&m, _| sweep(work, &cpu, &billing, &[m]).remove(0));
    let frontier = pareto_frontier(&points);
    let budget = SimDuration::from_mins(2);
    let pick =
        select_memory(work, budget, &cpu, &billing, &standard_sizes()).expect("ladder non-empty");

    let mut series = Vec::new();
    let mut table = Table::new(["memory", "exec", "cost $", "pareto", "allocator pick"]);
    for p in &points {
        let on_frontier = frontier.iter().any(|f| f.memory == p.memory);
        let is_pick = p.memory == pick.memory;
        table.row([
            format!("{}", p.memory),
            format!("{}", p.exec),
            format!("{:.6}", p.cost.as_usd_f64()),
            if on_frontier { "*".into() } else { String::new() },
            if is_pick { "<= pick".into() } else { String::new() },
        ]);
        series.push(Point {
            memory_mib: p.memory.as_mib_f64(),
            exec_s: p.exec.as_secs_f64(),
            cost_usd: p.cost.as_usd_f64(),
            on_frontier,
            allocator_pick: is_pick,
        });
    }

    println!(
        "Figure 3 — memory sweep for transcode ({work} at input {input}), deadline budget {budget} (seed {seed})\n",
        input = input,
    );
    table.print();
    println!();
    let cheapest = points.iter().min_by_key(|p| p.cost).expect("non-empty");
    println!(
        "shape: pick {} meets budget: {} | pick within {} of the global cheapest | frontier has {} of {} points",
        pick.memory,
        pick.exec <= budget,
        f3((pick.cost.as_usd_f64() / cheapest.cost.as_usd_f64() - 1.0) * 100.0) + "%",
        frontier.len(),
        points.len(),
    );
    let path = write_json("fig3_memory_pareto", &series);
    println!("series written to {}", path.display());
}
