//! **Figure 11** — Simulation throughput and resident memory vs user
//! population: the million-user scale run.
//!
//! Sweeps a log-analytics population from ten thousand to one million
//! users under CloudAll and EdgeAll, every point in
//! `JobRetention::Aggregates` mode: jobs fold into the streaming
//! accumulator at completion and no per-job vector is kept, so the
//! result-side memory stays constant while the job count grows by two
//! orders of magnitude. Reported per point: simulated jobs per
//! wall-clock second, wall-clock seconds, and resident memory (current
//! and peak, from `/proc/self/status`).
//!
//! Points run serially — each wall-clock figure times exactly one run —
//! so this binary takes no `--threads`; thread-count invariance of the
//! row metrics is covered by `crates/bench/tests/fig11_determinism.rs`.

use std::time::Instant;

use ntc_bench::scale::{horizon, policies, user_counts, ScaleRow};
use ntc_bench::{f3, pct, quick_from_args, seed_from_args, write_json, Table};
use ntc_core::RunScratch;
use serde::Serialize;

/// One (users, policy) measurement: the deterministic row plus this
/// machine's wall-clock and memory readings.
#[derive(Debug, Serialize)]
struct Measured {
    users: u64,
    policy: String,
    jobs: u64,
    mean_latency_s: f64,
    p50_s: f64,
    p95_s: f64,
    p99_s: f64,
    miss_rate: f64,
    failures: u64,
    wall_s: f64,
    jobs_per_sec: f64,
    /// Resident set after the run, MiB (`VmRSS`); `None` off-Linux.
    rss_mib: Option<f64>,
    /// Process-lifetime peak resident set, MiB (`VmHWM`); `None`
    /// off-Linux. Points run in ascending size, so the final point's
    /// value is the experiment's peak.
    peak_rss_mib: Option<f64>,
}

/// Reads a `kB`-valued field from `/proc/self/status` as MiB.
fn proc_status_mib(field: &str) -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn measure(row: ScaleRow, wall_s: f64) -> Measured {
    Measured {
        users: row.users,
        policy: row.policy,
        jobs: row.jobs,
        mean_latency_s: row.mean_latency_s,
        p50_s: row.p50_s,
        p95_s: row.p95_s,
        p99_s: row.p99_s,
        miss_rate: row.miss_rate,
        failures: row.failures,
        wall_s,
        jobs_per_sec: if wall_s > 0.0 { row.jobs as f64 / wall_s } else { 0.0 },
        rss_mib: proc_status_mib("VmRSS:"),
        peak_rss_mib: proc_status_mib("VmHWM:"),
    }
}

fn main() {
    let seed = seed_from_args();
    let quick = quick_from_args();
    let horizon = horizon(quick);
    let users = user_counts(quick);

    // One scratch reused across every point: steady-state memory, the
    // same way long sweeps run.
    let mut scratch = RunScratch::new();
    let mut series: Vec<Measured> = Vec::new();
    for &u in users {
        for policy in &policies() {
            let start = Instant::now();
            let row = ntc_bench::scale::run_point(seed, u, policy, horizon, &mut scratch);
            let wall = start.elapsed().as_secs_f64();
            series.push(measure(row, wall));
        }
    }

    let mut table = Table::new([
        "users",
        "policy",
        "jobs",
        "p95",
        "miss rate",
        "wall",
        "jobs/s",
        "rss MiB",
        "peak MiB",
    ]);
    for m in &series {
        table.row([
            m.users.to_string(),
            m.policy.clone(),
            m.jobs.to_string(),
            format!("{}s", f3(m.p95_s)),
            pct(m.miss_rate),
            format!("{}s", f3(m.wall_s)),
            format!("{:.0}", m.jobs_per_sec),
            m.rss_mib.map_or("n/a".into(), |v| format!("{v:.0}")),
            m.peak_rss_mib.map_or("n/a".into(), |v| format!("{v:.0}")),
        ]);
    }

    println!("Figure 11 — scale sweep over {horizon} (seed {seed}, quick={quick})\n");
    table.print();
    println!();
    let last = series.last().expect("non-empty sweep");
    let first = series.first().expect("non-empty sweep");
    // What Full retention would have pinned at the largest point, on top
    // of the summary-side vectors it re-collects: the per-job vector the
    // Aggregates knob never allocates. The remaining RSS growth above is
    // the arrival stream and batch state the engine materialises up
    // front in either mode.
    let retained_mib =
        last.jobs as f64 * std::mem::size_of::<ntc_core::JobResult>() as f64 / (1024.0 * 1024.0);
    println!(
        "shape: {}x the jobs ({} -> {}) through a constant-size metrics sketch; \
         Full retention would add {:.0} MiB of JobResults at the largest point; \
         {:.0} jobs/s sustained there",
        last.jobs / first.jobs.max(1),
        first.jobs,
        last.jobs,
        retained_mib,
        last.jobs_per_sec,
    );
    let path = write_json("fig11_scale", &series);
    println!("series written to {}", path.display());
}
