//! **Table 3** — Demand-estimator accuracy per archetype.
//!
//! One-step-ahead MAPE/p95 error of each estimator family on 10 000
//! synthetic invocations of each archetype's heaviest component.
//! Expectation (DESIGN.md §4): regression wins where demand correlates
//! with input size (video, logs), EWMA where it does not (inference), and
//! the hybrid is never far from the better of the two.

use ntc_bench::{f3, quick_from_args, seed_from_args, threads_from_args, write_json, Table};
use ntc_core::run_sweep;
use ntc_profiler::{evaluate, EstimatorKind};
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{Cycles, DataSize};
use ntc_workloads::Archetype;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    archetype: String,
    estimator: String,
    mape_pct: f64,
    p95_ape_pct: f64,
    underestimate_rate: f64,
}

fn trace(a: Archetype, n: usize, seed: u64) -> Vec<(DataSize, Cycles)> {
    let mut rng = RngStream::root(seed).derive(&format!("trace-{}", a.name()));
    let graph = a.graph();
    let (_, heavy) = graph
        .components()
        .max_by_key(|(_, c)| c.demand_cycles(DataSize::from_mib(4)))
        .expect("non-empty graph");
    let sigma = a.demand_noise_sigma();
    (0..n)
        .map(|_| {
            let input = a.sample_input(&mut rng);
            let actual = heavy.demand_cycles(input).get() as f64 * rng.lognormal(0.0, sigma);
            (input, Cycles::new(actual.round() as u64))
        })
        .collect()
}

fn main() {
    let seed = seed_from_args();
    let n = if quick_from_args() { 2_000 } else { 10_000 };

    // One sweep point per archetype: the trace synthesis dominates, and
    // every estimator family shares the archetype's trace.
    let archetypes = Archetype::all();
    let per_arch: Vec<(Vec<Row>, (String, f64))> =
        run_sweep(&archetypes, threads_from_args(), |&a, _| {
            let t = trace(a, n, seed);
            let mut arch_rows = Vec::new();
            let mut best: Option<(String, f64)> = None;
            for kind in EstimatorKind::all() {
                let mut est = kind.build();
                let report = evaluate(est.as_mut(), &t, 20).expect("long trace");
                if best.as_ref().is_none_or(|(_, m)| report.mape < *m) {
                    best = Some((kind.to_string(), report.mape));
                }
                arch_rows.push(Row {
                    archetype: a.name().into(),
                    estimator: kind.to_string(),
                    mape_pct: report.mape,
                    p95_ape_pct: report.p95_ape,
                    underestimate_rate: report.underestimate_rate,
                });
            }
            (arch_rows, best.expect("estimators ran"))
        });
    let mut rows = Vec::new();
    let mut table = Table::new(["archetype", "estimator", "MAPE %", "p95 APE %", "under-rate"]);
    for (arch_rows, (bname, bmape)) in per_arch {
        let archetype = arch_rows[0].archetype.clone();
        for r in arch_rows {
            table.row([
                r.archetype.clone(),
                r.estimator.clone(),
                f3(r.mape_pct),
                f3(r.p95_ape_pct),
                f3(r.underestimate_rate),
            ]);
            rows.push(r);
        }
        table.row([
            archetype,
            format!("-> best: {bname}"),
            f3(bmape),
            String::new(),
            String::new(),
        ]);
    }

    println!("Table 3 — demand-estimation accuracy over {n} invocations (seed {seed})\n");
    table.print();
    println!();
    let mape_of = |arch: &str, est: &str| {
        rows.iter().find(|r| r.archetype == arch && r.estimator == est).expect("present").mape_pct
    };
    println!(
        "shape: regression beats ewma on input-correlated video ({} vs {}) | ewma competitive on inference ({} vs {}) | hybrid tracks the winner",
        f3(mape_of("video-transcode", "regression")),
        f3(mape_of("video-transcode", "ewma")),
        f3(mape_of("ml-inference", "ewma")),
        f3(mape_of("ml-inference", "regression")),
    );
    let path = write_json("tab3_demand_estimation", &rows);
    println!("series written to {}", path.display());
}
