//! Writes the committed `engine_dispatch` perf baseline.
//!
//! Times the same workloads as `benches/engine_dispatch.rs` with a plain
//! `Instant` harness (median of several rounds) and writes
//! `BENCH_dispatch.json` at the workspace root. Numbers are
//! machine-dependent; the committed file records one reference machine
//! so future PRs can watch the *trajectory*, not assert absolute values.

use std::hint::black_box;
use std::time::Instant;

use ntc_bench::dispatch::{engine_run_short, DispatchFixture};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Baseline {
    bench: &'static str,
    units: &'static str,
    regenerate: &'static str,
    note: &'static str,
    results: Vec<Entry>,
}

#[derive(Debug, Serialize)]
struct Entry {
    name: String,
    ns_per_op: u128,
    ops_timed: u64,
    rounds: u32,
}

/// Runs `iters` calls of `op` per round, `rounds` times, and returns the
/// median per-op nanoseconds.
fn median_ns(rounds: u32, iters: u64, mut op: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..rounds)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                op();
            }
            start.elapsed().as_nanos() / u128::from(iters)
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let mut results = Vec::new();

    let fx = DispatchFixture::new(1);
    let ids = fx.site_ids();
    results.push(Entry {
        name: "registry_lookup".into(),
        ns_per_op: median_ns(7, 100_000, || {
            for id in &ids {
                black_box(fx.lookup(id));
            }
        }),
        ops_timed: 100_000,
        rounds: 7,
    });

    for id in &ids {
        let mut fx = DispatchFixture::new(1);
        results.push(Entry {
            name: format!("invoke/{id}"),
            ns_per_op: median_ns(7, 10_000, || {
                black_box(fx.invoke_once(id));
            }),
            ops_timed: 10_000,
            rounds: 7,
        });
    }

    results.push(Entry {
        name: "end_to_end/photo_30min".into(),
        ns_per_op: median_ns(5, 1, || {
            black_box(engine_run_short(1));
        }),
        ops_timed: 1,
        rounds: 5,
    });

    let baseline = Baseline {
        bench: "engine_dispatch",
        units: "nanoseconds per operation (median over rounds)",
        regenerate: "cargo run --release -p ntc-bench --bin bench_dispatch_baseline",
        note: "machine-dependent reference numbers; compare trends across PRs on the \
               same hardware, not absolute values across machines",
        results,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("serialise baseline");
    std::fs::write("BENCH_dispatch.json", format!("{json}\n")).expect("write BENCH_dispatch.json");
    println!("{json}");
    println!("\nbaseline written to BENCH_dispatch.json");
}
