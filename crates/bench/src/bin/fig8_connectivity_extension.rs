//! **Figure 8 (extension)** — Intermittent connectivity.
//!
//! Not part of the reconstructed core evaluation (DESIGN.md §4): mobile
//! users go offline (subway commutes, dead zones). A time-critical
//! offloaded job stalls on the outage; a non-time-critical one simply
//! rides it out inside its slack. Expectation: outages inflate the
//! latency tail of every offloading policy but produce deadline misses
//! only where slack is tight; local-only is immune; the NTC framework's
//! deadline-safe holding (which reserves for the worst outage window)
//! keeps misses at zero.

use ntc_bench::{f3, pct, quick_from_args, seed_from_args, threads_from_args, write_json, Table};
use ntc_core::{run_sweep_with, Engine, Environment, OffloadPolicy, RunScratch};
use ntc_net::ConnectivityTrace;
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    connectivity: String,
    policy: String,
    jobs: usize,
    p50_s: f64,
    p95_s: f64,
    miss_rate: f64,
}

fn main() {
    let seed = seed_from_args();
    let quick = quick_from_args();
    let horizon = if quick { SimDuration::from_hours(12) } else { SimDuration::from_hours(24) };

    let traces: [(&str, ConnectivityTrace); 3] = [
        ("always-on", ConnectivityTrace::always()),
        ("commuter", ConnectivityTrace::commuter()),
        ("flaky", ConnectivityTrace::flaky()),
    ];
    // Photo batches with their modest 30-minute slack: outages are a real
    // fraction of the deadline budget.
    let specs = [StreamSpec::poisson(Archetype::PhotoPipeline, 0.02)];

    let grid: Vec<(usize, OffloadPolicy)> = (0..traces.len())
        .flat_map(|ti| {
            [OffloadPolicy::LocalOnly, OffloadPolicy::CloudAll, OffloadPolicy::ntc()]
                .map(|p| (ti, p))
        })
        .collect();
    let rows: Vec<Row> =
        run_sweep_with(&grid, threads_from_args(), RunScratch::new, |scratch, (ti, policy), _| {
            let (name, trace) = &traces[*ti];
            let mut env = Environment::metro_reference();
            env.connectivity = trace.clone();
            let engine = Engine::new(env, seed);
            let r = engine.run_seeded(seed, policy, &specs, horizon, scratch);
            let s = r.latency_summary().expect("jobs ran");
            Row {
                connectivity: (*name).into(),
                policy: policy.name(),
                jobs: r.jobs.len(),
                p50_s: s.p50,
                p95_s: s.p95,
                miss_rate: r.miss_rate(),
            }
        });
    let mut table =
        Table::new(["connectivity", "offline", "policy", "jobs", "p50", "p95", "miss rate"]);
    for r in &rows {
        let (_, trace) = traces.iter().find(|(n, _)| *n == r.connectivity).expect("present");
        table.row([
            r.connectivity.clone(),
            pct(trace.offline_fraction()),
            r.policy.clone(),
            r.jobs.to_string(),
            format!("{}s", f3(r.p50_s)),
            format!("{}s", f3(r.p95_s)),
            pct(r.miss_rate),
        ]);
    }

    println!("Figure 8 (extension) — connectivity outages over {horizon} (seed {seed})\n");
    table.print();
    println!();
    let find = |c: &str, p: &str| {
        rows.iter().find(|r| r.connectivity == c && r.policy == p).expect("present")
    };
    let local_flaky = find("flaky", "local-only");
    let local_on = find("always-on", "local-only");
    let cloud_flaky = find("flaky", "cloud-all");
    let cloud_on = find("always-on", "cloud-all");
    let ntc_flaky = find("flaky", "ntc");
    println!(
        "shape: local-only immune (p95 {}s vs {}s) | cloud-all tail inflates {}s -> {}s | ntc holds through outages with {} misses",
        f3(local_on.p95_s),
        f3(local_flaky.p95_s),
        f3(cloud_on.p95_s),
        f3(cloud_flaky.p95_s),
        pct(ntc_flaky.miss_rate),
    );
    let path = write_json("fig8_connectivity_extension", &rows);
    println!("series written to {}", path.display());
}
