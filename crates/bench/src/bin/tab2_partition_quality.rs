//! **Table 2** — Partitioning-algorithm quality against the exhaustive
//! optimum.
//!
//! 100 random layered DAGs plus the three pipeline-like archetype graphs.
//! Expectation (DESIGN.md §4): min-cut matches the optimum exactly;
//! greedy lands within ~10–20 %; naive full-offload pays the transfer
//! penalty; keep-local pays the device-compute penalty.

use ntc_bench::{f3, pct, seed_from_args, threads_from_args, write_json, Table};
use ntc_core::run_sweep_with;
use ntc_partition::{
    standard_roster, CostParams, ExhaustivePartitioner, PartitionContext, Partitioner,
};
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::DataSize;
use ntc_taskgraph::{random_layered_dag, RandomDagConfig, TaskGraph};
use ntc_workloads::Archetype;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    algorithm: String,
    mean_gap_pct: f64,
    max_gap_pct: f64,
    optimal_rate: f64,
    mean_bytes_moved_kib: f64,
    mean_offloaded: f64,
    mean_makespan_s: f64,
}

fn graphs(seed: u64) -> Vec<TaskGraph> {
    let root = RngStream::root(seed).derive("tab2");
    let mut gs: Vec<TaskGraph> = (0..100)
        .map(|i| {
            let mut rng = root.derive_index(i);
            let cfg = RandomDagConfig {
                nodes: 6 + (i % 9) as usize,
                layers: 3 + (i % 3) as usize,
                ..Default::default()
            };
            random_layered_dag(&mut rng, &cfg)
        })
        .collect();
    gs.push(Archetype::PhotoPipeline.graph());
    gs.push(Archetype::ReportRendering.graph());
    gs.push(Archetype::LogAnalytics.graph());
    gs
}

fn main() {
    let seed = seed_from_args();
    let gs = graphs(seed);
    let input = DataSize::from_mib(2);
    let params = CostParams::default();

    let roster = standard_roster();
    // Per-graph work (exhaustive optimum + every roster algorithm) fans
    // out across the pool; trait objects are not Sync, so each worker
    // builds its own roster copy once.
    let per_graph: Vec<Vec<(f64, f64, f64, f64)>> =
        run_sweep_with(&gs, threads_from_args(), standard_roster, |roster, g, _| {
            let ctx = PartitionContext::new(g, input, params);
            let opt = ctx.evaluate(&ExhaustivePartitioner.partition(&ctx)).weighted;
            roster
                .iter()
                .map(|p| {
                    let plan = p.partition(&ctx);
                    plan.validate(g).expect("roster plans are valid");
                    let cost = ctx.evaluate(&plan);
                    (
                        (cost.weighted - opt).max(0.0) / opt.max(1.0),
                        cost.bytes_moved.as_bytes() as f64 / 1024.0,
                        plan.offloaded().count() as f64,
                        cost.makespan.as_secs_f64(),
                    )
                })
                .collect()
        });
    let mut gaps: Vec<Vec<f64>> = vec![Vec::new(); roster.len()];
    let mut bytes: Vec<Vec<f64>> = vec![Vec::new(); roster.len()];
    let mut offloaded: Vec<Vec<f64>> = vec![Vec::new(); roster.len()];
    let mut makespans: Vec<Vec<f64>> = vec![Vec::new(); roster.len()];
    for row in &per_graph {
        for (pi, &(g, b, o, m)) in row.iter().enumerate() {
            gaps[pi].push(g);
            bytes[pi].push(b);
            offloaded[pi].push(o);
            makespans[pi].push(m);
        }
    }

    let mut rows = Vec::new();
    let mut table = Table::new([
        "algorithm",
        "mean gap",
        "max gap",
        "optimal rate",
        "bytes moved (KiB)",
        "mean offloaded",
        "makespan (s)",
    ]);
    for (pi, p) in roster.iter().enumerate() {
        let n = gaps[pi].len() as f64;
        let mean_gap = gaps[pi].iter().sum::<f64>() / n;
        let max_gap = gaps[pi].iter().cloned().fold(0.0, f64::max);
        let optimal_rate = gaps[pi].iter().filter(|&&g| g < 1e-6).count() as f64 / n;
        let mean_bytes = bytes[pi].iter().sum::<f64>() / n;
        let mean_off = offloaded[pi].iter().sum::<f64>() / n;
        let mean_mk = makespans[pi].iter().sum::<f64>() / n;
        table.row([
            p.name().to_string(),
            pct(mean_gap),
            pct(max_gap),
            pct(optimal_rate),
            f3(mean_bytes),
            f3(mean_off),
            f3(mean_mk),
        ]);
        rows.push(Row {
            algorithm: p.name().into(),
            mean_gap_pct: mean_gap * 100.0,
            max_gap_pct: max_gap * 100.0,
            optimal_rate,
            mean_bytes_moved_kib: mean_bytes,
            mean_offloaded: mean_off,
            mean_makespan_s: mean_mk,
        });
    }

    println!("Table 2 — partition quality on {} graphs (seed {seed})\n", gs.len());
    table.print();
    println!();
    let mincut = rows.iter().find(|r| r.algorithm == "min-cut").expect("present");
    let greedy = rows.iter().find(|r| r.algorithm == "greedy").expect("present");
    let full = rows.iter().find(|r| r.algorithm == "full-offload").expect("present");
    println!(
        "shape: min-cut optimal on {} of graphs | greedy within {} on average | full-offload moves {:.0}x the bytes of min-cut",
        pct(mincut.optimal_rate),
        pct(greedy.mean_gap_pct / 100.0),
        full.mean_bytes_moved_kib / mincut.mean_bytes_moved_kib.max(1e-9),
    );
    let path = write_json("tab2_partition_quality", &rows);
    println!("series written to {}", path.display());
}
