//! **Figure 7 (extension)** — Off-peak steering of delay-tolerant jobs.
//!
//! Not part of the reconstructed core evaluation (DESIGN.md §4): this
//! implements the natural "future work" of contribution C5. With diurnal
//! WAN congestion (evening bandwidth halves), jobs whose slack reaches the
//! nightly 00:00–06:00 band are held until then: they ride uncongested
//! bandwidth (less UE radio time) and coalesce into one nightly mega-batch
//! per application (more amortisation). Expectation: lower cost and lower
//! device energy than plain windowed batching, at the price of latency the
//! workload tolerates by definition — and still zero deadline misses.

use ntc_bench::{f3, pct, quick_from_args, seed_from_args, threads_from_args, write_json, Table};
use ntc_core::{run_sweep_with, Engine, Environment, NtcConfig, OffloadPolicy, RunScratch};
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    policy: String,
    jobs: usize,
    total_cost_usd: f64,
    misses: u64,
    p95_s: f64,
    device_energy_j: f64,
    mean_hold_min: f64,
}

fn main() {
    let seed = seed_from_args();
    let quick = quick_from_args();
    let horizon = if quick { SimDuration::from_hours(24) } else { SimDuration::from_hours(48) };
    let engine = Engine::new(Environment::metro_reference(), seed);

    // Long-slack workloads that can actually reach the night band.
    let specs = [
        StreamSpec::diurnal(Archetype::ReportRendering, 0.01).with_slack_factor(2.0), // 16 h slack
        StreamSpec::diurnal(Archetype::SciSweep, 0.003),                              // 24 h slack
        StreamSpec::diurnal(Archetype::VideoTranscode, 0.003).with_slack_factor(3.0), // 12 h slack
    ];

    let policies = [
        OffloadPolicy::CloudAll,
        OffloadPolicy::ntc(),
        OffloadPolicy::Ntc(NtcConfig { off_peak: true, ..Default::default() }),
    ];

    let swept: Vec<(Row, Option<Vec<u64>>)> =
        run_sweep_with(&policies, threads_from_args(), RunScratch::new, |scratch, policy, _| {
            let r = engine.run_seeded(seed, policy, &specs, horizon, scratch);
            let profile = (policy.name() == "ntc[+offpeak]").then(|| {
                (0..r.completions_per_hour.len().min(48))
                    .map(|i| r.completions_per_hour.count(i))
                    .collect()
            });
            let p95 = r.latency_summary().map(|s| s.p95).unwrap_or(0.0);
            let hold: f64 =
                r.jobs.iter().map(|j| (j.dispatched - j.arrival).as_secs_f64()).sum::<f64>()
                    / r.jobs.len().max(1) as f64
                    / 60.0;
            let row = Row {
                policy: policy.name(),
                jobs: r.jobs.len(),
                total_cost_usd: r.total_cost().as_usd_f64(),
                misses: r.deadline_misses(),
                p95_s: p95,
                device_energy_j: r.device_energy.as_joules_f64(),
                mean_hold_min: hold,
            };
            (row, profile)
        });
    let night_profile: Option<Vec<u64>> = swept.iter().find_map(|(_, p)| p.clone());
    let rows: Vec<Row> = swept.into_iter().map(|(row, _)| row).collect();
    let mut table =
        Table::new(["policy", "jobs", "total $", "misses", "p95", "device J", "mean hold"]);
    for r in &rows {
        table.row([
            r.policy.clone(),
            r.jobs.to_string(),
            format!("{:.4}", r.total_cost_usd),
            r.misses.to_string(),
            format!("{}s", f3(r.p95_s)),
            f3(r.device_energy_j),
            format!("{:.1}min", r.mean_hold_min),
        ]);
    }

    println!(
        "Figure 7 (extension) — off-peak steering over {horizon} (seed {seed}, quick={quick})\n"
    );
    table.print();
    println!();
    let by = |name: &str| rows.iter().find(|r| r.policy == name).expect("present");
    let (ntc, off) = (by("ntc"), by("ntc[+offpeak]"));
    println!(
        "shape: off-peak cost ${:.4} <= windowed ${:.4}: {} | off-peak device energy {} vs {} J ({} saved) | misses: {}",
        off.total_cost_usd,
        ntc.total_cost_usd,
        off.total_cost_usd <= ntc.total_cost_usd * 1.001,
        f3(off.device_energy_j),
        f3(ntc.device_energy_j),
        pct(1.0 - off.device_energy_j / ntc.device_energy_j),
        off.misses,
    );
    if let Some(profile) = night_profile {
        let night: u64 =
            profile.iter().enumerate().filter(|&(h, _)| h % 24 < 7).map(|(_, &c)| c).sum();
        let total: u64 = profile.iter().sum();
        println!(
            "completion profile: {} of {} off-peak completions land in hours 00-07 ({})",
            night,
            total,
            pct(night as f64 / total.max(1) as f64),
        );
    }
    let path = write_json("fig7_offpeak_extension", &rows);
    println!("series written to {}", path.display());
}
