//! **Table 4** — CI/CD pipeline overhead and canary safety.
//!
//! Runs 50 releases through the pipeline with and without the offloading
//! stages; 20 % of releases carry an injected demand regression.
//! Expectation (DESIGN.md §4): the offload stages add a bounded, mostly
//! profiling-budget overhead; the canary catches the injected regressions
//! and rollback keeps the previous plan live; healthy releases are not
//! falsely rolled back.

use ntc_bench::{f3, pct, seed_from_args, threads_from_args, write_json, Table};
use ntc_cicd::{Outcome, Pipeline, PipelineConfig, ReleaseSpec, Stage};
use ntc_core::run_sweep;
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::SimDuration;
use ntc_workloads::Archetype;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Summary {
    variant: String,
    releases: u32,
    mean_duration_min: f64,
    profile_share_pct: f64,
    injected_regressions: u32,
    caught: u32,
    false_rollbacks: u32,
}

fn run_variant(offloading: bool, releases: u32, seed: u64) -> Summary {
    let cfg = PipelineConfig { offloading_stages: offloading, ..Default::default() };
    let mut pipeline = Pipeline::new(cfg, RngStream::root(seed));
    let mut rng = RngStream::root(seed).derive("inject");
    let graph = Archetype::ReportRendering.graph();

    let mut total = SimDuration::ZERO;
    let mut profile_total = SimDuration::ZERO;
    let mut injected = 0u32;
    let mut caught = 0u32;
    let mut false_rollbacks = 0u32;
    for v in 1..=u64::from(releases) {
        let bad = v > 1 && rng.chance(0.2);
        let demand_factor = if bad { 2.5 + rng.uniform() * 1.5 } else { 1.0 };
        if bad {
            injected += 1;
        }
        let report = pipeline.run(&ReleaseSpec {
            version: v,
            graph: graph.clone(),
            demand_factor,
            noise_sigma: 0.1,
        });
        total += report.total();
        profile_total += report.stage(Stage::Profile).unwrap_or(SimDuration::ZERO);
        match report.outcome {
            Outcome::RolledBack { .. } if bad => caught += 1,
            Outcome::RolledBack { .. } => false_rollbacks += 1,
            _ => {}
        }
    }
    Summary {
        variant: if offloading { "with offload stages".into() } else { "conventional".into() },
        releases,
        mean_duration_min: total.as_secs_f64() / 60.0 / f64::from(releases),
        profile_share_pct: 100.0 * profile_total.as_secs_f64() / total.as_secs_f64().max(1e-9),
        injected_regressions: injected,
        caught,
        false_rollbacks,
    }
}

fn main() {
    let seed = seed_from_args();
    let releases = 50;
    // Each variant is an independent 50-release pipeline replay; the two
    // run side by side on the sweep pool.
    let variants = [true, false];
    let mut swept =
        run_sweep(&variants, threads_from_args(), |&o, _| run_variant(o, releases, seed))
            .into_iter();
    let with = swept.next().expect("two variants");
    let without = swept.next().expect("two variants");

    let mut table = Table::new([
        "variant",
        "releases",
        "mean duration (min)",
        "profile share",
        "injected",
        "caught",
        "false rollbacks",
    ]);
    for s in [&without, &with] {
        table.row([
            s.variant.clone(),
            s.releases.to_string(),
            f3(s.mean_duration_min),
            pct(s.profile_share_pct / 100.0),
            s.injected_regressions.to_string(),
            s.caught.to_string(),
            s.false_rollbacks.to_string(),
        ]);
    }

    println!("Table 4 — pipeline overhead and canary safety, {releases} releases (seed {seed})\n");
    table.print();
    println!();
    let overhead = with.mean_duration_min - without.mean_duration_min;
    println!(
        "shape: offload stages add {} min/release ({} of which is profiling budget) | canary catch rate {} | false rollbacks {}",
        f3(overhead),
        pct(with.profile_share_pct / 100.0),
        pct(if with.injected_regressions == 0 {
            1.0
        } else {
            f64::from(with.caught) / f64::from(with.injected_regressions)
        }),
        with.false_rollbacks,
    );
    let path = write_json("tab4_cicd_overhead", &[without, with]);
    println!("series written to {}", path.display());
}
