//! **Figure 4** — Cost saving vs deadline slack from delay-tolerant
//! batching.
//!
//! Runs report-rendering traffic at increasing slack factors, with
//! batching on vs off. Expectation (DESIGN.md §4): zero slack yields no
//! saving; savings grow with slack (cold starts amortise over warm
//! batches) and saturate once windows exceed the keep-alive TTL.

use ntc_bench::{f3, pct, quick_from_args, seed_from_args, threads_from_args, write_json, Table};
use ntc_core::{run_sweep_with, Engine, Environment, NtcConfig, OffloadPolicy, RunScratch};
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    slack_factor: f64,
    slack_hours: f64,
    cost_batched_usd: f64,
    cost_unbatched_usd: f64,
    saving_pct: f64,
    misses_batched: u64,
    misses_unbatched: u64,
    mean_hold_s: f64,
}

fn main() {
    let seed = seed_from_args();
    let quick = quick_from_args();
    let horizon = if quick { SimDuration::from_hours(6) } else { SimDuration::from_hours(24) };
    let engine = Engine::new(Environment::metro_reference(), seed);

    let batched = OffloadPolicy::ntc();
    let unbatched = OffloadPolicy::Ntc(NtcConfig { use_batching: false, ..Default::default() });

    let factors = [0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0];
    let series: Vec<Point> =
        run_sweep_with(&factors, threads_from_args(), RunScratch::new, |scratch, &factor, _| {
            let specs =
                [StreamSpec::poisson(Archetype::ReportRendering, 0.005).with_slack_factor(factor)];
            let rb = engine.run_seeded(seed, &batched, &specs, horizon, scratch);
            let ru = engine.run_seeded(seed, &unbatched, &specs, horizon, scratch);
            let cb = rb.total_cost().as_usd_f64();
            let cu = ru.total_cost().as_usd_f64();
            let saving = if cu > 0.0 { 1.0 - cb / cu } else { 0.0 };
            let hold: f64 =
                rb.jobs.iter().map(|j| (j.dispatched - j.arrival).as_secs_f64()).sum::<f64>()
                    / rb.jobs.len().max(1) as f64;
            let slack_hours =
                Archetype::ReportRendering.typical_slack().as_secs_f64() * factor / 3600.0;
            Point {
                slack_factor: factor,
                slack_hours,
                cost_batched_usd: cb,
                cost_unbatched_usd: cu,
                saving_pct: saving * 100.0,
                misses_batched: rb.deadline_misses(),
                misses_unbatched: ru.deadline_misses(),
                mean_hold_s: hold,
            }
        });
    let mut table =
        Table::new(["slack", "batched $", "unbatched $", "saving", "misses (b/u)", "mean hold"]);
    for p in &series {
        table.row([
            format!("{}x ({:.1}h)", p.slack_factor, p.slack_hours),
            format!("{:.4}", p.cost_batched_usd),
            format!("{:.4}", p.cost_unbatched_usd),
            pct(p.saving_pct / 100.0),
            format!("{}/{}", p.misses_batched, p.misses_unbatched),
            format!("{}s", f3(p.mean_hold_s)),
        ]);
    }

    println!("Figure 4 — batching saving vs deadline slack over {horizon} (seed {seed})\n");
    table.print();
    println!();
    let zero = &series[0];
    let best = series
        .iter()
        .max_by(|a, b| a.saving_pct.partial_cmp(&b.saving_pct).expect("finite"))
        .expect("non-empty");
    println!(
        "shape: zero slack saves {} | peak saving {} at {}x slack | batching never misses a deadline: {}",
        pct(zero.saving_pct / 100.0),
        pct(best.saving_pct / 100.0),
        best.slack_factor,
        // Skip the degenerate zero-slack row (deadline == arrival is
        // infeasible for any policy).
        series.iter().skip(1).all(|p| p.misses_batched == 0),
    );
    let path = write_json("fig4_deadline_batching", &series);
    println!("series written to {}", path.display());
}
