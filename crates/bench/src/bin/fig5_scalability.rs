//! **Figure 5** — Sustained throughput and tail latency vs offered load:
//! edge fleet vs cloud serverless.
//!
//! Log-analytics traffic scaled by user population. Expectation
//! (DESIGN.md §4): the pre-provisioned edge saturates at its slot
//! capacity — queueing blows up the p95 and deadline misses appear —
//! while the serverless platform scales out ~linearly.

use ntc_bench::{f3, pct, quick_from_args, seed_from_args, threads_from_args, write_json, Table};
use ntc_core::{run_sweep_with, Engine, Environment, OffloadPolicy, RunScratch};
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    users: u32,
    rate_per_sec: f64,
    policy: String,
    jobs: usize,
    p50_s: f64,
    p95_s: f64,
    miss_rate: f64,
}

fn main() {
    let seed = seed_from_args();
    let quick = quick_from_args();
    let horizon = if quick { SimDuration::from_mins(30) } else { SimDuration::from_hours(2) };
    let per_user_rate = 0.002; // one log batch per user every ~8 minutes

    let engine = Engine::new(Environment::metro_reference(), seed);
    // The edge fleet has 32 slots at ~10 s/job ≈ 3.3 jobs/s capacity; the
    // sweep deliberately crosses it.
    let user_counts: &[u32] =
        if quick { &[10, 100, 1000, 3000] } else { &[10, 50, 100, 250, 500, 1000, 2000, 3000] };

    let grid: Vec<(u32, OffloadPolicy)> = user_counts
        .iter()
        .flat_map(|&u| [OffloadPolicy::EdgeAll, OffloadPolicy::CloudAll].map(|p| (u, p)))
        .collect();
    let series: Vec<Point> = run_sweep_with(
        &grid,
        threads_from_args(),
        RunScratch::new,
        |scratch, (users, policy), _| {
            let rate = f64::from(*users) * per_user_rate;
            // Tighter-than-typical slack so saturation shows up as misses.
            let specs =
                [StreamSpec::poisson(Archetype::LogAnalytics, rate).with_slack_factor(0.05)];
            let r = engine.run_seeded(seed, policy, &specs, horizon, scratch);
            let s = r.latency_summary();
            let (p50, p95) = s.map(|s| (s.p50, s.p95)).unwrap_or((0.0, 0.0));
            Point {
                users: *users,
                rate_per_sec: rate,
                policy: policy.name(),
                jobs: r.jobs.len(),
                p50_s: p50,
                p95_s: p95,
                miss_rate: r.miss_rate(),
            }
        },
    );
    let mut table = Table::new(["users", "rate/s", "policy", "jobs", "p50", "p95", "miss rate"]);
    for p in &series {
        table.row([
            p.users.to_string(),
            f3(p.rate_per_sec),
            p.policy.clone(),
            p.jobs.to_string(),
            format!("{}s", f3(p.p50_s)),
            format!("{}s", f3(p.p95_s)),
            pct(p.miss_rate),
        ]);
    }

    println!("Figure 5 — load scalability over {horizon} (seed {seed}, quick={quick})\n");
    table.print();
    println!();
    let max_users = *user_counts.last().expect("non-empty");
    let edge_hi =
        series.iter().find(|p| p.users == max_users && p.policy == "edge-all").expect("present");
    let cloud_hi =
        series.iter().find(|p| p.users == max_users && p.policy == "cloud-all").expect("present");
    println!(
        "shape: at {} users edge p95 {}s vs cloud p95 {}s | edge miss rate {} vs cloud {}",
        max_users,
        f3(edge_hi.p95_s),
        f3(cloud_hi.p95_s),
        pct(edge_hi.miss_rate),
        pct(cloud_hi.miss_rate),
    );
    let path = write_json("fig5_scalability", &series);
    println!("series written to {}", path.display());
}
