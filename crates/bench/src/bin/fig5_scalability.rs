//! **Figure 5** — Sustained throughput and tail latency vs offered load:
//! edge fleet vs cloud serverless.
//!
//! Log-analytics traffic scaled by user population. Expectation
//! (DESIGN.md §4): the pre-provisioned edge saturates at its slot
//! capacity — queueing blows up the p95 and deadline misses appear —
//! while the serverless platform scales out ~linearly.

use ntc_bench::{f3, pct, quick_from_args, seed_from_args, write_json, Table};
use ntc_core::{Engine, Environment, OffloadPolicy};
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    users: u32,
    rate_per_sec: f64,
    policy: String,
    jobs: usize,
    p50_s: f64,
    p95_s: f64,
    miss_rate: f64,
}

fn main() {
    let seed = seed_from_args();
    let quick = quick_from_args();
    let horizon = if quick { SimDuration::from_mins(30) } else { SimDuration::from_hours(2) };
    let per_user_rate = 0.002; // one log batch per user every ~8 minutes

    let engine = Engine::new(Environment::metro_reference(), seed);
    // The edge fleet has 32 slots at ~10 s/job ≈ 3.3 jobs/s capacity; the
    // sweep deliberately crosses it.
    let user_counts: &[u32] =
        if quick { &[10, 100, 1000, 3000] } else { &[10, 50, 100, 250, 500, 1000, 2000, 3000] };

    let mut series = Vec::new();
    let mut table = Table::new(["users", "rate/s", "policy", "jobs", "p50", "p95", "miss rate"]);
    for &users in user_counts {
        let rate = f64::from(users) * per_user_rate;
        // Tighter-than-typical slack so saturation shows up as misses.
        let specs = [StreamSpec::poisson(Archetype::LogAnalytics, rate).with_slack_factor(0.05)];
        for policy in [OffloadPolicy::EdgeAll, OffloadPolicy::CloudAll] {
            let r = engine.run(&policy, &specs, horizon);
            let s = r.latency_summary();
            let (p50, p95) = s.map(|s| (s.p50, s.p95)).unwrap_or((0.0, 0.0));
            table.row([
                users.to_string(),
                f3(rate),
                policy.name(),
                r.jobs.len().to_string(),
                format!("{}s", f3(p50)),
                format!("{}s", f3(p95)),
                pct(r.miss_rate()),
            ]);
            series.push(Point {
                users,
                rate_per_sec: rate,
                policy: policy.name(),
                jobs: r.jobs.len(),
                p50_s: p50,
                p95_s: p95,
                miss_rate: r.miss_rate(),
            });
        }
    }

    println!("Figure 5 — load scalability over {horizon} (seed {seed}, quick={quick})\n");
    table.print();
    println!();
    let max_users = *user_counts.last().expect("non-empty");
    let edge_hi =
        series.iter().find(|p| p.users == max_users && p.policy == "edge-all").expect("present");
    let cloud_hi =
        series.iter().find(|p| p.users == max_users && p.policy == "cloud-all").expect("present");
    println!(
        "shape: at {} users edge p95 {}s vs cloud p95 {}s | edge miss rate {} vs cloud {}",
        max_users,
        f3(edge_hi.p95_s),
        f3(cloud_hi.p95_s),
        pct(edge_hi.miss_rate),
        pct(cloud_hi.miss_rate),
    );
    let path = write_json("fig5_scalability", &series);
    println!("series written to {}", path.display());
}
