//! **Figure 9** — Fault tolerance of NTC offloading (robustness
//! extension).
//!
//! A mixed archetype stream over a sweep of transient-fault rates.
//! Expectation (DESIGN.md §Fault model & recovery): the latency-critical
//! baselines treat the first failure as final, so their job loss tracks
//! the fault rate; the NTC policy absorbs the same faults with patient
//! retries and backend fallback, completing essentially every job at the
//! price of extra attempts and backoff time — delay tolerance buys
//! robustness, not just cheap latency.

use ntc_bench::{f3, pct, quick_from_args, seed_from_args, threads_from_args, write_json, Table};
use ntc_core::{
    run_sweep_with, Engine, Environment, FaultConfig, NtcConfig, OffloadPolicy, RetryPolicy,
    RunScratch,
};
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    policy: String,
    fault_rate: f64,
    jobs: usize,
    failures: u64,
    loss_rate: f64,
    total_retries: u64,
    total_fallbacks: u64,
    mean_attempts: f64,
    backoff_s: f64,
    miss_rate: f64,
    total_cost_usd: f64,
}

fn main() {
    let seed = seed_from_args();
    let quick = quick_from_args();
    let horizon = if quick { SimDuration::from_hours(4) } else { SimDuration::from_hours(12) };
    let rates = [0.0, 0.05, 0.10, 0.20, 0.30];

    let specs = [
        StreamSpec::poisson(Archetype::PhotoPipeline, 0.01),
        StreamSpec::poisson(Archetype::ReportRendering, 0.004),
        StreamSpec::poisson(Archetype::MlInference, 0.008),
        StreamSpec::poisson(Archetype::LogAnalytics, 0.006),
    ];

    let no_retry = OffloadPolicy::Ntc(NtcConfig {
        retry: RetryPolicy::none(),
        fallback: false,
        ..Default::default()
    });
    let policies =
        [OffloadPolicy::CloudAll, OffloadPolicy::EdgeAll, no_retry, OffloadPolicy::ntc()];

    let grid: Vec<(f64, &OffloadPolicy)> =
        rates.iter().flat_map(|&rate| policies.iter().map(move |p| (rate, p))).collect();
    let rows: Vec<Row> = run_sweep_with(
        &grid,
        threads_from_args(),
        RunScratch::new,
        |scratch, &(rate, policy), _| {
            let mut env = Environment::metro_reference();
            env.faults = FaultConfig::transient(rate);
            let engine = Engine::new(env, seed);
            let r = engine.run_seeded(seed, policy, &specs, horizon, scratch);
            let loss =
                if r.jobs.is_empty() { 0.0 } else { r.failures() as f64 / r.jobs.len() as f64 };
            Row {
                policy: policy.name(),
                fault_rate: rate,
                jobs: r.jobs.len(),
                failures: r.failures(),
                loss_rate: loss,
                total_retries: r.total_retries(),
                total_fallbacks: r.total_fallbacks(),
                mean_attempts: if r.jobs.is_empty() {
                    0.0
                } else {
                    r.total_attempts() as f64 / r.jobs.len() as f64
                },
                backoff_s: r.total_backoff().as_secs_f64(),
                miss_rate: r.miss_rate(),
                total_cost_usd: r.total_cost().as_usd_f64(),
            }
        },
    );
    let mut table = Table::new([
        "policy",
        "fault rate",
        "jobs",
        "lost",
        "loss",
        "retries",
        "fallbacks",
        "backoff",
        "miss",
    ]);
    for r in &rows {
        table.row([
            r.policy.clone(),
            pct(r.fault_rate),
            r.jobs.to_string(),
            r.failures.to_string(),
            pct(r.loss_rate),
            r.total_retries.to_string(),
            r.total_fallbacks.to_string(),
            format!("{}s", f3(r.backoff_s)),
            pct(r.miss_rate),
        ]);
    }

    println!("Figure 9 — fault-rate sweep over {horizon} (seed {seed}, quick={quick})\n");
    table.print();
    println!();

    // Shape checks: NTC keeps loss at zero across the sweep, the
    // zero-retry baselines lose a strictly positive fraction as soon as
    // faults are injected, and fault-free runs are loss-free for all.
    let ntc_lossless = rows.iter().filter(|r| r.policy == "ntc").all(|r| r.failures == 0);
    let baselines_lose =
        rows.iter().filter(|r| r.fault_rate >= 0.05 && r.policy != "ntc").all(|r| r.failures > 0);
    let fault_free_clean = rows.iter().filter(|r| r.fault_rate == 0.0).all(|r| r.failures == 0);
    let ntc_retries = rows
        .iter()
        .filter(|r| r.fault_rate >= 0.05 && r.policy == "ntc")
        .all(|r| r.total_retries > 0);
    println!(
        "shape: ntc lossless across sweep: {ntc_lossless} | zero-retry baselines lose jobs at every rate >= 5%: {baselines_lose} | no losses without faults: {fault_free_clean} | ntc visibly retries under faults: {ntc_retries}",
    );
    let path = write_json("fig9_fault_tolerance", &rows);
    println!("series written to {}", path.display());
}
