//! **Figure 6** — Ablation of the NTC framework.
//!
//! A mixed archetype stream under the full framework and with each
//! contribution disabled in turn. Expectation (DESIGN.md §4): every
//! removal degrades cost and/or deadline behaviour; the full system
//! dominates (or ties) all ablations.

use ntc_bench::{f3, pct, quick_from_args, seed_from_args, threads_from_args, write_json, Table};
use ntc_core::{run_sweep_with, Engine, Environment, NtcConfig, OffloadPolicy, RunScratch};
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    policy: String,
    jobs: usize,
    total_cost_usd: f64,
    miss_rate: f64,
    p95_s: f64,
    device_energy_j: f64,
}

fn main() {
    let seed = seed_from_args();
    let quick = quick_from_args();
    let horizon = if quick { SimDuration::from_hours(4) } else { SimDuration::from_hours(24) };
    let engine = Engine::new(Environment::metro_reference(), seed);

    // Tighter-than-typical (but still delay-tolerant) deadlines, so the
    // framework's threshold decisions — memory sizing, safe holding —
    // actually bite.
    let specs = [
        StreamSpec::diurnal(Archetype::PhotoPipeline, 0.02).with_slack_factor(0.3),
        StreamSpec::poisson(Archetype::ReportRendering, 0.004).with_slack_factor(0.3),
        StreamSpec::poisson(Archetype::MlInference, 0.01).with_slack_factor(0.3),
        StreamSpec::poisson(Archetype::LogAnalytics, 0.008).with_slack_factor(0.3),
        StreamSpec::poisson(Archetype::DocIndexing, 0.008).with_slack_factor(0.3),
    ];

    let variants: Vec<OffloadPolicy> = vec![
        OffloadPolicy::ntc(),
        OffloadPolicy::Ntc(NtcConfig { use_profiler: false, ..Default::default() }),
        OffloadPolicy::Ntc(NtcConfig { use_partitioner: false, ..Default::default() }),
        OffloadPolicy::Ntc(NtcConfig { use_allocator: false, ..Default::default() }),
        OffloadPolicy::Ntc(NtcConfig { use_batching: false, ..Default::default() }),
        OffloadPolicy::CloudAll,
    ];

    let rows: Vec<Row> =
        run_sweep_with(&variants, threads_from_args(), RunScratch::new, |scratch, policy, _| {
            let r = engine.run_seeded(seed, policy, &specs, horizon, scratch);
            let p95 = r.latency_summary().map(|s| s.p95).unwrap_or(0.0);
            Row {
                policy: policy.name(),
                jobs: r.jobs.len(),
                total_cost_usd: r.total_cost().as_usd_f64(),
                miss_rate: r.miss_rate(),
                p95_s: p95,
                device_energy_j: r.device_energy.as_joules_f64(),
            }
        });
    let mut table = Table::new(["policy", "jobs", "total $", "miss rate", "p95", "device J"]);
    for r in &rows {
        table.row([
            r.policy.clone(),
            r.jobs.to_string(),
            format!("{:.4}", r.total_cost_usd),
            pct(r.miss_rate),
            format!("{}s", f3(r.p95_s)),
            f3(r.device_energy_j),
        ]);
    }

    println!("Figure 6 — ablation over {horizon}, mixed stream (seed {seed}, quick={quick})\n");
    table.print();
    println!();
    let full = &rows[0];
    // A removal "degrades" the system if it is worse on cost, misses, or
    // tail latency by a meaningful margin; the full system should never be
    // strictly dominated by an ablation.
    let degraded = |r: &Row| {
        r.total_cost_usd > full.total_cost_usd * 1.01
            || r.miss_rate > full.miss_rate + 0.005
            || r.p95_s > full.p95_s * 1.05
    };
    let dominated_by_ablation = rows.iter().skip(1).any(|r| {
        r.total_cost_usd < full.total_cost_usd * 0.99
            && r.miss_rate <= full.miss_rate
            && r.p95_s <= full.p95_s
    });
    println!(
        "shape: ablations degrading at least one axis: {}/{} | full system strictly dominated by an ablation: {} | full miss rate {}",
        rows.iter().skip(1).filter(|r| degraded(r)).count(),
        rows.len() - 1,
        dominated_by_ablation,
        pct(full.miss_rate),
    );
    let path = write_json("fig6_ablation", &rows);
    println!("series written to {}", path.display());
}
