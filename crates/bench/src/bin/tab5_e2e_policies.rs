//! **Table 5** — End-to-end policy comparison on a realistic mixed day.
//!
//! The headline table: cost, latency percentiles, deadline-miss rate, UE
//! energy, and data moved for local-only, edge-all, cloud-all and the
//! full NTC framework, averaged over replications. Expectation
//! (DESIGN.md §4): NTC spends no more than cloud-all, misses no more
//! deadlines than edge-all, and drains far less battery than local-only —
//! the "developer-friendly approach" pays no penalty where it does not
//! matter.

use ntc_bench::{f3, pct, quick_from_args, seed_from_args, threads_from_args, write_json, Table};
use ntc_core::{across, run_replications, Environment, OffloadPolicy};
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    policy: String,
    jobs_mean: f64,
    total_cost_usd: f64,
    cost_std: f64,
    p50_s: f64,
    p95_s: f64,
    miss_rate: f64,
    device_energy_j: f64,
    bytes_up_mib: f64,
}

fn main() {
    let seed = seed_from_args();
    let quick = quick_from_args();
    let (horizon, reps) = if quick {
        (SimDuration::from_hours(4), 2u32)
    } else {
        (SimDuration::from_hours(24), 5u32)
    };
    let env = Environment::metro_reference();

    let specs = [
        StreamSpec::diurnal(Archetype::PhotoPipeline, 0.02),
        StreamSpec::diurnal(Archetype::VideoTranscode, 0.002),
        StreamSpec::poisson(Archetype::ReportRendering, 0.004),
        StreamSpec::poisson(Archetype::MlInference, 0.01),
        StreamSpec::poisson(Archetype::SciSweep, 0.001),
        StreamSpec::poisson(Archetype::LogAnalytics, 0.008),
        StreamSpec::poisson(Archetype::DocIndexing, 0.005),
    ];

    let policies = [
        OffloadPolicy::LocalOnly,
        OffloadPolicy::EdgeAll,
        OffloadPolicy::CloudAll,
        OffloadPolicy::ntc(),
    ];

    let threads = threads_from_args();
    let mut rows = Vec::new();
    let mut ntc_breakdown = Vec::new();
    let mut table = Table::new([
        "policy",
        "jobs",
        "total $",
        "± $",
        "p50",
        "p95",
        "miss rate",
        "device J",
        "up MiB",
    ]);
    for policy in &policies {
        let results = run_replications(&env, policy, &specs, horizon, seed, reps, threads);
        if policy.name() == "ntc" {
            ntc_breakdown = results[0].by_archetype();
        }
        let cost = across(&results, |r| r.total_cost().as_usd_f64());
        let jobs = across(&results, |r| r.jobs.len() as f64);
        let p50 = across(&results, |r| r.latency_summary().map(|s| s.p50).unwrap_or(0.0));
        let p95 = across(&results, |r| r.latency_summary().map(|s| s.p95).unwrap_or(0.0));
        let miss = across(&results, |r| r.miss_rate());
        let energy = across(&results, |r| r.device_energy.as_joules_f64());
        let up = across(&results, |r| r.bytes_up.as_mib_f64());
        table.row([
            policy.name(),
            format!("{:.0}", jobs.mean),
            format!("{:.4}", cost.mean),
            format!("{:.4}", cost.std_dev),
            format!("{}s", f3(p50.mean)),
            format!("{}s", f3(p95.mean)),
            pct(miss.mean),
            f3(energy.mean),
            f3(up.mean),
        ]);
        rows.push(Row {
            policy: policy.name(),
            jobs_mean: jobs.mean,
            total_cost_usd: cost.mean,
            cost_std: cost.std_dev,
            p50_s: p50.mean,
            p95_s: p95.mean,
            miss_rate: miss.mean,
            device_energy_j: energy.mean,
            bytes_up_mib: up.mean,
        });
    }

    println!(
        "Table 5 — end-to-end policies, {reps} replications x {horizon} (seed {seed}, quick={quick})\n"
    );
    table.print();
    println!();
    let by = |name: &str| rows.iter().find(|r| r.policy == name).expect("present");
    let (local, edge, cloud, ntc) = (by("local-only"), by("edge-all"), by("cloud-all"), by("ntc"));
    println!(
        "shape: ntc cost ${:.4} <= cloud-all ${:.4}: {} | ntc miss rate {} vs edge {} | ntc device energy {:.0} J << local {:.0} J: {}",
        ntc.total_cost_usd,
        cloud.total_cost_usd,
        ntc.total_cost_usd <= cloud.total_cost_usd * 1.02,
        pct(ntc.miss_rate),
        pct(edge.miss_rate),
        ntc.device_energy_j,
        local.device_energy_j,
        ntc.device_energy_j < local.device_energy_j / 2.0,
    );
    println!(
        "
per-archetype under ntc (replication 0):"
    );
    let mut bt = Table::new(["archetype", "jobs", "misses", "p50", "p95", "mean hold"]);
    for b in &ntc_breakdown {
        let (p50, p95) = b.latency.map(|s| (s.p50, s.p95)).unwrap_or((0.0, 0.0));
        bt.row([
            b.archetype.name().to_string(),
            b.jobs.to_string(),
            b.misses.to_string(),
            format!("{}s", f3(p50)),
            format!("{}s", f3(p95)),
            format!("{:.1}min", b.mean_hold_s / 60.0),
        ]);
    }
    bt.print();

    #[derive(Serialize)]
    struct Out {
        policies: Vec<Row>,
        ntc_by_archetype: Vec<ntc_core::report::ArchetypeBreakdown>,
    }
    let path =
        write_json("tab5_e2e_policies", &Out { policies: rows, ntc_by_archetype: ntc_breakdown });
    println!("series written to {}", path.display());
}
