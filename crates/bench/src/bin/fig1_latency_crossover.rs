//! **Figure 1** — The offloading crossover: local vs edge vs cloud.
//!
//! Panel (a) sweeps the input size of the photo-pipeline archetype: its
//! per-byte compute demand (~800 cyc/B) exceeds the per-byte transfer
//! cost, so offloading wins at every size and the cloud tracks the edge
//! within a modest factor.
//!
//! Panel (b) isolates the crossover by sweeping the *compute intensity*
//! (cycles per input byte) of a synthetic pipeline at a fixed 4 MiB
//! input: below the crossover intensity, shipping the bytes costs more
//! than crunching them locally and the device wins; above it, offloading
//! wins, and the cloud/edge latency ratio decays toward 1 — the gap a
//! non-time-critical job does not care about.

use ntc_bench::{f3, seed_from_args, threads_from_args, write_json, Table};
use ntc_core::{deploy, run_sweep, Environment, OffloadPolicy};
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::DataSize;
use ntc_workloads::Archetype;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SizePoint {
    input_mib: f64,
    local_s: f64,
    edge_s: f64,
    cloud_s: f64,
    cloud_over_edge: f64,
}

#[derive(Debug, Serialize)]
struct IntensityPoint {
    cycles_per_byte: f64,
    local_s: f64,
    edge_s: f64,
    cloud_s: f64,
    winner: String,
    cloud_over_edge: f64,
}

/// A three-stage pipeline whose compute demand is `intensity` cycles per
/// input byte, split across two offloadable stages.
fn synthetic_graph(intensity: f64) -> ntc_taskgraph::TaskGraph {
    use ntc_taskgraph::{Component, LinearModel, Pinning, TaskGraphBuilder};
    let mut b = TaskGraphBuilder::new("synthetic");
    let src = b.add_component(
        Component::new("source")
            .with_pinning(Pinning::Device)
            .with_demand(LinearModel::constant(1e7)),
    );
    let work = b.add_component(
        Component::new("work").with_demand(LinearModel::scaling(1e7, intensity * 0.8)),
    );
    let post = b.add_component(
        Component::new("post").with_demand(LinearModel::scaling(1e7, intensity * 0.2)),
    );
    b.add_flow(src, work, LinearModel::scaling(0.0, 1.0));
    b.add_flow(work, post, LinearModel::scaling(0.0, 0.5));
    b.build().expect("synthetic graph is valid")
}

fn main() {
    let seed = seed_from_args();
    let threads = threads_from_args();
    let env = Environment::metro_reference();
    let rng = RngStream::root(seed);
    let rate = 0.05;

    // --- Panel (a): input-size sweep, photo-pipeline. ---
    let local = deploy(
        &OffloadPolicy::LocalOnly,
        Archetype::PhotoPipeline,
        &env,
        rate,
        Archetype::PhotoPipeline.typical_slack(),
        &rng,
    );
    let edge = deploy(
        &OffloadPolicy::EdgeAll,
        Archetype::PhotoPipeline,
        &env,
        rate,
        Archetype::PhotoPipeline.typical_slack(),
        &rng,
    );
    let cloud = deploy(
        &OffloadPolicy::CloudAll,
        Archetype::PhotoPipeline,
        &env,
        rate,
        Archetype::PhotoPipeline.typical_slack(),
        &rng,
    );

    let inputs_kib: [u64; 10] = [102, 512, 1024, 2048, 4096, 8192, 16384, 65536, 131072, 262144];
    let size_series: Vec<SizePoint> = run_sweep(&inputs_kib, threads, |&kib, _| {
        let input = DataSize::from_kib(kib);
        let l = local.estimated_latency(&env, input).as_secs_f64();
        let e = edge.estimated_latency(&env, input).as_secs_f64();
        let c = cloud.estimated_latency(&env, input).as_secs_f64();
        SizePoint {
            input_mib: input.as_mib_f64(),
            local_s: l,
            edge_s: e,
            cloud_s: c,
            cloud_over_edge: c / e,
        }
    });
    let mut ta = Table::new(["input", "local", "edge", "cloud", "cloud/edge"]);
    for (&kib, p) in inputs_kib.iter().zip(&size_series) {
        ta.row([
            format!("{}", DataSize::from_kib(kib)),
            format!("{}s", f3(p.local_s)),
            format!("{}s", f3(p.edge_s)),
            format!("{}s", f3(p.cloud_s)),
            f3(p.cloud_over_edge),
        ]);
    }

    println!("Figure 1a — photo-pipeline completion time vs input size (seed {seed})\n");
    ta.print();
    println!(
        "\nshape (a): offloading wins at every size (compute-heavy archetype): {} | cloud within 1.5x of edge everywhere: {}\n",
        size_series.iter().all(|p| p.edge_s < p.local_s && p.cloud_s < p.local_s),
        size_series.iter().all(|p| p.cloud_over_edge < 1.5),
    );

    // --- Panel (b): compute-intensity sweep at fixed 4 MiB input. ---
    let input = DataSize::from_mib(4);
    let intensities = [5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 3000.0, 10_000.0];
    let intensity_series: Vec<IntensityPoint> = run_sweep(&intensities, threads, |&k, _| {
        let graph = synthetic_graph(k);
        // Deterministic per-plan latency via the same estimator: build the
        // three plans by hand on the synthetic graph.
        use ntc_partition::CostParams;
        use ntc_partition::{FullOffload, KeepLocal, PartitionContext, Partitioner};
        let ctx = PartitionContext::new(&graph, input, CostParams::default());
        let local_plan = KeepLocal.partition(&ctx);
        let remote_plan = FullOffload.partition(&ctx);
        let lat = |plan: &ntc_partition::PartitionPlan, backend| {
            let d = ntc_core::Deployment {
                archetype: Archetype::PhotoPipeline, // unused by the estimate
                graph: graph.clone(),
                plan: plan.clone(),
                backend,
                memory: graph.ids().map(|_| ntc_core::deploy::DEFAULT_MEMORY).collect(),
                dispatch: ntc_alloc::DispatchPolicy::Immediate,
                warm: ntc_alloc::WarmStrategy::PlatformOnly,
                est_completion: ntc_simcore::units::SimDuration::ZERO,
                demands: vec![],
                reference_input: input,
                max_batch_members: u32::MAX,
                max_batch_bytes: ntc_simcore::units::DataSize::from_bytes(u64::MAX),
                est_local: ntc_simcore::units::SimDuration::ZERO,
                fallback_local: false,
                site_chain: vec![],
            };
            d.estimated_latency(&env, input).as_secs_f64()
        };
        let l = lat(&local_plan, ntc_core::Backend::Cloud);
        let e = lat(&remote_plan, ntc_core::Backend::Edge);
        let c = lat(&remote_plan, ntc_core::Backend::Cloud);
        let winner = if l <= e && l <= c {
            "local"
        } else if e <= c {
            "edge"
        } else {
            "cloud"
        };
        IntensityPoint {
            cycles_per_byte: k,
            local_s: l,
            edge_s: e,
            cloud_s: c,
            winner: winner.into(),
            cloud_over_edge: c / e,
        }
    });
    let mut tb = Table::new(["cyc/B", "local", "edge", "cloud", "winner", "cloud/edge"]);
    for p in &intensity_series {
        tb.row([
            format!("{}", p.cycles_per_byte),
            format!("{}s", f3(p.local_s)),
            format!("{}s", f3(p.edge_s)),
            format!("{}s", f3(p.cloud_s)),
            p.winner.clone(),
            f3(p.cloud_over_edge),
        ]);
    }

    println!("Figure 1b — completion time vs compute intensity at {input} input (seed {seed})\n");
    tb.print();
    println!();
    let first = &intensity_series[0];
    let last = intensity_series.last().expect("non-empty");
    println!(
        "shape (b): local wins at {} cyc/B: {} | remote wins at {} cyc/B: {} | cloud/edge ratio decays to {} at high intensity",
        first.cycles_per_byte,
        first.winner == "local",
        last.cycles_per_byte,
        last.winner != "local",
        f3(last.cloud_over_edge),
    );

    #[derive(Serialize)]
    struct Series {
        input_size_sweep: Vec<SizePoint>,
        intensity_sweep: Vec<IntensityPoint>,
    }
    let path = write_json(
        "fig1_latency_crossover",
        &Series { input_size_sweep: size_series, intensity_sweep: intensity_series },
    );
    println!("series written to {}", path.display());
}
