//! **Figure 10** — Overload-aware dispatch (robustness extension).
//!
//! An edge-primary NTC stream over a sweep of arrival-rate multipliers,
//! against a flaky edge site, with the health layer's mechanisms toggled
//! per variant (see `ntc_bench::overload` for the shared sweep core).
//! Expectation (DESIGN.md §6): without the health layer, overload
//! cascades — batches queue into the flaky edge, burn retries there and
//! miss deadlines; with breakers + admission control the same traffic
//! defers (NTC jobs have the slack) or sheds down the chain, and hedging
//! converts stragglers into on-time completions. Goodput with the full
//! stance dominates the bare engine at every multiplier from 2× up.

use ntc_bench::{
    f3, overload, pct, quick_from_args, seed_from_args, threads_from_args, write_json, Table,
};
use ntc_simcore::units::SimDuration;

fn main() {
    let seed = seed_from_args();
    let smoke = std::env::args().any(|a| a == "--smoke") || quick_from_args();
    let horizon = if smoke { SimDuration::from_hours(4) } else { SimDuration::from_hours(12) };
    let multipliers = overload::multipliers(smoke);

    let rows = overload::rows(seed, horizon, multipliers, threads_from_args());

    let mut table = Table::new([
        "variant",
        "mult",
        "jobs",
        "lost",
        "miss",
        "goodput/h",
        "sheds",
        "defers",
        "skips",
        "hedges",
        "won",
        "opens",
    ]);
    for r in &rows {
        table.row([
            r.variant.clone(),
            format!("{:.1}x", r.multiplier),
            r.jobs.to_string(),
            r.failures.to_string(),
            pct(r.miss_rate),
            f3(r.goodput_per_hour),
            r.sheds.to_string(),
            r.deferrals.to_string(),
            r.breaker_skips.to_string(),
            r.hedges.to_string(),
            r.hedges_won.to_string(),
            r.breaker_transitions.to_string(),
        ]);
    }

    println!("Figure 10 — overload sweep over {horizon} (seed {seed}, smoke={smoke})\n");
    table.print();
    println!();

    // Shape checks: the full health stance never yields less goodput
    // than the bare engine at any multiplier >= 2x, the health layer
    // visibly acts (defers/sheds/skips) under overload, and the bare
    // engine records no health activity at all.
    let goodput = |variant: &str, m: f64| {
        rows.iter()
            .find(|r| r.variant == variant && r.multiplier == m)
            .map(|r| r.goodput_per_hour)
            .expect("grid covers every (variant, multiplier)")
    };
    let all_on_dominates = multipliers
        .iter()
        .filter(|&&m| m >= 2.0)
        .all(|&m| goodput("all-on", m) >= goodput("off", m));
    let health_acts = rows
        .iter()
        .filter(|r| r.variant == "all-on" && r.multiplier >= 2.0)
        .all(|r| r.sheds + r.deferrals + r.breaker_skips + r.hedges > 0);
    let bare_is_inert = rows
        .iter()
        .filter(|r| r.variant == "off")
        .all(|r| r.sheds + r.deferrals + r.breaker_skips + r.hedges + r.breaker_transitions == 0);
    println!(
        "shape: all-on goodput >= off at every multiplier >= 2x: {all_on_dominates} | health layer visibly acts under overload: {health_acts} | bare engine records no health activity: {bare_is_inert}",
    );
    let path = write_json("fig10_overload", &rows);
    println!("series written to {}", path.display());
}
