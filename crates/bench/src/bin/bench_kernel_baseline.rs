//! Writes the committed `kernel` perf baseline.
//!
//! Times the same workloads as `benches/kernel.rs` with a plain `Instant`
//! harness (median of several rounds) and writes `BENCH_kernel.json` at
//! the workspace root. Each entry is paired with a pre-refactor reference
//! measured on the same machine with the same harness at the commit just
//! before the calendar-queue/scratch-reuse/parallel-sweep PR, so the file
//! records the speedup the PR bought, not just a raw number.
//!
//! Numbers are machine-dependent; compare trends on the same hardware.

use std::hint::black_box;
use std::time::Instant;

use ntc_bench::kernel::{
    calendar_churn, engine_run_fresh, engine_run_reused, heap_churn, ingest_retained,
    ingest_streaming, kernel_engine, lookup_registry, site_lookup_by_id, site_lookup_by_token,
    sweep_replications,
};
use ntc_core::RunScratch;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Baseline {
    bench: &'static str,
    units: &'static str,
    regenerate: &'static str,
    note: &'static str,
    environment_note: &'static str,
    results: Vec<Entry>,
}

#[derive(Debug, Serialize)]
struct Entry {
    name: String,
    ns_per_op: u128,
    ops_timed: u64,
    rounds: u32,
    /// Same workload at the pre-refactor commit (binary-heap queue,
    /// per-run allocation, serial sweep), measured with this harness on
    /// the reference machine. `None` for workloads with no pre-PR
    /// equivalent.
    pre_refactor_ns_per_op: Option<u128>,
    /// `pre_refactor_ns_per_op / ns_per_op`, when a reference exists.
    speedup: Option<f64>,
}

/// Pre-refactor references (commit c2fc403, same machine, same harness).
/// The sweep references are flat across thread counts because the old
/// runner ran serially regardless of the requested width.
const PRE_ENGINE_RUN_NS: u128 = 143_171;
const PRE_QUEUE_CHURN_50K_NS: u128 = 2_599_472;
const PRE_SWEEP_8_NS: [(usize, u128); 3] = [(1, 1_015_925), (2, 1_021_945), (4, 1_073_474)];

/// Pre-PR references for the streaming-metrics/interned-id change
/// (commit 041ad90, same machine, same harness): the retained ingest
/// path ([`ingest_retained`]'s workload) and the string-keyed site
/// lookup ([`site_lookup_by_id`]'s workload).
const PRE_INGEST_SUMMARISE_100K_NS: u128 = 5_544_737;
const PRE_SITE_LOOKUP_1M_NS: u128 = 9_278_305;

/// Runs `iters` calls of `op` per round, `rounds` times, and returns the
/// median per-op nanoseconds.
fn median_ns(rounds: u32, iters: u64, mut op: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..rounds)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                op();
            }
            start.elapsed().as_nanos() / u128::from(iters)
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn entry(
    name: impl Into<String>,
    rounds: u32,
    iters: u64,
    pre: Option<u128>,
    op: impl FnMut(),
) -> Entry {
    let ns = median_ns(rounds, iters, op);
    Entry {
        name: name.into(),
        ns_per_op: ns,
        ops_timed: iters,
        rounds,
        pre_refactor_ns_per_op: pre,
        speedup: pre.map(|p| (p as f64 / ns as f64 * 100.0).round() / 100.0),
    }
}

fn main() {
    let mut results = Vec::new();

    results.push(entry(
        "event_queue/calendar_churn_50k/pending_64",
        7,
        10,
        Some(PRE_QUEUE_CHURN_50K_NS),
        || {
            black_box(calendar_churn(50_000, 64));
        },
    ));
    results.push(entry("event_queue/heap_churn_50k/pending_64", 7, 10, None, || {
        black_box(heap_churn(50_000, 64));
    }));
    results.push(entry("event_queue/calendar_churn_50k/pending_4096", 7, 10, None, || {
        black_box(calendar_churn(50_000, 4_096));
    }));
    results.push(entry("event_queue/heap_churn_50k/pending_4096", 7, 10, None, || {
        black_box(heap_churn(50_000, 4_096));
    }));

    let engine = kernel_engine(1);
    results.push(entry("engine_run/fresh_scratch", 7, 20, None, || {
        black_box(engine_run_fresh(&engine, 1));
    }));
    let mut scratch = RunScratch::new();
    results.push(entry("engine_run/reused_scratch", 7, 20, Some(PRE_ENGINE_RUN_NS), || {
        black_box(engine_run_reused(&engine, 1, &mut scratch));
    }));

    results.push(entry(
        "accumulator/ingest_summarise_100k",
        7,
        3,
        Some(PRE_INGEST_SUMMARISE_100K_NS),
        || {
            black_box(ingest_streaming(100_000));
        },
    ));
    results.push(entry("accumulator/ingest_retained_100k", 7, 3, None, || {
        black_box(ingest_retained(100_000));
    }));
    let reg = lookup_registry();
    results.push(entry("dispatch/site_lookup_1m", 7, 3, Some(PRE_SITE_LOOKUP_1M_NS), || {
        black_box(site_lookup_by_token(&reg, 1_000_000));
    }));
    results.push(entry("dispatch/site_lookup_by_id_1m", 7, 3, None, || {
        black_box(site_lookup_by_id(&reg, 1_000_000));
    }));

    for (threads, pre) in PRE_SWEEP_8_NS {
        results.push(entry(
            format!("sweep_e2e/replications_8/threads_{threads}"),
            5,
            3,
            Some(pre),
            || {
                black_box(sweep_replications(8, threads));
            },
        ));
    }

    let baseline = Baseline {
        bench: "kernel",
        units: "nanoseconds per operation (median over rounds)",
        regenerate: "cargo run --release -p ntc-bench --bin bench_kernel_baseline",
        note: "pre_refactor_ns_per_op was measured at the commit before the \
               change each entry belongs to (the calendar-queue/scratch-reuse/\
               parallel-sweep change for the queue/engine/sweep entries, the \
               streaming-metrics/interned-site-id change for the accumulator \
               and dispatch entries), on the same machine with this harness; \
               speedup = pre / current. engine_run/reused_scratch is compared \
               against the old Engine::run because reuse is the replication \
               path sweeps actually take.",
        environment_note: "reference numbers were captured in a container exposing a \
                           single CPU core, so sweep_e2e cannot show parallel scaling \
                           there; thread-count invariance of results is covered by \
                           crates/core/tests/determinism.rs and scaling is bounded by \
                           available cores.",
        results,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("serialise baseline");
    std::fs::write("BENCH_kernel.json", format!("{json}\n")).expect("write BENCH_kernel.json");
    println!("{json}");
    println!("\nbaseline written to BENCH_kernel.json");
}
