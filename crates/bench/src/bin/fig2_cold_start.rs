//! **Figure 2** — Cold-start impact vs arrival rate, under three warming
//! strategies.
//!
//! Drives the serverless platform directly with Poisson invocations of an
//! inference-sized function. Expectation (DESIGN.md §4): at sparse
//! arrival rates the cold-start tail dominates p99 under platform-only
//! keep-alive; warmers or provisioning recover the tail at bounded cost;
//! at dense rates the platform keep-alive suffices and everything
//! converges.

use ntc_alloc::WarmStrategy;
use ntc_bench::{f3, quick_from_args, seed_from_args, threads_from_args, write_json, Table};
use ntc_core::run_sweep;
use ntc_serverless::{FunctionConfig, PlatformConfig, ServerlessPlatform};
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{Cycles, DataSize, SimDuration, SimTime};
use ntc_workloads::ArrivalProcess;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    rate_per_sec: f64,
    strategy: String,
    invocations: u64,
    cold_fraction: f64,
    p50_ms: f64,
    p99_ms: f64,
    cost_per_hour_usd: f64,
}

fn run_one(rate: f64, strategy: WarmStrategy, horizon: SimDuration, seed: u64) -> Point {
    let mut platform = ServerlessPlatform::new(PlatformConfig::default(), RngStream::root(seed));
    let f = platform.register(
        FunctionConfig::new("infer", DataSize::from_mib(3072))
            .with_artifact_size(DataSize::from_mib(250)),
    );
    let work = Cycles::from_giga(8);

    let mut rng = RngStream::root(seed).derive("arrivals");
    let mut arrivals = ArrivalProcess::Poisson { rate_per_sec: rate }.generate(horizon, &mut rng);

    // Interleave warmer pings (in time order) or provision capacity.
    match strategy {
        WarmStrategy::Provisioned { count } => platform.set_provisioned(SimTime::ZERO, f, count),
        WarmStrategy::Warmer { period } => {
            let mut t = SimTime::ZERO + period;
            let end = SimTime::ZERO + horizon;
            while t < end {
                arrivals.push(t);
                t += period;
            }
            arrivals.sort_unstable();
        }
        WarmStrategy::PlatformOnly => {}
    }

    let is_ping =
        |at: SimTime, period: SimDuration| at.as_micros().is_multiple_of(period.as_micros());
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut cold = 0u64;
    let mut real = 0u64;
    for at in arrivals {
        let ping = matches!(strategy, WarmStrategy::Warmer { period } if is_ping(at, period));
        let w = if ping { Cycles::new(1_000) } else { work };
        let out = platform.invoke(at, f, w).expect("in-order invocations");
        if !ping {
            real += 1;
            if out.was_cold {
                cold += 1;
            }
            latencies_ms.push(out.latency().as_micros() as f64 / 1e3);
        }
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |p: f64| ntc_simcore::stats::quantile_sorted(&latencies_ms, p).unwrap_or(0.0);
    let cost = platform.total_cost(SimTime::ZERO + horizon).as_usd_f64();
    Point {
        rate_per_sec: rate,
        strategy: format!("{strategy}"),
        invocations: real,
        cold_fraction: if real == 0 { 0.0 } else { cold as f64 / real as f64 },
        p50_ms: q(0.50),
        p99_ms: q(0.99),
        cost_per_hour_usd: cost / (horizon.as_secs_f64() / 3600.0),
    }
}

fn main() {
    let seed = seed_from_args();
    let quick = quick_from_args();
    let horizon = if quick { SimDuration::from_hours(6) } else { SimDuration::from_hours(24) };

    let rates = [0.001, 0.01, 0.1, 1.0];
    let strategies = [
        WarmStrategy::PlatformOnly,
        WarmStrategy::Warmer { period: SimDuration::from_mins(9) },
        WarmStrategy::Provisioned { count: 1 },
    ];

    let grid: Vec<(f64, WarmStrategy)> =
        rates.iter().flat_map(|&r| strategies.iter().map(move |&s| (r, s))).collect();
    let series: Vec<Point> =
        run_sweep(&grid, threads_from_args(), |&(rate, s), _| run_one(rate, s, horizon, seed));
    let mut table =
        Table::new(["rate/s", "strategy", "invocations", "cold %", "p50 ms", "p99 ms", "$/hour"]);
    for p in &series {
        table.row([
            format!("{}", p.rate_per_sec),
            p.strategy.clone(),
            p.invocations.to_string(),
            f3(p.cold_fraction * 100.0),
            f3(p.p50_ms),
            f3(p.p99_ms),
            format!("{:.5}", p.cost_per_hour_usd),
        ]);
    }

    println!("Figure 2 — cold-start tail vs arrival rate over {horizon} (seed {seed})\n");
    table.print();
    println!();
    let sparse_platform = series
        .iter()
        .find(|p| p.rate_per_sec == 0.001 && p.strategy == "platform-only")
        .expect("present");
    let sparse_warmer = series
        .iter()
        .find(|p| p.rate_per_sec == 0.001 && p.strategy.starts_with("warmer"))
        .expect("present");
    let dense_platform = series
        .iter()
        .find(|p| p.rate_per_sec == 1.0 && p.strategy == "platform-only")
        .expect("present");
    println!(
        "shape: sparse traffic is ~all-cold under platform-only ({}%), warmer removes it ({}%) | dense traffic is warm anyway ({}%)",
        f3(sparse_platform.cold_fraction * 100.0),
        f3(sparse_warmer.cold_fraction * 100.0),
        f3(dense_platform.cold_fraction * 100.0),
    );
    let path = write_json("fig2_cold_start", &series);
    println!("series written to {}", path.display());
}
