//! **Table 1** — Monetary cost per 1 000 jobs, per archetype and policy.
//!
//! Panel (a): per-archetype costs at realistic (low-to-moderate) traffic.
//! UE electricity is cheap in dollars — the device's constrained
//! resources are *time and battery*, covered by Table 5 — so the economic
//! question is edge vs cloud. Expectation (DESIGN.md §4): pay-per-use
//! FaaS beats flat-rate edge infrastructure at this utilisation, and the
//! NTC policy never pays more than naive cloud-all.
//!
//! Panel (b): the amortisation crossover — sweeping photo-pipeline
//! traffic density until the pre-paid edge fleet becomes cheaper per job
//! than per-use FaaS.

use ntc_bench::{f3, quick_from_args, seed_from_args, threads_from_args, write_json, Table};
use ntc_core::{run_sweep_with, Engine, Environment, OffloadPolicy, RunScratch};
use ntc_simcore::units::SimDuration;
use ntc_workloads::{Archetype, StreamSpec};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    archetype: String,
    jobs: usize,
    local_per_1k: f64,
    edge_per_1k: f64,
    cloud_per_1k: f64,
    ntc_per_1k: f64,
}

#[derive(Debug, Serialize)]
struct SweepPoint {
    rate_per_sec: f64,
    jobs: usize,
    edge_per_1k: f64,
    cloud_per_1k: f64,
    edge_utilization_proxy: f64,
}

fn peak_rate(a: Archetype) -> f64 {
    match a {
        Archetype::PhotoPipeline => 0.05,
        Archetype::VideoTranscode => 0.005,
        Archetype::ReportRendering => 0.01,
        Archetype::MlInference => 0.05,
        Archetype::SciSweep => 0.002,
        Archetype::LogAnalytics => 0.02,
        Archetype::DocIndexing => 0.01,
    }
}

fn per_1k(cost_usd: f64, jobs: usize) -> f64 {
    if jobs == 0 {
        0.0
    } else {
        cost_usd * 1000.0 / jobs as f64
    }
}

fn main() {
    let seed = seed_from_args();
    let quick = quick_from_args();
    // Always span a full diurnal day; quick mode thins the traffic.
    let horizon = SimDuration::from_hours(24);
    let rate_scale = if quick { 0.5 } else { 1.0 };
    let env = Environment::metro_reference();
    let engine = Engine::new(env, seed);

    let policies = [
        OffloadPolicy::LocalOnly,
        OffloadPolicy::EdgeAll,
        OffloadPolicy::CloudAll,
        OffloadPolicy::ntc(),
    ];

    // --- Panel (a): per-archetype. Each (archetype, policy) cell is an
    // independent simulation, so the whole panel fans out at once. ---
    let threads = threads_from_args();
    let cells: Vec<(Archetype, &OffloadPolicy)> =
        Archetype::all().into_iter().flat_map(|a| policies.iter().map(move |p| (a, p))).collect();
    let cell_results: Vec<(usize, f64)> =
        run_sweep_with(&cells, threads, RunScratch::new, |scratch, &(a, p), _| {
            let specs = [StreamSpec::diurnal(a, peak_rate(a) * rate_scale)];
            let r = engine.run_seeded(seed, p, &specs, horizon, scratch);
            let jobs = r.jobs.len();
            (jobs, per_1k(r.total_cost().as_usd_f64(), jobs))
        });
    let mut rows = Vec::new();
    let mut table = Table::new([
        "archetype",
        "jobs",
        "local $/1k",
        "edge $/1k",
        "cloud $/1k",
        "ntc $/1k",
        "cheapest remote",
    ]);
    for (ai, a) in Archetype::all().into_iter().enumerate() {
        let cell = &cell_results[ai * policies.len()..(ai + 1) * policies.len()];
        let costs: Vec<f64> = cell.iter().map(|&(_, c)| c).collect();
        let jobs = cell.last().expect("four policies").0;
        let cheapest_remote = if costs[1] <= costs[2] && costs[1] <= costs[3] {
            "edge-all"
        } else if costs[2] <= costs[3] {
            "cloud-all"
        } else {
            "ntc"
        };
        table.row([
            a.name().to_string(),
            jobs.to_string(),
            f3(costs[0]),
            f3(costs[1]),
            f3(costs[2]),
            f3(costs[3]),
            cheapest_remote.into(),
        ]);
        rows.push(Row {
            archetype: a.name().into(),
            jobs,
            local_per_1k: costs[0],
            edge_per_1k: costs[1],
            cloud_per_1k: costs[2],
            ntc_per_1k: costs[3],
        });
    }

    println!("Table 1a — cost per 1000 jobs over {horizon} (seed {seed}, quick={quick})\n");
    table.print();
    let faas_cheaper = rows.iter().filter(|r| r.cloud_per_1k < r.edge_per_1k).count();
    let ntc_ok = rows
        .iter()
        .filter(|r| r.jobs >= 20) // small-sample warmer overhead is noise
        .all(|r| r.ntc_per_1k <= r.cloud_per_1k * 1.05);
    println!(
        "\nshape (a): cloud cheaper than edge on {}/{} archetypes at this utilisation | ntc <= cloud-all (well-sampled rows): {}\n",
        faas_cheaper,
        rows.len(),
        ntc_ok,
    );

    // --- Panel (b): amortisation crossover. ---
    let sweep_horizon = if quick { SimDuration::from_hours(2) } else { SimDuration::from_hours(6) };
    let rates: &[f64] = if quick { &[0.05, 1.0, 8.0] } else { &[0.05, 0.5, 2.0, 8.0, 16.0] };
    let sweep: Vec<SweepPoint> =
        run_sweep_with(rates, threads, RunScratch::new, |scratch, &rate, _| {
            let specs = [StreamSpec::poisson(Archetype::PhotoPipeline, rate)];
            let re =
                engine.run_seeded(seed, &OffloadPolicy::EdgeAll, &specs, sweep_horizon, scratch);
            let rc =
                engine.run_seeded(seed, &OffloadPolicy::CloudAll, &specs, sweep_horizon, scratch);
            SweepPoint {
                rate_per_sec: rate,
                jobs: re.jobs.len(),
                edge_per_1k: per_1k(re.total_cost().as_usd_f64(), re.jobs.len()),
                cloud_per_1k: per_1k(rc.total_cost().as_usd_f64(), rc.jobs.len()),
                edge_utilization_proxy: rate,
            }
        });
    let mut tb = Table::new(["rate/s", "jobs", "edge $/1k", "cloud $/1k", "cheaper"]);
    for p in &sweep {
        tb.row([
            f3(p.rate_per_sec),
            p.jobs.to_string(),
            f3(p.edge_per_1k),
            f3(p.cloud_per_1k),
            if p.edge_per_1k < p.cloud_per_1k { "edge" } else { "cloud" }.into(),
        ]);
    }
    println!("Table 1b — edge amortisation sweep, photo-pipeline over {sweep_horizon}\n");
    tb.print();
    let first = &sweep[0];
    let last = sweep.last().expect("non-empty");
    println!(
        "\nshape (b): sparse traffic favours cloud ({} vs {} $/1k) | dense traffic amortises the edge ({} vs {} $/1k)",
        f3(first.edge_per_1k),
        f3(first.cloud_per_1k),
        f3(last.edge_per_1k),
        f3(last.cloud_per_1k),
    );

    #[derive(Serialize)]
    struct Out {
        per_archetype: Vec<Row>,
        amortisation_sweep: Vec<SweepPoint>,
    }
    let path =
        write_json("tab1_cost_comparison", &Out { per_archetype: rows, amortisation_sweep: sweep });
    println!("series written to {}", path.display());
}
