//! Shared fixtures for the simulation-kernel benchmarks.
//!
//! Used by both `benches/kernel.rs` (criterion harness) and the
//! `bench_kernel_baseline` regenerator so the committed `BENCH_kernel.json`
//! numbers time exactly the code the bench suite times. Three layers are
//! covered:
//!
//! * the event queue in isolation — the calendar [`EventQueue`] against the
//!   pre-refactor binary-heap [`HeapQueue`] on an engine-like
//!   hold-model churn (bounded pending set, near-monotone pushes);
//! * one engine replication — the fresh-engine path every caller used
//!   before scratch reuse existed, against [`Engine::run_seeded`] on a
//!   long-lived [`RunScratch`] (the replication fast path);
//! * an end-to-end sweep — [`run_replications`] at a given thread count;
//! * the metrics ingest — the retained per-job vector path against the
//!   streaming [`RunAggregates`] digest;
//! * the dispatch site access — string-keyed registry lookups against
//!   token-indexed ones.

use ntc_core::{
    run_replications, Engine, Environment, JobResult, OffloadPolicy, RunAggregates, RunResult,
    RunScratch, SiteId, SiteRegistry, SiteToken,
};
use ntc_simcore::event::{reference::HeapQueue, EventQueue};
use ntc_simcore::rng::RngStream;
use ntc_simcore::stats::Summary;
use ntc_simcore::units::{SimDuration, SimTime};
use ntc_workloads::{Archetype, StreamSpec};

/// The kernel workload: a 30-minute photo-pipeline run under the full NTC
/// policy — the same shape as `dispatch::engine_run_short`, so kernel
/// numbers line up with the older dispatch baseline.
pub fn kernel_specs() -> [StreamSpec; 1] {
    [StreamSpec::poisson(Archetype::PhotoPipeline, 0.05)]
}

/// Horizon of one kernel replication.
pub fn kernel_horizon() -> SimDuration {
    SimDuration::from_mins(30)
}

/// A long-lived engine over the reference environment.
pub fn kernel_engine(seed: u64) -> Engine {
    Engine::new(Environment::metro_reference(), seed)
}

/// One replication the pre-reuse way: a fresh scratch is allocated and
/// grown inside this call.
pub fn engine_run_fresh(engine: &Engine, seed: u64) -> RunResult {
    engine.run_seeded(
        seed,
        &OffloadPolicy::ntc(),
        &kernel_specs(),
        kernel_horizon(),
        &mut RunScratch::new(),
    )
}

/// One replication on a reused scratch: the steady-state path sweeps and
/// replication loops run on.
pub fn engine_run_reused(engine: &Engine, seed: u64, scratch: &mut RunScratch) -> RunResult {
    engine.run_seeded(seed, &OffloadPolicy::ntc(), &kernel_specs(), kernel_horizon(), scratch)
}

/// `reps` independent kernel replications fanned across `threads` workers.
pub fn sweep_replications(reps: u32, threads: usize) -> Vec<RunResult> {
    let env = Environment::metro_reference();
    run_replications(
        &env,
        &OffloadPolicy::ntc(),
        &kernel_specs(),
        kernel_horizon(),
        1,
        reps,
        threads,
    )
}

/// Maximum forward jitter of a replacement push, in microseconds (2 s —
/// engine-like sparse spacing, wider than the calendar's initial width).
const CHURN_JITTER_US: u64 = 2_000_000;

#[inline]
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Hold-model churn on the calendar queue: seed `pending` events, then
/// pop-earliest/push-replacement `events` times and drain. Returns a
/// checksum over `(time, payload)` so the work cannot be optimised away
/// and so the heap variant can be asserted order-identical. Small
/// `pending` exercises the sparse regime (the heap's best case: it stays
/// cache-resident); large `pending` the dense regime the engine hits at
/// realistic traffic.
pub fn calendar_churn(events: u64, pending: u64) -> u64 {
    let mut q = EventQueue::new();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..pending {
        q.push(SimTime::from_micros(xorshift(&mut x) % CHURN_JITTER_US), i);
    }
    let mut acc = 0u64;
    for i in 0..events {
        let (t, v) = q.pop().expect("pending set never empties");
        acc = acc.wrapping_mul(31).wrapping_add(t.as_micros()).wrapping_add(v);
        q.push(t + SimDuration::from_micros(xorshift(&mut x) % CHURN_JITTER_US), pending + i);
    }
    while let Some((t, v)) = q.pop() {
        acc = acc.wrapping_mul(31).wrapping_add(t.as_micros()).wrapping_add(v);
    }
    acc
}

/// The same churn on the pre-refactor binary-heap queue; must return the
/// same checksum as [`calendar_churn`] for the same arguments.
pub fn heap_churn(events: u64, pending: u64) -> u64 {
    let mut q = HeapQueue::new();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..pending {
        q.push(SimTime::from_micros(xorshift(&mut x) % CHURN_JITTER_US), i);
    }
    let mut acc = 0u64;
    for i in 0..events {
        let (t, v) = q.pop().expect("pending set never empties");
        acc = acc.wrapping_mul(31).wrapping_add(t.as_micros()).wrapping_add(v);
        q.push(t + SimDuration::from_micros(xorshift(&mut x) % CHURN_JITTER_US), pending + i);
    }
    while let Some((t, v)) = q.pop() {
        acc = acc.wrapping_mul(31).wrapping_add(t.as_micros()).wrapping_add(v);
    }
    acc
}

/// One deterministic synthetic job outcome for the metrics-ingest
/// benches; `x` is the xorshift state threaded through the stream. One
/// draw decides both the latency (0.2–30.2 s) and the 1 % failure flag;
/// arrivals tick every 500 µs against a 20 s deadline.
fn synthetic_result(i: u64, x: &mut u64) -> JobResult {
    let r = xorshift(x);
    let arrival = SimTime::from_micros(i * 500);
    let latency = SimDuration::from_micros(200_000 + r % 30_000_000);
    JobResult {
        id: i,
        archetype: Archetype::PhotoPipeline,
        arrival,
        dispatched: arrival,
        finish: arrival + latency,
        deadline: arrival + SimDuration::from_secs(20),
        failed: r.is_multiple_of(100),
        attempts: 1,
        backoff: SimDuration::ZERO,
        fallbacks: 0,
        cause: None,
    }
}

/// The pre-PR metrics path over `n` synthetic outcomes: retain every
/// [`JobResult`] in a vector, then collect the latencies into a second
/// vector, summarise, and count misses. This is the workload the
/// `accumulator/ingest_summarise_100k` pre-refactor reference was
/// measured on.
pub fn ingest_retained(n: u64) -> (Option<Summary>, u64) {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut results = Vec::with_capacity(n as usize);
    for i in 0..n {
        results.push(synthetic_result(i, &mut x));
    }
    let lats: Vec<f64> = results.iter().map(|r| r.latency().as_secs_f64()).collect();
    let misses = results.iter().filter(|r| !r.met_deadline()).count() as u64;
    (Summary::of(&lats), misses)
}

/// The streaming metrics path over the same `n` outcomes: fold each
/// into [`RunAggregates`] as it is produced — no per-job vector — and
/// read the summary off the constant-memory digest.
pub fn ingest_streaming(n: u64) -> (Option<Summary>, u64) {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut agg = RunAggregates::default();
    for i in 0..n {
        agg.record(&synthetic_result(i, &mut x));
    }
    agg.finalize();
    (agg.latency.summary(), agg.deadline_misses)
}

/// The standard three-site registry the dispatch-lookup benches walk.
pub fn lookup_registry() -> SiteRegistry {
    SiteRegistry::standard(&Environment::metro_reference(), &RngStream::root(1))
}

/// The pre-PR hot-loop site access: `n` string-keyed registry lookups
/// cycling over the three standard sites, folding the fallback ranks so
/// the walk cannot be optimised away. This is the workload the
/// `dispatch/site_lookup_1m` pre-refactor reference was measured on.
pub fn site_lookup_by_id(reg: &SiteRegistry, n: u64) -> u64 {
    let ids = [SiteId::edge(), SiteId::cloud(), SiteId::device()];
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_add(u64::from(reg.get(&ids[i as usize % 3]).fallback_rank()));
    }
    acc
}

/// The token-indexed hot-loop site access over the same cycle: tokens
/// are resolved once at the boundary, then every access is a dense
/// array index. Must fold to the same value as [`site_lookup_by_id`].
pub fn site_lookup_by_token(reg: &SiteRegistry, n: u64) -> u64 {
    let tokens: [SiteToken; 3] =
        [SiteId::edge(), SiteId::cloud(), SiteId::device()].map(|id| reg.token_of(&id));
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_add(u64::from(reg.site(tokens[i as usize % 3]).fallback_rank()));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_checksums_agree() {
        assert_eq!(calendar_churn(5_000, 64), heap_churn(5_000, 64));
        assert_eq!(calendar_churn(5_000, 4_096), heap_churn(5_000, 4_096));
    }

    #[test]
    fn ingest_paths_agree() {
        let (rs, rm) = ingest_retained(20_000);
        let (ss, sm) = ingest_streaming(20_000);
        let (rs, ss) = (rs.expect("non-empty"), ss.expect("non-empty"));
        assert_eq!(rs.count, ss.count);
        assert_eq!(rm, sm, "miss counts are exact on both paths");
        assert!((rs.mean - ss.mean).abs() <= 1e-9 * rs.mean, "means agree");
        // Quantiles carry the documented bucket error; the exact-rank
        // bound is proptested in ntc-simcore.
        assert!(ss.p95 >= rs.p95 * 0.9 && ss.p95 <= rs.p95 * 1.1);
    }

    #[test]
    fn lookup_paths_agree() {
        let reg = lookup_registry();
        assert_eq!(site_lookup_by_id(&reg, 999), site_lookup_by_token(&reg, 999));
    }

    #[test]
    fn fresh_and_reused_replications_are_identical() {
        let engine = kernel_engine(1);
        let mut scratch = RunScratch::new();
        let fresh = engine_run_fresh(&engine, 7);
        let reused = engine_run_reused(&engine, 7, &mut scratch);
        assert_eq!(serde_json::to_string(&fresh).unwrap(), serde_json::to_string(&reused).unwrap());
    }
}
