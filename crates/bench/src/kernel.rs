//! Shared fixtures for the simulation-kernel benchmarks.
//!
//! Used by both `benches/kernel.rs` (criterion harness) and the
//! `bench_kernel_baseline` regenerator so the committed `BENCH_kernel.json`
//! numbers time exactly the code the bench suite times. Three layers are
//! covered:
//!
//! * the event queue in isolation — the calendar [`EventQueue`] against the
//!   pre-refactor binary-heap [`HeapQueue`] on an engine-like
//!   hold-model churn (bounded pending set, near-monotone pushes);
//! * one engine replication — the fresh-engine path every caller used
//!   before scratch reuse existed, against [`Engine::run_seeded`] on a
//!   long-lived [`RunScratch`] (the replication fast path);
//! * an end-to-end sweep — [`run_replications`] at a given thread count.

use ntc_core::{run_replications, Engine, Environment, OffloadPolicy, RunResult, RunScratch};
use ntc_simcore::event::{reference::HeapQueue, EventQueue};
use ntc_simcore::units::{SimDuration, SimTime};
use ntc_workloads::{Archetype, StreamSpec};

/// The kernel workload: a 30-minute photo-pipeline run under the full NTC
/// policy — the same shape as `dispatch::engine_run_short`, so kernel
/// numbers line up with the older dispatch baseline.
pub fn kernel_specs() -> [StreamSpec; 1] {
    [StreamSpec::poisson(Archetype::PhotoPipeline, 0.05)]
}

/// Horizon of one kernel replication.
pub fn kernel_horizon() -> SimDuration {
    SimDuration::from_mins(30)
}

/// A long-lived engine over the reference environment.
pub fn kernel_engine(seed: u64) -> Engine {
    Engine::new(Environment::metro_reference(), seed)
}

/// One replication the pre-reuse way: a fresh scratch is allocated and
/// grown inside this call.
pub fn engine_run_fresh(engine: &Engine, seed: u64) -> RunResult {
    engine.run_seeded(
        seed,
        &OffloadPolicy::ntc(),
        &kernel_specs(),
        kernel_horizon(),
        &mut RunScratch::new(),
    )
}

/// One replication on a reused scratch: the steady-state path sweeps and
/// replication loops run on.
pub fn engine_run_reused(engine: &Engine, seed: u64, scratch: &mut RunScratch) -> RunResult {
    engine.run_seeded(seed, &OffloadPolicy::ntc(), &kernel_specs(), kernel_horizon(), scratch)
}

/// `reps` independent kernel replications fanned across `threads` workers.
pub fn sweep_replications(reps: u32, threads: usize) -> Vec<RunResult> {
    let env = Environment::metro_reference();
    run_replications(
        &env,
        &OffloadPolicy::ntc(),
        &kernel_specs(),
        kernel_horizon(),
        1,
        reps,
        threads,
    )
}

/// Maximum forward jitter of a replacement push, in microseconds (2 s —
/// engine-like sparse spacing, wider than the calendar's initial width).
const CHURN_JITTER_US: u64 = 2_000_000;

#[inline]
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Hold-model churn on the calendar queue: seed `pending` events, then
/// pop-earliest/push-replacement `events` times and drain. Returns a
/// checksum over `(time, payload)` so the work cannot be optimised away
/// and so the heap variant can be asserted order-identical. Small
/// `pending` exercises the sparse regime (the heap's best case: it stays
/// cache-resident); large `pending` the dense regime the engine hits at
/// realistic traffic.
pub fn calendar_churn(events: u64, pending: u64) -> u64 {
    let mut q = EventQueue::new();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..pending {
        q.push(SimTime::from_micros(xorshift(&mut x) % CHURN_JITTER_US), i);
    }
    let mut acc = 0u64;
    for i in 0..events {
        let (t, v) = q.pop().expect("pending set never empties");
        acc = acc.wrapping_mul(31).wrapping_add(t.as_micros()).wrapping_add(v);
        q.push(t + SimDuration::from_micros(xorshift(&mut x) % CHURN_JITTER_US), pending + i);
    }
    while let Some((t, v)) = q.pop() {
        acc = acc.wrapping_mul(31).wrapping_add(t.as_micros()).wrapping_add(v);
    }
    acc
}

/// The same churn on the pre-refactor binary-heap queue; must return the
/// same checksum as [`calendar_churn`] for the same arguments.
pub fn heap_churn(events: u64, pending: u64) -> u64 {
    let mut q = HeapQueue::new();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..pending {
        q.push(SimTime::from_micros(xorshift(&mut x) % CHURN_JITTER_US), i);
    }
    let mut acc = 0u64;
    for i in 0..events {
        let (t, v) = q.pop().expect("pending set never empties");
        acc = acc.wrapping_mul(31).wrapping_add(t.as_micros()).wrapping_add(v);
        q.push(t + SimDuration::from_micros(xorshift(&mut x) % CHURN_JITTER_US), pending + i);
    }
    while let Some((t, v)) = q.pop() {
        acc = acc.wrapping_mul(31).wrapping_add(t.as_micros()).wrapping_add(v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_checksums_agree() {
        assert_eq!(calendar_churn(5_000, 64), heap_churn(5_000, 64));
        assert_eq!(calendar_churn(5_000, 4_096), heap_churn(5_000, 4_096));
    }

    #[test]
    fn fresh_and_reused_replications_are_identical() {
        let engine = kernel_engine(1);
        let mut scratch = RunScratch::new();
        let fresh = engine_run_fresh(&engine, 7);
        let reused = engine_run_reused(&engine, 7, &mut scratch);
        assert_eq!(serde_json::to_string(&fresh).unwrap(), serde_json::to_string(&reused).unwrap());
    }
}
