//! Shared workloads for the `engine_dispatch` micro-benchmark.
//!
//! The refactor routed every engine decision through the dyn
//! [`ExecutionSite`](ntc_core::ExecutionSite) surface, so this module
//! isolates the dispatch hot path — registry lookup and a single
//! invocation per site — plus one short end-to-end run. The criterion
//! bench (`benches/engine_dispatch.rs`) and the committed-baseline
//! writer (`bench_dispatch_baseline`) both drive these workloads so the
//! two always measure the same code.

use ntc_core::{
    deploy, Engine, Environment, InvokeRequest, OffloadPolicy, RunResult, SiteId, SiteRegistry,
    SiteRole,
};
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{Cycles, SimDuration, SimTime};
use ntc_taskgraph::ComponentId;
use ntc_workloads::{Archetype, StreamSpec};

/// A provisioned registry plus a monotonically advancing clock: the
/// minimal state needed to invoke every built-in site through the trait
/// object, exactly as `engine::execute` does.
pub struct DispatchFixture {
    env: Environment,
    registry: SiteRegistry,
    cases: Vec<(SiteId, usize, ComponentId)>,
    now: SimTime,
}

impl DispatchFixture {
    /// Builds the registry, deploys one cloud-backed and one edge-backed
    /// photo pipeline, and provisions their first offloaded component.
    pub fn new(seed: u64) -> Self {
        let env = Environment::metro_reference();
        let rng = RngStream::root(seed);
        let mut registry = SiteRegistry::standard(&env, &rng);
        let slack = Archetype::PhotoPipeline.typical_slack();
        let deployments = [
            deploy(&OffloadPolicy::CloudAll, Archetype::PhotoPipeline, &env, 0.1, slack, &rng),
            deploy(&OffloadPolicy::EdgeAll, Archetype::PhotoPipeline, &env, 0.1, slack, &rng),
        ];
        let mut cases = Vec::new();
        for (di, d) in deployments.iter().enumerate() {
            let comp = d.plan.offloaded().next().expect("full offload has offloaded components");
            let site = SiteId::from(d.backend);
            let s = registry.get_mut(&site);
            s.attach();
            s.provision(di, d, comp, SiteRole::Primary);
            cases.push((site, di, comp));
        }
        cases.push((SiteId::device(), 0, ComponentId::from_index(0)));
        DispatchFixture { env, registry, cases, now: SimTime::ZERO + SimDuration::from_mins(10) }
    }

    /// The site ids this fixture can invoke (cloud, edge, device).
    pub fn site_ids(&self) -> Vec<SiteId> {
        self.cases.iter().map(|(s, _, _)| s.clone()).collect()
    }

    /// One invocation through the dyn-trait surface, advancing the sim
    /// clock so platform queueing stays monotonic. Returns the finish
    /// instant (so callers can `black_box` a data-dependent value).
    ///
    /// # Panics
    ///
    /// Panics if `site` is unknown to the fixture or the invocation
    /// fails — the workload is fault-free by construction.
    pub fn invoke_once(&mut self, site: &SiteId) -> SimTime {
        let (_, di, comp) =
            *self.cases.iter().find(|(s, _, _)| s == site).expect("site known to the fixture");
        self.now += SimDuration::from_millis(250);
        let member_works = [Cycles::from_mega(40)];
        let remote = self.registry.get(site).is_remote();
        let req = InvokeRequest {
            at: self.now,
            di,
            comp,
            work: if remote { Cycles::from_mega(40) } else { Cycles::new(0) },
            member_works: if remote { &[] } else { &member_works },
            device: &self.env.device,
        };
        self.registry.get_mut(site).invoke(&req).expect("fault-free invocation succeeds").finish
    }

    /// The registry lookup on the dispatch hot path (id → boxed site).
    pub fn lookup(&self, site: &SiteId) -> u32 {
        self.registry.get(site).fallback_rank()
    }
}

/// One short end-to-end run through the full pipeline (admission →
/// transfer → execute → accounting) under the NTC policy — the
/// macro-level view of dispatch overhead.
pub fn engine_run_short(seed: u64) -> RunResult {
    let engine = Engine::new(Environment::metro_reference(), seed);
    let specs = [StreamSpec::poisson(Archetype::PhotoPipeline, 0.05)];
    engine.run(&OffloadPolicy::ntc(), &specs, SimDuration::from_mins(30))
}
