//! Thread-count invariance of the Figure 11 scale sweep: the rows —
//! job counts, latency digest quantiles, miss rates, failures — must be
//! bit-identical whether the sweep runs on one worker or eight. This is
//! the experiment-level witness that `JobRetention::Aggregates` changes
//! only what the engine *retains*, never what it computes: the streaming
//! accumulator folds jobs in completion order inside each run, so sweep
//! scheduling cannot reorder anything it sees.

use ntc_bench::scale;
use ntc_simcore::units::SimDuration;

#[test]
fn fig11_rows_are_identical_across_thread_counts() {
    // Sized like a `--quick` point, well under the figure's full grid,
    // so the test stays CI-fast while exercising the real sweep path.
    let horizon = SimDuration::from_mins(10);
    let users = [5_000, 20_000];
    let one = scale::rows(42, &users, horizon, 1);
    let eight = scale::rows(42, &users, horizon, 8);
    assert_eq!(one.len(), eight.len());
    for (a, b) in one.iter().zip(&eight) {
        assert_eq!(a, b, "row diverged between 1 and 8 sweep threads");
    }
}
