//! Thread-count invariance of the Figure 10 overload sweep: the rows —
//! goodput, miss rates, shed/defer/hedge counters, breaker transitions —
//! must be bit-identical whether the sweep runs on one worker or eight.
//! This is the experiment-level witness of the engine contract that the
//! health layer draws all its randomness from derived streams keyed by
//! point identity, never from sweep scheduling.

use ntc_bench::overload;
use ntc_simcore::units::SimDuration;

#[test]
fn fig10_rows_are_identical_across_thread_counts() {
    let horizon = SimDuration::from_hours(2);
    let multipliers = [1.0, 3.0];
    let one = overload::rows(42, horizon, &multipliers, 1);
    let eight = overload::rows(42, horizon, &multipliers, 8);
    assert_eq!(one.len(), eight.len());
    for (a, b) in one.iter().zip(&eight) {
        assert_eq!(a, b, "row diverged between 1 and 8 sweep threads");
    }
}
