//! Criterion micro-benchmark of the `ExecutionSite` dispatch hot path.
//!
//! The engine refactor replaced `match Backend::` arms with dyn-trait
//! dispatch through the site registry; this bench tracks what that
//! indirection costs so future PRs have a perf trajectory. The committed
//! baseline lives in `BENCH_dispatch.json` (regenerate with
//! `cargo run --release -p ntc-bench --bin bench_dispatch_baseline`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ntc_bench::dispatch::{engine_run_short, DispatchFixture};

fn bench_registry_lookup(c: &mut Criterion) {
    let fx = DispatchFixture::new(1);
    let ids = fx.site_ids();
    c.bench_function("engine_dispatch/registry_lookup", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for id in &ids {
                acc = acc.wrapping_add(fx.lookup(id));
            }
            black_box(acc)
        })
    });
}

fn bench_site_invoke(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_dispatch/invoke");
    let ids = DispatchFixture::new(1).site_ids();
    for id in ids {
        let mut fx = DispatchFixture::new(1);
        group.bench_with_input(BenchmarkId::from_parameter(&id), &id, |b, id| {
            b.iter(|| black_box(fx.invoke_once(id)))
        });
    }
    group.finish();
}

fn bench_engine_short_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_dispatch/end_to_end");
    group.sample_size(10);
    group.bench_function("photo_30min", |b| b.iter(|| black_box(engine_run_short(1))));
    group.finish();
}

criterion_group!(benches, bench_registry_lookup, bench_site_invoke, bench_engine_short_run);
criterion_main!(benches);
