//! Criterion micro-benchmarks of the framework's own overheads: the
//! Design-Science-Research artefact claim is that the machinery itself is
//! cheap enough to run inside a CI pipeline or an online scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ntc_core::{Engine, Environment, OffloadPolicy};
use ntc_partition::{CostParams, MinCutPartitioner, PartitionContext, Partitioner};
use ntc_profiler::estimator::{DemandEstimator, HybridEstimator, Observation};
use ntc_serverless::{FunctionConfig, PlatformConfig, ServerlessPlatform};
use ntc_simcore::event::EventQueue;
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{Cycles, DataSize, SimDuration, SimTime};
use ntc_taskgraph::{random_layered_dag, RandomDagConfig};
use ntc_workloads::{Archetype, StreamSpec};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_micros(i * 7919 % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_min_cut(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition/min_cut");
    for &nodes in &[8usize, 16, 32, 64] {
        let mut rng = RngStream::root(1).derive("bench-dag");
        let cfg = RandomDagConfig { nodes, layers: (nodes / 3).max(2), ..Default::default() };
        let graph = random_layered_dag(&mut rng, &cfg);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &graph, |b, g| {
            b.iter(|| {
                let ctx = PartitionContext::new(g, DataSize::from_mib(2), CostParams::default());
                black_box(MinCutPartitioner.partition(&ctx))
            })
        });
    }
    group.finish();
}

fn bench_estimator(c: &mut Criterion) {
    c.bench_function("profiler/hybrid_observe_predict", |b| {
        let mut est = HybridEstimator::default();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let input = DataSize::from_kib(i % 1000);
            est.observe(Observation::new(input, Cycles::new(1000 + 3 * input.as_bytes())));
            black_box(est.predict(input))
        })
    });
}

fn bench_platform(c: &mut Criterion) {
    c.bench_function("serverless/invoke_step", |b| {
        let mut platform = ServerlessPlatform::new(PlatformConfig::default(), RngStream::root(1));
        let f = platform.register(FunctionConfig::new("f", DataSize::from_mib(1024)));
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_millis(10);
            black_box(platform.invoke(t, f, Cycles::from_mega(100)).expect("in order"))
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/end_to_end");
    group.sample_size(10);
    let engine = Engine::new(Environment::metro_reference(), 3);
    let specs = [StreamSpec::poisson(Archetype::PhotoPipeline, 0.05)];
    group.bench_function("photo_1h", |b| {
        b.iter(|| black_box(engine.run(&OffloadPolicy::ntc(), &specs, SimDuration::from_hours(1))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_min_cut,
    bench_estimator,
    bench_platform,
    bench_end_to_end
);
criterion_main!(benches);
