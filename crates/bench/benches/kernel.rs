//! Criterion benchmarks of the simulation kernel's three perf layers:
//! the calendar event queue against the binary-heap reference, one engine
//! replication (fresh scratch vs reused scratch), and the parallel sweep
//! runner end to end. The committed baseline lives in `BENCH_kernel.json`
//! (regenerate with `cargo run --release -p ntc-bench --bin
//! bench_kernel_baseline`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ntc_bench::kernel::{
    calendar_churn, engine_run_fresh, engine_run_reused, heap_churn, ingest_retained,
    ingest_streaming, kernel_engine, lookup_registry, site_lookup_by_id, site_lookup_by_token,
    sweep_replications,
};
use ntc_core::RunScratch;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/event_queue");
    for pending in [64u64, 4_096] {
        group.bench_with_input(
            BenchmarkId::new("calendar_churn_50k", pending),
            &pending,
            |b, &p| b.iter(|| black_box(calendar_churn(50_000, p))),
        );
        group.bench_with_input(BenchmarkId::new("heap_churn_50k", pending), &pending, |b, &p| {
            b.iter(|| black_box(heap_churn(50_000, p)))
        });
    }
    group.finish();
}

fn bench_engine_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/engine_run");
    group.sample_size(10);
    let engine = kernel_engine(1);
    group.bench_function("fresh_scratch", |b| b.iter(|| black_box(engine_run_fresh(&engine, 1))));
    let mut scratch = RunScratch::new();
    group.bench_function("reused_scratch", |b| {
        b.iter(|| black_box(engine_run_reused(&engine, 1, &mut scratch)))
    });
    group.finish();
}

fn bench_sweep_e2e(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/sweep_e2e");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("replications_8", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(sweep_replications(8, threads))),
        );
    }
    group.finish();
}

fn bench_metrics_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/accumulator");
    group.sample_size(20);
    group.bench_function("ingest_summarise_100k", |b| {
        b.iter(|| black_box(ingest_streaming(100_000)))
    });
    group
        .bench_function("ingest_retained_100k", |b| b.iter(|| black_box(ingest_retained(100_000))));
    group.finish();
}

fn bench_site_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/dispatch");
    group.sample_size(20);
    let reg = lookup_registry();
    group.bench_function("site_lookup_1m", |b| {
        b.iter(|| black_box(site_lookup_by_token(&reg, 1_000_000)))
    });
    group.bench_function("site_lookup_by_id_1m", |b| {
        b.iter(|| black_box(site_lookup_by_id(&reg, 1_000_000)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_engine_run,
    bench_sweep_e2e,
    bench_metrics_ingest,
    bench_site_lookup
);
criterion_main!(benches);
