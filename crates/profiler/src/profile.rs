//! Application-level profiling: one demand estimator per component, plus
//! extraction of fitted demand models for the partitioner.

use core::fmt;

use ntc_simcore::units::{Cycles, DataSize};
use ntc_taskgraph::{ComponentId, LinearModel, TaskGraph};
use serde::{Deserialize, Serialize};

use crate::estimator::{
    DemandEstimator, EwmaEstimator, HoltEstimator, HybridEstimator, Observation, QuantileEstimator,
    RegressionEstimator,
};

/// Which estimator family to instantiate per component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// [`EwmaEstimator`] with default smoothing.
    Ewma,
    /// [`QuantileEstimator`] (p90 over a 100-observation window).
    Quantile,
    /// [`HoltEstimator`] — trend-aware double exponential smoothing.
    Holt,
    /// [`RegressionEstimator`] on input size.
    Regression,
    /// [`HybridEstimator`] — the framework default.
    #[default]
    Hybrid,
}

impl EstimatorKind {
    /// Instantiates a fresh estimator of this kind.
    pub fn build(self) -> Box<dyn DemandEstimator> {
        match self {
            EstimatorKind::Ewma => Box::new(EwmaEstimator::default()),
            EstimatorKind::Quantile => Box::new(QuantileEstimator::default()),
            EstimatorKind::Holt => Box::new(HoltEstimator::default()),
            EstimatorKind::Regression => Box::new(RegressionEstimator::new()),
            EstimatorKind::Hybrid => Box::new(HybridEstimator::default()),
        }
    }

    /// All estimator kinds, for comparison experiments.
    pub fn all() -> [EstimatorKind; 5] {
        [
            EstimatorKind::Ewma,
            EstimatorKind::Quantile,
            EstimatorKind::Holt,
            EstimatorKind::Regression,
            EstimatorKind::Hybrid,
        ]
    }
}

impl fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EstimatorKind::Ewma => "ewma",
            EstimatorKind::Quantile => "quantile",
            EstimatorKind::Holt => "holt",
            EstimatorKind::Regression => "regression",
            EstimatorKind::Hybrid => "hybrid",
        };
        f.write_str(s)
    }
}

/// Per-component demand profiler for one application.
///
/// Falls back to the component's static demand annotation until enough
/// observations have accumulated, so a freshly deployed application still
/// gets sensible offloading decisions (contribution C1 of the paper:
/// "determine computational demands").
///
/// # Examples
///
/// ```
/// use ntc_profiler::{AppProfiler, EstimatorKind};
/// use ntc_taskgraph::{TaskGraphBuilder, Component, LinearModel};
/// use ntc_simcore::units::{Cycles, DataSize};
///
/// let mut b = TaskGraphBuilder::new("app");
/// let c = b.add_component(Component::new("work").with_demand(LinearModel::constant(1e6)));
/// let graph = b.build().unwrap();
///
/// let mut profiler = AppProfiler::new(&graph, EstimatorKind::Hybrid);
/// // Before observations: the static annotation.
/// assert_eq!(profiler.predict(c, DataSize::ZERO), Cycles::from_mega(1));
/// // Observations override the annotation.
/// for _ in 0..20 {
///     profiler.observe(c, DataSize::ZERO, Cycles::from_mega(5));
/// }
/// assert_eq!(profiler.predict(c, DataSize::ZERO), Cycles::from_mega(5));
/// ```
#[derive(Debug)]
pub struct AppProfiler {
    kind: EstimatorKind,
    estimators: Vec<Box<dyn DemandEstimator>>,
    fallbacks: Vec<LinearModel>,
    min_observations: u64,
}

impl AppProfiler {
    /// Number of observations required before estimates replace static
    /// annotations.
    pub const DEFAULT_MIN_OBSERVATIONS: u64 = 5;

    /// Creates a profiler with one estimator per component of `graph`.
    pub fn new(graph: &TaskGraph, kind: EstimatorKind) -> Self {
        AppProfiler {
            kind,
            estimators: graph.ids().map(|_| kind.build()).collect(),
            fallbacks: graph.components().map(|(_, c)| c.demand()).collect(),
            min_observations: Self::DEFAULT_MIN_OBSERVATIONS,
        }
    }

    /// Overrides the warm-up threshold.
    pub fn with_min_observations(mut self, n: u64) -> Self {
        self.min_observations = n;
        self
    }

    /// The estimator family in use.
    pub fn kind(&self) -> EstimatorKind {
        self.kind
    }

    /// Records a measured execution of `component`.
    ///
    /// # Panics
    ///
    /// Panics if `component` is not part of the profiled graph.
    pub fn observe(&mut self, component: ComponentId, input: DataSize, cycles: Cycles) {
        self.estimators[component.index()].observe(Observation::new(input, cycles));
    }

    /// Observations recorded for `component`.
    ///
    /// # Panics
    ///
    /// Panics if `component` is not part of the profiled graph.
    pub fn observations(&self, component: ComponentId) -> u64 {
        self.estimators[component.index()].observations()
    }

    /// Predicts the demand of `component` for a job with the given input,
    /// using the static annotation until warmed up.
    ///
    /// # Panics
    ///
    /// Panics if `component` is not part of the profiled graph.
    pub fn predict(&self, component: ComponentId, input: DataSize) -> Cycles {
        let est = &self.estimators[component.index()];
        if est.observations() < self.min_observations {
            self.fallbacks[component.index()].eval_cycles(input)
        } else {
            est.predict(input)
        }
    }

    /// Extracts a linear demand model for `component` by probing the
    /// estimator at two reference inputs — usable anywhere a static
    /// [`LinearModel`] annotation is expected (e.g. the partitioner).
    ///
    /// # Panics
    ///
    /// Panics if `component` is not part of the profiled graph.
    pub fn fitted_model(&self, component: ComponentId) -> LinearModel {
        let est = &self.estimators[component.index()];
        if est.observations() < self.min_observations {
            return self.fallbacks[component.index()];
        }
        let ref_input = DataSize::from_mib(1);
        let p0 = est.predict(DataSize::ZERO).get() as f64;
        let p1 = est.predict(ref_input).get() as f64;
        let slope = (p1 - p0) / ref_input.as_bytes() as f64;
        LinearModel::scaling(p0, slope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_taskgraph::{Component, TaskGraphBuilder};

    fn graph() -> (TaskGraph, ComponentId, ComponentId) {
        let mut b = TaskGraphBuilder::new("g");
        let a = b.add_component(Component::new("a").with_demand(LinearModel::constant(1e6)));
        let c = b.add_component(Component::new("b").with_demand(LinearModel::scaling(0.0, 2.0)));
        b.add_flow(a, c, LinearModel::ZERO);
        (b.build().unwrap(), a, c)
    }

    use ntc_taskgraph::TaskGraph;

    #[test]
    fn fallback_until_warm() {
        let (g, a, _) = graph();
        let mut p = AppProfiler::new(&g, EstimatorKind::Ewma);
        assert_eq!(p.predict(a, DataSize::ZERO), Cycles::from_mega(1));
        for _ in 0..4 {
            p.observe(a, DataSize::ZERO, Cycles::from_mega(9));
        }
        // Still below DEFAULT_MIN_OBSERVATIONS.
        assert_eq!(p.predict(a, DataSize::ZERO), Cycles::from_mega(1));
        p.observe(a, DataSize::ZERO, Cycles::from_mega(9));
        assert_eq!(p.predict(a, DataSize::ZERO), Cycles::from_mega(9));
        assert_eq!(p.observations(a), 5);
    }

    #[test]
    fn fitted_model_recovers_slope() {
        let (g, _, c) = graph();
        let mut p = AppProfiler::new(&g, EstimatorKind::Regression);
        for i in 1..=20u64 {
            let input = DataSize::from_kib(i * 10);
            p.observe(c, input, Cycles::new(3 * input.as_bytes() + 500));
        }
        let m = p.fitted_model(c);
        assert!((m.per_input_byte - 3.0).abs() < 0.01, "slope {}", m.per_input_byte);
        assert!((m.fixed - 500.0).abs() < 50.0, "intercept {}", m.fixed);
    }

    #[test]
    fn fitted_model_falls_back_when_cold() {
        let (g, _, c) = graph();
        let p = AppProfiler::new(&g, EstimatorKind::Hybrid);
        assert_eq!(p.fitted_model(c), LinearModel::scaling(0.0, 2.0));
    }

    #[test]
    fn kinds_build_distinct_estimators() {
        for kind in EstimatorKind::all() {
            let e = kind.build();
            assert_eq!(e.observations(), 0);
            assert_eq!(kind.to_string(), e.name());
        }
        assert_eq!(EstimatorKind::default(), EstimatorKind::Hybrid);
    }

    #[test]
    fn min_observations_is_configurable() {
        let (g, a, _) = graph();
        let mut p = AppProfiler::new(&g, EstimatorKind::Ewma).with_min_observations(1);
        p.observe(a, DataSize::ZERO, Cycles::from_mega(7));
        assert_eq!(p.predict(a, DataSize::ZERO), Cycles::from_mega(7));
    }
}
