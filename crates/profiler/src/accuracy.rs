//! Estimator accuracy evaluation (Table 3 of the reconstructed
//! evaluation): one-step-ahead prediction error over a trace.

use ntc_simcore::stats::quantile;
use ntc_simcore::units::{Cycles, DataSize};
use serde::{Deserialize, Serialize};

use crate::estimator::{DemandEstimator, Observation};

/// One-step-ahead accuracy of an estimator over a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Number of scored predictions (trace length minus warm-up).
    pub scored: u64,
    /// Mean absolute percentage error, in percent.
    pub mape: f64,
    /// 95th percentile of absolute percentage error, in percent.
    pub p95_ape: f64,
    /// Fraction of predictions that *under*-estimated demand (risky for
    /// timeout selection).
    pub underestimate_rate: f64,
}

/// Replays `trace` through `estimator`, scoring each prediction *before*
/// feeding the observation (honest one-step-ahead evaluation). The first
/// `warmup` observations are fed but not scored.
///
/// Returns `None` if no predictions were scored (trace shorter than the
/// warm-up, or every actual demand was zero).
pub fn evaluate(
    estimator: &mut dyn DemandEstimator,
    trace: &[(DataSize, Cycles)],
    warmup: usize,
) -> Option<AccuracyReport> {
    let mut apes = Vec::new();
    let mut under = 0u64;
    for (i, &(input, cycles)) in trace.iter().enumerate() {
        if i >= warmup && cycles.get() > 0 {
            let predicted = estimator.predict(input).get() as f64;
            let actual = cycles.get() as f64;
            apes.push(100.0 * (actual - predicted).abs() / actual);
            if predicted < actual {
                under += 1;
            }
        }
        estimator.observe(Observation::new(input, cycles));
    }
    if apes.is_empty() {
        return None;
    }
    let mape = apes.iter().sum::<f64>() / apes.len() as f64;
    Some(AccuracyReport {
        scored: apes.len() as u64,
        mape,
        p95_ape: quantile(&apes, 0.95).expect("apes is non-empty and NaN-free"),
        underestimate_rate: under as f64 / apes.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{EwmaEstimator, RegressionEstimator};

    #[test]
    fn perfect_predictor_has_zero_error() {
        // Constant demand: EWMA converges immediately after 1 observation.
        let trace: Vec<_> = (0..100).map(|_| (DataSize::ZERO, Cycles::new(1000))).collect();
        let mut e = EwmaEstimator::default();
        let r = evaluate(&mut e, &trace, 1).unwrap();
        assert_eq!(r.mape, 0.0);
        assert_eq!(r.p95_ape, 0.0);
        assert_eq!(r.scored, 99);
    }

    #[test]
    fn regression_beats_ewma_on_linear_demand() {
        let trace: Vec<_> = (0..200u64)
            .map(|i| {
                let input = DataSize::from_bytes((i % 17) * 10_000);
                (input, Cycles::new(1000 + 5 * input.as_bytes()))
            })
            .collect();
        let r_reg = evaluate(&mut RegressionEstimator::new(), &trace, 10).unwrap();
        let r_ewma = evaluate(&mut EwmaEstimator::default(), &trace, 10).unwrap();
        assert!(r_reg.mape < r_ewma.mape, "reg {} vs ewma {}", r_reg.mape, r_ewma.mape);
        assert!(r_reg.mape < 1.0);
    }

    #[test]
    fn short_trace_returns_none() {
        let trace = vec![(DataSize::ZERO, Cycles::new(10))];
        assert!(evaluate(&mut EwmaEstimator::default(), &trace, 5).is_none());
    }

    #[test]
    fn zero_demand_observations_are_skipped() {
        let trace: Vec<_> = (0..20).map(|_| (DataSize::ZERO, Cycles::ZERO)).collect();
        assert!(evaluate(&mut EwmaEstimator::default(), &trace, 0).is_none());
    }

    #[test]
    fn underestimate_rate_counts_risky_predictions() {
        // Demand grows: any smoothing estimator always lags below.
        let trace: Vec<_> = (1..100u64).map(|i| (DataSize::ZERO, Cycles::new(i * 1000))).collect();
        let r = evaluate(&mut EwmaEstimator::default(), &trace, 1).unwrap();
        assert!(r.underestimate_rate > 0.95, "rate={}", r.underestimate_rate);
    }
}
