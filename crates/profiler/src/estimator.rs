//! Online demand estimators: predict a component's compute demand for the
//! next invocation from past observations.

use core::fmt;
use std::collections::VecDeque;

use ntc_simcore::units::{Cycles, DataSize};

/// One observed execution: the job input size and the cycles it consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Input size of the job.
    pub input: DataSize,
    /// Measured compute demand.
    pub cycles: Cycles,
}

impl Observation {
    /// Creates an observation.
    pub fn new(input: DataSize, cycles: Cycles) -> Self {
        Observation { input, cycles }
    }
}

/// An online estimator of per-invocation compute demand.
///
/// Implementations are deterministic given the same observation sequence.
/// All estimators return [`Cycles::ZERO`] before the first observation —
/// callers should treat a zero prediction from an empty estimator as
/// "unknown" and fall back to static annotations.
pub trait DemandEstimator: fmt::Debug {
    /// Feeds one observed execution.
    fn observe(&mut self, obs: Observation);

    /// Predicts the demand of the next invocation with the given input.
    fn predict(&self, input: DataSize) -> Cycles;

    /// The number of observations seen so far.
    fn observations(&self) -> u64;

    /// A short human-readable estimator name (for result tables).
    fn name(&self) -> &'static str;
}

/// Exponentially weighted moving average of demand, ignoring input size.
///
/// Best for components whose demand is stationary and uncorrelated with
/// input (e.g. fixed-size model inference).
#[derive(Debug, Clone)]
pub struct EwmaEstimator {
    alpha: f64,
    mean: f64,
    count: u64,
}

impl EwmaEstimator {
    /// Creates an estimator with smoothing factor `alpha` in `(0, 1]`
    /// (weight of the newest observation).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        EwmaEstimator { alpha, mean: 0.0, count: 0 }
    }
}

impl Default for EwmaEstimator {
    fn default() -> Self {
        Self::new(0.2)
    }
}

impl DemandEstimator for EwmaEstimator {
    fn observe(&mut self, obs: Observation) {
        let x = obs.cycles.get() as f64;
        if self.count == 0 {
            self.mean = x;
        } else {
            self.mean = self.alpha * x + (1.0 - self.alpha) * self.mean;
        }
        self.count += 1;
    }

    fn predict(&self, _input: DataSize) -> Cycles {
        Cycles::new(self.mean.round() as u64)
    }

    fn observations(&self) -> u64 {
        self.count
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// Windowed quantile estimator: predicts the `q`-quantile of the last `w`
/// observations.
///
/// A conservative (high-quantile) setting is useful when under-prediction
/// is costly — e.g. when the prediction feeds a function-timeout choice.
#[derive(Debug, Clone)]
pub struct QuantileEstimator {
    q: f64,
    window: VecDeque<u64>,
    capacity: usize,
    count: u64,
}

impl QuantileEstimator {
    /// Creates an estimator of the `q`-quantile over a window of
    /// `capacity` observations.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or `capacity` is zero.
    pub fn new(q: f64, capacity: usize) -> Self {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        assert!(capacity > 0, "window capacity must be positive");
        QuantileEstimator { q, window: VecDeque::with_capacity(capacity), capacity, count: 0 }
    }
}

impl Default for QuantileEstimator {
    fn default() -> Self {
        Self::new(0.9, 100)
    }
}

impl DemandEstimator for QuantileEstimator {
    fn observe(&mut self, obs: Observation) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(obs.cycles.get());
        self.count += 1;
    }

    fn predict(&self, _input: DataSize) -> Cycles {
        if self.window.is_empty() {
            return Cycles::ZERO;
        }
        let mut sorted: Vec<u64> = self.window.iter().copied().collect();
        sorted.sort_unstable();
        let pos = (self.q * (sorted.len() - 1) as f64).round() as usize;
        Cycles::new(sorted[pos])
    }

    fn observations(&self) -> u64 {
        self.count
    }

    fn name(&self) -> &'static str {
        "quantile"
    }
}

/// Online simple linear regression of demand on input size
/// (`cycles ≈ a + b · input_bytes`, least squares).
///
/// Best when demand is strongly input-correlated (decode, transcode,
/// compression).
#[derive(Debug, Clone, Default)]
pub struct RegressionEstimator {
    n: f64,
    sx: f64,
    sy: f64,
    sxx: f64,
    sxy: f64,
    syy: f64,
    count: u64,
}

impl RegressionEstimator {
    /// Creates an empty regression estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fitted `(intercept, slope)` in cycles and cycles/byte, or
    /// `None` with fewer than two distinct inputs.
    pub fn coefficients(&self) -> Option<(f64, f64)> {
        if self.count < 2 {
            return None;
        }
        let denom = self.n * self.sxx - self.sx * self.sx;
        if denom.abs() < f64::EPSILON * self.n * self.sxx.max(1.0) {
            return None; // all inputs identical: slope undefined
        }
        let slope = (self.n * self.sxy - self.sx * self.sy) / denom;
        let intercept = (self.sy - slope * self.sx) / self.n;
        Some((intercept, slope))
    }

    /// The coefficient of determination r² of the fit, or `None` if
    /// undefined.
    pub fn r_squared(&self) -> Option<f64> {
        let (intercept, slope) = self.coefficients()?;
        let ss_tot = self.syy - self.sy * self.sy / self.n;
        if ss_tot <= 0.0 {
            return None; // zero variance in y
        }
        // SS_res = Σ(y - a - bx)² expanded in terms of the running sums.
        let ss_res = self.syy + self.n * intercept * intercept + slope * slope * self.sxx
            - 2.0 * intercept * self.sy
            - 2.0 * slope * self.sxy
            + 2.0 * intercept * slope * self.sx;
        Some((1.0 - ss_res / ss_tot).clamp(0.0, 1.0))
    }

    fn mean_y(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sy / self.n
        }
    }
}

impl DemandEstimator for RegressionEstimator {
    fn observe(&mut self, obs: Observation) {
        let x = obs.input.as_bytes() as f64;
        let y = obs.cycles.get() as f64;
        self.n += 1.0;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.sxy += x * y;
        self.syy += y * y;
        self.count += 1;
    }

    fn predict(&self, input: DataSize) -> Cycles {
        match self.coefficients() {
            Some((a, b)) => Cycles::new((a + b * input.as_bytes() as f64).max(0.0).round() as u64),
            None => Cycles::new(self.mean_y().round() as u64),
        }
    }

    fn observations(&self) -> u64 {
        self.count
    }

    fn name(&self) -> &'static str {
        "regression"
    }
}

/// Holt double-exponential smoothing: tracks a *level* and a *trend*, so
/// steadily growing (or shrinking) demand is anticipated instead of
/// lagged — the failure mode of plain EWMA under monotone drift.
///
/// Input-agnostic like [`EwmaEstimator`]; predictions are
/// `level + trend` (one step ahead), clamped at zero.
#[derive(Debug, Clone)]
pub struct HoltEstimator {
    alpha: f64,
    beta: f64,
    level: f64,
    trend: f64,
    count: u64,
}

impl HoltEstimator {
    /// Creates an estimator with level-smoothing `alpha` and
    /// trend-smoothing `beta`, both in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if either factor is outside `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        HoltEstimator { alpha, beta, level: 0.0, trend: 0.0, count: 0 }
    }
}

impl Default for HoltEstimator {
    fn default() -> Self {
        Self::new(0.3, 0.1)
    }
}

impl DemandEstimator for HoltEstimator {
    fn observe(&mut self, obs: Observation) {
        let x = obs.cycles.get() as f64;
        match self.count {
            0 => self.level = x,
            1 => {
                self.trend = x - self.level;
                self.level = x;
            }
            _ => {
                let prev_level = self.level;
                self.level = self.alpha * x + (1.0 - self.alpha) * (self.level + self.trend);
                self.trend = self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
            }
        }
        self.count += 1;
    }

    fn predict(&self, _input: DataSize) -> Cycles {
        Cycles::new((self.level + self.trend).max(0.0).round() as u64)
    }

    fn observations(&self) -> u64 {
        self.count
    }

    fn name(&self) -> &'static str {
        "holt"
    }
}

/// Hybrid estimator: uses the regression when the input correlation is
/// strong (r² above a threshold after a warm-up), otherwise the EWMA.
#[derive(Debug, Clone)]
pub struct HybridEstimator {
    ewma: EwmaEstimator,
    regression: RegressionEstimator,
    r2_threshold: f64,
    warmup: u64,
}

impl HybridEstimator {
    /// Creates a hybrid with the given r² switch-over threshold and
    /// warm-up observation count.
    ///
    /// # Panics
    ///
    /// Panics if `r2_threshold` is outside `[0, 1]`.
    pub fn new(r2_threshold: f64, warmup: u64) -> Self {
        assert!((0.0..=1.0).contains(&r2_threshold), "threshold must be in [0, 1]");
        HybridEstimator {
            ewma: EwmaEstimator::default(),
            regression: RegressionEstimator::new(),
            r2_threshold,
            warmup,
        }
    }

    /// Whether the regression branch is currently active.
    pub fn using_regression(&self) -> bool {
        self.regression.observations() >= self.warmup
            && self.regression.r_squared().is_some_and(|r2| r2 >= self.r2_threshold)
    }
}

impl Default for HybridEstimator {
    fn default() -> Self {
        Self::new(0.7, 10)
    }
}

impl DemandEstimator for HybridEstimator {
    fn observe(&mut self, obs: Observation) {
        self.ewma.observe(obs);
        self.regression.observe(obs);
    }

    fn predict(&self, input: DataSize) -> Cycles {
        if self.using_regression() {
            self.regression.predict(input)
        } else {
            self.ewma.predict(input)
        }
    }

    fn observations(&self) -> u64 {
        self.ewma.observations()
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(input: u64, cycles: u64) -> Observation {
        Observation::new(DataSize::from_bytes(input), Cycles::new(cycles))
    }

    #[test]
    fn empty_estimators_predict_zero() {
        let input = DataSize::from_kib(1);
        assert_eq!(EwmaEstimator::default().predict(input), Cycles::ZERO);
        assert_eq!(QuantileEstimator::default().predict(input), Cycles::ZERO);
        assert_eq!(RegressionEstimator::new().predict(input), Cycles::ZERO);
        assert_eq!(HybridEstimator::default().predict(input), Cycles::ZERO);
    }

    #[test]
    fn ewma_converges_to_stationary_mean() {
        let mut e = EwmaEstimator::new(0.3);
        for _ in 0..100 {
            e.observe(obs(0, 1000));
        }
        assert_eq!(e.predict(DataSize::ZERO), Cycles::new(1000));
        assert_eq!(e.observations(), 100);
    }

    #[test]
    fn ewma_tracks_level_shift() {
        let mut e = EwmaEstimator::new(0.5);
        for _ in 0..20 {
            e.observe(obs(0, 100));
        }
        for _ in 0..20 {
            e.observe(obs(0, 900));
        }
        let p = e.predict(DataSize::ZERO).get();
        assert!(p > 800, "should have adapted, got {p}");
    }

    #[test]
    fn quantile_is_conservative() {
        let mut e = QuantileEstimator::new(0.9, 100);
        for i in 1..=100u64 {
            e.observe(obs(0, i));
        }
        let p = e.predict(DataSize::ZERO).get();
        assert!((85..=95).contains(&p), "p90 of 1..=100 should be ~90, got {p}");
    }

    #[test]
    fn quantile_window_slides() {
        let mut e = QuantileEstimator::new(0.5, 10);
        for _ in 0..50 {
            e.observe(obs(0, 1));
        }
        for _ in 0..10 {
            e.observe(obs(0, 1000));
        }
        assert_eq!(e.predict(DataSize::ZERO), Cycles::new(1000), "old values left the window");
    }

    #[test]
    fn regression_recovers_linear_law() {
        let mut e = RegressionEstimator::new();
        for x in (0..100u64).map(|i| i * 1000) {
            e.observe(obs(x, 5000 + 3 * x));
        }
        let (a, b) = e.coefficients().unwrap();
        assert!((a - 5000.0).abs() < 1.0, "intercept {a}");
        assert!((b - 3.0).abs() < 1e-6, "slope {b}");
        assert_eq!(e.predict(DataSize::from_bytes(200_000)), Cycles::new(605_000));
        assert!(e.r_squared().unwrap() > 0.999);
    }

    #[test]
    fn regression_with_constant_input_falls_back_to_mean() {
        let mut e = RegressionEstimator::new();
        for _ in 0..10 {
            e.observe(obs(500, 100));
        }
        assert_eq!(e.coefficients(), None);
        assert_eq!(e.predict(DataSize::from_bytes(9999)), Cycles::new(100));
    }

    #[test]
    fn regression_clamps_negative_predictions() {
        let mut e = RegressionEstimator::new();
        e.observe(obs(0, 1000));
        e.observe(obs(1000, 0));
        assert_eq!(e.predict(DataSize::from_bytes(10_000)), Cycles::ZERO);
    }

    #[test]
    fn hybrid_switches_to_regression_on_correlated_data() {
        let mut h = HybridEstimator::default();
        for x in (0..50u64).map(|i| i * 100) {
            h.observe(obs(x, 10 * x + 7));
        }
        assert!(h.using_regression());
        let p = h.predict(DataSize::from_bytes(10_000)).get();
        assert!((p as i64 - 100_007).abs() < 10, "p={p}");
    }

    #[test]
    fn hybrid_stays_on_ewma_for_uncorrelated_data() {
        let mut h = HybridEstimator::default();
        // Demand independent of input: alternating inputs, noisy constant demand.
        for i in 0..50u64 {
            h.observe(obs(i % 7 * 1000, 1_000_000 + (i % 3) * 10));
        }
        assert!(!h.using_regression());
        let p = h.predict(DataSize::from_bytes(1)).get();
        assert!((999_000..1_001_000).contains(&p), "p={p}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let _ = EwmaEstimator::new(0.0);
    }

    #[test]
    fn holt_anticipates_linear_growth() {
        let mut holt = HoltEstimator::default();
        let mut ewma = EwmaEstimator::default();
        // Demand grows 1000 cycles per invocation.
        for i in 1..=200u64 {
            holt.observe(obs(0, i * 1000));
            ewma.observe(obs(0, i * 1000));
        }
        let next = 201_000f64;
        let holt_err = (holt.predict(DataSize::ZERO).get() as f64 - next).abs();
        let ewma_err = (ewma.predict(DataSize::ZERO).get() as f64 - next).abs();
        assert!(holt_err < ewma_err / 2.0, "holt {holt_err} vs ewma {ewma_err}");
        assert!(holt_err < 1000.0, "holt should be within one step: {holt_err}");
    }

    #[test]
    fn holt_is_flat_on_stationary_demand() {
        let mut holt = HoltEstimator::default();
        for _ in 0..100 {
            holt.observe(obs(0, 5000));
        }
        let p = holt.predict(DataSize::ZERO).get();
        assert!((4990..=5010).contains(&p), "p={p}");
    }

    #[test]
    fn holt_clamps_negative_extrapolation() {
        let mut holt = HoltEstimator::new(0.9, 0.9);
        holt.observe(obs(0, 10_000));
        holt.observe(obs(0, 100));
        holt.observe(obs(0, 0));
        assert_eq!(holt.predict(DataSize::ZERO), Cycles::ZERO);
    }
}
