//! # ntc-profiler
//!
//! Computational-demand determination (contribution **C1** of
//! *Computational Offloading for Non-Time-Critical Applications*,
//! ICDCS 2022): online estimators that learn each component's compute
//! demand from observed executions, per-application profilers, and an
//! accuracy-evaluation harness.
//!
//! * [`estimator`] — EWMA, windowed-quantile, online-regression and hybrid
//!   estimators behind the [`DemandEstimator`] trait.
//! * [`profile`] — [`AppProfiler`]: one estimator per component with
//!   static-annotation fallback, and fitted-model extraction for the
//!   partitioner.
//! * [`accuracy`] — honest one-step-ahead accuracy scoring (Table 3).
//!
//! # Examples
//!
//! ```
//! use ntc_profiler::estimator::{DemandEstimator, Observation, RegressionEstimator};
//! use ntc_simcore::units::{Cycles, DataSize};
//!
//! let mut est = RegressionEstimator::new();
//! for kib in 1..=50u64 {
//!     let input = DataSize::from_kib(kib);
//!     est.observe(Observation::new(input, Cycles::new(2 * input.as_bytes())));
//! }
//! assert_eq!(est.predict(DataSize::from_kib(100)), Cycles::new(2 * 100 * 1024));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod drift;
pub mod estimator;
pub mod profile;

pub use accuracy::{evaluate, AccuracyReport};
pub use drift::{Drift, PageHinkley};
pub use estimator::{
    DemandEstimator, EwmaEstimator, HoltEstimator, HybridEstimator, Observation, QuantileEstimator,
    RegressionEstimator,
};
pub use profile::{AppProfiler, EstimatorKind};
