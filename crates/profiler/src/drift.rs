//! Runtime drift detection: notice when a deployed component's demand
//! departs from the profile it was released with.
//!
//! The CI/CD pipeline profiles a release once (contribution C1/C4); after
//! promotion, demand can drift — library updates, fatter inputs, cache
//! behaviour. The [`PageHinkley`] detector watches the stream of
//! observed-vs-expected ratios and raises a signal when the cumulative
//! deviation leaves the tolerance band, prompting a re-profile/re-release
//! (the "many iterations" of the paper's Design Science methodology).

use core::fmt;

use serde::{Deserialize, Serialize};

/// Direction of a detected drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Drift {
    /// Values drifted upward (demand grew: risk of misses/timeouts).
    Up,
    /// Values drifted downward (demand shrank: over-provisioned).
    Down,
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Drift::Up => "up",
            Drift::Down => "down",
        })
    }
}

/// Two-sided Page–Hinkley change detector.
///
/// Feed it a stream of values (typically `observed / expected` ratios,
/// which hover around 1.0 in steady state). It maintains cumulative
/// deviations from the running mean in both directions; when either
/// exceeds `lambda`, the corresponding [`Drift`] fires and the detector
/// resets.
///
/// * `delta` — per-observation tolerance (noise allowance);
/// * `lambda` — detection threshold (bigger = fewer, later detections).
///
/// # Examples
///
/// ```
/// use ntc_profiler::drift::{Drift, PageHinkley};
///
/// let mut d = PageHinkley::new(0.05, 2.0);
/// // Stable phase: no alarms.
/// for _ in 0..100 {
///     assert_eq!(d.observe(1.0), None);
/// }
/// // Demand jumps 60 %: the detector fires within a bounded delay.
/// let fired = (0..100).find_map(|_| d.observe(1.6));
/// assert_eq!(fired, Some(Drift::Up));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    count: u64,
    mean: f64,
    cum_up: f64,
    min_up: f64,
    cum_down: f64,
    max_down: f64,
}

impl PageHinkley {
    /// Creates a detector with noise tolerance `delta` and threshold
    /// `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative or `lambda` is not positive.
    pub fn new(delta: f64, lambda: f64) -> Self {
        assert!(delta >= 0.0 && delta.is_finite(), "delta must be non-negative");
        assert!(lambda > 0.0 && lambda.is_finite(), "lambda must be positive");
        PageHinkley {
            delta,
            lambda,
            count: 0,
            mean: 0.0,
            cum_up: 0.0,
            min_up: 0.0,
            cum_down: 0.0,
            max_down: 0.0,
        }
    }

    /// A configuration suited to demand ratios (`observed/expected`):
    /// tolerates ~10 % noise, fires after a sustained ~30 % shift.
    pub fn for_demand_ratios() -> Self {
        Self::new(0.1, 3.0)
    }

    /// Observations since the last reset.
    pub fn observations(&self) -> u64 {
        self.count
    }

    /// Clears all state (fresh baseline).
    pub fn reset(&mut self) {
        *self = PageHinkley::new(self.delta, self.lambda);
    }

    /// Feeds one value; returns a [`Drift`] if a change is detected
    /// (the detector resets itself on detection).
    pub fn observe(&mut self, x: f64) -> Option<Drift> {
        self.count += 1;
        self.mean += (x - self.mean) / self.count as f64;

        self.cum_up += x - self.mean - self.delta;
        self.min_up = self.min_up.min(self.cum_up);
        self.cum_down += x - self.mean + self.delta;
        self.max_down = self.max_down.max(self.cum_down);

        if self.cum_up - self.min_up > self.lambda {
            self.reset();
            return Some(Drift::Up);
        }
        if self.max_down - self.cum_down > self.lambda {
            self.reset();
            return Some(Drift::Down);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_simcore::rng::RngStream;

    #[test]
    fn stable_stream_never_fires() {
        let mut d = PageHinkley::for_demand_ratios();
        let mut rng = RngStream::root(1).derive("stable");
        for _ in 0..5_000 {
            let x = rng.lognormal(0.0, 0.08);
            assert_eq!(d.observe(x), None, "false alarm on stationary noise");
        }
    }

    #[test]
    fn upward_shift_is_detected_quickly() {
        let mut d = PageHinkley::for_demand_ratios();
        let mut rng = RngStream::root(2).derive("up");
        for _ in 0..500 {
            assert_eq!(d.observe(rng.lognormal(0.0, 0.08)), None);
        }
        let detection = (0..200).position(|_| d.observe(1.5 * rng.lognormal(0.0, 0.08)).is_some());
        let k = detection.expect("a 50 % shift must be caught within 200 samples");
        assert!(k < 60, "detected after {k} samples — too slow");
    }

    #[test]
    fn downward_shift_is_detected_with_direction() {
        let mut d = PageHinkley::for_demand_ratios();
        for _ in 0..300 {
            assert_eq!(d.observe(1.0), None);
        }
        let fired = (0..200).find_map(|_| d.observe(0.5));
        assert_eq!(fired, Some(Drift::Down));
    }

    #[test]
    fn detector_resets_after_firing() {
        let mut d = PageHinkley::new(0.05, 1.0);
        for _ in 0..50 {
            d.observe(1.0);
        }
        let fired = (0..100).find_map(|_| d.observe(2.0));
        assert_eq!(fired, Some(Drift::Up));
        assert_eq!(d.observations(), 0, "state must clear after detection");
        // The new regime becomes the new baseline: no immediate re-fire.
        for _ in 0..20 {
            assert_eq!(d.observe(2.0), None);
        }
    }

    #[test]
    fn manual_reset_clears_history() {
        let mut d = PageHinkley::new(0.0, 5.0);
        for _ in 0..100 {
            d.observe(1.0);
        }
        d.reset();
        assert_eq!(d.observations(), 0);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn non_positive_lambda_panics() {
        let _ = PageHinkley::new(0.1, 0.0);
    }
}
