//! Property-based tests of the demand estimators.

use proptest::prelude::*;

use ntc_profiler::estimator::{
    DemandEstimator, EwmaEstimator, HybridEstimator, Observation, QuantileEstimator,
    RegressionEstimator,
};
use ntc_profiler::EstimatorKind;
use ntc_simcore::units::{Cycles, DataSize};

fn obs(input: u64, cycles: u64) -> Observation {
    Observation::new(DataSize::from_bytes(input), Cycles::new(cycles))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every estimator's prediction stays inside the observed value range
    /// for input-independent demand (no extrapolation blow-ups).
    #[test]
    fn predictions_stay_in_observed_range(
        values in prop::collection::vec(1u64..1_000_000, 2..100),
    ) {
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        for kind in EstimatorKind::all() {
            if kind == EstimatorKind::Holt {
                // Holt deliberately extrapolates a trend: on adversarial
                // zig-zags its one-step-ahead forecast can leave the
                // observed range by design. Its behaviour is covered by
                // the dedicated unit tests (anticipates growth, flat on
                // stationary data, clamps at zero).
                continue;
            }
            let mut e = kind.build();
            for &v in &values {
                e.observe(obs(0, v));
            }
            let p = e.predict(DataSize::ZERO).get();
            prop_assert!(
                p >= lo && p <= hi,
                "{kind}: prediction {p} escaped [{lo}, {hi}]"
            );
        }
    }

    /// Regression recovers an exactly representable integer linear law to
    /// near machine precision, given two or more distinct inputs. (An
    /// integer slope keeps the observations rounding-free: with few
    /// points, half-cycle rounding of `y` is amplified by `x / Δx` into
    /// the intercept, which is measurement error, not estimator error.)
    #[test]
    fn regression_recovers_exact_linear_laws(
        intercept in 0u64..10_000_000,
        slope in 1u64..500,
        inputs in prop::collection::hash_set(1u64..10_000_000, 2..40),
    ) {
        let mut e = RegressionEstimator::new();
        for &x in &inputs {
            let y = intercept + slope * x;
            e.observe(obs(x, y));
        }
        let (a, b) = e.coefficients().expect("distinct inputs give a fit");
        prop_assert!((b - slope as f64).abs() < 1e-6 * slope as f64, "slope {b} vs {slope}");
        // Intercept float error scales with x²-sums; allow a small
        // absolute-plus-relative envelope.
        let x_max = *inputs.iter().max().unwrap() as f64;
        let tol = 1e-9 * x_max * slope as f64 + 1e-6 * intercept as f64 + 1e-3;
        prop_assert!((a - intercept as f64).abs() < tol, "intercept {a} vs {intercept} (tol {tol})");
        let probe = 123_457u64;
        let expected = (intercept + slope * probe) as f64;
        let p = e.predict(DataSize::from_bytes(probe)).get() as f64;
        prop_assert!((p - expected).abs() <= expected * 1e-6 + 2.0);
    }

    /// The windowed quantile never exceeds the window's max nor drops
    /// below its min.
    #[test]
    fn quantile_respects_window_bounds(
        values in prop::collection::vec(1u64..1_000_000, 1..300),
        q_pct in 0u8..=100,
        capacity in 1usize..100,
    ) {
        let mut e = QuantileEstimator::new(f64::from(q_pct) / 100.0, capacity);
        for &v in &values {
            e.observe(obs(0, v));
        }
        let window: Vec<u64> =
            values.iter().rev().take(capacity).copied().collect();
        let p = e.predict(DataSize::ZERO).get();
        prop_assert!(p >= *window.iter().min().unwrap());
        prop_assert!(p <= *window.iter().max().unwrap());
    }

    /// EWMA lies between the latest observation and the previous smooth
    /// value (convexity), so it can never overshoot a level change.
    #[test]
    fn ewma_is_convex(values in prop::collection::vec(1u64..1_000_000, 2..100)) {
        let mut e = EwmaEstimator::new(0.3);
        e.observe(obs(0, values[0]));
        let mut prev = e.predict(DataSize::ZERO).get() as f64;
        for &v in &values[1..] {
            e.observe(obs(0, v));
            let now = e.predict(DataSize::ZERO).get() as f64;
            let (lo, hi) = if prev <= v as f64 { (prev, v as f64) } else { (v as f64, prev) };
            prop_assert!(now >= lo - 1.0 && now <= hi + 1.0, "{now} outside [{lo}, {hi}]");
            prev = now;
        }
    }

    /// Hybrid never predicts outside the envelope of its two branches.
    #[test]
    fn hybrid_is_bracketed_by_branches(
        pairs in prop::collection::vec((1u64..1_000_000, 1u64..10_000_000), 3..60),
        probe in 1u64..1_000_000,
    ) {
        let mut h = HybridEstimator::default();
        let mut e = EwmaEstimator::default();
        let mut r = RegressionEstimator::new();
        for &(x, y) in &pairs {
            h.observe(obs(x, y));
            e.observe(obs(x, y));
            r.observe(obs(x, y));
        }
        let ph = h.predict(DataSize::from_bytes(probe));
        prop_assert!(
            ph == e.predict(DataSize::from_bytes(probe)) || ph == r.predict(DataSize::from_bytes(probe)),
            "hybrid must delegate to one branch"
        );
    }
}
