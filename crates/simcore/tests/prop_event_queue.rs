//! Differential property tests: the calendar [`EventQueue`] must agree
//! with the binary-heap oracle ([`reference::HeapQueue`]) on every
//! interleaving of pushes, pops and peeks — same pop order, including the
//! FIFO tie-break among same-time events.

use proptest::prelude::*;
use proptest::TestCaseError;

use ntc_simcore::event::{reference::HeapQueue, EventQueue};
use ntc_simcore::units::SimTime;

/// Interprets `(sel, t)` pairs as a workload — `sel % 5 < 3` pushes an
/// event at `t`, anything else pops — and runs it against both queues,
/// asserting identical observable behaviour after every step.
fn check(ops: &[(u64, u64)]) -> Result<(), TestCaseError> {
    let mut cal = EventQueue::new();
    let mut heap = HeapQueue::new();
    for (i, &(sel, t)) in ops.iter().enumerate() {
        if sel % 5 < 3 {
            cal.push(SimTime::from_micros(t), i);
            heap.push(SimTime::from_micros(t), i);
        } else {
            prop_assert_eq!(cal.pop(), heap.pop(), "pop diverged at op {}", i);
        }
        prop_assert_eq!(cal.peek_time(), heap.peek_time(), "peek diverged at op {}", i);
        prop_assert_eq!(cal.len(), heap.len());
        prop_assert_eq!(cal.is_empty(), heap.is_empty());
    }
    // Drain both: the full residual order must match, not just prefixes.
    loop {
        let (a, b) = (cal.pop(), heap.pop());
        prop_assert_eq!(a, b, "drain diverged");
        if b.is_none() {
            break;
        }
    }
    Ok(())
}

proptest! {
    /// Narrow time range: heavy same-time collisions stress the FIFO
    /// tie-break within a single calendar day.
    #[test]
    fn agrees_with_heap_under_dense_ties(
        ops in prop::collection::vec((0u64..100, 0u64..50), 1..400),
    ) {
        check(&ops)?;
    }

    /// A day-scale range with enough pushes to force several ring
    /// rebuilds and width re-derivations mid-workload.
    #[test]
    fn agrees_with_heap_across_rebuilds(
        ops in prop::collection::vec((0u64..100, 0u64..86_400_000_000), 1..600),
    ) {
        check(&ops)?;
    }

    /// Mixed magnitudes: mostly near-term events with occasional
    /// far-future outliers, the engine's actual schedule shape (dispatch
    /// horizon plus end-of-run pings), exercising the lap-fallback jump.
    #[test]
    fn agrees_with_heap_with_far_outliers(
        near in prop::collection::vec((0u64..100, 0u64..10_000_000), 1..300),
        far in prop::collection::vec(1_000_000_000_000u64..2_000_000_000_000, 0..5),
    ) {
        let mut all = near;
        for t in far {
            all.push((0, t)); // sel 0 => push
        }
        check(&all)?;
    }
}
