//! Property-based tests of the simulation kernel.

use proptest::prelude::*;

use ntc_simcore::event::EventQueue;
use ntc_simcore::metrics::Histogram;
use ntc_simcore::stats::{quantile, Welford};
use ntc_simcore::units::{Bandwidth, DataSize, Money, SimDuration, SimTime};

proptest! {
    /// Popping always yields non-decreasing times, and equal-time events
    /// keep insertion order.
    #[test]
    fn event_queue_is_ordered_and_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut popped = 0;
        while let Some((t, i)) = q.pop() {
            popped += 1;
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(i > li, "FIFO violated among equal times");
                }
            }
            last = Some((t, i));
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Histogram quantiles never underestimate by more than the bucket
    /// resolution and never exceed the observed max.
    #[test]
    fn histogram_quantiles_bound_exact_quantiles(
        values in prop::collection::vec(1u64..10_000_000, 2..500),
        q in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let approx = h.value_at_quantile(q);
        prop_assert!(approx <= *sorted.last().unwrap());
        // The reported value is an upper bound of its bucket: at least
        // 1/32-accurate relative to the exact order statistic.
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        prop_assert!(
            approx as f64 >= exact as f64 * (1.0 - 1.0 / 16.0),
            "q={q} approx={approx} exact={exact}"
        );
    }

    /// Histogram mean is exact regardless of bucketing.
    #[test]
    fn histogram_mean_is_exact(values in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let exact = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - exact).abs() < 1e-6);
    }

    /// Welford merge is order-independent and matches a single pass.
    #[test]
    fn welford_merge_is_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 1..100),
        ys in prop::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        let mut all = Welford::new();
        for &x in xs.iter().chain(&ys) {
            all.record(x);
        }
        let mut a = Welford::new();
        for &x in &xs {
            a.record(x);
        }
        let mut b = Welford::new();
        for &y in &ys {
            b.record(y);
        }
        a.merge(&b);
        prop_assert!((a.mean() - all.mean()).abs() < 1e-6 * all.mean().abs().max(1.0));
        prop_assert!(
            (a.sample_variance() - all.sample_variance()).abs()
                < 1e-6 * all.sample_variance().abs().max(1.0)
        );
    }

    /// quantile() is monotone in q and bounded by min/max.
    #[test]
    fn quantile_is_monotone(values in prop::collection::vec(-1e9f64..1e9, 1..200)) {
        let q25 = quantile(&values, 0.25).unwrap();
        let q50 = quantile(&values, 0.50).unwrap();
        let q75 = quantile(&values, 0.75).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q75);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q25 >= min && q75 <= max);
    }

    /// Transfer time scales (anti)monotonically with size and rate.
    #[test]
    fn transfer_time_monotonicity(
        bytes_a in 1u64..1_000_000_000,
        bytes_b in 1u64..1_000_000_000,
        rate in 1u64..1_000_000_000,
    ) {
        let bw = Bandwidth::from_bytes_per_sec(rate);
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(
            bw.transfer_time(DataSize::from_bytes(lo)) <= bw.transfer_time(DataSize::from_bytes(hi))
        );
        let faster = Bandwidth::from_bytes_per_sec(rate.saturating_mul(2));
        prop_assert!(
            faster.transfer_time(DataSize::from_bytes(hi)) <= bw.transfer_time(DataSize::from_bytes(hi))
        );
    }

    /// Money arithmetic round-trips through float conversion within a
    /// nano-dollar.
    #[test]
    fn money_float_roundtrip(nanos in -1_000_000_000_000i64..1_000_000_000_000) {
        let m = Money::from_nano_usd(nanos);
        let back = Money::from_usd_f64(m.as_usd_f64());
        prop_assert!((back.as_nano_usd() - nanos).abs() <= 1);
    }

    /// Duration scaling by reciprocal factors approximately cancels.
    #[test]
    fn duration_mul_f64_roundtrip(us in 1u64..1_000_000_000_000, factor in 0.01f64..100.0) {
        let d = SimDuration::from_micros(us);
        let back = d.mul_f64(factor).mul_f64(1.0 / factor);
        let rel = (back.as_micros() as f64 - us as f64).abs() / us as f64;
        prop_assert!(rel < 1e-3, "us={us} factor={factor} back={}", back.as_micros());
    }
}
