//! Property tests of the log-bucketed [`Histogram`]'s documented
//! quantile error bound: for any recorded multiset and any quantile,
//! `value_at_quantile(q)` must bracket the exact rank-ceil order
//! statistic from above, within a relative error of
//! [`Histogram::RELATIVE_ERROR_BOUND`] — never below it. Count, mean,
//! min and max must stay exact.

use proptest::prelude::*;
use proptest::TestCaseError;

use ntc_simcore::metrics::Histogram;

/// Records `values`, then checks every claimed-exact statistic and the
/// quantile bound at a spread of quantiles against a sorted copy.
fn check(values: &[u64]) -> Result<(), TestCaseError> {
    let mut h = Histogram::new();
    let mut exact: Vec<u64> = values.to_vec();
    for &v in values {
        h.record(v);
    }
    exact.sort_unstable();

    prop_assert_eq!(h.count(), exact.len() as u64);
    prop_assert_eq!(h.min(), exact.first().copied());
    prop_assert_eq!(h.max(), exact.last().copied());
    let mean: f64 = exact.iter().map(|&v| v as f64).sum::<f64>() / exact.len() as f64;
    prop_assert!((h.mean() - mean).abs() <= 1e-9 * mean.max(1.0), "mean must be exact");

    for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
        // The histogram's contract: the value at quantile `q` bounds the
        // k-th smallest recorded value (k = max(1, ceil(q·n)), 1-indexed)
        // from above, within the documented relative error.
        let k = ((q * exact.len() as f64).ceil() as usize).max(1).min(exact.len());
        let x_k = exact[k - 1];
        let approx = h.value_at_quantile(q);
        prop_assert!(
            approx >= x_k,
            "q={} under-reports: approx {} < exact rank-{} value {}",
            q,
            approx,
            k,
            x_k
        );
        let bound = x_k as f64 * (1.0 + Histogram::RELATIVE_ERROR_BOUND);
        prop_assert!(
            (approx as f64) <= bound + 1.0,
            "q={} overshoots the documented bound: approx {} > {} (exact {})",
            q,
            approx,
            bound,
            x_k
        );
    }
    Ok(())
}

proptest! {
    /// Small values: the histogram's linear regime, where buckets are
    /// exact and quantiles must match the order statistics precisely.
    #[test]
    fn quantiles_bound_exact_ranks_linear_regime(
        values in prop::collection::vec(0u64..64, 1..200),
    ) {
        check(&values)?;
    }

    /// Latency-shaped magnitudes: microsecond values from sub-second to
    /// hours, exercising many log buckets per sample set.
    #[test]
    fn quantiles_bound_exact_ranks_log_regime(
        values in prop::collection::vec(1_000u64..10_000_000_000, 1..200),
    ) {
        check(&values)?;
    }

    /// Mixed magnitudes with heavy duplication: a few distinct values
    /// repeated many times, the shape deadline-miss latencies take.
    #[test]
    fn quantiles_bound_exact_ranks_with_ties(
        distinct in prop::collection::vec(1u64..100_000_000, 1..8),
        picks in prop::collection::vec(0usize..8, 1..300),
    ) {
        let values: Vec<u64> =
            picks.iter().map(|&i| distinct[i % distinct.len()]).collect();
        check(&values)?;
    }
}
