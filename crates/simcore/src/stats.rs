//! Small statistics helpers used throughout the simulators and the
//! experiment harness.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long runs; O(1) per observation.
///
/// # Examples
///
/// ```
/// use ntc_simcore::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.record(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// The number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The population variance (0 if fewer than two observations).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// The sample (Bessel-corrected) variance (0 if fewer than two
    /// observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `sorted` using linear
/// interpolation between closest ranks.
///
/// Returns `None` if `sorted` is empty.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or if `sorted` is not sorted
/// (checked only with `debug_assert`).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    if sorted.is_empty() {
        return None;
    }
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Sorts a copy of `values` and returns its `q`-quantile.
///
/// Returns `None` if `values` is empty or contains NaN.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
    quantile_sorted(&sorted, q)
}

/// Mean absolute percentage error of `predicted` against `actual`, in
/// percent.
///
/// Pairs whose actual value is zero are skipped. Returns `None` if no
/// usable pairs remain.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mape(actual: &[f64], predicted: &[f64]) -> Option<f64> {
    assert_eq!(actual.len(), predicted.len(), "mape requires equal-length slices");
    let mut sum = 0.0;
    let mut n = 0u64;
    for (&a, &p) in actual.iter().zip(predicted) {
        if a != 0.0 {
            sum += ((a - p) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(100.0 * sum / n as f64)
    }
}

/// A compact five-number-plus-mean summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Minimum observation.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarises `values`; returns `None` if empty or containing NaN.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Self::of_sorted(&sorted)
    }

    /// Summarises an already-ascending sample without copying or
    /// re-sorting it; returns `None` if empty or containing NaN.
    ///
    /// Every field (including the mean, which is summed in sorted order)
    /// is bit-identical to what [`Summary::of`] computes for the same
    /// multiset, so a caller holding one shared sorted buffer can serve
    /// many summaries from it.
    ///
    /// # Panics
    ///
    /// Panics if `sorted` is not ascending (checked only with
    /// `debug_assert`).
    pub fn of_sorted(sorted: &[f64]) -> Option<Summary> {
        if sorted.is_empty() || sorted.iter().any(|v| v.is_nan()) {
            return None;
        }
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
        Some(Summary {
            count: sorted.len() as u64,
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            p50: quantile_sorted(sorted, 0.50)?,
            p95: quantile_sorted(sorted, 0.95)?,
            p99: quantile_sorted(sorted, 0.99)?,
            max: *sorted.last()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.sample_variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 5);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.record(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.sample_variance() - all.sample_variance()).abs() < 1e-9);
        // Merging an empty accumulator is a no-op.
        let before = left;
        left.merge(&Welford::new());
        assert_eq!(left, before);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[7.0], 0.5), Some(7.0));
        assert_eq!(quantile(&[1.0, f64::NAN], 0.5), None);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let m = mape(&[100.0, 0.0, 200.0], &[110.0, 50.0, 180.0]).unwrap();
        assert!((m - 10.0).abs() < 1e-9); // (10% + 10%) / 2
        assert_eq!(mape(&[0.0], &[1.0]), None);
    }

    #[test]
    fn summary_fields_are_consistent() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!(s.p50 < s.p95 && s.p95 < s.p99);
        assert_eq!(Summary::of(&[]), None);
    }
}
