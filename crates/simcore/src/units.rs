//! Strongly-typed simulation quantities.
//!
//! All quantities are integer-backed newtypes ([`SimTime`] in microseconds,
//! [`Money`] in nano-dollars, [`Energy`] in nanojoules, …) so that event
//! ordering and accounting stay exact and total: no floating-point drift can
//! reorder the event queue or make two bills that should be equal differ in
//! the last bit.
//!
//! # Examples
//!
//! ```
//! use ntc_simcore::units::{SimTime, SimDuration, DataSize, Bandwidth};
//!
//! let start = SimTime::ZERO;
//! let later = start + SimDuration::from_millis(250);
//! assert_eq!((later - start).as_millis(), 250);
//!
//! // How long does 5 MiB take over a 50 Mbit/s link?
//! let t = Bandwidth::from_megabits_per_sec(50).transfer_time(DataSize::from_mib(5));
//! assert!(t > SimDuration::from_millis(800) && t < SimDuration::from_millis(850));
//! ```

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

macro_rules! impl_scalar_ops {
    ($ty:ident, $inner:ty) => {
        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0.checked_add(rhs.0).expect(concat!(stringify!($ty), " overflow in add")))
            }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                *self = *self + rhs;
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0.checked_sub(rhs.0).expect(concat!(stringify!($ty), " underflow in sub")))
            }
        }
        impl SubAssign for $ty {
            fn sub_assign(&mut self, rhs: $ty) {
                *self = *self - rhs;
            }
        }
        impl Mul<$inner> for $ty {
            type Output = $ty;
            fn mul(self, rhs: $inner) -> $ty {
                $ty(self.0.checked_mul(rhs).expect(concat!(stringify!($ty), " overflow in mul")))
            }
        }
        impl Div<$inner> for $ty {
            type Output = $ty;
            fn div(self, rhs: $inner) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl core::iter::Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                iter.fold($ty(0), |a, b| a + b)
            }
        }
    };
}

/// An instant on the simulated clock, measured in microseconds since the
/// start of the simulation.
///
/// `SimTime` is an *instant*; the difference between two instants is a
/// [`SimDuration`]. Instants are totally ordered and integer-backed, so they
/// are safe to use as event-queue keys.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (useful as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates an instant `hours` hours after the simulation start.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600_000_000)
    }

    /// Microseconds since the simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation start, as a float (for display/plots).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, or `None` if `earlier` is later
    /// than `self`.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::checked_duration_since`] to handle that case.
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.checked_duration_since(rhs).expect("SimTime subtraction underflow")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

/// A span of simulated time in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000)
    }

    /// Creates a duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be finite and non-negative");
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative float factor, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl_scalar_ops!(SimDuration, u64);

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us < 1_000 {
            write!(f, "{us}us")
        } else if us < 1_000_000 {
            write!(f, "{:.2}ms", us as f64 / 1e3)
        } else if us < 60_000_000 {
            write!(f, "{:.3}s", us as f64 / 1e6)
        } else if us < 3_600_000_000 {
            write!(f, "{:.2}min", us as f64 / 6e7)
        } else {
            write!(f, "{:.2}h", us as f64 / 3.6e9)
        }
    }
}

/// A size of data in bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DataSize(u64);

impl DataSize {
    /// Zero bytes.
    pub const ZERO: DataSize = DataSize(0);

    /// Creates a size of `bytes` bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        DataSize(bytes)
    }

    /// Creates a size of `kib` kibibytes (1024 bytes).
    pub const fn from_kib(kib: u64) -> Self {
        DataSize(kib * 1024)
    }

    /// Creates a size of `mib` mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        DataSize(mib * 1024 * 1024)
    }

    /// Creates a size of `gib` gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        DataSize(gib * 1024 * 1024 * 1024)
    }

    /// Size in bytes.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Size in mebibytes, as a float.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Whether this is zero bytes.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative float factor, rounding to whole bytes.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
        DataSize((self.0 as f64 * factor).round() as u64)
    }
}

impl_scalar_ops!(DataSize, u64);

impl fmt::Display for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b < 1024 {
            write!(f, "{b}B")
        } else if b < 1024 * 1024 {
            write!(f, "{:.1}KiB", b as f64 / 1024.0)
        } else if b < 1024 * 1024 * 1024 {
            write!(f, "{:.1}MiB", b as f64 / (1024.0 * 1024.0))
        } else {
            write!(f, "{:.2}GiB", b as f64 / (1024.0 * 1024.0 * 1024.0))
        }
    }
}

/// A data-transfer rate in bytes per second.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Creates a rate of `bps` bytes per second.
    pub const fn from_bytes_per_sec(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Creates a rate of `mbit` megabits per second (10^6 bits).
    pub const fn from_megabits_per_sec(mbit: u64) -> Self {
        Bandwidth(mbit * 1_000_000 / 8)
    }

    /// Rate in bytes per second.
    pub const fn as_bytes_per_sec(self) -> u64 {
        self.0
    }

    /// The time needed to move `size` bytes at this rate.
    ///
    /// Rounds up to the next microsecond so a transfer never finishes
    /// "for free". A zero rate yields [`SimDuration::MAX`].
    pub fn transfer_time(self, size: DataSize) -> SimDuration {
        if size.is_zero() {
            return SimDuration::ZERO;
        }
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        // micros = bytes * 1e6 / rate, rounded up; u128 avoids overflow.
        let micros = (size.as_bytes() as u128 * 1_000_000).div_ceil(self.0 as u128);
        SimDuration(u64::try_from(micros).unwrap_or(u64::MAX))
    }

    /// Multiplies by a non-negative float factor (e.g. a contention share).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
        Bandwidth((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}Mbit/s", self.0 as f64 * 8.0 / 1e6)
    }
}

/// A quantity of CPU work, measured in cycles.
///
/// Dividing by a [`ClockSpeed`] yields the execution time on that CPU.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a work quantity of `cycles` cycles.
    pub const fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// Creates a work quantity of `mc` megacycles (10^6 cycles).
    pub const fn from_mega(mc: u64) -> Self {
        Cycles(mc * 1_000_000)
    }

    /// Creates a work quantity of `gc` gigacycles (10^9 cycles).
    pub const fn from_giga(gc: u64) -> Self {
        Cycles(gc * 1_000_000_000)
    }

    /// The raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The cycle count in megacycles, as a float.
    pub fn as_mega_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this is zero work.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative float factor (e.g. per-invocation noise).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
        Cycles((self.0 as f64 * factor).round() as u64)
    }
}

impl_scalar_ops!(Cycles, u64);

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.0;
        if c < 1_000_000 {
            write!(f, "{c}cyc")
        } else if c < 1_000_000_000 {
            write!(f, "{:.1}Mcyc", c as f64 / 1e6)
        } else {
            write!(f, "{:.2}Gcyc", c as f64 / 1e9)
        }
    }
}

/// A CPU execution speed in cycles per second (hertz).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClockSpeed(u64);

impl ClockSpeed {
    /// Creates a speed of `hz` cycles per second.
    pub const fn from_hz(hz: u64) -> Self {
        ClockSpeed(hz)
    }

    /// Creates a speed of `mhz` megahertz.
    pub const fn from_mhz(mhz: u64) -> Self {
        ClockSpeed(mhz * 1_000_000)
    }

    /// Creates a speed of `ghz_tenths` tenths of a gigahertz
    /// (`from_ghz_tenths(26)` is 2.6 GHz); avoids float construction.
    pub const fn from_ghz_tenths(ghz_tenths: u64) -> Self {
        ClockSpeed(ghz_tenths * 100_000_000)
    }

    /// Speed in hertz.
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// The time this CPU takes to execute `work` cycles.
    ///
    /// Rounds up to the next microsecond. A zero speed yields
    /// [`SimDuration::MAX`].
    pub fn execution_time(self, work: Cycles) -> SimDuration {
        if work.is_zero() {
            return SimDuration::ZERO;
        }
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        let micros = (work.get() as u128 * 1_000_000).div_ceil(self.0 as u128);
        SimDuration(u64::try_from(micros).unwrap_or(u64::MAX))
    }

    /// Multiplies by a non-negative float factor (e.g. a fractional
    /// CPU share granted by a serverless platform).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
        ClockSpeed((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for ClockSpeed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}GHz", self.0 as f64 / 1e9)
    }
}

/// An amount of money in nano-dollars (10^-9 USD).
///
/// Signed, so that differences and refunds can be represented. The
/// nano-dollar base unit keeps serverless per-GB-second rates
/// (≈ $0.0000166667) exact enough for billions of invocations while still
/// covering ±9.2 billion dollars.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Money(i64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0);

    /// Creates an amount of `nanos` nano-dollars.
    pub const fn from_nano_usd(nanos: i64) -> Self {
        Money(nanos)
    }

    /// Creates an amount of `micros` micro-dollars.
    pub const fn from_micro_usd(micros: i64) -> Self {
        Money(micros * 1_000)
    }

    /// Creates an amount of `cents` cents.
    pub const fn from_cents(cents: i64) -> Self {
        Money(cents * 10_000_000)
    }

    /// Creates an amount of `usd` whole dollars.
    pub const fn from_usd(usd: i64) -> Self {
        Money(usd * 1_000_000_000)
    }

    /// Creates an amount from fractional dollars, rounding to the nearest
    /// nano-dollar.
    ///
    /// # Panics
    ///
    /// Panics if `usd` is not finite.
    pub fn from_usd_f64(usd: f64) -> Self {
        assert!(usd.is_finite(), "money must be finite");
        Money((usd * 1e9).round() as i64)
    }

    /// The amount in nano-dollars.
    pub const fn as_nano_usd(self) -> i64 {
        self.0
    }

    /// The amount in whole micro-dollars (truncating).
    pub const fn as_micro_usd(self) -> i64 {
        self.0 / 1_000
    }

    /// The amount in dollars, as a float.
    pub fn as_usd_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies by a float factor, rounding to the nearest nano-dollar.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor.is_finite(), "factor must be finite");
        Money((self.0 as f64 * factor).round() as i64)
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0.checked_add(rhs.0).expect("Money overflow"))
    }
}
impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        *self = *self + rhs;
    }
}
impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0.checked_sub(rhs.0).expect("Money underflow"))
    }
}
impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        *self = *self - rhs;
    }
}
impl Mul<i64> for Money {
    type Output = Money;
    fn mul(self, rhs: i64) -> Money {
        Money(self.0.checked_mul(rhs).expect("Money overflow"))
    }
}
impl Div<i64> for Money {
    type Output = Money;
    fn div(self, rhs: i64) -> Money {
        Money(self.0 / rhs)
    }
}
impl core::iter::Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.6}", self.0 as f64 / 1e9)
    }
}

/// An amount of energy in nanojoules.
///
/// One nanojoule is one milliwatt sustained for one microsecond, so
/// `Power(mW) × SimDuration(µs)` lands exactly on this unit.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Energy(u64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0);

    /// Creates an amount of `nj` nanojoules.
    pub const fn from_nanojoules(nj: u64) -> Self {
        Energy(nj)
    }

    /// Creates an amount of `mj` millijoules.
    pub const fn from_millijoules(mj: u64) -> Self {
        Energy(mj * 1_000_000)
    }

    /// Creates an amount of `j` joules.
    pub const fn from_joules(j: u64) -> Self {
        Energy(j * 1_000_000_000)
    }

    /// The amount in nanojoules.
    pub const fn as_nanojoules(self) -> u64 {
        self.0
    }

    /// The amount in joules, as a float.
    pub fn as_joules_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl_scalar_ops!(Energy, u64);

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nj = self.0;
        if nj < 1_000_000 {
            write!(f, "{:.1}uJ", nj as f64 / 1e3)
        } else if nj < 1_000_000_000 {
            write!(f, "{:.2}mJ", nj as f64 / 1e6)
        } else {
            write!(f, "{:.3}J", nj as f64 / 1e9)
        }
    }
}

/// An electrical power draw in milliwatts.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Power(u64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0);

    /// Creates a draw of `mw` milliwatts.
    pub const fn from_milliwatts(mw: u64) -> Self {
        Power(mw)
    }

    /// Creates a draw of `w` watts.
    pub const fn from_watts(w: u64) -> Self {
        Power(w * 1_000)
    }

    /// The draw in milliwatts.
    pub const fn as_milliwatts(self) -> u64 {
        self.0
    }

    /// The energy consumed by sustaining this draw for `d`.
    pub fn energy_over(self, d: SimDuration) -> Energy {
        // mW * µs = nJ exactly.
        let nj = self.0 as u128 * d.as_micros() as u128;
        Energy(u64::try_from(nj).unwrap_or(u64::MAX))
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}W", self.0 as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 3_500_000);
        assert_eq!((t - SimTime::from_secs(3)).as_millis(), 500);
        assert_eq!(t.checked_duration_since(SimTime::MAX), None);
        assert_eq!(SimTime::ZERO.saturating_duration_since(t), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_subtraction_underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_secs(1);
    }

    #[test]
    fn duration_display_picks_scale() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimDuration::from_mins(12).to_string(), "12.00min");
        assert_eq!(SimDuration::from_hours(12).to_string(), "12.00h");
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    fn bandwidth_transfer_time_rounds_up() {
        let bw = Bandwidth::from_bytes_per_sec(1_000_000);
        assert_eq!(bw.transfer_time(DataSize::from_bytes(1)).as_micros(), 1);
        assert_eq!(bw.transfer_time(DataSize::from_bytes(1_000_000)).as_secs(), 1);
        assert_eq!(bw.transfer_time(DataSize::ZERO), SimDuration::ZERO);
        assert_eq!(
            Bandwidth::from_bytes_per_sec(0).transfer_time(DataSize::from_kib(1)),
            SimDuration::MAX
        );
    }

    #[test]
    fn megabit_conversion() {
        assert_eq!(Bandwidth::from_megabits_per_sec(8).as_bytes_per_sec(), 1_000_000);
    }

    #[test]
    fn clock_speed_execution_time() {
        let cpu = ClockSpeed::from_ghz_tenths(10); // 1 GHz
        assert_eq!(cpu.execution_time(Cycles::from_mega(1)).as_millis(), 1);
        assert_eq!(cpu.execution_time(Cycles::ZERO), SimDuration::ZERO);
        assert_eq!(ClockSpeed::from_hz(0).execution_time(Cycles::new(1)), SimDuration::MAX);
        // Rounds up: 1 cycle at 1 GHz is 1ns but must cost at least 1µs.
        assert_eq!(cpu.execution_time(Cycles::new(1)).as_micros(), 1);
    }

    #[test]
    fn money_arithmetic_and_display() {
        let m = Money::from_usd(2) + Money::from_cents(50);
        assert_eq!(m.as_micro_usd(), 2_500_000);
        assert_eq!(m.as_nano_usd(), 2_500_000_000);
        assert_eq!(m.to_string(), "$2.500000");
        assert_eq!((m - Money::from_usd(3)).as_micro_usd(), -500_000);
        assert_eq!(m.mul_f64(2.0).as_usd_f64(), 5.0);
    }

    #[test]
    fn power_energy_units_align() {
        // 1 W for 1 s = 1 J.
        let e = Power::from_watts(1).energy_over(SimDuration::from_secs(1));
        assert_eq!(e, Energy::from_joules(1));
    }

    #[test]
    fn sums_fold_correctly() {
        let d: SimDuration = (0..4).map(|_| SimDuration::from_secs(1)).sum();
        assert_eq!(d.as_secs(), 4);
        let m: Money = (0..4).map(|_| Money::from_cents(25)).sum();
        assert_eq!(m, Money::from_usd(1));
    }

    #[test]
    fn mul_f64_scaling() {
        assert_eq!(Cycles::from_mega(100).mul_f64(1.5), Cycles::from_mega(150));
        assert_eq!(DataSize::from_kib(2).mul_f64(0.5), DataSize::from_kib(1));
        assert_eq!(Bandwidth::from_bytes_per_sec(100).mul_f64(0.25).as_bytes_per_sec(), 25);
    }
}
