//! # ntc-simcore
//!
//! Deterministic discrete-event simulation kernel for the `ntc-offload`
//! framework (a reproduction of *Computational Offloading for
//! Non-Time-Critical Applications*, ICDCS 2022).
//!
//! This crate provides the substrate everything else runs on:
//!
//! * [`units`] — integer-backed newtypes for simulated time, data sizes,
//!   bandwidth, CPU work, money, and energy, so accounting is exact and
//!   event ordering is total.
//! * [`event`] — a stable time-ordered [`event::EventQueue`] and a clocked
//!   [`event::Simulator`] that enforces causality.
//! * [`rng`] — hierarchically splittable named random streams
//!   ([`rng::RngStream`]) so adding a consumer of randomness never perturbs
//!   other consumers' draws.
//! * [`metrics`] — counters, HDR-style log-linear histograms, and
//!   time-weighted gauges.
//! * [`stats`] — Welford accumulators, quantiles, MAPE, sample summaries.
//!
//! # Examples
//!
//! A tiny M/D/1 queue simulated to completion:
//!
//! ```
//! use ntc_simcore::event::Simulator;
//! use ntc_simcore::metrics::Histogram;
//! use ntc_simcore::rng::RngStream;
//! use ntc_simcore::units::{SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Arrival(u32), Departure(u32) }
//!
//! let mut sim = Simulator::new();
//! let mut rng = RngStream::root(1).derive("arrivals");
//! let mut t = SimTime::ZERO;
//! for id in 0..100 {
//!     t = t + SimDuration::from_secs_f64(rng.exponential(1.0));
//!     sim.schedule_at(t, Ev::Arrival(id)).unwrap();
//! }
//!
//! let service = SimDuration::from_millis(500);
//! let mut busy_until = SimTime::ZERO;
//! let mut waits = Histogram::new();
//! while let Some((now, ev)) = sim.step() {
//!     match ev {
//!         Ev::Arrival(id) => {
//!             let start = now.max(busy_until);
//!             busy_until = start + service;
//!             waits.record_duration(start - now);
//!             sim.schedule_at(busy_until, Ev::Departure(id)).unwrap();
//!         }
//!         Ev::Departure(_) => {}
//!     }
//! }
//! assert_eq!(waits.count(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod rng;
pub mod stats;
pub mod timeseries;
pub mod units;

pub use event::{EventQueue, Simulator};
pub use rng::RngStream;
pub use timeseries::TimeSeries;
pub use units::{
    Bandwidth, ClockSpeed, Cycles, DataSize, Energy, Money, Power, SimDuration, SimTime,
};
