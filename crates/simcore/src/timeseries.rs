//! Fixed-bucket time series: counts and means of a quantity over
//! simulated time, for experiment output (e.g. jobs completed per hour,
//! warm instances over the day).

use serde::{Deserialize, Serialize};

use crate::units::{SimDuration, SimTime};

/// A time series with fixed-width buckets from the simulation epoch.
///
/// Observations land in `floor(t / bucket)`; querying yields per-bucket
/// counts, sums and means. Buckets are created lazily up to the latest
/// observation, so sparse tails cost nothing until touched.
///
/// # Examples
///
/// ```
/// use ntc_simcore::timeseries::TimeSeries;
/// use ntc_simcore::units::{SimDuration, SimTime};
///
/// let mut ts = TimeSeries::new(SimDuration::from_hours(1));
/// ts.record(SimTime::from_secs(600), 2.0);
/// ts.record(SimTime::from_secs(1200), 4.0);
/// ts.record(SimTime::from_secs(4000), 10.0);
/// assert_eq!(ts.count(0), 2);
/// assert_eq!(ts.mean(0), Some(3.0));
/// assert_eq!(ts.count(1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    bucket: SimDuration,
    counts: Vec<u64>,
    sums: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        TimeSeries { bucket, counts: Vec::new(), sums: Vec::new() }
    }

    /// The bucket width.
    pub fn bucket(&self) -> SimDuration {
        self.bucket
    }

    /// The index of the bucket containing `at`.
    pub fn bucket_of(&self, at: SimTime) -> usize {
        (at.as_micros() / self.bucket.as_micros()) as usize
    }

    /// Records `value` at instant `at`.
    pub fn record(&mut self, at: SimTime, value: f64) {
        let idx = self.bucket_of(at);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
            self.sums.resize(idx + 1, 0.0);
        }
        self.counts[idx] += 1;
        self.sums[idx] += value;
    }

    /// Records an occurrence (value 1) at instant `at`.
    pub fn mark(&mut self, at: SimTime) {
        self.record(at, 1.0);
    }

    /// The number of buckets touched so far (dense from 0).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Observations in bucket `idx` (0 beyond the recorded range).
    pub fn count(&self, idx: usize) -> u64 {
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Sum of values in bucket `idx` (0 beyond the recorded range).
    pub fn sum(&self, idx: usize) -> f64 {
        self.sums.get(idx).copied().unwrap_or(0.0)
    }

    /// Mean value in bucket `idx`, or `None` when the bucket is empty.
    pub fn mean(&self, idx: usize) -> Option<f64> {
        let c = self.count(idx);
        if c == 0 {
            None
        } else {
            Some(self.sum(idx) / c as f64)
        }
    }

    /// Iterates `(bucket_start, count, sum)` over all touched buckets.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, u64, f64)> + '_ {
        let width = self.bucket.as_micros();
        self.counts
            .iter()
            .zip(&self.sums)
            .enumerate()
            .map(move |(i, (&c, &s))| (SimTime::from_micros(i as u64 * width), c, s))
    }

    /// The bucket index with the highest count, or `None` when empty.
    pub fn peak_bucket(&self) -> Option<usize> {
        (0..self.counts.len()).max_by_key(|&i| self.counts[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut ts = TimeSeries::new(SimDuration::from_mins(10));
        ts.mark(SimTime::from_secs(0));
        ts.mark(SimTime::from_secs(599));
        ts.mark(SimTime::from_secs(600));
        assert_eq!(ts.count(0), 2);
        assert_eq!(ts.count(1), 1);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.count(99), 0);
    }

    #[test]
    fn means_and_sums() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.record(SimTime::from_micros(10), 3.0);
        ts.record(SimTime::from_micros(20), 5.0);
        assert_eq!(ts.sum(0), 8.0);
        assert_eq!(ts.mean(0), Some(4.0));
        assert_eq!(ts.mean(5), None);
    }

    #[test]
    fn iter_yields_bucket_starts() {
        let mut ts = TimeSeries::new(SimDuration::from_hours(1));
        ts.mark(SimTime::from_secs(3 * 3600 + 5));
        let rows: Vec<_> = ts.iter().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3].0, SimTime::from_secs(3 * 3600));
        assert_eq!(rows[3].1, 1);
        assert_eq!(rows[0].1, 0);
    }

    #[test]
    fn peak_bucket_finds_the_mode() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.mark(SimTime::from_micros(1));
        ts.mark(SimTime::from_secs(2));
        ts.mark(SimTime::from_secs(2));
        assert_eq!(ts.peak_bucket(), Some(2));
        assert_eq!(TimeSeries::new(SimDuration::from_secs(1)).peak_bucket(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_panics() {
        let _ = TimeSeries::new(SimDuration::ZERO);
    }
}
