//! Measurement instruments for simulations: counters, log-linear
//! histograms, and time-weighted gauges.
//!
//! The histogram uses HDR-style log-linear bucketing: values are grouped by
//! order of magnitude, with a fixed number of linear sub-buckets per
//! magnitude, giving bounded relative error (< 1/`SUB_BUCKETS`) across the
//! full `u64` range with constant memory.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::units::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

const SUB_BUCKET_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS; // 32 sub-buckets per magnitude
                                               // Shifts range over 0..=58 (64-bit values normalised into [32, 64)), so the
                                               // largest index is 32*58 + 63 = 1919.
const BUCKET_COUNT: usize = 1920;

/// A fixed-memory log-linear histogram over `u64` values.
///
/// Quantile queries return the *upper bound* of the containing bucket, so the
/// reported quantile is never an underestimate and the relative error is
/// bounded by `1/32 ≈ 3%`.
///
/// # Examples
///
/// ```
/// use ntc_simcore::metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.value_at_quantile(0.5);
/// assert!((450..=560).contains(&p50));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// The documented quantile error bound: a value reported by
    /// [`value_at_quantile`](Self::value_at_quantile) is the upper bound
    /// of the containing log-linear bucket (clamped to the observed
    /// maximum), so it never falls below the exact order statistic and
    /// exceeds it by strictly less than this relative fraction
    /// (`1/32 ≈ 3.1%`).
    pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / SUB_BUCKETS as f64;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; BUCKET_COUNT], total: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    // Values below 32 index directly. Otherwise the value is normalised by a
    // right shift into [32, 64), and buckets for shift `s` occupy the index
    // range [32*(s+1), 32*(s+1)+31]: index = 32*s + (value >> s).
    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS {
            return value as usize;
        }
        let magnitude = 63 - value.leading_zeros();
        let shift = magnitude - SUB_BUCKET_BITS;
        (u64::from(shift) * SUB_BUCKETS + (value >> shift)) as usize
    }

    /// The largest value that maps to the bucket at `index` (inclusive).
    fn bucket_upper_bound(index: usize) -> u64 {
        let idx = index as u64;
        if idx < SUB_BUCKETS {
            return idx;
        }
        let shift = idx / SUB_BUCKETS - 1;
        let base = idx - SUB_BUCKETS * shift;
        // (base + 1) << shift − 1, written to avoid overflow in the top bucket.
        (base << shift) | ((1u64 << shift) - 1)
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a duration observation in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros());
    }

    /// The number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The arithmetic mean of all observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        if self.total == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// The maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        if self.total == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// The value at quantile `q` (0 ≤ q ≤ 1), as a bucket upper bound
    /// clamped to the observed maximum. Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return 0;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cumulative = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Self::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// The quantile value as a [`SimDuration`] (for histograms recorded with
    /// [`Histogram::record_duration`]).
    pub fn duration_at_quantile(&self, q: f64) -> SimDuration {
        SimDuration::from_micros(self.value_at_quantile(q))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A piecewise-constant gauge whose average is weighted by how long each
/// value was held — e.g. "mean number of warm instances over the run".
///
/// # Examples
///
/// ```
/// use ntc_simcore::metrics::TimeWeightedGauge;
/// use ntc_simcore::units::SimTime;
///
/// let mut g = TimeWeightedGauge::new(SimTime::ZERO, 0.0);
/// g.set(SimTime::from_secs(10), 4.0);  // 0 for 10s
/// g.set(SimTime::from_secs(30), 0.0);  // 4 for 20s
/// assert!((g.time_average(SimTime::from_secs(40)) - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWeightedGauge {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64,
    origin: SimTime,
    peak: f64,
}

impl TimeWeightedGauge {
    /// Creates a gauge holding `initial` from instant `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeightedGauge {
            value: initial,
            last_change: start,
            weighted_sum: 0.0,
            origin: start,
            peak: initial,
        }
    }

    /// Sets the gauge to `value` at instant `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let held = now
            .checked_duration_since(self.last_change)
            .expect("gauge updated with a timestamp in the past");
        self.weighted_sum += self.value * held.as_secs_f64();
        self.value = value;
        self.last_change = now;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// Adds `delta` to the current value at instant `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The largest value ever held.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The time-weighted average over `[start, until]`.
    ///
    /// Returns the current value if no time has elapsed.
    pub fn time_average(&self, until: SimTime) -> f64 {
        let tail = until.saturating_duration_since(self.last_change).as_secs_f64();
        let span = until.saturating_duration_since(self.origin).as_secs_f64();
        if span == 0.0 {
            return self.value;
        }
        (self.weighted_sum + self.value * tail) / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(31));
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), 31);
        assert_eq!(h.count(), 32);
    }

    #[test]
    fn histogram_quantile_relative_error_is_bounded() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (0..10_000).map(|i| 1 + i * 137).collect();
        for &v in &values {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = values[((q * (values.len() - 1) as f64) as usize).min(values.len() - 1)];
            let approx = h.value_at_quantile(q);
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(rel < 0.05, "q={q} exact={exact} approx={approx} rel={rel}");
            assert!(approx as f64 >= exact as f64 * 0.97, "quantile should not underestimate much");
        }
    }

    #[test]
    fn histogram_empty_behaviour() {
        let h = Histogram::new();
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn histogram_merge_equals_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..500u64 {
            let v = v * 7 + 3;
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.mean(), both.mean());
        assert_eq!(a.value_at_quantile(0.9), both.value_at_quantile(0.9));
    }

    #[test]
    fn histogram_duration_roundtrip() {
        let mut h = Histogram::new();
        h.record_duration(SimDuration::from_millis(5));
        assert_eq!(h.duration_at_quantile(1.0), SimDuration::from_millis(5));
    }

    #[test]
    fn gauge_time_average_and_peak() {
        let mut g = TimeWeightedGauge::new(SimTime::ZERO, 1.0);
        g.set(SimTime::from_secs(10), 3.0);
        g.add(SimTime::from_secs(20), -2.0);
        // 1.0 for 10s, 3.0 for 10s, 1.0 for 10s => avg 5/3
        let avg = g.time_average(SimTime::from_secs(30));
        assert!((avg - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.peak(), 3.0);
        assert_eq!(g.value(), 1.0);
    }

    #[test]
    fn gauge_zero_span_returns_value() {
        let g = TimeWeightedGauge::new(SimTime::from_secs(5), 7.0);
        assert_eq!(g.time_average(SimTime::from_secs(5)), 7.0);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn gauge_rejects_time_travel() {
        let mut g = TimeWeightedGauge::new(SimTime::from_secs(5), 0.0);
        g.set(SimTime::from_secs(1), 1.0);
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut prev = 0;
        for i in 0..BUCKET_COUNT {
            let ub = Histogram::bucket_upper_bound(i);
            assert!(ub >= prev, "bucket {i}: {ub} < {prev}");
            prev = ub;
        }
    }

    #[test]
    fn bucket_index_maps_into_bound() {
        for v in [0u64, 1, 31, 32, 33, 100, 1000, 65_535, 1 << 30, u64::MAX / 2] {
            let idx = Histogram::bucket_index(v);
            assert!(idx < BUCKET_COUNT);
            let ub = Histogram::bucket_upper_bound(idx);
            assert!(ub >= v, "value {v} above its bucket upper bound {ub}");
        }
    }
}
