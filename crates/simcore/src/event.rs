//! Deterministic discrete-event scheduling.
//!
//! [`EventQueue`] is a time-ordered priority queue with a stable FIFO
//! tie-break: two events scheduled for the same instant pop in the order
//! they were pushed. [`Simulator`] wraps a queue with a virtual clock and
//! enforces causality (no scheduling in the past).
//!
//! # Examples
//!
//! ```
//! use ntc_simcore::event::Simulator;
//! use ntc_simcore::units::SimDuration;
//!
//! let mut sim = Simulator::new();
//! sim.schedule_after(SimDuration::from_secs(2), "second");
//! sim.schedule_after(SimDuration::from_secs(1), "first");
//! assert_eq!(sim.step().unwrap().1, "first");
//! assert_eq!(sim.step().unwrap().1, "second");
//! assert_eq!(sim.now().as_secs_f64(), 2.0);
//! ```

use core::cmp::Ordering;
use core::fmt;
use std::collections::BinaryHeap;

use crate::units::{SimDuration, SimTime};

/// Error returned when an event would be scheduled before the current
/// simulated instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleInPastError {
    /// The instant the caller asked for.
    pub requested: SimTime,
    /// The simulator's current instant.
    pub now: SimTime,
}

impl fmt::Display for ScheduleInPastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event scheduled at {} which is before current time {}", self.requested, self.now)
    }
}

impl std::error::Error for ScheduleInPastError {}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reversed so the BinaryHeap (a max-heap) pops the earliest entry.
    fn cmp(&self, other: &Self) -> Ordering {
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with stable FIFO ordering among equal-time
/// events.
///
/// The queue itself has no clock; see [`Simulator`] for a clocked wrapper.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

/// A virtual clock driving an [`EventQueue`].
///
/// Popping an event advances the clock to the event's instant; scheduling
/// before the current instant is rejected, which makes causality violations
/// loud instead of silently reordering history.
#[derive(Debug)]
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates a simulator with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Simulator { queue: EventQueue::new(), now: SimTime::ZERO, processed: 0 }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Schedules `payload` at the absolute instant `at`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleInPastError`] if `at` is earlier than [`Self::now`].
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> Result<(), ScheduleInPastError> {
        if at < self.now {
            return Err(ScheduleInPastError { requested: at, now: self.now });
        }
        self.queue.push(at, payload);
        Ok(())
    }

    /// Schedules `payload` to fire `delay` after the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) {
        let at = self.now + delay;
        self.queue.push(at, payload);
    }

    /// Pops the next event, advancing the clock to its instant.
    ///
    /// Returns `None` when no events remain.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        let (time, payload) = self.queue.pop()?;
        debug_assert!(time >= self.now, "event queue yielded an event from the past");
        self.now = time;
        self.processed += 1;
        Some((time, payload))
    }

    /// The instant of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// The number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Advances the clock to `at` without processing events.
    ///
    /// Useful to account for idle tail time at the end of a run. Does nothing
    /// if `at` is in the past.
    pub fn advance_to(&mut self, at: SimTime) {
        if at > self.now {
            self.now = at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn simulator_advances_clock() {
        let mut sim = Simulator::new();
        sim.schedule_after(SimDuration::from_secs(10), ());
        assert_eq!(sim.now(), SimTime::ZERO);
        sim.step();
        assert_eq!(sim.now(), SimTime::from_secs(10));
        assert_eq!(sim.events_processed(), 1);
    }

    #[test]
    fn scheduling_in_past_is_rejected() {
        let mut sim = Simulator::new();
        sim.schedule_after(SimDuration::from_secs(10), 1u8);
        sim.step();
        let err = sim.schedule_at(SimTime::from_secs(5), 2u8).unwrap_err();
        assert_eq!(err.now, SimTime::from_secs(10));
        assert!(err.to_string().contains("before current time"));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let mut sim = Simulator::<()>::new();
        sim.advance_to(SimTime::from_secs(7));
        sim.advance_to(SimTime::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(7));
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }
}
