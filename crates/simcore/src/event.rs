//! Deterministic discrete-event scheduling.
//!
//! [`EventQueue`] is a time-ordered priority queue with a stable FIFO
//! tie-break: two events scheduled for the same instant pop in the order
//! they were pushed. [`Simulator`] wraps a queue with a virtual clock and
//! enforces causality (no scheduling in the past).
//!
//! Internally the queue is a calendar queue — a ring of buckets indexed
//! by `time >> width_shift` — rather than a binary heap. The engine's
//! schedule pattern is near-monotone (events are mostly pushed a short,
//! bounded horizon ahead of the clock), which makes the calendar's O(1)
//! amortised push/pop beat the heap's O(log n) sift with its cache-hostile
//! pointer chasing. Ordering is identical to the old heap: pop returns the
//! minimum `(time, seq)` entry, so same-time events still pop in push
//! order. The heap survives as [`reference::HeapQueue`] for differential
//! tests and benchmarks.
//!
//! # Examples
//!
//! ```
//! use ntc_simcore::event::Simulator;
//! use ntc_simcore::units::SimDuration;
//!
//! let mut sim = Simulator::new();
//! sim.schedule_after(SimDuration::from_secs(2), "second");
//! sim.schedule_after(SimDuration::from_secs(1), "first");
//! assert_eq!(sim.step().unwrap().1, "first");
//! assert_eq!(sim.step().unwrap().1, "second");
//! assert_eq!(sim.now().as_secs_f64(), 2.0);
//! ```

use core::fmt;

use crate::units::{SimDuration, SimTime};

/// Error returned when an event would be scheduled before the current
/// simulated instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleInPastError {
    /// The instant the caller asked for.
    pub requested: SimTime,
    /// The simulator's current instant.
    pub now: SimTime,
}

impl fmt::Display for ScheduleInPastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event scheduled at {} which is before current time {}", self.requested, self.now)
    }
}

impl std::error::Error for ScheduleInPastError {}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

/// Buckets the queue starts with; grows by doubling as the population does.
const INITIAL_BUCKETS: usize = 16;
/// Hard ceiling on the ring size (2^20 buckets ≈ 16 MiB of `Vec` headers).
const MAX_BUCKETS: usize = 1 << 20;
/// Starting bucket width of 2^17 µs ≈ 131 ms; rebuilds re-derive it from
/// the observed event-time span.
const INITIAL_WIDTH_SHIFT: u32 = 17;

/// A time-ordered event queue with stable FIFO ordering among equal-time
/// events.
///
/// The queue itself has no clock; see [`Simulator`] for a clocked wrapper.
pub struct EventQueue<E> {
    /// Ring of buckets; an entry with day `d = time >> width_shift` lives
    /// in `buckets[d & mask]`. Entries within a bucket are unordered —
    /// pop scans the cursor day's bucket for the minimum `(time, seq)`.
    buckets: Vec<Vec<Entry<E>>>,
    /// `buckets.len() - 1`; the ring size is always a power of two.
    mask: usize,
    /// Bucket width is `1 << width_shift` microseconds, so the day of an
    /// entry is a single shift — exact, no float rounding.
    width_shift: u32,
    /// The day the next pop starts scanning from. Only ever behind (or at)
    /// the true minimum day: pushes below it pull it back, pops advance it
    /// one verified-empty day at a time.
    cursor_day: u64,
    len: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            mask: INITIAL_BUCKETS - 1,
            width_shift: INITIAL_WIDTH_SHIFT,
            cursor_day: 0,
            len: 0,
            next_seq: 0,
        }
    }

    #[inline]
    fn day_of(&self, time: SimTime) -> u64 {
        time.as_micros() >> self.width_shift
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let day = self.day_of(time);
        if self.len == 0 || day < self.cursor_day {
            self.cursor_day = day;
        }
        let idx = (day as usize) & self.mask;
        self.buckets[idx].push(Entry { time, seq, payload });
        self.len += 1;
        if self.len > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    /// Re-shapes the ring to `new_size` buckets and re-derives the bucket
    /// width so the current population averages about one entry per day.
    fn rebuild(&mut self, new_size: usize) {
        debug_assert!(new_size.is_power_of_two());
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            entries.append(b);
        }
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for e in &entries {
            lo = lo.min(e.time.as_micros());
            hi = hi.max(e.time.as_micros());
        }
        if !entries.is_empty() {
            let span = hi - lo;
            let target = (span / entries.len() as u64).max(1);
            // Round the per-event spacing down to a power of two; clamp so
            // a pathological span cannot push the shift out of range.
            self.width_shift = (63 - target.leading_zeros()).min(40);
        }
        if self.buckets.len() < new_size {
            self.buckets.resize_with(new_size, Vec::new);
        } else {
            self.buckets.truncate(new_size);
        }
        self.mask = new_size - 1;
        self.cursor_day = if entries.is_empty() { 0 } else { lo >> self.width_shift };
        for e in entries {
            let idx = ((e.time.as_micros() >> self.width_shift) as usize) & self.mask;
            self.buckets[idx].push(e);
        }
    }

    /// Locates the minimum `(time, seq)` entry: returns `(bucket, slot,
    /// day, lapped)` without mutating anything. Scans forward from the
    /// cursor one day at a time; after a whole lap of verified-empty days
    /// it jumps straight to the true minimum day, reporting `lapped: true`
    /// so [`Self::pop`] knows the bucket width is too narrow for the
    /// current population.
    fn find_min(&self) -> Option<(usize, usize, u64, bool)> {
        if self.len == 0 {
            return None;
        }
        let mut day = self.cursor_day;
        let mut laps = 0usize;
        let mut lapped = false;
        loop {
            let idx = (day as usize) & self.mask;
            let mut best: Option<(usize, SimTime, u64)> = None;
            for (slot, e) in self.buckets[idx].iter().enumerate() {
                if self.day_of(e.time) != day {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, bt, bs)) => (e.time, e.seq) < (bt, bs),
                };
                if better {
                    best = Some((slot, e.time, e.seq));
                }
            }
            if let Some((slot, _, _)) = best {
                return Some((idx, slot, day, lapped));
            }
            day += 1;
            laps += 1;
            if laps == self.buckets.len() {
                // A full lap saw nothing: the next event is more than a
                // ring-revolution ahead. Find its day directly.
                day = self
                    .buckets
                    .iter()
                    .flatten()
                    .map(|e| self.day_of(e.time))
                    .min()
                    .expect("len > 0");
                laps = 0;
                lapped = true;
            }
        }
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.find_min().map(|(b, s, _, _)| self.buckets[b][s].time)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (b, s, day, lapped) = self.find_min()?;
        if lapped {
            // The scan needed the whole-queue fallback, which means days
            // are far narrower than the actual inter-event spacing (e.g. a
            // low-rate workload with multi-second gaps against the initial
            // 131 ms width). Rebuild at the same size to re-derive the
            // width from the live population, turning subsequent pops back
            // into O(1) scans. Layout-only: pop order is re-derived from
            // `(time, seq)` on every scan, so results are unchanged.
            self.rebuild(self.buckets.len());
            let (b, s, day, _) = self.find_min().expect("len > 0");
            self.cursor_day = day;
            let e = self.buckets[b].swap_remove(s);
            self.len -= 1;
            return Some((e.time, e.payload));
        }
        // Parking the cursor on the popped entry's day keeps the next scan
        // O(1) for the monotone common case; swap_remove is safe because
        // ordering is re-derived from (time, seq) on every scan.
        self.cursor_day = day;
        let e = self.buckets[b].swap_remove(s);
        self.len -= 1;
        Some((e.time, e.payload))
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all pending events, keeping the ring's capacity for reuse.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.cursor_day = 0;
        self.next_seq = 0;
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("buckets", &self.buckets.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

pub mod reference {
    //! The pre-calendar binary-heap queue, kept as the ordering oracle for
    //! differential tests (`prop_event_queue`) and benchmarks.

    use core::cmp::Ordering;

    use crate::units::SimTime;

    struct HeapEntry<E> {
        time: SimTime,
        seq: u64,
        payload: E,
    }

    impl<E> PartialEq for HeapEntry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<E> Eq for HeapEntry<E> {}
    impl<E> PartialOrd for HeapEntry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for HeapEntry<E> {
        // Reversed so the BinaryHeap (a max-heap) pops the earliest entry.
        fn cmp(&self, other: &Self) -> Ordering {
            other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// A binary-heap event queue with the same API and ordering contract
    /// as [`EventQueue`](super::EventQueue).
    pub struct HeapQueue<E> {
        heap: std::collections::BinaryHeap<HeapEntry<E>>,
        next_seq: u64,
    }

    impl<E> Default for HeapQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> HeapQueue<E> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            HeapQueue { heap: std::collections::BinaryHeap::new(), next_seq: 0 }
        }

        /// Schedules `payload` to fire at `time`.
        pub fn push(&mut self, time: SimTime, payload: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(HeapEntry { time, seq, payload });
        }

        /// The instant of the earliest pending event, if any.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.time)
        }

        /// Removes and returns the earliest pending event.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|e| (e.time, e.payload))
        }

        /// The number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// Whether no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }
    }
}

/// A virtual clock driving an [`EventQueue`].
///
/// Popping an event advances the clock to the event's instant; scheduling
/// before the current instant is rejected, which makes causality violations
/// loud instead of silently reordering history.
#[derive(Debug)]
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates a simulator with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Simulator { queue: EventQueue::new(), now: SimTime::ZERO, processed: 0 }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Rewinds the clock to [`SimTime::ZERO`] and drops all pending
    /// events, keeping the queue's allocated capacity. A reset simulator
    /// behaves exactly like a fresh one — this is the reuse hook that lets
    /// a run scratch avoid re-growing the calendar every replication.
    pub fn reset(&mut self) {
        self.queue.clear();
        self.now = SimTime::ZERO;
        self.processed = 0;
    }

    /// Schedules `payload` at the absolute instant `at`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleInPastError`] if `at` is earlier than [`Self::now`].
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> Result<(), ScheduleInPastError> {
        if at < self.now {
            return Err(ScheduleInPastError { requested: at, now: self.now });
        }
        self.queue.push(at, payload);
        Ok(())
    }

    /// Schedules `payload` to fire `delay` after the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) {
        let at = self.now + delay;
        self.queue.push(at, payload);
    }

    /// Pops the next event, advancing the clock to its instant.
    ///
    /// Returns `None` when no events remain.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        let (time, payload) = self.queue.pop()?;
        debug_assert!(time >= self.now, "event queue yielded an event from the past");
        self.now = time;
        self.processed += 1;
        Some((time, payload))
    }

    /// The instant of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// The number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Advances the clock to `at` without processing events.
    ///
    /// Useful to account for idle tail time at the end of a run. Does nothing
    /// if `at` is in the past.
    pub fn advance_to(&mut self, at: SimTime) {
        if at > self.now {
            self.now = at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn matches_heap_reference_on_interleaved_ops() {
        // A quick deterministic differential check; the exhaustive random
        // version lives in tests/prop_event_queue.rs.
        let mut cal = EventQueue::new();
        let mut heap = reference::HeapQueue::new();
        let mut x = 0x243f6a8885a308d3u64; // xorshift
        for round in 0..2000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = SimTime::from_micros(x % 50_000_000);
            cal.push(t, round);
            heap.push(t, round);
            if x.is_multiple_of(3) {
                assert_eq!(cal.pop(), heap.pop());
            }
            assert_eq!(cal.peek_time(), heap.peek_time());
            assert_eq!(cal.len(), heap.len());
        }
        while let Some(expect) = heap.pop() {
            assert_eq!(cal.pop(), Some(expect));
        }
        assert!(cal.is_empty());
    }

    #[test]
    fn growth_keeps_ordering_under_wide_time_spans() {
        // Enough entries to force several rebuilds, spanning microseconds
        // to days so the width re-derivation is exercised.
        let mut q = EventQueue::new();
        let n = 5000u64;
        for i in 0..n {
            let t = (i * 2_654_435_761) % 86_400_000_000; // scattered over 24h
            q.push(SimTime::from_micros(t), i);
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut popped = 0;
        while let Some((t, i)) = q.pop() {
            assert!((t, i) >= last || popped == 0, "out of order at {popped}");
            last = (t, i);
            popped += 1;
        }
        assert_eq!(popped, n);
    }

    #[test]
    fn far_future_gap_is_bridged() {
        // One event a year ahead of everything else: the lap fallback must
        // find it rather than spin through empty days.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), "near");
        q.push(SimTime::from_hours(24 * 365), "far");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_secs(i), i);
        }
        q.clear();
        assert!(q.is_empty());
        q.push(SimTime::from_secs(2), 0u64);
        q.push(SimTime::from_secs(2), 1u64);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 0)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 1)));
    }

    #[test]
    fn simulator_advances_clock() {
        let mut sim = Simulator::new();
        sim.schedule_after(SimDuration::from_secs(10), ());
        assert_eq!(sim.now(), SimTime::ZERO);
        sim.step();
        assert_eq!(sim.now(), SimTime::from_secs(10));
        assert_eq!(sim.events_processed(), 1);
    }

    #[test]
    fn scheduling_in_past_is_rejected() {
        let mut sim = Simulator::new();
        sim.schedule_after(SimDuration::from_secs(10), 1u8);
        sim.step();
        let err = sim.schedule_at(SimTime::from_secs(5), 2u8).unwrap_err();
        assert_eq!(err.now, SimTime::from_secs(10));
        assert!(err.to_string().contains("before current time"));
    }

    #[test]
    fn reset_behaves_like_fresh() {
        let mut sim = Simulator::new();
        sim.schedule_after(SimDuration::from_secs(5), 1u8);
        sim.schedule_after(SimDuration::from_secs(9), 2u8);
        sim.step();
        sim.reset();
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.events_processed(), 0);
        assert!(sim.is_idle());
        sim.schedule_after(SimDuration::from_secs(1), 3u8);
        assert_eq!(sim.step(), Some((SimTime::from_secs(1), 3u8)));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let mut sim = Simulator::<()>::new();
        sim.advance_to(SimTime::from_secs(7));
        sim.advance_to(SimTime::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(7));
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }
}
