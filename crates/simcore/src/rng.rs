//! Deterministic, hierarchically splittable random-number streams.
//!
//! Every source of randomness in a simulation derives from one master seed
//! through named [`RngStream::derive`] calls, e.g.
//! `root.derive("arrivals").derive("user-42")`. Adding a new consumer of
//! randomness therefore never perturbs the draws seen by existing consumers,
//! which keeps experiments comparable across code revisions — the classic
//! "common random numbers" variance-reduction setup.
//!
//! # Examples
//!
//! ```
//! use ntc_simcore::rng::RngStream;
//! use rand::Rng;
//!
//! let root = RngStream::root(42);
//! let mut a = root.derive("arrivals");
//! let mut b = root.derive("arrivals");
//! // Same path ⇒ same stream.
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! ```

use core::fmt;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// FNV-1a 64-bit hash, used to fold stream labels into child seeds.
fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x100000001b3;
    let mut h = init ^ 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// SplitMix64 finalizer: turns a structured seed into well-mixed bits.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A named, deterministic random stream.
///
/// Streams form a tree: [`RngStream::root`] creates the root from a master
/// seed, and [`RngStream::derive`] creates children addressed by label.
/// Deriving reads only the stream's identity (seed + label), never its
/// position, so the set of children is independent of how many values have
/// been drawn from the parent.
pub struct RngStream {
    rng: StdRng,
    derivation_seed: u64,
}

impl RngStream {
    /// Creates the root stream of a seed tree.
    pub fn root(master_seed: u64) -> Self {
        let derivation_seed = splitmix64(master_seed);
        RngStream {
            rng: StdRng::seed_from_u64(splitmix64(derivation_seed ^ 0x5eed)),
            derivation_seed,
        }
    }

    /// Derives an independent child stream addressed by `label`.
    ///
    /// The same `(parent, label)` pair always yields the same stream.
    pub fn derive(&self, label: &str) -> RngStream {
        let child_seed = splitmix64(fnv1a(self.derivation_seed, label.as_bytes()));
        RngStream {
            rng: StdRng::seed_from_u64(splitmix64(child_seed ^ 0x5eed)),
            derivation_seed: child_seed,
        }
    }

    /// Derives an independent child stream addressed by a numeric index.
    pub fn derive_index(&self, index: u64) -> RngStream {
        self.derive(&index.to_string())
    }

    /// Draws a uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Draws a uniform integer in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform_range(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "uniform_range requires low < high");
        self.rng.gen_range(low..high)
    }

    /// Draws an exponential variate with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "exponential mean must be positive");
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Draws a standard normal variate via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Draws a normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0);
        mean + std_dev * self.standard_normal()
    }

    /// Draws a lognormal variate parameterised by the mean and standard
    /// deviation of the *underlying normal*.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.rng.gen::<f64>() < p
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.uniform_range(0, items.len() as u64) as usize;
            Some(&items[i])
        }
    }
}

impl RngCore for RngStream {
    fn next_u32(&mut self) -> u32 {
        self.rng.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.rng.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.rng.try_fill_bytes(dest)
    }
}

impl fmt::Debug for RngStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RngStream").field("derivation_seed", &self.derivation_seed).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_path_same_stream() {
        let root = RngStream::root(7);
        let mut a = root.derive("x").derive("y");
        let mut b = root.derive("x").derive("y");
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_labels_differ() {
        let root = RngStream::root(7);
        assert_ne!(root.derive("a").next_u64(), root.derive("b").next_u64());
    }

    #[test]
    fn different_master_seeds_differ() {
        assert_ne!(
            RngStream::root(1).derive("a").next_u64(),
            RngStream::root(2).derive("a").next_u64()
        );
    }

    #[test]
    fn derivation_is_position_independent() {
        let root = RngStream::root(99);
        let mut consumed = root.derive("p");
        for _ in 0..100 {
            consumed.next_u64();
        }
        // Deriving from `consumed` after drawing matches deriving before.
        let fresh = root.derive("p");
        assert_eq!(consumed.derive("c").next_u64(), fresh.derive("c").next_u64());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut s = RngStream::root(5).derive("exp");
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| s.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut s = RngStream::root(5).derive("norm");
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| s.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.3, "var={var}");
    }

    #[test]
    fn chance_frequency_is_close() {
        let mut s = RngStream::root(5).derive("chance");
        let hits = (0..10_000).filter(|_| s.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn choose_covers_all_items() {
        let mut s = RngStream::root(5).derive("choose");
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*s.choose(&items).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
        assert_eq!(s.choose::<u8>(&[]), None);
    }
}
