//! Deadline-aware dispatch: exploit delay tolerance to batch invocations
//! onto warm instances (Figure 4 of the reconstructed evaluation).
//!
//! A non-time-critical job arrives with *slack*: it only has to finish by
//! `arrival + slack`. Instead of dispatching immediately (and paying a
//! cold start for every sporadic arrival), the scheduler may hold jobs and
//! release them in windows, so that consecutive invocations reuse the same
//! warm instance. The invariant every policy maintains: **dispatching late
//! never violates the deadline**, given the completion-time estimate.

use core::fmt;

use ntc_simcore::units::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// When to release a delay-tolerant job to the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Dispatch the moment the job arrives (the time-critical default).
    Immediate,
    /// Hold jobs until the next multiple of `window` (aligned to the
    /// simulation epoch), unless the deadline forces earlier release.
    Windowed {
        /// Batching-window length.
        window: SimDuration,
    },
    /// Hold each job as long as its own deadline allows (maximum
    /// opportunity for off-peak execution and warm reuse).
    SlackMax,
    /// Hold jobs until the next `window` boundary that falls inside the
    /// off-peak band `[start_hour, end_hour)` of the simulated day
    /// (wrapping past midnight when `start_hour > end_hour`); jobs whose
    /// deadline cannot reach the band fall back to windowed behaviour.
    OffPeak {
        /// Batching-window length inside the band.
        window: SimDuration,
        /// First off-peak hour (0–23).
        start_hour: u8,
        /// First hour after the band (0–24, may be below `start_hour`).
        end_hour: u8,
    },
}

impl fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchPolicy::Immediate => f.write_str("immediate"),
            DispatchPolicy::Windowed { window } => write!(f, "windowed({window})"),
            DispatchPolicy::SlackMax => f.write_str("slack-max"),
            DispatchPolicy::OffPeak { window, start_hour, end_hour } => {
                write!(f, "off-peak({window}, {start_hour}h-{end_hour}h)")
            }
        }
    }
}

/// Whether the instant `t` falls inside the daily hour band
/// `[start_hour, end_hour)`, wrapping past midnight when
/// `start_hour > end_hour`.
pub fn in_hour_band(t: SimTime, start_hour: u8, end_hour: u8) -> bool {
    let hour = (t.as_micros() / 3_600_000_000) % 24;
    let (s, e) = (u64::from(start_hour), u64::from(end_hour));
    if s == e {
        true // degenerate band covers the whole day
    } else if s < e {
        hour >= s && hour < e
    } else {
        hour >= s || hour < e
    }
}

/// The latest instant a job may be dispatched and still meet its deadline,
/// with a safety `margin` on the completion estimate.
pub fn latest_safe_dispatch(
    arrival: SimTime,
    slack: SimDuration,
    estimated_completion: SimDuration,
    margin: SimDuration,
) -> SimTime {
    let deadline = arrival + slack;
    let reserve = estimated_completion + margin;
    let latest = deadline.saturating_duration_since(SimTime::ZERO).saturating_sub(reserve);
    let latest = SimTime::from_micros(latest.as_micros());
    latest.max(arrival)
}

/// Computes the dispatch instant for a job under `policy`.
///
/// Never returns earlier than `arrival`, and never later than the latest
/// safe dispatch for the given estimate and margin.
pub fn dispatch_time(
    policy: DispatchPolicy,
    arrival: SimTime,
    slack: SimDuration,
    estimated_completion: SimDuration,
    margin: SimDuration,
) -> SimTime {
    let latest = latest_safe_dispatch(arrival, slack, estimated_completion, margin);
    match policy {
        DispatchPolicy::Immediate => arrival,
        DispatchPolicy::Windowed { window } => {
            if window.is_zero() {
                return arrival;
            }
            let w = window.as_micros();
            let next_boundary = SimTime::from_micros(arrival.as_micros().div_ceil(w) * w);
            next_boundary.min(latest).max(arrival)
        }
        DispatchPolicy::SlackMax => latest,
        DispatchPolicy::OffPeak { window, start_hour, end_hour } => {
            if window.is_zero() {
                return arrival;
            }
            let w = window.as_micros();
            let mut candidate = SimTime::from_micros(arrival.as_micros().div_ceil(w) * w);
            let first_boundary = candidate;
            // Walk window boundaries until one lands in the band or the
            // deadline forecloses the wait.
            let mut steps = 0u32;
            while candidate <= latest && steps < 100_000 {
                if in_hour_band(candidate, start_hour, end_hour) {
                    return candidate.max(arrival);
                }
                candidate += window;
                steps += 1;
            }
            // Band unreachable within the slack: behave like Windowed.
            first_boundary.min(latest).max(arrival)
        }
    }
}

/// Decision record for one held job (used by the execution engine to
/// requeue the job at its release instant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeldJob {
    /// When the job arrived.
    pub arrival: SimTime,
    /// When it will be released to the platform.
    pub dispatch_at: SimTime,
    /// Its hard completion deadline.
    pub deadline: SimTime,
}

impl HeldJob {
    /// Plans a job's release under `policy`.
    pub fn plan(
        policy: DispatchPolicy,
        arrival: SimTime,
        slack: SimDuration,
        estimated_completion: SimDuration,
        margin: SimDuration,
    ) -> HeldJob {
        HeldJob {
            arrival,
            dispatch_at: dispatch_time(policy, arrival, slack, estimated_completion, margin),
            deadline: arrival + slack,
        }
    }

    /// The artificial delay introduced by holding.
    pub fn hold_time(&self) -> SimDuration {
        self.dispatch_at - self.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EST: SimDuration = SimDuration::from_secs(30);
    const MARGIN: SimDuration = SimDuration::from_secs(10);

    #[test]
    fn immediate_never_holds() {
        let t = SimTime::from_secs(1234);
        let d =
            dispatch_time(DispatchPolicy::Immediate, t, SimDuration::from_hours(8), EST, MARGIN);
        assert_eq!(d, t);
    }

    #[test]
    fn slack_max_uses_all_slack_minus_reserve() {
        let arrival = SimTime::from_secs(1000);
        let slack = SimDuration::from_hours(1);
        let d = dispatch_time(DispatchPolicy::SlackMax, arrival, slack, EST, MARGIN);
        assert_eq!(d, SimTime::from_secs(1000 + 3600 - 40));
    }

    #[test]
    fn zero_slack_dispatches_immediately() {
        let arrival = SimTime::from_secs(50);
        for policy in [
            DispatchPolicy::Immediate,
            DispatchPolicy::Windowed { window: SimDuration::from_mins(30) },
            DispatchPolicy::SlackMax,
        ] {
            let d = dispatch_time(policy, arrival, SimDuration::ZERO, EST, MARGIN);
            assert_eq!(d, arrival, "{policy} must not hold a zero-slack job");
        }
    }

    #[test]
    fn windowed_aligns_to_boundaries() {
        let window = SimDuration::from_mins(10);
        let arrival = SimTime::from_secs(123);
        let d = dispatch_time(
            DispatchPolicy::Windowed { window },
            arrival,
            SimDuration::from_hours(4),
            EST,
            MARGIN,
        );
        assert_eq!(d, SimTime::from_secs(600), "releases at the next 10-min boundary");
        // A job arriving exactly on a boundary goes immediately.
        let on_boundary = SimTime::from_secs(1200);
        let d2 = dispatch_time(
            DispatchPolicy::Windowed { window },
            on_boundary,
            SimDuration::from_hours(4),
            EST,
            MARGIN,
        );
        assert_eq!(d2, on_boundary);
    }

    #[test]
    fn windowed_respects_tight_deadlines() {
        let window = SimDuration::from_hours(6);
        let arrival = SimTime::from_secs(100);
        let slack = SimDuration::from_mins(2);
        let d = dispatch_time(DispatchPolicy::Windowed { window }, arrival, slack, EST, MARGIN);
        // Next boundary (6 h) is far past the deadline: clamp to latest safe.
        assert_eq!(d, SimTime::from_secs(100 + 120 - 40));
    }

    #[test]
    fn dispatch_never_violates_deadline_invariant() {
        // Property-style sweep: over many (arrival, slack, est) combos the
        // dispatch + reserve always fits the deadline.
        for a in [0u64, 7, 3600, 86_400] {
            for s in [0u64, 60, 600, 28_800] {
                for e in [1u64, 30, 600] {
                    for policy in [
                        DispatchPolicy::Immediate,
                        DispatchPolicy::Windowed { window: SimDuration::from_mins(15) },
                        DispatchPolicy::SlackMax,
                    ] {
                        let arrival = SimTime::from_secs(a);
                        let slack = SimDuration::from_secs(s);
                        let est = SimDuration::from_secs(e);
                        let d = dispatch_time(policy, arrival, slack, est, SimDuration::ZERO);
                        assert!(d >= arrival);
                        if est <= slack {
                            assert!(
                                d + est <= arrival + slack,
                                "{policy}: a={a} s={s} e={e} dispatch {d}"
                            );
                        } else {
                            // Infeasible estimate: dispatch immediately.
                            assert_eq!(d, arrival);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn off_peak_waits_for_the_band() {
        // Arrive at 14:00 with 24 h slack; off-peak band 00:00–06:00.
        let arrival = SimTime::from_secs(14 * 3600);
        let policy = DispatchPolicy::OffPeak {
            window: SimDuration::from_hours(1),
            start_hour: 0,
            end_hour: 6,
        };
        let d = dispatch_time(policy, arrival, SimDuration::from_hours(24), EST, MARGIN);
        assert_eq!(d, SimTime::from_secs(24 * 3600), "released at midnight");
    }

    #[test]
    fn off_peak_inside_band_goes_at_next_boundary() {
        let arrival = SimTime::from_secs(2 * 3600 + 100);
        let policy = DispatchPolicy::OffPeak {
            window: SimDuration::from_hours(1),
            start_hour: 0,
            end_hour: 6,
        };
        let d = dispatch_time(policy, arrival, SimDuration::from_hours(12), EST, MARGIN);
        assert_eq!(d, SimTime::from_secs(3 * 3600));
    }

    #[test]
    fn off_peak_falls_back_when_band_is_unreachable() {
        // Arrive just past 08:00 with 2 h slack: the midnight band is out
        // of reach.
        let arrival = SimTime::from_secs(8 * 3600 + 100);
        let policy = DispatchPolicy::OffPeak {
            window: SimDuration::from_mins(30),
            start_hour: 0,
            end_hour: 6,
        };
        let slack = SimDuration::from_hours(2);
        let d = dispatch_time(policy, arrival, slack, EST, MARGIN);
        assert_eq!(d, SimTime::from_secs(8 * 3600 + 1800), "windowed fallback");
        assert!(d + EST + MARGIN <= arrival + slack);
    }

    #[test]
    fn off_peak_respects_deadlines() {
        let policy = DispatchPolicy::OffPeak {
            window: SimDuration::from_hours(1),
            start_hour: 22,
            end_hour: 6,
        };
        for a in [0u64, 3600, 10 * 3600, 23 * 3600] {
            for s in [600u64, 7200, 86_400] {
                let arrival = SimTime::from_secs(a);
                let slack = SimDuration::from_secs(s);
                let d = dispatch_time(policy, arrival, slack, EST, SimDuration::ZERO);
                assert!(d >= arrival);
                if EST <= slack {
                    assert!(d + EST <= arrival + slack, "a={a} s={s} d={d}");
                }
            }
        }
    }

    #[test]
    fn hour_band_wraps_midnight() {
        assert!(in_hour_band(SimTime::from_secs(23 * 3600), 22, 6));
        assert!(in_hour_band(SimTime::from_secs(3 * 3600), 22, 6));
        assert!(!in_hour_band(SimTime::from_secs(12 * 3600), 22, 6));
        assert!(in_hour_band(SimTime::from_secs(12 * 3600), 5, 5), "degenerate band is always on");
        // Second day wraps too.
        assert!(in_hour_band(SimTime::from_secs((24 + 2) * 3600), 22, 6));
    }

    #[test]
    fn held_job_records_hold_time() {
        let job = HeldJob::plan(
            DispatchPolicy::SlackMax,
            SimTime::from_secs(100),
            SimDuration::from_secs(500),
            SimDuration::from_secs(100),
            SimDuration::ZERO,
        );
        assert_eq!(job.hold_time(), SimDuration::from_secs(400));
        assert_eq!(job.deadline, SimTime::from_secs(600));
    }

    #[test]
    fn policy_display() {
        assert_eq!(DispatchPolicy::Immediate.to_string(), "immediate");
        assert_eq!(DispatchPolicy::SlackMax.to_string(), "slack-max");
        assert!(DispatchPolicy::Windowed { window: SimDuration::from_mins(5) }
            .to_string()
            .starts_with("windowed("));
    }
}
