//! # ntc-alloc
//!
//! Serverless resource allocation (contribution **C2** of *Computational
//! Offloading for Non-Time-Critical Applications*, ICDCS 2022): choose the
//! FaaS configuration for each offloaded partition and decide *when* to
//! dispatch delay-tolerant jobs.
//!
//! * [`memory`] — the memory-size cost/latency sweep, Pareto frontier,
//!   and cheapest-under-deadline selection (Figure 3).
//! * [`batching`] — deadline-aware dispatch policies that exploit slack
//!   without ever violating a deadline (Figure 4).
//! * [`keepwarm`] — cold-start mitigation strategies and their expected
//!   overhead (Figure 2).
//! * [`sizing`] — Little's-law concurrency sizing and the full
//!   [`sizing::Allocation`] decision.
//!
//! # Examples
//!
//! ```
//! use ntc_alloc::memory::{select_memory, standard_sizes};
//! use ntc_serverless::{BillingModel, CpuScaling};
//! use ntc_simcore::units::{Cycles, SimDuration};
//!
//! // Cheapest configuration that renders a report within 2 minutes:
//! let pick = select_memory(
//!     Cycles::from_giga(100),
//!     SimDuration::from_mins(2),
//!     &CpuScaling::lambda_like(),
//!     &BillingModel::aws_like(),
//!     &standard_sizes(),
//! ).unwrap();
//! assert!(pick.exec <= SimDuration::from_mins(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batching;
pub mod capabilities;
pub mod keepwarm;
pub mod memory;
pub mod sizing;

pub use batching::{dispatch_time, DispatchPolicy, HeldJob};
pub use capabilities::{recommend_for_site, SiteCapabilities};
pub use keepwarm::{hourly_overhead, recommend, WarmStrategy};
pub use memory::{pareto_frontier, select_memory, standard_sizes, sweep, MemoryPoint};
pub use sizing::{allocate, allocate_default, required_concurrency, Allocation, AllocationRequest};
