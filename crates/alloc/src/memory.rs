//! Memory-size selection: the cost/latency trade-off of FaaS
//! configurations (Figure 3 of the reconstructed evaluation).
//!
//! On Lambda-style platforms the memory size is the only performance knob:
//! CPU share grows with memory, so execution time falls while the per-second
//! rate rises. Below the full-vCPU point the two cancel almost exactly;
//! above it, extra memory buys little speed at full price. The cheapest
//! configuration that still meets the deadline budget therefore sits near
//! the knee.

use ntc_simcore::units::{Cycles, DataSize, Money, SimDuration};
use serde::{Deserialize, Serialize};

use ntc_serverless::{BillingModel, CpuScaling};

/// One point of the memory sweep: a configuration and its predicted
/// performance/cost for a given amount of work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryPoint {
    /// The configured memory size.
    pub memory: DataSize,
    /// Predicted execution time of the work at this size.
    pub exec: SimDuration,
    /// Predicted per-invocation cost at this size.
    pub cost: Money,
}

/// The standard candidate ladder (128 MiB … 10 240 MiB, Lambda-style).
pub fn standard_sizes() -> Vec<DataSize> {
    [128u64, 256, 512, 1024, 1769, 2048, 3072, 4096, 6144, 8192, 10240]
        .iter()
        .map(|&m| DataSize::from_mib(m))
        .collect()
}

/// Predicts execution time and cost of `work` across `sizes`.
pub fn sweep(
    work: Cycles,
    cpu: &CpuScaling,
    billing: &BillingModel,
    sizes: &[DataSize],
) -> Vec<MemoryPoint> {
    sizes
        .iter()
        .map(|&memory| {
            let exec = cpu.effective_speed(memory).execution_time(work);
            MemoryPoint { memory, exec, cost: billing.invocation_cost(memory, exec) }
        })
        .collect()
}

/// Filters `points` down to the Pareto frontier (no other point is both
/// faster and cheaper), sorted by execution time descending.
pub fn pareto_frontier(points: &[MemoryPoint]) -> Vec<MemoryPoint> {
    // Walk from the fastest point outwards, keeping each point that is
    // strictly cheaper than everything faster than it.
    let mut sorted: Vec<MemoryPoint> = points.to_vec();
    sorted.sort_by(|a, b| a.exec.cmp(&b.exec).then(a.cost.cmp(&b.cost)));
    let mut out: Vec<MemoryPoint> = Vec::new();
    let mut best: Option<Money> = None;
    for p in sorted {
        if best.is_none_or(|c| p.cost < c) {
            best = Some(p.cost);
            out.push(p);
        }
    }
    out.reverse(); // exec descending
    out
}

/// Picks the cheapest configuration whose execution time fits within
/// `budget`; falls back to the fastest configuration if none does.
///
/// Returns `None` only when `sizes` is empty.
pub fn select_memory(
    work: Cycles,
    budget: SimDuration,
    cpu: &CpuScaling,
    billing: &BillingModel,
    sizes: &[DataSize],
) -> Option<MemoryPoint> {
    let points = sweep(work, cpu, billing, sizes);
    let feasible = points.iter().filter(|p| p.exec <= budget).min_by_key(|p| (p.cost, p.exec));
    match feasible {
        Some(p) => Some(*p),
        None => points.into_iter().min_by_key(|p| (p.exec, p.cost)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> (CpuScaling, BillingModel) {
        (CpuScaling::lambda_like(), BillingModel::aws_like())
    }

    #[test]
    fn sweep_is_monotone_in_exec_time() {
        let (cpu, billing) = models();
        let pts = sweep(Cycles::from_giga(10), &cpu, &billing, &standard_sizes());
        assert_eq!(pts.len(), standard_sizes().len());
        for w in pts.windows(2) {
            assert!(w[1].exec <= w[0].exec, "more memory must not be slower");
        }
    }

    #[test]
    fn cost_rises_past_the_knee() {
        let (cpu, billing) = models();
        let pts = sweep(Cycles::from_giga(10), &cpu, &billing, &standard_sizes());
        let at =
            |mib: u64| pts.iter().find(|p| p.memory == DataSize::from_mib(mib)).copied().unwrap();
        // Above the full-vCPU point speed saturates but price keeps rising.
        assert!(at(10240).cost > at(1769).cost * 2);
        // Below the knee, cost is roughly flat (time × price cancel).
        let rel = (at(256).cost.as_usd_f64() - at(1024).cost.as_usd_f64()).abs()
            / at(1024).cost.as_usd_f64();
        assert!(rel < 0.15, "rel={rel}");
    }

    #[test]
    fn pareto_frontier_is_consistent() {
        let (cpu, billing) = models();
        let pts = sweep(Cycles::from_giga(10), &cpu, &billing, &standard_sizes());
        let frontier = pareto_frontier(&pts);
        assert!(!frontier.is_empty());
        // No frontier point is dominated by any sweep point.
        for f in &frontier {
            for p in &pts {
                assert!(!(p.exec < f.exec && p.cost < f.cost), "{f:?} dominated by {p:?}");
            }
        }
        // Frontier is exec-descending and cost-ascending.
        for w in frontier.windows(2) {
            assert!(w[1].exec <= w[0].exec);
            assert!(w[1].cost >= w[0].cost);
        }
    }

    #[test]
    fn select_memory_meets_budget_cheaply() {
        let (cpu, billing) = models();
        let work = Cycles::from_giga(10); // 4 s at one 2.5 GHz vCPU
        let generous =
            select_memory(work, SimDuration::from_mins(5), &cpu, &billing, &standard_sizes())
                .unwrap();
        let tight =
            select_memory(work, SimDuration::from_secs(5), &cpu, &billing, &standard_sizes())
                .unwrap();
        assert!(generous.exec <= SimDuration::from_mins(5));
        assert!(tight.exec <= SimDuration::from_secs(5));
        assert!(generous.cost <= tight.cost, "looser budget must not cost more");
        assert!(generous.memory <= tight.memory);
    }

    #[test]
    fn impossible_budget_falls_back_to_fastest() {
        let (cpu, billing) = models();
        let work = Cycles::from_giga(1000);
        let p = select_memory(work, SimDuration::from_millis(1), &cpu, &billing, &standard_sizes())
            .unwrap();
        // The fastest configuration — the CPU cap makes 8192 MiB as fast
        // as 10240 MiB, so the cheaper of the two wins the tie.
        assert_eq!(p.memory, DataSize::from_mib(8192));
    }

    #[test]
    fn empty_ladder_returns_none() {
        let (cpu, billing) = models();
        assert!(select_memory(
            Cycles::from_giga(1),
            SimDuration::from_secs(1),
            &cpu,
            &billing,
            &[]
        )
        .is_none());
    }
}
