//! Cold-start mitigation strategies and their expected-cost comparison
//! (Figure 2 of the reconstructed evaluation).

use core::fmt;

use ntc_simcore::units::{DataSize, Money, SimDuration};
use serde::{Deserialize, Serialize};

use ntc_serverless::BillingModel;

/// A strategy for keeping latency tails down between sporadic arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarmStrategy {
    /// Rely on the platform's own keep-alive only (free, cold tail when
    /// arrivals are sparser than the keep-alive TTL).
    PlatformOnly,
    /// Fire a tiny "warmer" ping every `period` so the platform keep-alive
    /// never lapses. Costs one minimal invocation per period.
    Warmer {
        /// Ping interval; must be shorter than the platform TTL to help.
        period: SimDuration,
    },
    /// Buy `count` provisioned always-warm instances.
    Provisioned {
        /// Number of instances held warm.
        count: u32,
    },
}

impl fmt::Display for WarmStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarmStrategy::PlatformOnly => f.write_str("platform-only"),
            WarmStrategy::Warmer { period } => write!(f, "warmer({period})"),
            WarmStrategy::Provisioned { count } => write!(f, "provisioned({count})"),
        }
    }
}

/// The expected *extra* hourly cost of a strategy (beyond the work
/// itself), for a function of the given memory size.
pub fn hourly_overhead(strategy: WarmStrategy, memory: DataSize, billing: &BillingModel) -> Money {
    match strategy {
        WarmStrategy::PlatformOnly => Money::ZERO,
        WarmStrategy::Warmer { period } => {
            if period.is_zero() {
                return Money::ZERO;
            }
            let pings_per_hour = 3600.0 / period.as_secs_f64();
            // A warmer ping is a minimal invocation: one billing granule.
            let per_ping = billing.invocation_cost(memory, SimDuration::from_micros(1));
            per_ping.mul_f64(pings_per_hour)
        }
        WarmStrategy::Provisioned { count } => {
            billing.provisioned_cost(memory, SimDuration::from_hours(1)).mul_f64(f64::from(count))
        }
    }
}

/// Recommends a strategy for a function with mean inter-arrival time
/// `interarrival`, platform keep-alive `ttl`, and a target that cold
/// starts stay rare.
///
/// * arrivals denser than the TTL → the platform keeps things warm for
///   free;
/// * moderately sparse arrivals → a warmer ping just under the TTL;
/// * very sparse arrivals where even pinging costs more than the rare
///   cold start hurts → accept the cold start (platform-only).
pub fn recommend(interarrival: SimDuration, ttl: SimDuration) -> WarmStrategy {
    if ttl.is_zero() {
        // Platform reaps instantly: only provisioning keeps anything warm.
        return WarmStrategy::Provisioned { count: 1 };
    }
    if interarrival <= ttl {
        return WarmStrategy::PlatformOnly;
    }
    // Ping at 90 % of the TTL. Beyond ~100× the TTL the traffic is so rare
    // that warming is wasted money — accept the cold start.
    if interarrival > ttl.mul_f64(100.0) {
        WarmStrategy::PlatformOnly
    } else {
        WarmStrategy::Warmer { period: ttl.mul_f64(0.9) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TTL: SimDuration = SimDuration::from_mins(10);

    #[test]
    fn dense_traffic_needs_nothing() {
        assert_eq!(recommend(SimDuration::from_secs(30), TTL), WarmStrategy::PlatformOnly);
        assert_eq!(recommend(TTL, TTL), WarmStrategy::PlatformOnly);
    }

    #[test]
    fn sparse_traffic_gets_a_warmer() {
        let s = recommend(SimDuration::from_mins(45), TTL);
        match s {
            WarmStrategy::Warmer { period } => assert!(period < TTL),
            other => panic!("expected warmer, got {other}"),
        }
    }

    #[test]
    fn ultra_sparse_traffic_accepts_cold_starts() {
        assert_eq!(recommend(SimDuration::from_hours(100), TTL), WarmStrategy::PlatformOnly);
    }

    #[test]
    fn zero_ttl_requires_provisioning() {
        assert_eq!(
            recommend(SimDuration::from_secs(1), SimDuration::ZERO),
            WarmStrategy::Provisioned { count: 1 }
        );
    }

    #[test]
    fn overhead_ordering_is_sane() {
        let billing = BillingModel::aws_like();
        let mem = DataSize::from_mib(1024);
        let none = hourly_overhead(WarmStrategy::PlatformOnly, mem, &billing);
        let warmer = hourly_overhead(
            WarmStrategy::Warmer { period: SimDuration::from_mins(9) },
            mem,
            &billing,
        );
        let prov = hourly_overhead(WarmStrategy::Provisioned { count: 1 }, mem, &billing);
        assert_eq!(none, Money::ZERO);
        assert!(warmer > none);
        assert!(prov > warmer, "provisioned ({prov}) should out-cost pinging ({warmer})");
    }

    #[test]
    fn zero_period_warmer_is_free() {
        let billing = BillingModel::aws_like();
        let c = hourly_overhead(
            WarmStrategy::Warmer { period: SimDuration::ZERO },
            DataSize::from_mib(128),
            &billing,
        );
        assert_eq!(c, Money::ZERO);
    }
}
