//! What an execution site can do, as far as allocation is concerned.
//!
//! The allocator (C2) was written against one concrete target — a
//! metered, cold-starting FaaS platform. Generalising the engine to
//! pluggable [`ExecutionSite`](../../ntc_core/site/trait.ExecutionSite.html)s
//! means allocation decisions must key off *capabilities* rather than a
//! backend enum: a site that is not metered has nothing to size, a site
//! without cold starts has nothing to keep warm, and a site without an
//! invocation timeout places no ceiling on coalesced batches.

use ntc_simcore::units::SimDuration;
use serde::{Deserialize, Serialize};

use crate::keepwarm::{recommend, WarmStrategy};

/// The allocation-relevant capabilities of one execution site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteCapabilities {
    /// Work is billed per invocation (duration × memory + request fee),
    /// so memory sizing trades money against latency. Unmetered sites
    /// (pre-paid edge racks, the device itself) have nothing to size.
    pub metered: bool,
    /// Instances cold-start and can be kept warm (provisioning, warmer
    /// pings). Sites with always-resident services never need warming.
    pub warmable: bool,
    /// Hard per-invocation execution ceiling, if the site enforces one.
    /// Bounds how much work one coalesced batch may carry.
    pub invocation_timeout: Option<SimDuration>,
}

impl SiteCapabilities {
    /// A metered, cold-starting FaaS platform with an execution ceiling
    /// (the cloud).
    pub fn metered_faas(timeout: SimDuration) -> Self {
        SiteCapabilities { metered: true, warmable: true, invocation_timeout: Some(timeout) }
    }

    /// A pre-paid, always-resident fleet (the edge): nothing to size,
    /// nothing to warm, no invocation ceiling.
    pub fn flat_rate() -> Self {
        SiteCapabilities { metered: false, warmable: false, invocation_timeout: None }
    }

    /// Local execution on the user's own hardware.
    pub fn local() -> Self {
        SiteCapabilities { metered: false, warmable: false, invocation_timeout: None }
    }
}

/// Capability-aware warming recommendation: sites that cannot be warmed
/// get [`WarmStrategy::PlatformOnly`]; warmable sites defer to
/// [`recommend`].
pub fn recommend_for_site(
    caps: &SiteCapabilities,
    interarrival: SimDuration,
    ttl: SimDuration,
) -> WarmStrategy {
    if !caps.warmable {
        return WarmStrategy::PlatformOnly;
    }
    recommend(interarrival, ttl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwarmable_sites_never_warm() {
        let caps = SiteCapabilities::flat_rate();
        // Sparse traffic would normally earn a warmer ping.
        let w = recommend_for_site(&caps, SimDuration::from_hours(1), SimDuration::from_mins(10));
        assert_eq!(w, WarmStrategy::PlatformOnly);
        let local = SiteCapabilities::local();
        let w = recommend_for_site(&local, SimDuration::from_hours(1), SimDuration::from_mins(10));
        assert_eq!(w, WarmStrategy::PlatformOnly);
    }

    #[test]
    fn warmable_sites_defer_to_recommend() {
        let caps = SiteCapabilities::metered_faas(SimDuration::from_mins(15));
        let interarrival = SimDuration::from_hours(1);
        let ttl = SimDuration::from_mins(10);
        assert_eq!(recommend_for_site(&caps, interarrival, ttl), recommend(interarrival, ttl));
        assert!(matches!(
            recommend_for_site(&caps, interarrival, ttl),
            WarmStrategy::Warmer { .. }
        ));
    }

    #[test]
    fn capability_presets_are_distinct() {
        let cloud = SiteCapabilities::metered_faas(SimDuration::from_mins(15));
        assert!(cloud.metered && cloud.warmable && cloud.invocation_timeout.is_some());
        let edge = SiteCapabilities::flat_rate();
        assert!(!edge.metered && !edge.warmable && edge.invocation_timeout.is_none());
    }
}
