//! Concurrency sizing and the full allocation decision for an offloaded
//! partition.

use ntc_simcore::units::{Cycles, DataSize, SimDuration};
use serde::{Deserialize, Serialize};

use ntc_serverless::{BillingModel, CpuScaling};

use crate::batching::DispatchPolicy;
use crate::keepwarm::WarmStrategy;
use crate::memory::{select_memory, standard_sizes, MemoryPoint};

/// Little's-law concurrency estimate: the number of in-flight invocations
/// at arrival rate `per_sec` and service time `exec`, inflated by
/// `safety` (burst headroom) and rounded up, with a floor of 1.
pub fn required_concurrency(per_sec: f64, exec: SimDuration, safety: f64) -> u32 {
    assert!(per_sec >= 0.0 && per_sec.is_finite(), "rate must be non-negative");
    assert!(safety >= 1.0 && safety.is_finite(), "safety factor must be >= 1");
    let inflight = per_sec * exec.as_secs_f64() * safety;
    (inflight.ceil() as u32).max(1)
}

/// The complete serverless allocation for one offloaded component
/// (contribution C2: "allocate serverless resources").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Chosen memory configuration and its predicted exec/cost.
    pub memory: MemoryPoint,
    /// Per-function concurrency limit to request.
    pub concurrency: u32,
    /// Cold-start mitigation.
    pub warm: WarmStrategy,
    /// Dispatch policy for delay-tolerant jobs.
    pub dispatch: DispatchPolicy,
}

/// Inputs to the allocator for one component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationRequest {
    /// Predicted per-invocation compute demand.
    pub work: Cycles,
    /// Expected arrival rate, jobs per second.
    pub rate_per_sec: f64,
    /// Deadline slack granted per job (zero = time-critical).
    pub slack: SimDuration,
    /// Share of the slack the component's execution may consume
    /// (the rest covers transfers and other components), in `(0, 1]`.
    pub slack_share: f64,
}

/// Decides memory, concurrency, warming and dispatch for one component.
///
/// The deadline budget for the memory choice is `slack × slack_share`
/// (falling back to the fastest configuration for zero-slack jobs);
/// batching is only enabled when there is slack to exploit.
///
/// # Examples
///
/// ```
/// use ntc_alloc::sizing::{allocate, AllocationRequest};
/// use ntc_serverless::{BillingModel, CpuScaling, KeepAlive};
/// use ntc_simcore::units::{Cycles, SimDuration};
///
/// let req = AllocationRequest {
///     work: Cycles::from_giga(10),
///     rate_per_sec: 0.01,
///     slack: SimDuration::from_hours(1),
///     slack_share: 0.5,
/// };
/// let alloc = allocate(&req, &CpuScaling::lambda_like(), &BillingModel::aws_like(), KeepAlive::default());
/// assert!(alloc.concurrency >= 1);
/// ```
pub fn allocate(
    req: &AllocationRequest,
    cpu: &CpuScaling,
    billing: &BillingModel,
    platform_keep_alive: ntc_serverless::KeepAlive,
) -> Allocation {
    assert!(req.slack_share > 0.0 && req.slack_share <= 1.0, "slack_share must be in (0, 1]");
    let budget = if req.slack.is_zero() {
        SimDuration::from_micros(1) // force the fastest configuration
    } else {
        req.slack.mul_f64(req.slack_share)
    };
    let memory = select_memory(req.work, budget, cpu, billing, &standard_sizes())
        .expect("standard ladder is non-empty");
    let concurrency = required_concurrency(req.rate_per_sec, memory.exec, 2.0);

    let interarrival = if req.rate_per_sec > 0.0 {
        SimDuration::from_secs_f64(1.0 / req.rate_per_sec)
    } else {
        SimDuration::MAX
    };
    let warm = crate::keepwarm::recommend(
        interarrival.min(SimDuration::from_hours(24 * 365)),
        platform_keep_alive.idle_ttl(),
    );

    let dispatch = if req.slack.is_zero() {
        DispatchPolicy::Immediate
    } else {
        // Window at a tenth of the slack: enough aggregation for warm
        // reuse, far from the deadline boundary.
        DispatchPolicy::Windowed { window: req.slack.mul_f64(0.1) }
    };

    Allocation { memory, concurrency, warm, dispatch }
}

/// Convenience: allocation for the default Lambda-like platform models.
pub fn allocate_default(req: &AllocationRequest) -> Allocation {
    allocate(
        req,
        &CpuScaling::lambda_like(),
        &BillingModel::aws_like(),
        ntc_serverless::KeepAlive::default(),
    )
}

/// The reference deployment sizes to which the allocator's pick can be
/// compared in ablations: smallest, default, largest.
pub fn naive_choices(work: Cycles, cpu: &CpuScaling, billing: &BillingModel) -> [MemoryPoint; 3] {
    let mk = |mib: u64| {
        let memory = DataSize::from_mib(mib);
        let exec = cpu.effective_speed(memory).execution_time(work);
        MemoryPoint { memory, exec, cost: billing.invocation_cost(memory, exec) }
    };
    [mk(128), mk(1769), mk(10240)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_serverless::KeepAlive;

    #[test]
    fn littles_law_sizing() {
        assert_eq!(required_concurrency(10.0, SimDuration::from_secs(2), 1.0), 20);
        assert_eq!(required_concurrency(10.0, SimDuration::from_secs(2), 1.5), 30);
        assert_eq!(required_concurrency(0.0, SimDuration::from_secs(2), 2.0), 1);
        assert_eq!(required_concurrency(0.001, SimDuration::from_millis(10), 2.0), 1);
    }

    #[test]
    #[should_panic(expected = "safety")]
    fn sub_one_safety_panics() {
        required_concurrency(1.0, SimDuration::from_secs(1), 0.5);
    }

    fn req(slack_secs: u64) -> AllocationRequest {
        AllocationRequest {
            work: Cycles::from_giga(10),
            rate_per_sec: 0.05,
            slack: SimDuration::from_secs(slack_secs),
            slack_share: 0.5,
        }
    }

    #[test]
    fn zero_slack_gets_fastest_memory_and_immediate_dispatch() {
        let a = allocate_default(&req(0));
        assert_eq!(a.dispatch, DispatchPolicy::Immediate);
        // Fastest configuration (8192 MiB ties 10240 MiB at the CPU cap
        // and is cheaper).
        assert_eq!(a.memory.memory, DataSize::from_mib(8192));
    }

    #[test]
    fn generous_slack_gets_cheap_memory_and_batching() {
        let a = allocate_default(&req(8 * 3600));
        assert!(matches!(a.dispatch, DispatchPolicy::Windowed { .. }));
        assert!(a.memory.memory <= DataSize::from_mib(1769), "should pick a cheap size");
        let tight = allocate_default(&req(0));
        assert!(a.memory.cost <= tight.memory.cost);
    }

    #[test]
    fn sparse_traffic_triggers_warming() {
        let mut r = req(3600);
        r.rate_per_sec = 1.0 / 1800.0; // one job per 30 min, TTL 10 min
        let a = allocate(
            &r,
            &CpuScaling::lambda_like(),
            &BillingModel::aws_like(),
            KeepAlive::default(),
        );
        assert!(matches!(a.warm, WarmStrategy::Warmer { .. }), "got {:?}", a.warm);
    }

    #[test]
    fn dense_traffic_relies_on_platform() {
        let mut r = req(3600);
        r.rate_per_sec = 1.0;
        let a = allocate_default(&r);
        assert_eq!(a.warm, WarmStrategy::PlatformOnly);
    }

    #[test]
    fn naive_choices_bracket_the_allocator() {
        let r = req(8 * 3600);
        let a = allocate_default(&r);
        let [small, default, large] =
            naive_choices(r.work, &CpuScaling::lambda_like(), &BillingModel::aws_like());
        assert!(a.memory.exec <= small.exec);
        assert!(a.memory.cost <= large.cost);
        let _ = default;
    }
}
