//! The cost environment a partitioner optimises against, and exact plan
//! evaluation.
//!
//! The objective is the classic additive offloading cost (MAUI /
//! CloneCloud lineage): the sum over components of the execution cost on
//! their assigned side plus the transfer cost of every boundary-crossing
//! flow, with time, money, and UE energy folded into one scalar through
//! explicit exchange-rate [`CostWeights`]. The min-cut partitioner is
//! provably optimal for exactly this objective; the evaluation here uses
//! the very same terms so that claim is testable.

use ntc_simcore::units::{
    Bandwidth, ClockSpeed, Cycles, DataSize, Energy, Money, Power, SimDuration,
};
use ntc_taskgraph::{ComponentId, TaskGraph};
use serde::{Deserialize, Serialize};

use crate::plan::{PartitionPlan, Side};

/// Exchange rates folding time, money and UE energy into one scalar cost.
///
/// Units: cost-units per microsecond, per nano-dollar, and per microjoule.
/// The defaults value 1 second of latency like 2 joules of battery or
/// $0.01 of cloud spend — a delay-tolerant profile where money and energy
/// matter comparably to time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Cost units per microsecond of (summed) execution/transfer time.
    pub per_us: f64,
    /// Cost units per nano-dollar of cloud spend.
    pub per_nano_usd: f64,
    /// Cost units per microjoule of UE battery drain.
    pub per_uj: f64,
}

impl CostWeights {
    /// Weights that only count time (the latency-critical profile).
    pub fn time_only() -> Self {
        CostWeights { per_us: 1.0, per_nano_usd: 0.0, per_uj: 0.0 }
    }

    /// Weights that only count money (the pure-cost profile).
    pub fn money_only() -> Self {
        CostWeights { per_us: 0.0, per_nano_usd: 1.0, per_uj: 0.0 }
    }
}

impl Default for CostWeights {
    fn default() -> Self {
        // 1 s == 10^6 units; $0.01 == 10^7 nano$ × 0.1 == 10^6 units;
        // 2 J == 2×10^6 µJ × 0.5 == 10^6 units.
        CostWeights { per_us: 1.0, per_nano_usd: 0.1, per_uj: 0.5 }
    }
}

/// Scalar environment parameters for partitioning decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// UE CPU speed.
    pub device_speed: ClockSpeed,
    /// Effective cloud function speed (memory-size dependent).
    pub cloud_speed: ClockSpeed,
    /// One-way latency charged per boundary-crossing flow.
    pub link_latency: SimDuration,
    /// Bandwidth of the UE ↔ cloud path.
    pub link_bandwidth: Bandwidth,
    /// UE power draw while computing.
    pub device_active_power: Power,
    /// UE power draw while transmitting/receiving.
    pub device_tx_power: Power,
    /// Cloud money per second of function execution (memory-dependent).
    pub cloud_money_per_sec: Money,
    /// Flat cloud fee per offloaded component per job.
    pub money_per_request: Money,
    /// Exchange rates.
    pub weights: CostWeights,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            device_speed: ClockSpeed::from_ghz_tenths(15), // 1.5 GHz mobile core
            cloud_speed: ClockSpeed::from_ghz_tenths(25),  // 2.5 GHz vCPU
            link_latency: SimDuration::from_millis(40),
            link_bandwidth: Bandwidth::from_megabits_per_sec(50),
            device_active_power: Power::from_watts(2),
            device_tx_power: Power::from_milliwatts(1200),
            cloud_money_per_sec: Money::from_usd_f64(0.0000166667), // 1 GB function
            money_per_request: Money::from_usd_f64(0.0000002),
            weights: CostWeights::default(),
        }
    }
}

/// The exact cost breakdown of a [`PartitionPlan`] under the additive
/// objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanCost {
    /// Summed device execution time.
    pub device_time: SimDuration,
    /// Summed cloud execution time.
    pub cloud_time: SimDuration,
    /// Summed boundary transfer time (latency + serialisation).
    pub transfer_time: SimDuration,
    /// Cloud spend (execution + request fees).
    pub money: Money,
    /// UE battery drain (compute + radio).
    pub energy: Energy,
    /// Bytes moved across the boundary.
    pub bytes_moved: DataSize,
    /// Critical-path completion time: node times on their assigned side,
    /// boundary transfers on crossing edges, parallel branches overlap.
    /// (The additive objective above is what the partitioners optimise;
    /// this is the reader-facing wall-clock view.)
    pub makespan: SimDuration,
    /// The folded scalar objective.
    pub weighted: f64,
}

impl PlanCost {
    /// Sum of all time components (the sequential-execution bound).
    pub fn total_time(&self) -> SimDuration {
        self.device_time + self.cloud_time + self.transfer_time
    }
}

/// A task graph plus everything needed to price a partition of it.
#[derive(Debug, Clone)]
pub struct PartitionContext<'a> {
    graph: &'a TaskGraph,
    input: DataSize,
    params: CostParams,
    demands: Vec<Cycles>,
}

impl<'a> PartitionContext<'a> {
    /// Creates a context for jobs of the given representative input size,
    /// taking component demands from the graph's static annotations.
    pub fn new(graph: &'a TaskGraph, input: DataSize, params: CostParams) -> Self {
        let demands = graph.components().map(|(_, c)| c.demand_cycles(input)).collect();
        PartitionContext { graph, input, params, demands }
    }

    /// Replaces the per-component demands (e.g. with profiler estimates).
    ///
    /// # Panics
    ///
    /// Panics if `demands` does not cover every component.
    pub fn with_demands(mut self, demands: Vec<Cycles>) -> Self {
        assert_eq!(demands.len(), self.graph.len(), "one demand per component required");
        self.demands = demands;
        self
    }

    /// The graph being partitioned.
    pub fn graph(&self) -> &TaskGraph {
        self.graph
    }

    /// The representative job input size.
    pub fn input(&self) -> DataSize {
        self.input
    }

    /// The environment parameters.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// The resolved demand of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not part of the graph.
    pub fn demand(&self, id: ComponentId) -> Cycles {
        self.demands[id.index()]
    }

    /// Cost of executing `id` on the device, in weighted units.
    pub fn device_cost(&self, id: ComponentId) -> f64 {
        let t = self.params.device_speed.execution_time(self.demand(id));
        let e = self.params.device_active_power.energy_over(t);
        self.params.weights.per_us * t.as_micros() as f64
            + self.params.weights.per_uj * (e.as_nanojoules() as f64 / 1e3)
    }

    /// Cost of executing `id` on the cloud, in weighted units, or
    /// `f64::INFINITY` for device-pinned components.
    pub fn cloud_cost(&self, id: ComponentId) -> f64 {
        if !self.graph.component(id).is_offloadable() {
            return f64::INFINITY;
        }
        let t = self.params.cloud_speed.execution_time(self.demand(id));
        let money = self.params.cloud_money_per_sec.mul_f64(t.as_secs_f64())
            + self.params.money_per_request;
        self.params.weights.per_us * t.as_micros() as f64
            + self.params.weights.per_nano_usd * money.as_nano_usd() as f64
    }

    /// Cost of a boundary crossing moving `bytes`, in weighted units.
    pub fn transfer_cost(&self, bytes: DataSize) -> f64 {
        let t = self.params.link_latency + self.params.link_bandwidth.transfer_time(bytes);
        let e = self.params.device_tx_power.energy_over(t);
        self.params.weights.per_us * t.as_micros() as f64
            + self.params.weights.per_uj * (e.as_nanojoules() as f64 / 1e3)
    }

    /// Evaluates `plan` exactly under the additive objective, returning
    /// the full breakdown.
    ///
    /// # Panics
    ///
    /// Panics if `plan` does not cover the graph.
    pub fn evaluate(&self, plan: &PartitionPlan) -> PlanCost {
        assert_eq!(plan.len(), self.graph.len(), "plan must cover the graph");
        let mut device_time = SimDuration::ZERO;
        let mut cloud_time = SimDuration::ZERO;
        let mut transfer_time = SimDuration::ZERO;
        let mut money = Money::ZERO;
        let mut energy = Energy::ZERO;
        let mut bytes_moved = DataSize::ZERO;

        for id in self.graph.ids() {
            match plan.side(id) {
                Side::Device => {
                    let t = self.params.device_speed.execution_time(self.demand(id));
                    device_time += t;
                    energy += self.params.device_active_power.energy_over(t);
                }
                Side::Cloud => {
                    let t = self.params.cloud_speed.execution_time(self.demand(id));
                    cloud_time += t;
                    money += self.params.cloud_money_per_sec.mul_f64(t.as_secs_f64())
                        + self.params.money_per_request;
                }
            }
        }
        for flow in plan.cut_flows(self.graph) {
            let bytes = flow.payload_bytes(self.input);
            let t = self.params.link_latency + self.params.link_bandwidth.transfer_time(bytes);
            transfer_time += t;
            energy += self.params.device_tx_power.energy_over(t);
            bytes_moved += bytes;
        }

        let makespan = self.makespan(plan);
        let w = &self.params.weights;
        let weighted = w.per_us * (device_time + cloud_time + transfer_time).as_micros() as f64
            + w.per_nano_usd * money.as_nano_usd() as f64
            + w.per_uj * (energy.as_nanojoules() as f64 / 1e3);
        PlanCost {
            device_time,
            cloud_time,
            transfer_time,
            money,
            energy,
            bytes_moved,
            makespan,
            weighted,
        }
    }

    /// The critical-path completion time of one job under `plan`:
    /// components run on their assigned side, crossing flows pay the
    /// boundary transfer, and parallel branches overlap.
    ///
    /// # Panics
    ///
    /// Panics if `plan` does not cover the graph.
    pub fn makespan(&self, plan: &PartitionPlan) -> SimDuration {
        assert_eq!(plan.len(), self.graph.len(), "plan must cover the graph");
        let (len, _) = self.graph.critical_path(
            |id| match plan.side(id) {
                Side::Device => self.params.device_speed.execution_time(self.demand(id)),
                Side::Cloud => self.params.cloud_speed.execution_time(self.demand(id)),
            },
            |flow| {
                if plan.side(flow.from) == plan.side(flow.to) {
                    SimDuration::ZERO
                } else {
                    let bytes = flow.payload_bytes(self.input);
                    self.params.link_latency + self.params.link_bandwidth.transfer_time(bytes)
                }
            },
        );
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_taskgraph::{Component, LinearModel, Pinning, TaskGraphBuilder};

    fn graph() -> TaskGraph {
        let mut b = TaskGraphBuilder::new("g");
        let a = b.add_component(
            Component::new("capture")
                .with_pinning(Pinning::Device)
                .with_demand(LinearModel::constant(1e8)),
        );
        let w = b.add_component(Component::new("work").with_demand(LinearModel::constant(3e9)));
        b.add_flow(a, w, LinearModel::constant(1_000_000.0));
        b.build().unwrap()
    }

    #[test]
    fn evaluate_all_device_has_no_money_or_transfer() {
        let g = graph();
        let ctx = PartitionContext::new(&g, DataSize::ZERO, CostParams::default());
        let cost = ctx.evaluate(&PartitionPlan::all_device(&g));
        assert_eq!(cost.money, Money::ZERO);
        assert_eq!(cost.transfer_time, SimDuration::ZERO);
        assert_eq!(cost.bytes_moved, DataSize::ZERO);
        assert!(cost.device_time > SimDuration::ZERO);
        assert!(cost.energy > Energy::ZERO);
    }

    #[test]
    fn evaluate_offload_pays_transfer_and_money() {
        let g = graph();
        let ctx = PartitionContext::new(&g, DataSize::ZERO, CostParams::default());
        let cost = ctx.evaluate(&PartitionPlan::all_cloud(&g));
        assert!(cost.money > Money::ZERO);
        assert!(cost.transfer_time >= SimDuration::from_millis(40));
        assert_eq!(cost.bytes_moved, DataSize::from_bytes(1_000_000));
        // Cloud runs the heavy component faster than the device would.
        assert!(cost.cloud_time < SimDuration::from_secs(3));
    }

    #[test]
    fn weighted_matches_per_component_costs() {
        // The min-cut network uses device_cost/cloud_cost/transfer_cost; the
        // evaluator must agree with their sum.
        let g = graph();
        let ctx = PartitionContext::new(&g, DataSize::ZERO, CostParams::default());
        let plan = PartitionPlan::all_cloud(&g);
        let manual: f64 = g
            .ids()
            .map(|id| match plan.side(id) {
                Side::Device => ctx.device_cost(id),
                Side::Cloud => ctx.cloud_cost(id),
            })
            .sum::<f64>()
            + plan
                .cut_flows(&g)
                .map(|f| ctx.transfer_cost(f.payload_bytes(ctx.input())))
                .sum::<f64>();
        let evaluated = ctx.evaluate(&plan).weighted;
        let rel = (manual - evaluated).abs() / evaluated;
        assert!(rel < 1e-9, "manual={manual} evaluated={evaluated}");
    }

    #[test]
    fn pinned_component_has_infinite_cloud_cost() {
        let g = graph();
        let ctx = PartitionContext::new(&g, DataSize::ZERO, CostParams::default());
        assert!(ctx.cloud_cost(ComponentId::from_index(0)).is_infinite());
        assert!(ctx.cloud_cost(ComponentId::from_index(1)).is_finite());
    }

    #[test]
    fn with_demands_overrides_annotations() {
        let g = graph();
        let ctx = PartitionContext::new(&g, DataSize::ZERO, CostParams::default())
            .with_demands(vec![Cycles::from_mega(1), Cycles::from_mega(2)]);
        assert_eq!(ctx.demand(ComponentId::from_index(1)), Cycles::from_mega(2));
    }

    #[test]
    fn makespan_overlaps_parallel_branches() {
        // Diamond: a → {left, right} → join; same-side everywhere, so the
        // makespan is the longest branch, not the sum.
        let mut b = TaskGraphBuilder::new("diamond");
        let a = b.add_component(Component::new("a").with_demand(LinearModel::constant(1.5e9)));
        let l = b.add_component(Component::new("l").with_demand(LinearModel::constant(3e9)));
        let r = b.add_component(Component::new("r").with_demand(LinearModel::constant(6e9)));
        let j = b.add_component(Component::new("j").with_demand(LinearModel::constant(1.5e9)));
        b.add_flow(a, l, LinearModel::ZERO);
        b.add_flow(a, r, LinearModel::ZERO);
        b.add_flow(l, j, LinearModel::ZERO);
        b.add_flow(r, j, LinearModel::ZERO);
        let g = b.build().unwrap();
        let ctx = PartitionContext::new(&g, DataSize::ZERO, CostParams::default());
        let plan = PartitionPlan::all_device(&g);
        let cost = ctx.evaluate(&plan);
        // Device at 1.5 GHz: 1s + max(2s, 4s) + 1s = 6s.
        assert_eq!(cost.makespan, SimDuration::from_secs(6));
        // The additive total counts both branches: 8s.
        assert_eq!(cost.total_time(), SimDuration::from_secs(8));
        assert!(cost.makespan <= cost.total_time());
    }

    #[test]
    fn makespan_counts_crossing_transfers_once_per_edge() {
        let g = graph();
        let ctx = PartitionContext::new(&g, DataSize::ZERO, CostParams::default());
        let offload = PartitionPlan::all_cloud(&g);
        let local = PartitionPlan::all_device(&g);
        // Offloading the 3 Gcyc component: 40 ms latency + 1 MB transfer
        // beats 2 s of device execution even on the critical path.
        assert!(ctx.makespan(&offload) < ctx.makespan(&local));
    }

    #[test]
    fn time_only_weights_ignore_money() {
        let g = graph();
        let params = CostParams { weights: CostWeights::time_only(), ..Default::default() };
        let ctx = PartitionContext::new(&g, DataSize::ZERO, params);
        let cost = ctx.evaluate(&PartitionPlan::all_cloud(&g));
        assert!((cost.weighted - cost.total_time().as_micros() as f64).abs() < 1e-9);
    }
}
