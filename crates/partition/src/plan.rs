//! Partition plans: which side of the UE/cloud boundary each component
//! runs on.

use core::fmt;

use ntc_taskgraph::{ComponentId, DataFlow, TaskGraph};
use serde::{Deserialize, Serialize};

/// The execution side assigned to a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// Runs on the user equipment.
    Device,
    /// Offloaded to the cloud serverless platform.
    Cloud,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Side::Device => "device",
            Side::Cloud => "cloud",
        })
    }
}

/// Errors from validating a partition plan against a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The plan's length does not match the graph's component count.
    LengthMismatch {
        /// Number of assignments in the plan.
        plan: usize,
        /// Number of components in the graph.
        graph: usize,
    },
    /// A device-pinned component was assigned to the cloud.
    PinnedOffloaded(ComponentId),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::LengthMismatch { plan, graph } => {
                write!(f, "plan covers {plan} components but graph has {graph}")
            }
            PlanError::PinnedOffloaded(id) => {
                write!(f, "device-pinned component {id} assigned to cloud")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// An assignment of every component to a [`Side`].
///
/// # Examples
///
/// ```
/// use ntc_partition::plan::{PartitionPlan, Side};
/// use ntc_taskgraph::{TaskGraphBuilder, Component, LinearModel, Pinning};
///
/// let mut b = TaskGraphBuilder::new("app");
/// let ui = b.add_component(Component::new("ui").with_pinning(Pinning::Device));
/// let work = b.add_component(Component::new("work"));
/// b.add_flow(ui, work, LinearModel::constant(1024.0));
/// let g = b.build().unwrap();
///
/// let plan = PartitionPlan::new(vec![Side::Device, Side::Cloud]);
/// assert!(plan.validate(&g).is_ok());
/// assert_eq!(plan.offloaded().count(), 1);
/// assert_eq!(plan.cut_flows(&g).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PartitionPlan {
    assignment: Vec<Side>,
}

impl PartitionPlan {
    /// Creates a plan from a per-component assignment (indexed by
    /// component id).
    pub fn new(assignment: Vec<Side>) -> Self {
        PartitionPlan { assignment }
    }

    /// A plan keeping every component of `graph` on the device.
    pub fn all_device(graph: &TaskGraph) -> Self {
        PartitionPlan { assignment: vec![Side::Device; graph.len()] }
    }

    /// A plan offloading every *offloadable* component of `graph`
    /// (pinned components stay on the device).
    pub fn all_cloud(graph: &TaskGraph) -> Self {
        PartitionPlan {
            assignment: graph
                .components()
                .map(|(_, c)| if c.is_offloadable() { Side::Cloud } else { Side::Device })
                .collect(),
        }
    }

    /// The side of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the plan.
    pub fn side(&self, id: ComponentId) -> Side {
        self.assignment[id.index()]
    }

    /// The number of components covered.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the plan covers no components.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Ids assigned to the cloud, in id order.
    pub fn offloaded(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, s)| *s == Side::Cloud)
            .map(|(i, _)| ComponentId::from_index(i))
    }

    /// Ids kept on the device, in id order.
    pub fn on_device(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, s)| *s == Side::Device)
            .map(|(i, _)| ComponentId::from_index(i))
    }

    /// Flows of `graph` that cross the device/cloud boundary.
    pub fn cut_flows<'a>(
        &'a self,
        graph: &'a TaskGraph,
    ) -> impl Iterator<Item = &'a DataFlow> + 'a {
        graph.flows().iter().filter(move |f| self.side(f.from) != self.side(f.to))
    }

    /// Checks the plan against `graph`: length matches and no pinned
    /// component is offloaded.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] describing the first violation found.
    pub fn validate(&self, graph: &TaskGraph) -> Result<(), PlanError> {
        if self.assignment.len() != graph.len() {
            return Err(PlanError::LengthMismatch {
                plan: self.assignment.len(),
                graph: graph.len(),
            });
        }
        for (id, c) in graph.components() {
            if !c.is_offloadable() && self.side(id) == Side::Cloud {
                return Err(PlanError::PinnedOffloaded(id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_taskgraph::{Component, LinearModel, Pinning, TaskGraphBuilder};

    fn graph() -> TaskGraph {
        let mut b = TaskGraphBuilder::new("g");
        let a = b.add_component(Component::new("a").with_pinning(Pinning::Device));
        let c = b.add_component(Component::new("b"));
        let d = b.add_component(Component::new("c"));
        b.add_flow(a, c, LinearModel::constant(10.0));
        b.add_flow(c, d, LinearModel::constant(10.0));
        b.build().unwrap()
    }

    #[test]
    fn all_device_and_all_cloud_respect_pinning() {
        let g = graph();
        let dev = PartitionPlan::all_device(&g);
        assert_eq!(dev.offloaded().count(), 0);
        dev.validate(&g).unwrap();

        let cloud = PartitionPlan::all_cloud(&g);
        assert_eq!(cloud.offloaded().count(), 2);
        assert_eq!(cloud.side(ComponentId::from_index(0)), Side::Device);
        cloud.validate(&g).unwrap();
    }

    #[test]
    fn cut_flows_counts_boundary_crossings() {
        let g = graph();
        let plan = PartitionPlan::new(vec![Side::Device, Side::Cloud, Side::Device]);
        assert_eq!(plan.cut_flows(&g).count(), 2);
        let plan2 = PartitionPlan::new(vec![Side::Device, Side::Cloud, Side::Cloud]);
        assert_eq!(plan2.cut_flows(&g).count(), 1);
    }

    #[test]
    fn validation_catches_pinned_offload() {
        let g = graph();
        let bad = PartitionPlan::new(vec![Side::Cloud, Side::Device, Side::Device]);
        assert_eq!(
            bad.validate(&g).unwrap_err(),
            PlanError::PinnedOffloaded(ComponentId::from_index(0))
        );
    }

    #[test]
    fn validation_catches_length_mismatch() {
        let g = graph();
        let bad = PartitionPlan::new(vec![Side::Device]);
        assert!(matches!(bad.validate(&g).unwrap_err(), PlanError::LengthMismatch { .. }));
        assert!(bad.validate(&g).unwrap_err().to_string().contains("covers 1"));
    }

    #[test]
    fn side_display() {
        assert_eq!(Side::Device.to_string(), "device");
        assert_eq!(Side::Cloud.to_string(), "cloud");
    }
}
