//! Partitioning algorithms: naive baselines, greedy hill-climbing,
//! optimal min-cut, chain DP, and exhaustive search.

use core::fmt;

use ntc_taskgraph::{ComponentId, FlowNetwork};

use crate::context::PartitionContext;
use crate::plan::{PartitionPlan, Side};

/// An algorithm that assigns every component of a graph to a side.
///
/// Implementations must return plans that validate against the context's
/// graph (in particular: pinned components stay on the device).
pub trait Partitioner: fmt::Debug {
    /// Computes a partition plan for `ctx`.
    fn partition(&self, ctx: &PartitionContext<'_>) -> PartitionPlan;

    /// A short name for result tables.
    fn name(&self) -> &'static str;
}

/// Baseline: run everything on the device (no offloading).
#[derive(Debug, Clone, Copy, Default)]
pub struct KeepLocal;

impl Partitioner for KeepLocal {
    fn partition(&self, ctx: &PartitionContext<'_>) -> PartitionPlan {
        PartitionPlan::all_device(ctx.graph())
    }

    fn name(&self) -> &'static str {
        "keep-local"
    }
}

/// Baseline: offload every offloadable component.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullOffload;

impl Partitioner for FullOffload {
    fn partition(&self, ctx: &PartitionContext<'_>) -> PartitionPlan {
        PartitionPlan::all_cloud(ctx.graph())
    }

    fn name(&self) -> &'static str {
        "full-offload"
    }
}

/// Optimal partitioner for the additive objective, via s-t minimum cut.
///
/// Builds the standard offloading flow network: source = device, sink =
/// cloud; `cap(s→i)` is the cloud execution cost of `i` (paid when `i`
/// lands on the cloud side), `cap(i→t)` the device cost, and each data
/// flow contributes an undirected edge with the transfer cost. The minimum
/// cut is exactly the cheapest assignment. Costs are rounded to integer
/// weighted units (sub-unit error is negligible at microsecond scale).
#[derive(Debug, Clone, Copy, Default)]
pub struct MinCutPartitioner;

fn to_cap(cost: f64) -> u64 {
    if cost.is_infinite() {
        FlowNetwork::INF
    } else {
        (cost.round() as u64).min(FlowNetwork::INF - 1)
    }
}

impl Partitioner for MinCutPartitioner {
    fn partition(&self, ctx: &PartitionContext<'_>) -> PartitionPlan {
        let graph = ctx.graph();
        let n = graph.len();
        let source = n;
        let sink = n + 1;
        let mut net = FlowNetwork::new(n + 2);
        for id in graph.ids() {
            net.add_edge(source, id.index(), to_cap(ctx.cloud_cost(id)));
            net.add_edge(id.index(), sink, to_cap(ctx.device_cost(id)));
        }
        for flow in graph.flows() {
            let cost = ctx.transfer_cost(flow.payload_bytes(ctx.input()));
            net.add_bidirectional_edge(flow.from.index(), flow.to.index(), to_cap(cost));
        }
        net.max_flow(source, sink);
        let device_side = net.min_cut_source_side(source);
        PartitionPlan::new(
            (0..n).map(|i| if device_side[i] { Side::Device } else { Side::Cloud }).collect(),
        )
    }

    fn name(&self) -> &'static str {
        "min-cut"
    }
}

/// Greedy hill climbing: repeatedly flip the single component whose side
/// change most reduces the evaluated cost, until no flip helps.
///
/// Simple and decent, but can stop in a local optimum when the benefit of
/// moving a cluster of components only materialises once *all* of them
/// move (the case min-cut handles exactly).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyPartitioner;

impl Partitioner for GreedyPartitioner {
    fn partition(&self, ctx: &PartitionContext<'_>) -> PartitionPlan {
        let graph = ctx.graph();
        let mut sides: Vec<Side> = vec![Side::Device; graph.len()];
        let mut best = ctx.evaluate(&PartitionPlan::new(sides.clone())).weighted;
        loop {
            let mut best_flip: Option<(usize, f64)> = None;
            for (id, c) in graph.components() {
                if !c.is_offloadable() {
                    continue;
                }
                let i = id.index();
                sides[i] = flip(sides[i]);
                let cost = ctx.evaluate(&PartitionPlan::new(sides.clone())).weighted;
                sides[i] = flip(sides[i]);
                if cost < best && best_flip.is_none_or(|(_, c0)| cost < c0) {
                    best_flip = Some((i, cost));
                }
            }
            match best_flip {
                Some((i, cost)) => {
                    sides[i] = flip(sides[i]);
                    best = cost;
                }
                None => break,
            }
        }
        PartitionPlan::new(sides)
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

fn flip(s: Side) -> Side {
    match s {
        Side::Device => Side::Cloud,
        Side::Cloud => Side::Device,
    }
}

/// Exhaustive search over all assignments of offloadable components —
/// the ground-truth optimum for small graphs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustivePartitioner;

impl ExhaustivePartitioner {
    /// Largest number of offloadable components accepted (2^24 plans).
    pub const MAX_FREE_COMPONENTS: usize = 24;
}

impl Partitioner for ExhaustivePartitioner {
    /// # Panics
    ///
    /// Panics if the graph has more than
    /// [`ExhaustivePartitioner::MAX_FREE_COMPONENTS`] offloadable
    /// components.
    fn partition(&self, ctx: &PartitionContext<'_>) -> PartitionPlan {
        let graph = ctx.graph();
        let free: Vec<ComponentId> =
            graph.components().filter(|(_, c)| c.is_offloadable()).map(|(id, _)| id).collect();
        assert!(
            free.len() <= Self::MAX_FREE_COMPONENTS,
            "exhaustive search limited to {} offloadable components, got {}",
            Self::MAX_FREE_COMPONENTS,
            free.len()
        );
        let mut best_plan = PartitionPlan::all_device(graph);
        let mut best_cost = ctx.evaluate(&best_plan).weighted;
        for mask in 1u64..(1 << free.len()) {
            let mut sides = vec![Side::Device; graph.len()];
            for (bit, id) in free.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    sides[id.index()] = Side::Cloud;
                }
            }
            let plan = PartitionPlan::new(sides);
            let cost = ctx.evaluate(&plan).weighted;
            if cost < best_cost {
                best_cost = cost;
                best_plan = plan;
            }
        }
        best_plan
    }

    fn name(&self) -> &'static str {
        "optimal"
    }
}

/// Dynamic programming over a *chain* graph (each component has at most
/// one predecessor and one successor) — optimal in O(n) for pipelines.
/// Falls back to [`GreedyPartitioner`] on non-chain graphs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainDpPartitioner;

impl ChainDpPartitioner {
    /// Whether the DP applies to `ctx`'s graph.
    pub fn is_chain(ctx: &PartitionContext<'_>) -> bool {
        ctx.graph().ids().all(|id| {
            ctx.graph().successors(id).count() <= 1 && ctx.graph().predecessors(id).count() <= 1
        })
    }
}

impl Partitioner for ChainDpPartitioner {
    fn partition(&self, ctx: &PartitionContext<'_>) -> PartitionPlan {
        if !Self::is_chain(ctx) {
            return GreedyPartitioner.partition(ctx);
        }
        let graph = ctx.graph();
        let order = graph.topo_order();
        let n = order.len();
        // dp[side] = best cost of the prefix with the current node on `side`.
        let mut dp = [f64::INFINITY; 2]; // 0 = device, 1 = cloud
        let mut choices: Vec<[u8; 2]> = Vec::with_capacity(n);
        for (pos, &id) in order.iter().enumerate() {
            let exec = [ctx.device_cost(id), ctx.cloud_cost(id)];
            let cross = graph
                .flows_into(id)
                .next()
                .map(|f| ctx.transfer_cost(f.payload_bytes(ctx.input())))
                .unwrap_or(0.0);
            let mut next = [f64::INFINITY; 2];
            let mut choice = [0u8; 2];
            for side in 0..2 {
                if pos == 0 {
                    next[side] = exec[side];
                    continue;
                }
                for (prev, &dp_prev) in dp.iter().enumerate() {
                    let transfer = if prev == side { 0.0 } else { cross };
                    let c = dp_prev + transfer + exec[side];
                    if c < next[side] {
                        next[side] = c;
                        choice[side] = prev as u8;
                    }
                }
            }
            dp = next;
            choices.push(choice);
        }
        // Backtrack.
        let mut side = if dp[0] <= dp[1] { 0usize } else { 1 };
        let mut sides = vec![Side::Device; n];
        for pos in (0..n).rev() {
            sides[order[pos].index()] = if side == 0 { Side::Device } else { Side::Cloud };
            side = choices[pos][side] as usize;
        }
        PartitionPlan::new(sides)
    }

    fn name(&self) -> &'static str {
        "dp-chain"
    }
}

/// The standard roster of partitioners compared in Table 2.
pub fn standard_roster() -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(KeepLocal),
        Box::new(FullOffload),
        Box::new(GreedyPartitioner),
        Box::new(ChainDpPartitioner),
        Box::new(MinCutPartitioner),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CostParams;
    use ntc_simcore::rng::RngStream;
    use ntc_simcore::units::DataSize;
    use ntc_taskgraph::{
        random_layered_dag, Component, LinearModel, Pinning, RandomDagConfig, TaskGraph,
        TaskGraphBuilder,
    };

    fn chain(demands_mega: &[u64], payload_kib: u64) -> TaskGraph {
        let mut b = TaskGraphBuilder::new("chain");
        let ids: Vec<_> = demands_mega
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let mut c = Component::new(format!("c{i}"))
                    .with_demand(LinearModel::constant(d as f64 * 1e6));
                if i == 0 {
                    c = c.with_pinning(Pinning::Device);
                }
                b.add_component(c)
            })
            .collect();
        for w in ids.windows(2) {
            b.add_flow(w[0], w[1], LinearModel::constant(payload_kib as f64 * 1024.0));
        }
        b.build().unwrap()
    }

    fn ctx(graph: &TaskGraph) -> PartitionContext<'_> {
        PartitionContext::new(graph, DataSize::from_kib(100), CostParams::default())
    }

    #[test]
    fn heavy_compute_gets_offloaded() {
        // 20 Gcyc of work, tiny payloads: cloud wins decisively.
        let g = chain(&[10, 20_000, 20_000, 10], 4);
        let c = ctx(&g);
        let plan = MinCutPartitioner.partition(&c);
        plan.validate(&g).unwrap();
        assert!(plan.offloaded().count() >= 2, "heavy middle should be offloaded: {plan:?}");
    }

    #[test]
    fn huge_payloads_stay_local() {
        // Light compute, 500 MiB boundary payloads: offloading never pays.
        let g = chain(&[10, 50, 50, 10], 512 * 1024);
        let c = ctx(&g);
        let plan = MinCutPartitioner.partition(&c);
        assert_eq!(plan.offloaded().count(), 0, "nothing should be offloaded: {plan:?}");
    }

    #[test]
    fn min_cut_matches_exhaustive_on_random_graphs() {
        for seed in 0..20 {
            let mut rng = RngStream::root(seed).derive("t2");
            let cfg = RandomDagConfig { nodes: 9, layers: 3, ..Default::default() };
            let g = random_layered_dag(&mut rng, &cfg);
            let c = ctx(&g);
            let mc = c.evaluate(&MinCutPartitioner.partition(&c)).weighted;
            let opt = c.evaluate(&ExhaustivePartitioner.partition(&c)).weighted;
            let rel = (mc - opt).abs() / opt.max(1.0);
            assert!(rel < 1e-6, "seed {seed}: min-cut {mc} vs optimal {opt}");
        }
    }

    #[test]
    fn greedy_never_beats_optimal_and_all_plans_validate() {
        for seed in 0..20 {
            let mut rng = RngStream::root(seed).derive("roster");
            let cfg = RandomDagConfig { nodes: 10, layers: 4, ..Default::default() };
            let g = random_layered_dag(&mut rng, &cfg);
            let c = ctx(&g);
            let opt = c.evaluate(&ExhaustivePartitioner.partition(&c)).weighted;
            for p in standard_roster() {
                let plan = p.partition(&c);
                plan.validate(&g)
                    .unwrap_or_else(|e| panic!("{} produced invalid plan: {e}", p.name()));
                let cost = c.evaluate(&plan).weighted;
                assert!(cost >= opt - 1e-6, "{} beat the optimum?! {cost} < {opt}", p.name());
            }
        }
    }

    #[test]
    fn chain_dp_is_optimal_on_chains() {
        for seed in 0..10u64 {
            let mut rng = RngStream::root(seed).derive("chain");
            let demands: Vec<u64> = (0..7).map(|_| rng.uniform_range(1, 5000)).collect();
            let payload = rng.uniform_range(1, 2000);
            let g = chain(&demands, payload);
            let c = ctx(&g);
            let dp_plan = ChainDpPartitioner.partition(&c);
            assert!(ChainDpPartitioner::is_chain(&c));
            dp_plan.validate(&g).unwrap();
            let dp = c.evaluate(&dp_plan).weighted;
            let opt = c.evaluate(&ExhaustivePartitioner.partition(&c)).weighted;
            assert!((dp - opt).abs() / opt.max(1.0) < 1e-9, "seed {seed}: dp {dp} vs opt {opt}");
        }
    }

    #[test]
    fn chain_dp_falls_back_on_dags() {
        let mut rng = RngStream::root(5).derive("dag");
        let g = random_layered_dag(&mut rng, &RandomDagConfig::default());
        let c = ctx(&g);
        if !ChainDpPartitioner::is_chain(&c) {
            let plan = ChainDpPartitioner.partition(&c);
            assert_eq!(plan, GreedyPartitioner.partition(&c));
        }
    }

    #[test]
    fn pinned_components_never_move() {
        let mut b = TaskGraphBuilder::new("pins");
        let a = b.add_component(
            Component::new("a")
                .with_pinning(Pinning::Device)
                .with_demand(LinearModel::constant(1e12)),
        );
        let w = b.add_component(Component::new("w").with_demand(LinearModel::constant(1e12)));
        b.add_flow(a, w, LinearModel::ZERO);
        let g = b.build().unwrap();
        let c = ctx(&g);
        for p in standard_roster() {
            let plan = p.partition(&c);
            assert_eq!(plan.side(a), Side::Device, "{} moved a pinned component", p.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<_> = standard_roster().iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
