//! # ntc-partition
//!
//! Code partitioning (contribution **C3** of *Computational Offloading for
//! Non-Time-Critical Applications*, ICDCS 2022): decide which components
//! of an application stay on the user equipment and which are offloaded to
//! cloud serverless functions.
//!
//! * [`plan`] — [`PartitionPlan`]: per-component [`plan::Side`]
//!   assignments with validation against pinning constraints.
//! * [`context`] — the additive cost objective ([`PartitionContext`],
//!   [`context::CostWeights`]) folding time, money and UE energy into one
//!   scalar, and exact plan evaluation.
//! * [`algorithms`] — the [`Partitioner`] roster: keep-local,
//!   full-offload, greedy hill-climbing, chain DP, exhaustive optimum, and
//!   the provably optimal [`algorithms::MinCutPartitioner`].
//!
//! # Examples
//!
//! ```
//! use ntc_partition::{CostParams, MinCutPartitioner, PartitionContext, Partitioner};
//! use ntc_simcore::units::DataSize;
//! use ntc_taskgraph::{TaskGraphBuilder, Component, LinearModel, Pinning};
//!
//! let mut b = TaskGraphBuilder::new("app");
//! let cam = b.add_component(Component::new("camera").with_pinning(Pinning::Device));
//! let heavy = b.add_component(Component::new("enhance").with_demand(LinearModel::constant(2e10)));
//! b.add_flow(cam, heavy, LinearModel::constant(200_000.0));
//! let g = b.build().unwrap();
//!
//! let ctx = PartitionContext::new(&g, DataSize::from_mib(2), CostParams::default());
//! let plan = MinCutPartitioner.partition(&ctx);
//! assert_eq!(plan.offloaded().count(), 1); // the heavy component moves
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod context;
pub mod plan;

pub use algorithms::{
    standard_roster, ChainDpPartitioner, ExhaustivePartitioner, FullOffload, GreedyPartitioner,
    KeepLocal, MinCutPartitioner, Partitioner,
};
pub use context::{CostParams, CostWeights, PartitionContext, PlanCost};
pub use plan::{PartitionPlan, PlanError, Side};
