//! Function definitions and the memory-size → CPU-share model.

use core::fmt;

use ntc_simcore::units::{ClockSpeed, DataSize, SimDuration};
use serde::{Deserialize, Serialize};

/// Identifier of a function registered on a
/// [`crate::platform::ServerlessPlatform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FunctionId(pub(crate) u32);

impl FunctionId {
    /// The dense index of this function.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// Deployment configuration of one serverless function.
///
/// # Examples
///
/// ```
/// use ntc_serverless::function::FunctionConfig;
/// use ntc_simcore::units::{DataSize, SimDuration};
///
/// let f = FunctionConfig::new("thumbnailer", DataSize::from_mib(512))
///     .with_timeout(SimDuration::from_mins(5))
///     .with_concurrency_limit(100);
/// assert_eq!(f.memory(), DataSize::from_mib(512));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionConfig {
    name: String,
    memory: DataSize,
    timeout: SimDuration,
    concurrency_limit: u32,
    artifact_size: DataSize,
}

impl FunctionConfig {
    /// Creates a function with the given memory size, a 15-minute timeout,
    /// a concurrency limit of 1000, and a 10 MiB artifact.
    pub fn new(name: impl Into<String>, memory: DataSize) -> Self {
        FunctionConfig {
            name: name.into(),
            memory,
            timeout: SimDuration::from_mins(15),
            concurrency_limit: 1000,
            artifact_size: DataSize::from_mib(10),
        }
    }

    /// Sets the invocation timeout.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the per-function concurrency limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn with_concurrency_limit(mut self, limit: u32) -> Self {
        assert!(limit > 0, "concurrency limit must be positive");
        self.concurrency_limit = limit;
        self
    }

    /// Sets the deployment-artifact size (affects cold-start time).
    pub fn with_artifact_size(mut self, size: DataSize) -> Self {
        self.artifact_size = size;
        self
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured memory size.
    pub fn memory(&self) -> DataSize {
        self.memory
    }

    /// The invocation timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// The per-function concurrency limit.
    pub fn concurrency_limit(&self) -> u32 {
        self.concurrency_limit
    }

    /// The deployment-artifact size.
    pub fn artifact_size(&self) -> DataSize {
        self.artifact_size
    }
}

/// The memory → CPU model of the platform: CPU share grows linearly with
/// configured memory up to `full_speed_memory` (one full vCPU), then keeps
/// growing sub-linearly up to `max_speed_factor` (multi-vCPU functions only
/// help partially parallel code).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuScaling {
    /// Clock speed of one full vCPU.
    pub base_clock: ClockSpeed,
    /// Memory size at which one full vCPU is granted (Lambda: 1769 MB).
    pub full_speed_memory: DataSize,
    /// Cap on the speed multiple from extra memory (models limited
    /// parallelism above one vCPU).
    pub max_speed_factor: f64,
    /// Fraction of above-one-vCPU capacity that actually speeds the
    /// function up (Amdahl-style efficiency in `(0, 1]`).
    pub parallel_efficiency: f64,
}

impl CpuScaling {
    /// A Lambda-like scaling: 2.5 GHz vCPU, full speed at 1769 MB, up to
    /// 2.5× with 60 % parallel efficiency above one vCPU.
    pub fn lambda_like() -> Self {
        CpuScaling {
            base_clock: ClockSpeed::from_ghz_tenths(25),
            full_speed_memory: DataSize::from_bytes(1769 * 1024 * 1024),
            max_speed_factor: 2.5,
            parallel_efficiency: 0.6,
        }
    }

    /// The effective clock speed granted to a function with `memory`
    /// configured.
    pub fn effective_speed(&self, memory: DataSize) -> ClockSpeed {
        let ratio = memory.as_bytes() as f64 / self.full_speed_memory.as_bytes() as f64;
        let factor = if ratio <= 1.0 {
            ratio
        } else {
            (1.0 + (ratio - 1.0) * self.parallel_efficiency).min(self.max_speed_factor)
        };
        self.base_clock.mul_f64(factor.max(1e-3))
    }
}

impl Default for CpuScaling {
    fn default() -> Self {
        Self::lambda_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_simcore::units::Cycles;

    #[test]
    fn config_builder_sets_fields() {
        let f = FunctionConfig::new("f", DataSize::from_mib(256))
            .with_timeout(SimDuration::from_secs(30))
            .with_concurrency_limit(5)
            .with_artifact_size(DataSize::from_mib(50));
        assert_eq!(f.name(), "f");
        assert_eq!(f.timeout(), SimDuration::from_secs(30));
        assert_eq!(f.concurrency_limit(), 5);
        assert_eq!(f.artifact_size(), DataSize::from_mib(50));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_concurrency_panics() {
        let _ = FunctionConfig::new("f", DataSize::from_mib(128)).with_concurrency_limit(0);
    }

    #[test]
    fn speed_scales_linearly_below_full() {
        let s = CpuScaling::lambda_like();
        let half = s.effective_speed(DataSize::from_bytes(1769 * 1024 * 1024 / 2));
        let full = s.effective_speed(DataSize::from_bytes(1769 * 1024 * 1024));
        assert!((half.as_hz() as f64 * 2.0 - full.as_hz() as f64).abs() < 2.0);
        assert_eq!(full, s.base_clock);
    }

    #[test]
    fn speed_saturates_above_full() {
        let s = CpuScaling::lambda_like();
        let at_4x = s.effective_speed(DataSize::from_bytes(4 * 1769 * 1024 * 1024));
        let at_8x = s.effective_speed(DataSize::from_bytes(8 * 1769 * 1024 * 1024));
        assert!(at_4x > s.base_clock);
        // Both above the max factor cap → equal.
        assert_eq!(at_8x, s.base_clock.mul_f64(2.5));
        assert!(at_4x <= at_8x);
    }

    #[test]
    fn tiny_memory_still_executes() {
        let s = CpuScaling::lambda_like();
        let slow = s.effective_speed(DataSize::from_mib(128));
        assert!(slow.as_hz() > 0);
        // 128 MB gets ~7% of a vCPU: a 1 Gcyc job takes ~5.5 s.
        let t = slow.execution_time(Cycles::from_giga(1));
        assert!(t.as_secs() >= 5 && t.as_secs() <= 7, "t={t}");
    }

    #[test]
    fn execution_time_decreases_with_memory() {
        let s = CpuScaling::lambda_like();
        let work = Cycles::from_giga(10);
        let mut prev = SimDuration::MAX;
        for mib in [128u64, 256, 512, 1024, 1769, 3072, 6144] {
            let t = s.effective_speed(DataSize::from_mib(mib)).execution_time(work);
            assert!(t <= prev, "{mib} MiB should not be slower than smaller size");
            prev = t;
        }
    }
}
