//! # ntc-serverless
//!
//! Cloud FaaS platform simulator for the `ntc-offload` framework — the
//! "seemingly endless computational capacity in the cloud" that
//! *Computational Offloading for Non-Time-Critical Applications*
//! (ICDCS 2022) allocates instead of edge infrastructure.
//!
//! * [`function`] — function configs and the memory → CPU-share model.
//! * [`billing`] — pay-per-request + GB-second billing.
//! * [`coldstart`] — cold-start durations and keep-alive policies.
//! * [`platform`] — the sequential-invocation platform simulator with
//!   instance lifecycle, scale-out, queueing and provisioned capacity.
//!
//! # Examples
//!
//! ```
//! use ntc_serverless::{FunctionConfig, PlatformConfig, ServerlessPlatform};
//! use ntc_simcore::rng::RngStream;
//! use ntc_simcore::units::{Cycles, DataSize, SimTime};
//!
//! let mut cloud = ServerlessPlatform::new(PlatformConfig::default(), RngStream::root(7));
//! let f = cloud.register(FunctionConfig::new("render", DataSize::from_mib(2048)));
//! let out = cloud.invoke(SimTime::ZERO, f, Cycles::from_giga(5))?;
//! println!("finished at {} for {}", out.finish, out.cost);
//! # Ok::<(), ntc_serverless::InvokeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod billing;
pub mod coldstart;
pub mod function;
pub mod platform;

pub use billing::BillingModel;
pub use coldstart::{ColdStartModel, KeepAlive};
pub use function::{CpuScaling, FunctionConfig, FunctionId};
pub use platform::{
    FunctionStats, InvocationOutcome, InvokeError, PlatformConfig, ServerlessPlatform,
};
