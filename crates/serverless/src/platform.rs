//! The serverless (FaaS) platform simulator.
//!
//! The platform is driven *sequentially*: invocations are submitted in
//! non-decreasing time order (the natural order produced by the offloading
//! engine's event loop) and each returns a fully resolved
//! [`InvocationOutcome`] — queueing delay, cold start, execution time,
//! and cost. Instance lifecycle (cold start, warm reuse, keep-alive
//! reaping, provisioned capacity) is tracked per function.

use core::fmt;

use ntc_simcore::metrics::Histogram;
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{Cycles, Money, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::billing::BillingModel;
use crate::coldstart::{ColdStartModel, KeepAlive};
use crate::function::{CpuScaling, FunctionConfig, FunctionId};

/// Platform-wide configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Memory → CPU scaling model.
    pub cpu: CpuScaling,
    /// Billing schedule.
    pub billing: BillingModel,
    /// Cold-start model.
    pub cold_start: ColdStartModel,
    /// Idle-instance keep-alive policy.
    pub keep_alive: KeepAlive,
    /// Region-wide cap on concurrently existing instances.
    pub region_concurrency: u32,
    /// Instances the region may create instantly (Lambda-style burst
    /// allowance).
    pub scale_burst: u32,
    /// Additional instance creations granted per minute after the burst
    /// is spent.
    pub scale_per_minute: u32,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            cpu: CpuScaling::lambda_like(),
            billing: BillingModel::aws_like(),
            cold_start: ColdStartModel::lambda_like(),
            keep_alive: KeepAlive::default(),
            region_concurrency: u32::MAX,
            scale_burst: 3_000,
            scale_per_minute: 500,
        }
    }
}

/// Errors from submitting an invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvokeError {
    /// The function id is not registered.
    UnknownFunction(FunctionId),
    /// Invocations must be submitted in non-decreasing time order.
    OutOfOrder {
        /// The time the caller submitted.
        submitted: SimTime,
        /// The platform's latest accepted time.
        latest: SimTime,
    },
    /// The region has no capacity and no instance will ever free up.
    CapacityExhausted,
}

impl fmt::Display for InvokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvokeError::UnknownFunction(id) => write!(f, "unknown function {id}"),
            InvokeError::OutOfOrder { submitted, latest } => {
                write!(f, "invocation at {submitted} precedes already-processed {latest}")
            }
            InvokeError::CapacityExhausted => {
                write!(f, "region concurrency exhausted with no queue target")
            }
        }
    }
}

impl std::error::Error for InvokeError {}

/// The fully resolved result of one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvocationOutcome {
    /// When the invocation was submitted.
    pub submitted: SimTime,
    /// Time spent waiting for an instance (concurrency limit reached).
    pub queue_wait: SimDuration,
    /// Cold-start delay, zero when served warm.
    pub cold_start: SimDuration,
    /// Execution duration (possibly truncated by the timeout).
    pub exec: SimDuration,
    /// When the result is available.
    pub finish: SimTime,
    /// What this invocation was billed.
    pub cost: Money,
    /// Whether a new instance had to be started.
    pub was_cold: bool,
    /// Whether execution hit the function timeout (result unusable).
    pub timed_out: bool,
}

impl InvocationOutcome {
    /// Total latency from submission to result.
    pub fn latency(&self) -> SimDuration {
        self.finish - self.submitted
    }
}

#[derive(Debug, Clone)]
struct Instance {
    busy_until: SimTime,
    provisioned: bool,
}

#[derive(Debug)]
struct FunctionState {
    config: FunctionConfig,
    instances: Vec<Instance>,
    provisioned_target: u32,
    provisioned_accrue_from: SimTime,
    stats: FunctionStats,
}

/// Per-function counters and cost accumulated so far.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FunctionStats {
    /// Completed invocations.
    pub invocations: u64,
    /// Invocations that required a new instance.
    pub cold_starts: u64,
    /// Invocations served by a warm instance.
    pub warm_starts: u64,
    /// Invocations that had to wait for capacity.
    pub queued: u64,
    /// Invocations that hit the timeout.
    pub timeouts: u64,
    /// On-demand invocation cost.
    pub invocation_cost: Money,
    /// Cost of held provisioned capacity.
    pub provisioned_cost: Money,
    /// Latency distribution (µs).
    pub latency: Histogram,
    /// Queue-wait distribution (µs).
    pub queue_wait: Histogram,
}

impl FunctionStats {
    /// Total cost attributed to this function.
    pub fn total_cost(&self) -> Money {
        self.invocation_cost + self.provisioned_cost
    }
}

/// A simulated serverless platform (one cloud region).
///
/// # Examples
///
/// ```
/// use ntc_serverless::{FunctionConfig, PlatformConfig, ServerlessPlatform};
/// use ntc_simcore::rng::RngStream;
/// use ntc_simcore::units::{Cycles, DataSize, SimTime};
///
/// let mut platform = ServerlessPlatform::new(PlatformConfig::default(), RngStream::root(1));
/// let f = platform.register(FunctionConfig::new("resize", DataSize::from_mib(1024)));
/// let out = platform.invoke(SimTime::ZERO, f, Cycles::from_giga(1)).unwrap();
/// assert!(out.was_cold);
/// let again = platform.invoke(out.finish, f, Cycles::from_giga(1)).unwrap();
/// assert!(!again.was_cold); // warm reuse
/// ```
#[derive(Debug)]
pub struct ServerlessPlatform {
    config: PlatformConfig,
    functions: Vec<FunctionState>,
    rng: RngStream,
    latest: SimTime,
    // Scale-out budget: a token bucket refilled at `scale_per_minute`,
    // capped at `scale_burst`.
    scale_tokens: f64,
    scale_refill_from: SimTime,
}

impl ServerlessPlatform {
    /// Creates a platform with the given configuration and randomness.
    pub fn new(config: PlatformConfig, rng: RngStream) -> Self {
        let scale_tokens = f64::from(config.scale_burst);
        ServerlessPlatform {
            config,
            functions: Vec::new(),
            rng: rng.derive("serverless"),
            latest: SimTime::ZERO,
            scale_tokens,
            scale_refill_from: SimTime::ZERO,
        }
    }

    fn refill_scale_tokens(&mut self, now: SimTime) {
        let elapsed = now.saturating_duration_since(self.scale_refill_from);
        self.scale_tokens = (self.scale_tokens
            + f64::from(self.config.scale_per_minute) * elapsed.as_secs_f64() / 60.0)
            .min(f64::from(self.config.scale_burst));
        self.scale_refill_from = now;
    }

    /// The currently available instant scale-out allowance.
    pub fn scale_tokens(&self) -> f64 {
        self.scale_tokens
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Registers a function, returning its id.
    pub fn register(&mut self, config: FunctionConfig) -> FunctionId {
        let id = FunctionId(u32::try_from(self.functions.len()).expect("too many functions"));
        self.functions.push(FunctionState {
            config,
            instances: Vec::new(),
            provisioned_target: 0,
            provisioned_accrue_from: SimTime::ZERO,
            stats: FunctionStats::default(),
        });
        id
    }

    /// The registered configuration of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`ServerlessPlatform::register`].
    pub fn function(&self, id: FunctionId) -> &FunctionConfig {
        &self.functions[id.index()].config
    }

    /// Accumulated statistics of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`ServerlessPlatform::register`].
    pub fn stats(&self, id: FunctionId) -> &FunctionStats {
        &self.functions[id.index()].stats
    }

    /// Total cost across all functions, with provisioned capacity accrued
    /// up to `until`.
    pub fn total_cost(&mut self, until: SimTime) -> Money {
        for i in 0..self.functions.len() {
            self.accrue_provisioned(FunctionId(i as u32), until);
        }
        self.functions.iter().map(|f| f.stats.total_cost()).sum()
    }

    /// Sets the number of always-warm provisioned instances for `id`,
    /// effective at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn set_provisioned(&mut self, at: SimTime, id: FunctionId, count: u32) {
        self.accrue_provisioned(id, at);
        let state = &mut self.functions[id.index()];
        state.provisioned_target = count;
        let current = state.instances.iter().filter(|i| i.provisioned).count() as u32;
        if count > current {
            for _ in current..count {
                state.instances.push(Instance { busy_until: at, provisioned: true });
            }
        } else {
            let mut to_remove = (current - count) as usize;
            state.instances.retain(|i| {
                if i.provisioned && to_remove > 0 {
                    to_remove -= 1;
                    false
                } else {
                    true
                }
            });
        }
    }

    fn accrue_provisioned(&mut self, id: FunctionId, until: SimTime) {
        let state = &mut self.functions[id.index()];
        if state.provisioned_target > 0 && until > state.provisioned_accrue_from {
            let held = until - state.provisioned_accrue_from;
            let per = self.config.billing.provisioned_cost(state.config.memory(), held);
            state.stats.provisioned_cost += per.mul_f64(f64::from(state.provisioned_target));
        }
        state.provisioned_accrue_from = state.provisioned_accrue_from.max(until);
    }

    /// The number of live instances (warm or busy) of `id` as of the last
    /// invocation processed.
    pub fn live_instances(&self, id: FunctionId) -> usize {
        self.functions[id.index()].instances.len()
    }

    fn region_instances(&self) -> usize {
        self.functions.iter().map(|f| f.instances.len()).sum()
    }

    /// Submits an invocation of `id` at time `at` needing `work` cycles.
    ///
    /// Invocations must be submitted in non-decreasing `at` order.
    ///
    /// # Errors
    ///
    /// Returns [`InvokeError`] if the function is unknown, `at` precedes an
    /// already processed invocation, or region capacity is exhausted with
    /// nothing to queue on.
    pub fn invoke(
        &mut self,
        at: SimTime,
        id: FunctionId,
        work: Cycles,
    ) -> Result<InvocationOutcome, InvokeError> {
        if id.index() >= self.functions.len() {
            return Err(InvokeError::UnknownFunction(id));
        }
        if at < self.latest {
            return Err(InvokeError::OutOfOrder { submitted: at, latest: self.latest });
        }
        self.latest = at;
        let ttl = self.config.keep_alive.idle_ttl();

        // Reap idle instances whose keep-alive lapsed before `at`.
        self.functions[id.index()].instances.retain(|i| i.provisioned || i.busy_until + ttl >= at);

        let (memory, timeout, concurrency_limit, artifact) = {
            let c = &self.functions[id.index()].config;
            (c.memory(), c.timeout(), c.concurrency_limit(), c.artifact_size())
        };
        let speed = self.config.cpu.effective_speed(memory);
        let raw_exec = speed.execution_time(work);
        let timed_out = raw_exec > timeout;
        let exec = if timed_out { timeout } else { raw_exec };

        // 1. Warm instance available?
        let warm = self.functions[id.index()]
            .instances
            .iter()
            .enumerate()
            .filter(|(_, i)| i.busy_until <= at)
            .min_by_key(|&(_, i)| i.busy_until)
            .map(|(idx, _)| idx);
        let live = self.functions[id.index()].instances.len();
        let region_live = self.region_instances();

        let (start, cold_start, queue_wait, was_cold, instance_idx) = if let Some(idx) = warm {
            (at, SimDuration::ZERO, SimDuration::ZERO, false, idx)
        } else if (live as u32) < concurrency_limit
            && region_live < self.config.region_concurrency as usize
            && {
                self.refill_scale_tokens(at);
                self.scale_tokens >= 1.0
            }
        {
            // 2. Scale out with a cold start, spending a scale token.
            self.scale_tokens -= 1.0;
            let delay = self.config.cold_start.sample(artifact, &mut self.rng);
            let state = &mut self.functions[id.index()];
            state.instances.push(Instance { busy_until: at, provisioned: false });
            (at + delay, delay, SimDuration::ZERO, true, state.instances.len() - 1)
        } else {
            // 3. Queue on the earliest-free instance.
            let candidate = self.functions[id.index()]
                .instances
                .iter()
                .enumerate()
                .min_by_key(|&(_, i)| i.busy_until)
                .map(|(idx, i)| (idx, i.busy_until));
            match candidate {
                Some((idx, free_at)) => (free_at, SimDuration::ZERO, free_at - at, false, idx),
                None => return Err(InvokeError::CapacityExhausted),
            }
        };

        let state = &mut self.functions[id.index()];
        let finish = start + exec;
        state.instances[instance_idx].busy_until = finish;

        let cost = self.config.billing.invocation_cost(state.config.memory(), exec);
        let outcome = InvocationOutcome {
            submitted: at,
            queue_wait,
            cold_start,
            exec,
            finish,
            cost,
            was_cold,
            timed_out,
        };

        let stats = &mut state.stats;
        stats.invocations += 1;
        if was_cold {
            stats.cold_starts += 1;
        } else {
            stats.warm_starts += 1;
        }
        if !queue_wait.is_zero() {
            stats.queued += 1;
        }
        if timed_out {
            stats.timeouts += 1;
        }
        stats.invocation_cost += cost;
        stats.latency.record_duration(outcome.latency());
        stats.queue_wait.record_duration(queue_wait);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_simcore::units::DataSize;

    fn platform() -> ServerlessPlatform {
        ServerlessPlatform::new(PlatformConfig::default(), RngStream::root(42))
    }

    fn no_jitter_platform() -> ServerlessPlatform {
        let mut cfg = PlatformConfig::default();
        cfg.cold_start.jitter_sigma = 0.0;
        ServerlessPlatform::new(cfg, RngStream::root(42))
    }

    #[test]
    fn first_call_is_cold_second_is_warm() {
        let mut p = platform();
        let f = p.register(FunctionConfig::new("f", DataSize::from_mib(1024)));
        let a = p.invoke(SimTime::ZERO, f, Cycles::from_giga(1)).unwrap();
        assert!(a.was_cold && !a.cold_start.is_zero());
        let b = p.invoke(a.finish, f, Cycles::from_giga(1)).unwrap();
        assert!(!b.was_cold && b.cold_start.is_zero());
        assert_eq!(p.stats(f).cold_starts, 1);
        assert_eq!(p.stats(f).warm_starts, 1);
        assert_eq!(p.live_instances(f), 1);
    }

    #[test]
    fn keep_alive_expiry_forces_cold_start() {
        let mut p = no_jitter_platform();
        let f = p.register(FunctionConfig::new("f", DataSize::from_mib(1024)));
        let a = p.invoke(SimTime::ZERO, f, Cycles::from_mega(100)).unwrap();
        // Past the 10-minute keep-alive: cold again.
        let later = a.finish + SimDuration::from_mins(11);
        let b = p.invoke(later, f, Cycles::from_mega(100)).unwrap();
        assert!(b.was_cold);
        assert_eq!(p.live_instances(f), 1, "expired instance was reaped");
    }

    #[test]
    fn concurrent_arrivals_scale_out() {
        let mut p = platform();
        let f = p.register(FunctionConfig::new("f", DataSize::from_mib(1024)));
        for _ in 0..5 {
            let out = p.invoke(SimTime::ZERO, f, Cycles::from_giga(10)).unwrap();
            assert!(out.was_cold);
        }
        assert_eq!(p.live_instances(f), 5);
        assert_eq!(p.stats(f).cold_starts, 5);
    }

    #[test]
    fn concurrency_limit_queues() {
        let mut p = no_jitter_platform();
        let f = p
            .register(FunctionConfig::new("f", DataSize::from_mib(1769)).with_concurrency_limit(2));
        let a = p.invoke(SimTime::ZERO, f, Cycles::from_giga(25)).unwrap(); // 10 s at 2.5 GHz
        let _b = p.invoke(SimTime::ZERO, f, Cycles::from_giga(25)).unwrap();
        let c = p.invoke(SimTime::from_secs(1), f, Cycles::from_giga(25)).unwrap();
        assert!(!c.queue_wait.is_zero(), "third call should queue");
        assert!(c.finish > a.finish);
        assert_eq!(p.live_instances(f), 2);
        assert_eq!(p.stats(f).queued, 1);
    }

    #[test]
    fn timeout_truncates_and_flags() {
        let mut p = platform();
        let f = p.register(
            FunctionConfig::new("f", DataSize::from_mib(1769))
                .with_timeout(SimDuration::from_secs(1)),
        );
        // 25 Gcyc at 2.5 GHz = 10 s > 1 s timeout.
        let out = p.invoke(SimTime::ZERO, f, Cycles::from_giga(25)).unwrap();
        assert!(out.timed_out);
        assert_eq!(out.exec, SimDuration::from_secs(1));
        assert_eq!(p.stats(f).timeouts, 1);
    }

    #[test]
    fn out_of_order_submission_is_rejected() {
        let mut p = platform();
        let f = p.register(FunctionConfig::new("f", DataSize::from_mib(128)));
        p.invoke(SimTime::from_secs(10), f, Cycles::from_mega(1)).unwrap();
        let err = p.invoke(SimTime::from_secs(5), f, Cycles::from_mega(1)).unwrap_err();
        assert!(matches!(err, InvokeError::OutOfOrder { .. }));
    }

    #[test]
    fn unknown_function_is_rejected() {
        let mut p = platform();
        let err = p.invoke(SimTime::ZERO, FunctionId(7), Cycles::from_mega(1)).unwrap_err();
        assert_eq!(err, InvokeError::UnknownFunction(FunctionId(7)));
        assert!(err.to_string().contains("unknown function"));
    }

    #[test]
    fn provisioned_instances_avoid_cold_starts_and_cost_money() {
        let mut p = platform();
        let f = p.register(FunctionConfig::new("f", DataSize::from_mib(1024)));
        p.set_provisioned(SimTime::ZERO, f, 2);
        let out = p.invoke(SimTime::from_secs(1), f, Cycles::from_giga(1)).unwrap();
        assert!(!out.was_cold, "provisioned instance serves warm");
        let cost = p.total_cost(SimTime::from_secs(3600));
        assert!(cost > out.cost, "idle provisioned capacity accrues cost");
        let stats = p.stats(f);
        assert!(stats.provisioned_cost > Money::ZERO);
    }

    #[test]
    fn set_provisioned_down_removes_instances() {
        let mut p = platform();
        let f = p.register(FunctionConfig::new("f", DataSize::from_mib(512)));
        p.set_provisioned(SimTime::ZERO, f, 3);
        assert_eq!(p.live_instances(f), 3);
        p.set_provisioned(SimTime::from_secs(60), f, 1);
        assert_eq!(p.live_instances(f), 1);
    }

    #[test]
    fn region_concurrency_caps_scale_out() {
        let mut cfg = PlatformConfig { region_concurrency: 2, ..Default::default() };
        cfg.cold_start.jitter_sigma = 0.0;
        let mut p = ServerlessPlatform::new(cfg, RngStream::root(1));
        let f = p.register(FunctionConfig::new("f", DataSize::from_mib(1769)));
        p.invoke(SimTime::ZERO, f, Cycles::from_giga(25)).unwrap();
        p.invoke(SimTime::ZERO, f, Cycles::from_giga(25)).unwrap();
        let third = p.invoke(SimTime::ZERO, f, Cycles::from_giga(25)).unwrap();
        assert!(!third.queue_wait.is_zero(), "region cap forces queueing");
        assert_eq!(p.live_instances(f), 2);
    }

    #[test]
    fn bigger_memory_is_faster_but_pricier_per_invocation() {
        let mut p = no_jitter_platform();
        let small = p.register(FunctionConfig::new("s", DataSize::from_mib(512)));
        let large = p.register(FunctionConfig::new("l", DataSize::from_mib(1769)));
        let a = p.invoke(SimTime::ZERO, small, Cycles::from_giga(5)).unwrap();
        let b = p.invoke(SimTime::ZERO, large, Cycles::from_giga(5)).unwrap();
        assert!(b.exec < a.exec);
        // Same work, linear CPU scaling region: cost is ~equal (duration
        // halves as memory doubles); check they are within granularity.
        let rel = (a.cost.as_usd_f64() - b.cost.as_usd_f64()).abs() / a.cost.as_usd_f64();
        assert!(rel < 0.05, "rel={rel}");
    }

    #[test]
    fn scale_burst_throttles_beyond_the_allowance() {
        let mut cfg = PlatformConfig { scale_burst: 3, scale_per_minute: 60, ..Default::default() };
        cfg.cold_start.jitter_sigma = 0.0;
        let mut p = ServerlessPlatform::new(cfg, RngStream::root(9));
        let f = p.register(FunctionConfig::new("f", DataSize::from_mib(1769)));
        // Four simultaneous long jobs: only three instances may appear.
        for _ in 0..4 {
            p.invoke(SimTime::ZERO, f, Cycles::from_giga(250)).unwrap(); // 100 s each
        }
        assert_eq!(p.live_instances(f), 3, "burst allowance is 3");
        assert_eq!(p.stats(f).queued, 1, "fourth call queues");
        // A second later a token has refilled: scale-out works again.
        let out = p.invoke(SimTime::from_secs(2), f, Cycles::from_giga(250)).unwrap();
        assert!(out.was_cold);
        assert_eq!(p.live_instances(f), 4);
    }

    #[test]
    fn scale_tokens_cap_at_burst() {
        let cfg = PlatformConfig { scale_burst: 10, scale_per_minute: 600, ..Default::default() };
        let mut p = ServerlessPlatform::new(cfg, RngStream::root(9));
        let f = p.register(FunctionConfig::new("f", DataSize::from_mib(128)));
        p.invoke(SimTime::from_secs(3600), f, Cycles::from_mega(1)).unwrap();
        assert!(p.scale_tokens() <= 10.0, "refill must cap at the burst size");
    }

    #[test]
    fn total_cost_sums_functions() {
        let mut p = platform();
        let f1 = p.register(FunctionConfig::new("a", DataSize::from_mib(256)));
        let f2 = p.register(FunctionConfig::new("b", DataSize::from_mib(256)));
        let o1 = p.invoke(SimTime::ZERO, f1, Cycles::from_giga(1)).unwrap();
        let o2 = p.invoke(SimTime::ZERO, f2, Cycles::from_giga(1)).unwrap();
        assert_eq!(p.total_cost(SimTime::from_secs(100)), o1.cost + o2.cost);
    }
}
