//! FaaS billing: pay-per-request plus GB-seconds, Lambda-style.

use ntc_simcore::units::{DataSize, Money, SimDuration};
use serde::{Deserialize, Serialize};

/// The billing schedule of a serverless platform.
///
/// Cost of an invocation: `per_request + memory_gb × billed_seconds ×
/// per_gb_second`, where the billed duration is rounded up to
/// `billing_granularity`. Idle *provisioned* capacity accrues
/// `per_gb_second_provisioned`.
///
/// # Examples
///
/// ```
/// use ntc_serverless::billing::BillingModel;
/// use ntc_simcore::units::{DataSize, SimDuration};
///
/// let b = BillingModel::aws_like();
/// let cost = b.invocation_cost(DataSize::from_mib(1024), SimDuration::from_millis(100));
/// // 1 GB for 100 ms ≈ $0.00000166667 + $0.0000002 request fee.
/// assert!((cost.as_usd_f64() - 1.8667e-6).abs() < 1e-8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BillingModel {
    /// Flat fee per invocation.
    pub per_request: Money,
    /// Fee per GB of configured memory per second of billed duration.
    pub per_gb_second: Money,
    /// Fee per GB-second for *idle provisioned* capacity.
    pub per_gb_second_provisioned: Money,
    /// Billed durations are rounded up to a multiple of this.
    pub billing_granularity: SimDuration,
}

impl BillingModel {
    /// A schedule shaped like AWS Lambda's public 2022 pricing
    /// (us-east-1): $0.20 per 1M requests, $0.0000166667 per GB-s,
    /// $0.0000041667 per provisioned GB-s, 1 ms granularity.
    pub fn aws_like() -> Self {
        BillingModel {
            per_request: Money::from_usd_f64(0.0000002),
            per_gb_second: Money::from_usd_f64(0.0000166667),
            per_gb_second_provisioned: Money::from_usd_f64(0.0000041667),
            billing_granularity: SimDuration::from_millis(1),
        }
    }

    /// A free-tier-like schedule (everything costs nothing); useful for
    /// isolating performance effects in tests.
    pub fn free() -> Self {
        BillingModel {
            per_request: Money::ZERO,
            per_gb_second: Money::ZERO,
            per_gb_second_provisioned: Money::ZERO,
            billing_granularity: SimDuration::from_millis(1),
        }
    }

    /// Rounds a raw duration up to the billing granularity.
    pub fn billed_duration(&self, raw: SimDuration) -> SimDuration {
        let g = self.billing_granularity.as_micros().max(1);
        let us = raw.as_micros();
        SimDuration::from_micros(us.div_ceil(g) * g)
    }

    /// The cost of one invocation at the given memory size and raw
    /// execution duration.
    pub fn invocation_cost(&self, memory: DataSize, raw_duration: SimDuration) -> Money {
        let gb = memory.as_bytes() as f64 / (1024.0 * 1024.0 * 1024.0);
        let secs = self.billed_duration(raw_duration).as_secs_f64();
        self.per_request + self.per_gb_second.mul_f64(gb * secs)
    }

    /// The cost of holding provisioned capacity of the given memory size
    /// warm for `held`.
    pub fn provisioned_cost(&self, memory: DataSize, held: SimDuration) -> Money {
        let gb = memory.as_bytes() as f64 / (1024.0 * 1024.0 * 1024.0);
        self.per_gb_second_provisioned.mul_f64(gb * held.as_secs_f64())
    }
}

impl Default for BillingModel {
    fn default() -> Self {
        Self::aws_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn billed_duration_rounds_up() {
        let b = BillingModel::aws_like();
        assert_eq!(b.billed_duration(SimDuration::from_micros(1)), SimDuration::from_millis(1));
        assert_eq!(b.billed_duration(SimDuration::from_millis(1)), SimDuration::from_millis(1));
        assert_eq!(b.billed_duration(SimDuration::from_micros(1001)), SimDuration::from_millis(2));
        assert_eq!(b.billed_duration(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn cost_is_monotone_in_duration_and_memory() {
        let b = BillingModel::aws_like();
        let m = DataSize::from_mib(512);
        let c1 = b.invocation_cost(m, SimDuration::from_millis(50));
        let c2 = b.invocation_cost(m, SimDuration::from_millis(100));
        let c3 = b.invocation_cost(DataSize::from_mib(1024), SimDuration::from_millis(50));
        assert!(c1 < c2);
        assert!(c1 < c3);
    }

    #[test]
    fn free_tier_costs_nothing() {
        let b = BillingModel::free();
        assert_eq!(
            b.invocation_cost(DataSize::from_gib(8), SimDuration::from_hours(1)),
            Money::ZERO
        );
        assert_eq!(
            b.provisioned_cost(DataSize::from_gib(8), SimDuration::from_hours(1)),
            Money::ZERO
        );
    }

    #[test]
    fn provisioned_rate_is_cheaper_than_on_demand() {
        let b = BillingModel::aws_like();
        let m = DataSize::from_gib(1);
        let hour = SimDuration::from_hours(1);
        assert!(b.provisioned_cost(m, hour) < b.per_gb_second.mul_f64(3600.0));
    }

    #[test]
    fn request_fee_is_charged_even_for_zero_work() {
        let b = BillingModel::aws_like();
        let c = b.invocation_cost(DataSize::from_mib(128), SimDuration::ZERO);
        assert_eq!(c, b.per_request);
    }
}
