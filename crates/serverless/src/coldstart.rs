//! Cold-start and instance keep-alive modelling.

use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{DataSize, SimDuration};
use serde::{Deserialize, Serialize};

/// How long a cold start takes: platform placement overhead, artifact
/// fetch proportional to code size, and runtime initialisation, with
/// lognormal jitter on the total.
///
/// # Examples
///
/// ```
/// use ntc_serverless::coldstart::ColdStartModel;
/// use ntc_simcore::rng::RngStream;
/// use ntc_simcore::units::DataSize;
///
/// let m = ColdStartModel::default();
/// let mut rng = RngStream::root(1).derive("cold");
/// let d = m.sample(DataSize::from_mib(50), &mut rng);
/// assert!(d.as_millis() >= 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColdStartModel {
    /// Fixed platform overhead (scheduling, sandbox creation).
    pub placement: SimDuration,
    /// Artifact fetch time per MiB of code.
    pub fetch_per_mib: SimDuration,
    /// Runtime/initialisation time (language runtime boot, global init).
    pub init: SimDuration,
    /// Lognormal jitter sigma applied to the total.
    pub jitter_sigma: f64,
}

impl ColdStartModel {
    /// A model shaped like measured Lambda cold starts: ~125 ms placement,
    /// ~4 ms/MiB fetch, ~175 ms init, 25 % jitter — roughly 300–800 ms for
    /// typical artifact sizes.
    pub fn lambda_like() -> Self {
        ColdStartModel {
            placement: SimDuration::from_millis(125),
            fetch_per_mib: SimDuration::from_millis(4),
            init: SimDuration::from_millis(175),
            jitter_sigma: 0.25,
        }
    }

    /// A zero-cost model (instances are always instantly available); useful
    /// for isolating cold-start effects in ablations.
    pub fn none() -> Self {
        ColdStartModel {
            placement: SimDuration::ZERO,
            fetch_per_mib: SimDuration::ZERO,
            init: SimDuration::ZERO,
            jitter_sigma: 0.0,
        }
    }

    /// The deterministic mean cold-start duration for an artifact size.
    pub fn mean(&self, artifact: DataSize) -> SimDuration {
        self.placement + self.fetch_per_mib.mul_f64(artifact.as_mib_f64()) + self.init
    }

    /// Samples a cold-start duration for an artifact size.
    pub fn sample(&self, artifact: DataSize, rng: &mut RngStream) -> SimDuration {
        let mean = self.mean(artifact);
        if self.jitter_sigma == 0.0 {
            return mean;
        }
        mean.mul_f64(rng.lognormal(0.0, self.jitter_sigma))
    }
}

impl Default for ColdStartModel {
    fn default() -> Self {
        Self::lambda_like()
    }
}

/// How long the platform keeps an idle instance warm before reaping it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeepAlive {
    /// Instances are reaped immediately after each invocation: every
    /// invocation is a cold start.
    None,
    /// Idle instances survive for a fixed duration (Lambda: ~10 min).
    Fixed(SimDuration),
}

impl KeepAlive {
    /// The idle time-to-live under this policy.
    pub fn idle_ttl(&self) -> SimDuration {
        match self {
            KeepAlive::None => SimDuration::ZERO,
            KeepAlive::Fixed(d) => *d,
        }
    }
}

impl Default for KeepAlive {
    fn default() -> Self {
        KeepAlive::Fixed(SimDuration::from_mins(10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_scales_with_artifact() {
        let m = ColdStartModel::lambda_like();
        let small = m.mean(DataSize::from_mib(1));
        let big = m.mean(DataSize::from_mib(100));
        assert!(big > small);
        assert_eq!(big - small, SimDuration::from_millis(4 * 99));
    }

    #[test]
    fn none_model_is_zero() {
        let m = ColdStartModel::none();
        let mut rng = RngStream::root(0).derive("x");
        assert_eq!(m.sample(DataSize::from_gib(1), &mut rng), SimDuration::ZERO);
    }

    #[test]
    fn sample_jitters_around_mean() {
        let m = ColdStartModel::lambda_like();
        let mut rng = RngStream::root(3).derive("cold");
        let art = DataSize::from_mib(10);
        let mean_us = m.mean(art).as_micros() as f64;
        let n = 500;
        let avg: f64 =
            (0..n).map(|_| m.sample(art, &mut rng).as_micros() as f64).sum::<f64>() / n as f64;
        assert!((avg / mean_us - 1.0).abs() < 0.15, "avg={avg} mean={mean_us}");
    }

    #[test]
    fn keep_alive_ttls() {
        assert_eq!(KeepAlive::None.idle_ttl(), SimDuration::ZERO);
        assert_eq!(
            KeepAlive::Fixed(SimDuration::from_mins(5)).idle_ttl(),
            SimDuration::from_mins(5)
        );
        assert_eq!(KeepAlive::default().idle_ttl(), SimDuration::from_mins(10));
    }
}
