//! Property-based tests of the serverless platform's lifecycle and
//! billing invariants.

use proptest::prelude::*;

use ntc_serverless::{
    BillingModel, ColdStartModel, FunctionConfig, KeepAlive, PlatformConfig, ServerlessPlatform,
};
use ntc_simcore::rng::RngStream;
use ntc_simcore::units::{Cycles, DataSize, Money, SimDuration, SimTime};

fn no_jitter_config() -> PlatformConfig {
    let mut cfg = PlatformConfig::default();
    cfg.cold_start.jitter_sigma = 0.0;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Keep-alive semantics: a gap strictly longer than the TTL after an
    /// idle instance's last finish always causes a cold start; a gap
    /// within the TTL never does.
    #[test]
    fn keep_alive_boundary_is_exact(
        ttl_secs in 1u64..3_600,
        gap_secs in 1u64..7_200,
        work_mega in 1u64..5_000,
    ) {
        let mut cfg = no_jitter_config();
        cfg.keep_alive = KeepAlive::Fixed(SimDuration::from_secs(ttl_secs));
        let mut p = ServerlessPlatform::new(cfg, RngStream::root(1));
        let f = p.register(FunctionConfig::new("f", DataSize::from_mib(1024)));
        let first = p.invoke(SimTime::ZERO, f, Cycles::from_mega(work_mega)).unwrap();
        prop_assert!(first.was_cold);
        let at = first.finish + SimDuration::from_secs(gap_secs);
        let second = p.invoke(at, f, Cycles::from_mega(work_mega)).unwrap();
        prop_assert_eq!(second.was_cold, gap_secs > ttl_secs, "ttl={} gap={}", ttl_secs, gap_secs);
    }

    /// The platform never creates more instances than the per-function
    /// concurrency limit, no matter the burst size.
    #[test]
    fn concurrency_limit_is_respected(
        limit in 1u32..20,
        burst in 1usize..60,
    ) {
        let mut p = ServerlessPlatform::new(no_jitter_config(), RngStream::root(2));
        let f = p.register(
            FunctionConfig::new("f", DataSize::from_mib(1769)).with_concurrency_limit(limit),
        );
        for _ in 0..burst {
            p.invoke(SimTime::ZERO, f, Cycles::from_giga(25)).unwrap();
        }
        prop_assert!(p.live_instances(f) <= limit as usize);
        let queued_expected = burst.saturating_sub(limit as usize) as u64;
        prop_assert_eq!(p.stats(f).queued, queued_expected);
    }

    /// Total cost equals the sum of per-invocation costs plus provisioned
    /// accrual — no money appears or disappears.
    #[test]
    fn money_is_conserved(
        n in 1usize..40,
        gap_ms in 1u64..60_000,
        provisioned in 0u32..3,
        horizon_extra_secs in 0u64..3_600,
    ) {
        let mut p = ServerlessPlatform::new(no_jitter_config(), RngStream::root(3));
        let f = p.register(FunctionConfig::new("f", DataSize::from_mib(512)));
        p.set_provisioned(SimTime::ZERO, f, provisioned);
        let mut t = SimTime::ZERO;
        let mut invoice = Money::ZERO;
        for _ in 0..n {
            t += SimDuration::from_millis(gap_ms);
            invoice += p.invoke(t, f, Cycles::from_mega(200)).unwrap().cost;
        }
        let end = t + SimDuration::from_secs(horizon_extra_secs);
        let total = p.total_cost(end);
        let stats = p.stats(f);
        prop_assert_eq!(stats.invocation_cost, invoice);
        prop_assert_eq!(total, stats.invocation_cost + stats.provisioned_cost);
        if provisioned == 0 {
            prop_assert_eq!(stats.provisioned_cost, Money::ZERO);
        } else {
            let expected = BillingModel::aws_like()
                .provisioned_cost(DataSize::from_mib(512), end - SimTime::ZERO)
                .mul_f64(f64::from(provisioned));
            let diff = (stats.provisioned_cost.as_nano_usd() - expected.as_nano_usd()).abs();
            prop_assert!(diff <= provisioned as i64 + 1, "accrual drift {diff}");
        }
    }

    /// Billed duration is always >= the raw duration and within one
    /// granule of it.
    #[test]
    fn billed_duration_bounds(raw_us in 0u64..100_000_000) {
        let b = BillingModel::aws_like();
        let raw = SimDuration::from_micros(raw_us);
        let billed = b.billed_duration(raw);
        prop_assert!(billed >= raw);
        prop_assert!(billed.as_micros() - raw.as_micros() < 1_000);
    }

    /// Cold-start sampling is always at least the placement time and
    /// grows with artifact size in expectation.
    #[test]
    fn cold_start_scales_with_artifact(mib in 1u64..2_000, seed in 0u64..1_000) {
        let m = ColdStartModel::lambda_like();
        let mut rng = RngStream::root(seed).derive("cs");
        let d = m.sample(DataSize::from_mib(mib), &mut rng);
        prop_assert!(d > SimDuration::ZERO);
        prop_assert!(m.mean(DataSize::from_mib(mib)) >= m.mean(DataSize::from_mib(1)));
    }
}
