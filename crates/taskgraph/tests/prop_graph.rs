//! Property-based tests of graph algorithms: topological order, critical
//! path, and max-flow/min-cut against brute force.

use proptest::prelude::*;

use ntc_simcore::rng::RngStream;
use ntc_simcore::units::SimDuration;
use ntc_taskgraph::{random_layered_dag, FlowNetwork, RandomDagConfig};

/// Brute-force minimum s-t cut by enumerating all node bipartitions.
fn brute_force_min_cut(n: usize, edges: &[(usize, usize, u64)], s: usize, t: usize) -> u64 {
    let mut best = u64::MAX;
    for mask in 0u32..(1 << n) {
        if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
            continue; // source must be on the source side, sink must not
        }
        let cut: u64 = edges
            .iter()
            .filter(|&&(u, v, _)| mask & (1 << u) != 0 && mask & (1 << v) == 0)
            .map(|&(_, _, c)| c)
            .sum();
        best = best.min(cut);
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dinic's max flow equals the brute-force minimum cut
    /// (max-flow/min-cut duality) on small random networks.
    #[test]
    fn max_flow_equals_brute_force_min_cut(
        n in 3usize..8,
        edge_seeds in prop::collection::vec((0usize..8, 0usize..8, 1u64..50), 1..20),
    ) {
        let edges: Vec<(usize, usize, u64)> = edge_seeds
            .into_iter()
            .map(|(u, v, c)| (u % n, v % n, c))
            .filter(|&(u, v, _)| u != v)
            .collect();
        prop_assume!(!edges.is_empty());
        let mut net = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            net.add_edge(u, v, c);
        }
        let flow = net.max_flow(0, n - 1);
        let brute = brute_force_min_cut(n, &edges, 0, n - 1);
        prop_assert_eq!(flow, brute);

        // The reported cut side must be consistent: s in, t out, and the
        // crossing capacity equals the flow.
        let side = net.min_cut_source_side(0);
        prop_assert!(side[0] && !side[n - 1]);
        let crossing: u64 = edges
            .iter()
            .filter(|&&(u, v, _)| side[u] && !side[v])
            .map(|&(_, _, c)| c)
            .sum();
        prop_assert_eq!(crossing, flow);
    }

    /// Topological order puts every edge forward, and the critical path is
    /// at least as long as any single component's time and at most the sum.
    #[test]
    fn topo_and_critical_path_are_consistent(seed in 0u64..5_000, nodes in 2usize..25) {
        let layers = (nodes / 2).clamp(2, 5).min(nodes);
        let cfg = RandomDagConfig { nodes, layers, ..Default::default() };
        let g = random_layered_dag(&mut RngStream::root(seed).derive("prop"), &cfg);

        let order = g.topo_order();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for f in g.flows() {
            prop_assert!(pos[&f.from] < pos[&f.to], "edge goes backwards in topo order");
        }

        let node_time = |id: ntc_taskgraph::ComponentId| {
            SimDuration::from_micros(1 + id.index() as u64 * 7)
        };
        let (len, path) = g.critical_path(node_time, |_| SimDuration::from_micros(3));
        let max_single = g.ids().map(node_time).max().unwrap();
        let total: SimDuration = g.ids().map(node_time).sum();
        let edge_total = SimDuration::from_micros(3 * g.flows().len() as u64);
        prop_assert!(len >= max_single);
        prop_assert!(len <= total + edge_total);
        prop_assert!(!path.is_empty());
        // The path itself is a real chain in the graph.
        for w in path.windows(2) {
            prop_assert!(g.successors(w[0]).any(|s| s == w[1]), "path edge missing");
        }
    }

    /// Reachability from an entry covers every node on some path to an
    /// exit through it (sanity: entry reaches at least itself and its
    /// successors transitively).
    #[test]
    fn reachability_is_transitive(seed in 0u64..2_000) {
        let cfg = RandomDagConfig { nodes: 12, layers: 4, ..Default::default() };
        let g = random_layered_dag(&mut RngStream::root(seed).derive("reach"), &cfg);
        for entry in g.entries() {
            let r = g.reachable_from(entry);
            prop_assert!(r.contains(&entry));
            for &node in &r {
                for succ in g.successors(node) {
                    prop_assert!(r.contains(&succ), "reachable set not closed under successors");
                }
            }
        }
    }
}
