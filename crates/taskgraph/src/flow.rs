//! Maximum flow / minimum cut (Dinic's algorithm).
//!
//! Used by the min-cut partitioner: offloading decisions reduce to an s-t
//! cut between a "device" source and a "cloud" sink, where cut edges are the
//! costs paid (local execution, remote execution, or data transfer).
//!
//! Capacities are `u64`; use [`FlowNetwork::INF`] for edges that must never
//! be cut (e.g. pinned components).
//!
//! # Examples
//!
//! ```
//! use ntc_taskgraph::flow::FlowNetwork;
//!
//! // s --10--> a --5--> t : bottleneck 5
//! let mut net = FlowNetwork::new(3);
//! net.add_edge(0, 1, 10);
//! net.add_edge(1, 2, 5);
//! assert_eq!(net.max_flow(0, 2), 5);
//! assert_eq!(net.min_cut_source_side(0), vec![true, true, false]);
//! ```

use std::collections::VecDeque;

/// A directed flow network over dense node indices.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    // Edges stored flat; edge i and i^1 are a forward/residual pair.
    to: Vec<usize>,
    cap: Vec<u64>,
    head: Vec<Vec<usize>>, // adjacency: node -> edge indices
    n: usize,
    dirty: bool,
}

impl FlowNetwork {
    /// Capacity treated as "uncuttable". Large enough to dominate any real
    /// cost, small enough that summing many of them cannot overflow.
    pub const INF: u64 = u64::MAX / 1024;

    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork { to: Vec::new(), cap: Vec::new(), head: vec![Vec::new(); n], n, dirty: false }
    }

    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds a directed edge `from -> to` with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, capacity: u64) {
        assert!(from < self.n && to < self.n, "edge endpoint out of range");
        let capacity = capacity.min(Self::INF);
        self.head[from].push(self.to.len());
        self.to.push(to);
        self.cap.push(capacity);
        self.head[to].push(self.to.len());
        self.to.push(from);
        self.cap.push(0);
    }

    /// Adds an undirected edge (equal capacity both ways).
    pub fn add_bidirectional_edge(&mut self, a: usize, b: usize, capacity: u64) {
        self.add_edge(a, b, capacity);
        self.add_edge(b, a, capacity);
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1i32; self.n];
        let mut q = VecDeque::new();
        level[s] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &e in &self.head[u] {
                let v = self.to[e];
                if self.cap[e] > 0 && level[v] < 0 {
                    level[v] = level[u] + 1;
                    q.push_back(v);
                }
            }
        }
        if level[t] >= 0 {
            Some(level)
        } else {
            None
        }
    }

    fn dfs_augment(
        &mut self,
        u: usize,
        t: usize,
        pushed: u64,
        level: &[i32],
        it: &mut [usize],
    ) -> u64 {
        if u == t {
            return pushed;
        }
        while it[u] < self.head[u].len() {
            let e = self.head[u][it[u]];
            let v = self.to[e];
            if self.cap[e] > 0 && level[v] == level[u] + 1 {
                let d = self.dfs_augment(v, t, pushed.min(self.cap[e]), level, it);
                if d > 0 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            it[u] += 1;
        }
        0
    }

    /// Computes the maximum s-t flow, consuming edge capacities.
    ///
    /// After this call the residual network encodes a minimum cut; query it
    /// with [`FlowNetwork::min_cut_source_side`].
    ///
    /// # Panics
    ///
    /// Panics if called twice (the residual state is already consumed), or
    /// if `s == t`.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert!(!self.dirty, "max_flow may only be called once per network");
        assert!(s != t, "source and sink must differ");
        self.dirty = true;
        let mut flow: u64 = 0;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut it = vec![0usize; self.n];
            loop {
                let pushed = self.dfs_augment(s, t, u64::MAX, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    /// After [`FlowNetwork::max_flow`], returns which nodes lie on the
    /// source side of the minimum cut (reachable in the residual graph).
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut side = vec![false; self.n];
        let mut q = VecDeque::new();
        side[s] = true;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &e in &self.head[u] {
                let v = self.to[e];
                if self.cap[e] > 0 && !side[v] {
                    side[v] = true;
                    q.push_back(v);
                }
            }
        }
        side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS figure: max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 1, 4);
        net.add_edge(1, 3, 12);
        net.add_edge(3, 2, 9);
        net.add_edge(2, 4, 14);
        net.add_edge(4, 3, 7);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn disconnected_sink_has_zero_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 2), 0);
        let side = net.min_cut_source_side(0);
        assert_eq!(side, vec![true, true, false]);
    }

    #[test]
    fn min_cut_value_equals_max_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 3);
        net.add_edge(1, 2, 100);
        // 0→1→3 pushes 2, 0→2→3 pushes 2, 0→1→2→3 pushes 1 through the
        // high-capacity shortcut: the cut is {0} vs rest with value 3+2.
        let flow = net.max_flow(0, 3);
        let side = net.min_cut_source_side(0);
        assert!(side[0] && !side[3]);
        assert_eq!(flow, 5);
    }

    #[test]
    fn inf_edges_are_never_cut() {
        // s -INF-> a -1-> t and s -1-> b -INF-> t.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, FlowNetwork::INF);
        net.add_edge(1, 3, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(2, 3, FlowNetwork::INF);
        assert_eq!(net.max_flow(0, 3), 2);
        let side = net.min_cut_source_side(0);
        // `a` stays with the source (its INF in-edge uncut); `b` goes to sink side.
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn bidirectional_edge_flows_either_way() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        net.add_bidirectional_edge(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 3);
    }

    #[test]
    #[should_panic(expected = "only be called once")]
    fn second_max_flow_panics() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1);
        net.max_flow(0, 1);
        net.max_flow(0, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 5, 1);
    }
}
