//! Random task-graph generation for tests, property tests and the
//! partition-quality experiments (Table 2).

use ntc_simcore::rng::RngStream;
use ntc_simcore::units::DataSize;

use crate::component::{Component, LinearModel, Pinning};
use crate::graph::{TaskGraph, TaskGraphBuilder};

/// Parameters for [`random_layered_dag`].
#[derive(Debug, Clone)]
pub struct RandomDagConfig {
    /// Total number of components (≥ 2).
    pub nodes: usize,
    /// Number of layers the nodes are spread over (≥ 2, ≤ nodes).
    pub layers: usize,
    /// Probability of an edge between nodes in adjacent layers.
    pub edge_probability: f64,
    /// Mean compute demand per component, in megacycles.
    pub mean_demand_mega: f64,
    /// Mean payload per flow, in KiB.
    pub mean_payload_kib: f64,
    /// Probability that a component is pinned to the device.
    pub pin_probability: f64,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        RandomDagConfig {
            nodes: 10,
            layers: 4,
            edge_probability: 0.5,
            mean_demand_mega: 200.0,
            mean_payload_kib: 256.0,
            pin_probability: 0.15,
        }
    }
}

/// Generates a random layered DAG.
///
/// Nodes are assigned round-robin to layers; candidate edges run between
/// consecutive layers and are kept with `edge_probability`. Every node is
/// then connected forward (and the first layer backward) so the graph has no
/// stranded components. The first node is always pinned to the device
/// (applications start from UE-side input), others are pinned with
/// `pin_probability`.
///
/// # Panics
///
/// Panics if `nodes < 2`, `layers < 2`, or `layers > nodes`.
pub fn random_layered_dag(rng: &mut RngStream, config: &RandomDagConfig) -> TaskGraph {
    assert!(config.nodes >= 2, "need at least two nodes");
    assert!(config.layers >= 2 && config.layers <= config.nodes, "invalid layer count");

    let mut builder = TaskGraphBuilder::new("random-dag");
    let mut layer_of = Vec::with_capacity(config.nodes);
    let mut ids = Vec::with_capacity(config.nodes);
    for i in 0..config.nodes {
        let layer = i * config.layers / config.nodes;
        let pinned = i == 0 || rng.chance(config.pin_probability);
        let demand = rng.exponential(config.mean_demand_mega) * 1e6;
        let per_byte = rng.uniform() * 50.0;
        let c = Component::new(format!("n{i}"))
            .with_demand(LinearModel::scaling(demand, per_byte))
            .with_memory(DataSize::from_mib(64 + rng.uniform_range(0, 4) * 64))
            .with_pinning(if pinned { Pinning::Device } else { Pinning::Offloadable });
        ids.push(builder.add_component(c));
        layer_of.push(layer);
    }

    let mut has_in = vec![false; config.nodes];
    let mut has_out = vec![false; config.nodes];
    let payload = |rng: &mut RngStream| {
        LinearModel::scaling(rng.exponential(config.mean_payload_kib) * 1024.0, rng.uniform() * 0.2)
    };
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 0..config.nodes {
        for j in 0..config.nodes {
            if layer_of[j] == layer_of[i] + 1 && rng.chance(config.edge_probability) {
                edges.push((i, j));
                has_out[i] = true;
                has_in[j] = true;
            }
        }
    }
    // Connect stragglers: any node without an inbound edge (except layer 0)
    // gets one from a random node in the previous layer, and any node
    // without an outbound edge (except the last layer) gets one forward.
    for j in 0..config.nodes {
        if layer_of[j] > 0 && !has_in[j] {
            let prev: Vec<usize> =
                (0..config.nodes).filter(|&i| layer_of[i] == layer_of[j] - 1).collect();
            let i = *rng.choose(&prev).expect("previous layer is non-empty");
            edges.push((i, j));
            has_out[i] = true;
            has_in[j] = true;
        }
    }
    for i in 0..config.nodes {
        if layer_of[i] < config.layers - 1 && !has_out[i] {
            let next: Vec<usize> =
                (0..config.nodes).filter(|&j| layer_of[j] == layer_of[i] + 1).collect();
            let j = *rng.choose(&next).expect("next layer is non-empty");
            edges.push((i, j));
            has_out[i] = true;
            has_in[j] = true;
        }
    }
    edges.sort_unstable();
    edges.dedup();
    for (i, j) in edges {
        builder.add_flow(ids[i], ids[j], payload(rng));
    }
    builder.build().expect("layered construction is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_graphs_across_seeds() {
        for seed in 0..30 {
            let mut rng = RngStream::root(seed).derive("dag");
            let g = random_layered_dag(&mut rng, &RandomDagConfig::default());
            assert_eq!(g.len(), 10);
            // build() already validated acyclicity; spot-check connectivity.
            assert!(!g.entries().is_empty());
            assert!(!g.exits().is_empty());
            assert_eq!(g.topo_order().len(), g.len());
        }
    }

    #[test]
    fn first_node_is_pinned() {
        let mut rng = RngStream::root(3).derive("dag");
        let g = random_layered_dag(&mut rng, &RandomDagConfig::default());
        let first = g.ids().next().unwrap();
        assert!(!g.component(first).is_offloadable());
    }

    #[test]
    fn same_seed_same_graph() {
        let cfg = RandomDagConfig { nodes: 14, ..Default::default() };
        let a = random_layered_dag(&mut RngStream::root(9).derive("dag"), &cfg);
        let b = random_layered_dag(&mut RngStream::root(9).derive("dag"), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn every_non_entry_node_is_reachable() {
        let mut rng = RngStream::root(11).derive("dag");
        let cfg =
            RandomDagConfig { nodes: 20, layers: 5, edge_probability: 0.3, ..Default::default() };
        let g = random_layered_dag(&mut rng, &cfg);
        for id in g.ids() {
            let has_pred = g.predecessors(id).next().is_some();
            let has_succ = g.successors(id).next().is_some();
            assert!(has_pred || has_succ, "node {id} is isolated");
        }
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_config_panics() {
        let mut rng = RngStream::root(0);
        random_layered_dag(&mut rng, &RandomDagConfig { nodes: 1, ..Default::default() });
    }
}
