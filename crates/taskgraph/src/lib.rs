//! # ntc-taskgraph
//!
//! Application model for the `ntc-offload` framework: an application is a
//! DAG of [`Component`]s (the partitionable code units of *Computational
//! Offloading for Non-Time-Critical Applications*, ICDCS 2022) connected by
//! [`graph::DataFlow`]s whose payloads scale with job input size.
//!
//! * [`component`] — components, demand models, placement pinning.
//! * [`graph`] — the validated [`TaskGraph`] and DAG algorithms
//!   (topological order, critical path, reachability, DOT export).
//! * [`flow`] — max-flow/min-cut ([`flow::FlowNetwork`], Dinic), the
//!   machinery behind min-cut partitioning.
//! * [`generate`] — seeded random layered DAGs for tests and experiments.
//!
//! # Examples
//!
//! ```
//! use ntc_taskgraph::{TaskGraphBuilder, Component, LinearModel, Pinning};
//! use ntc_simcore::units::DataSize;
//!
//! let mut b = TaskGraphBuilder::new("photo-app");
//! let capture = b.add_component(Component::new("capture").with_pinning(Pinning::Device));
//! let enhance = b.add_component(
//!     Component::new("enhance").with_demand(LinearModel::scaling(2e9, 500.0)),
//! );
//! let publish = b.add_component(Component::new("publish"));
//! b.add_flow(capture, enhance, LinearModel::scaling(0.0, 1.0));
//! b.add_flow(enhance, publish, LinearModel::scaling(0.0, 0.3));
//! let app = b.build()?;
//!
//! assert_eq!(app.entries().len(), 1);
//! assert!(app.total_work(DataSize::from_mib(4)).get() > 2_000_000_000);
//! # Ok::<(), ntc_taskgraph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod component;
pub mod flow;
pub mod generate;
pub mod graph;

pub use component::{Component, ComponentId, LinearModel, Pinning};
pub use flow::FlowNetwork;
pub use generate::{random_layered_dag, RandomDagConfig};
pub use graph::{DataFlow, GraphError, TaskGraph, TaskGraphBuilder};
